#!/usr/bin/env sh
# bench_serve.sh — measure the serve fast path: the warm store-hit
# request benchmark (a restarted server answering POST /v1/experiments
# entirely from the persistent cell store), and emit/check a
# machine-readable baseline.
#
#   scripts/bench_serve.sh write [out.json]
#       Run the measurement and write the JSON baseline (default
#       BENCH_serve.json). Commit the result to refresh the baseline.
#
#   scripts/bench_serve.sh check [baseline.json]
#       Run the measurement, write BENCH_serve_current.json next to the
#       baseline for artifact upload, and fail if BenchmarkServeWarmHit's
#       ns/op exceeds 3x its committed baseline or its allocs/op exceed
#       2x.
#
# BENCHTIME overrides the per-benchmark iteration count (default 50x; a
# warm request is under a millisecond, so a few dozen iterations average
# out file-system jitter without measuring noise).
set -eu

mode="${1:-write}"
baseline="${2:-BENCH_serve.json}"
benchtime="${BENCHTIME:-50x}"

cd "$(dirname "$0")/.."

run_bench() {
    go test -run '^$' -bench 'BenchmarkServeWarmHit$' \
        -benchtime "$benchtime" -benchmem . |
        awk '
            /^Benchmark/ {
                name = $1
                sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
                ns = ""; allocs = ""
                for (i = 2; i <= NF; i++) {
                    if ($i == "ns/op") ns = $(i-1)
                    if ($i == "allocs/op") allocs = $(i-1)
                }
                if (ns == "") next
                if (out != "") out = out ","
                out = out sprintf("\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs == "" ? 0 : allocs)
            }
            END {
                printf "{\n  \"benchmarks\": [%s\n  ]\n}\n", out
            }
        '
}

case "$mode" in
write)
    run_bench > "$baseline"
    echo "wrote $baseline:"
    cat "$baseline"
    ;;
check)
    current="${baseline%.json}_current.json"
    run_bench > "$current"
    echo "current results ($current):"
    cat "$current"
    python3 - "$baseline" "$current" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

NS_LIMIT = 3.0
ALLOC_LIMIT = 2.0
failed = False

base_b = {b["name"]: b for b in base["benchmarks"]}
cur_b = {b["name"]: b for b in cur["benchmarks"]}
for name, b in base_b.items():
    c = cur_b.get(name)
    if c is None:
        print(f"FAIL {name}: benchmark missing from current run")
        failed = True
        continue
    ratio = c["ns_per_op"] / b["ns_per_op"]
    status = "ok  "
    if ratio > NS_LIMIT:
        status, failed = "FAIL", True
    print(f"{status} {name}: {c['ns_per_op']:.0f} ns/op vs baseline "
          f"{b['ns_per_op']:.0f} ({ratio:.2f}x, limit {NS_LIMIT}x)")
    if b.get("allocs_per_op"):
        aratio = c["allocs_per_op"] / b["allocs_per_op"]
        status = "ok  "
        if aratio > ALLOC_LIMIT:
            status, failed = "FAIL", True
        print(f"{status} {name}: {c['allocs_per_op']} allocs/op vs baseline "
              f"{b['allocs_per_op']} ({aratio:.2f}x, limit {ALLOC_LIMIT}x)")

sys.exit(1 if failed else 0)
EOF
    ;;
*)
    echo "usage: $0 write|check [baseline.json]" >&2
    exit 2
    ;;
esac
