#!/usr/bin/env sh
# bench_suite.sh — run the figure-suite benchmark, the cold-latency
# benchmarks at one core and at every core, plus a timed 1-core
# `uvmbench all`, and emit/check a machine-readable baseline.
#
#   scripts/bench_suite.sh write [out.json]
#       Run the measurements and write the JSON baseline (default
#       BENCH_suite.json). Commit the result to refresh the baseline.
#
#   scripts/bench_suite.sh check [baseline.json]
#       Run the measurements, write BENCH_suite_current.json next to the
#       baseline for artifact upload, and fail if any benchmark's ns/op
#       exceeds 3x its committed baseline, its allocs/op exceeds 2x (the
#       GC-free iteration path has started allocating again), or the
#       1-core `uvmbench all` wall time exceeds 2x.
#
# The cold-latency benchmarks (BenchmarkColdCellMegaUVM,
# BenchmarkServeColdFig7) run twice: pinned to one core ("/1core") as
# the serial reference, and with every core available ("/multicore"),
# which is where the intra-cell iteration fan-out shows up — a lone cold
# cell spreads its iterations across the executor pool instead of
# leaving width-1 workers idle. On a single-core machine the two rows
# are expected to match.
#
# BENCHTIME overrides the per-benchmark iteration count (default 1x;
# simulation benchmarks are deterministic, so one iteration measures the
# workload, not noise).
set -eu

mode="${1:-write}"
baseline="${2:-BENCH_suite.json}"
benchtime="${BENCHTIME:-1x}"

cd "$(dirname "$0")/.."

# parse_bench reads `go test -bench` output on stdin and emits one JSON
# array element per benchmark, name-suffixed by $1 to keep the 1-core
# and multi-core rows distinct in the baseline.
parse_bench() {
    awk -v suffix="$1" '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
            ns = ""; allocs = ""
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op") ns = $(i-1)
                if ($i == "allocs/op") allocs = $(i-1)
            }
            if (ns == "") next
            if (out != "") out = out ","
            out = out sprintf("\n    {\"name\": \"%s%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, suffix, ns, allocs == "" ? 0 : allocs)
        }
        END { printf "%s", out }
    '
}

run_bench() {
    bin="$(mktemp -d)/uvmbench"
    go build -o "$bin" ./cmd/uvmbench
    start=$(date +%s.%N)
    GOMAXPROCS=1 "$bin" all > /dev/null
    end=$(date +%s.%N)
    wall=$(awk "BEGIN { printf \"%.3f\", $end - $start }")
    rm -f "$bin"

    rows_suite=$(go test -run '^$' -bench 'BenchmarkFigureSuite$' \
        -benchtime "$benchtime" -benchmem . | parse_bench "")
    rows_1core=$(GOMAXPROCS=1 go test -run '^$' \
        -bench 'BenchmarkColdCellMegaUVM$|BenchmarkServeColdFig7$' \
        -benchtime "$benchtime" -benchmem . | parse_bench "/1core")
    rows_multi=$(go test -run '^$' \
        -bench 'BenchmarkColdCellMegaUVM$|BenchmarkServeColdFig7$' \
        -benchtime "$benchtime" -benchmem . | parse_bench "/multicore")

    printf '{\n  "benchmarks": [%s,%s,%s\n  ],\n' \
        "$rows_suite" "$rows_1core" "$rows_multi"
    printf '  "uvmbench_all_1core_wall_seconds": %s\n}\n' "$wall"
}

case "$mode" in
write)
    run_bench > "$baseline"
    echo "wrote $baseline:"
    cat "$baseline"
    ;;
check)
    current="${baseline%.json}_current.json"
    run_bench > "$current"
    echo "current results ($current):"
    cat "$current"
    python3 - "$baseline" "$current" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

NS_LIMIT = 3.0
ALLOC_LIMIT = 2.0
WALL_LIMIT = 2.0
failed = False

base_b = {b["name"]: b for b in base["benchmarks"]}
cur_b = {b["name"]: b for b in cur["benchmarks"]}
for name, b in base_b.items():
    c = cur_b.get(name)
    if c is None:
        print(f"FAIL {name}: benchmark missing from current run")
        failed = True
        continue
    ratio = c["ns_per_op"] / b["ns_per_op"]
    status = "ok  "
    if ratio > NS_LIMIT:
        status, failed = "FAIL", True
    print(f"{status} {name}: {c['ns_per_op']:.0f} ns/op vs baseline "
          f"{b['ns_per_op']:.0f} ({ratio:.2f}x, limit {NS_LIMIT}x)")
    if b.get("allocs_per_op"):
        aratio = c["allocs_per_op"] / b["allocs_per_op"]
        status = "ok  "
        if aratio > ALLOC_LIMIT:
            status, failed = "FAIL", True
        print(f"{status} {name}: {c['allocs_per_op']} allocs/op vs baseline "
              f"{b['allocs_per_op']} ({aratio:.2f}x, limit {ALLOC_LIMIT}x)")

wratio = cur["uvmbench_all_1core_wall_seconds"] / base["uvmbench_all_1core_wall_seconds"]
status = "ok  "
if wratio > WALL_LIMIT:
    status, failed = "FAIL", True
print(f"{status} uvmbench all (1 core): {cur['uvmbench_all_1core_wall_seconds']:.2f}s vs baseline "
      f"{base['uvmbench_all_1core_wall_seconds']:.2f}s ({wratio:.2f}x, limit {WALL_LIMIT}x)")
sys.exit(1 if failed else 0)
EOF
    ;;
*)
    echo "usage: $0 write|check [baseline.json]" >&2
    exit 2
    ;;
esac
