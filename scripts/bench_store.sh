#!/usr/bin/env sh
# bench_store.sh — measure the persistent cell store: a timed cold vs
# warm 1-core `uvmbench all -cache-dir` pair plus the isolated warm-hit
# benchmark, and emit/check a machine-readable baseline.
#
#   scripts/bench_store.sh write [out.json]
#       Run the measurements and write the JSON baseline (default
#       BENCH_store.json). Commit the result to refresh the baseline.
#
#   scripts/bench_store.sh check [baseline.json]
#       Run the measurements, write BENCH_store_current.json next to the
#       baseline for artifact upload, and fail if BenchmarkStoreWarmHit's
#       ns/op exceeds 3x its committed baseline, the warm `uvmbench all
#       -cache-dir` wall time exceeds 2x its baseline, or the cold/warm
#       speedup drops below the absolute 5x floor the store promises.
#
# BENCHTIME overrides the per-benchmark iteration count (default 100x;
# one warm hit is microseconds, so a few iterations average out syscall
# jitter without measuring noise).
set -eu

mode="${1:-write}"
baseline="${2:-BENCH_store.json}"
benchtime="${BENCHTIME:-100x}"

cd "$(dirname "$0")/.."

run_bench() {
    bin="$(mktemp -d)/uvmbench"
    cache="$(mktemp -d)/cellstore"
    go build -o "$bin" ./cmd/uvmbench

    start=$(date +%s.%N)
    GOMAXPROCS=1 "$bin" -cache-dir "$cache" all > /dev/null 2> /dev/null
    end=$(date +%s.%N)
    cold=$(awk "BEGIN { printf \"%.3f\", $end - $start }")

    start=$(date +%s.%N)
    GOMAXPROCS=1 "$bin" -cache-dir "$cache" all > /dev/null 2> /dev/null
    end=$(date +%s.%N)
    warm=$(awk "BEGIN { printf \"%.3f\", $end - $start }")

    rm -rf "$(dirname "$bin")" "$(dirname "$cache")"

    go test -run '^$' -bench 'BenchmarkStoreWarmHit$' \
        -benchtime "$benchtime" -benchmem . |
        awk -v cold="$cold" -v warm="$warm" '
            /^Benchmark/ {
                name = $1
                sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
                ns = ""; allocs = ""
                for (i = 2; i <= NF; i++) {
                    if ($i == "ns/op") ns = $(i-1)
                    if ($i == "allocs/op") allocs = $(i-1)
                }
                if (ns == "") next
                if (out != "") out = out ","
                out = out sprintf("\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs == "" ? 0 : allocs)
            }
            END {
                printf "{\n  \"benchmarks\": [%s\n  ],\n", out
                printf "  \"uvmbench_all_cold_wall_seconds\": %s,\n", cold
                printf "  \"uvmbench_all_warm_wall_seconds\": %s,\n", warm
                printf "  \"warm_speedup\": %.1f\n}\n", cold / warm
            }
        '
}

case "$mode" in
write)
    run_bench > "$baseline"
    echo "wrote $baseline:"
    cat "$baseline"
    ;;
check)
    current="${baseline%.json}_current.json"
    run_bench > "$current"
    echo "current results ($current):"
    cat "$current"
    python3 - "$baseline" "$current" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

NS_LIMIT = 3.0
ALLOC_LIMIT = 2.0
WALL_LIMIT = 2.0
SPEEDUP_FLOOR = 5.0
failed = False

base_b = {b["name"]: b for b in base["benchmarks"]}
cur_b = {b["name"]: b for b in cur["benchmarks"]}
for name, b in base_b.items():
    c = cur_b.get(name)
    if c is None:
        print(f"FAIL {name}: benchmark missing from current run")
        failed = True
        continue
    ratio = c["ns_per_op"] / b["ns_per_op"]
    status = "ok  "
    if ratio > NS_LIMIT:
        status, failed = "FAIL", True
    print(f"{status} {name}: {c['ns_per_op']:.0f} ns/op vs baseline "
          f"{b['ns_per_op']:.0f} ({ratio:.2f}x, limit {NS_LIMIT}x)")
    if b.get("allocs_per_op"):
        aratio = c["allocs_per_op"] / b["allocs_per_op"]
        status = "ok  "
        if aratio > ALLOC_LIMIT:
            status, failed = "FAIL", True
        print(f"{status} {name}: {c['allocs_per_op']} allocs/op vs baseline "
              f"{b['allocs_per_op']} ({aratio:.2f}x, limit {ALLOC_LIMIT}x)")

wratio = cur["uvmbench_all_warm_wall_seconds"] / base["uvmbench_all_warm_wall_seconds"]
status = "ok  "
if wratio > WALL_LIMIT:
    status, failed = "FAIL", True
print(f"{status} warm uvmbench all -cache-dir (1 core): "
      f"{cur['uvmbench_all_warm_wall_seconds']:.2f}s vs baseline "
      f"{base['uvmbench_all_warm_wall_seconds']:.2f}s ({wratio:.2f}x, limit {WALL_LIMIT}x)")

speedup = cur["uvmbench_all_cold_wall_seconds"] / cur["uvmbench_all_warm_wall_seconds"]
status = "ok  "
if speedup < SPEEDUP_FLOOR:
    status, failed = "FAIL", True
print(f"{status} cold/warm speedup: {speedup:.1f}x "
      f"(cold {cur['uvmbench_all_cold_wall_seconds']:.2f}s, "
      f"warm {cur['uvmbench_all_warm_wall_seconds']:.2f}s, floor {SPEEDUP_FLOOR}x)")
sys.exit(1 if failed else 0)
EOF
    ;;
*)
    echo "usage: $0 write|check [baseline.json]" >&2
    exit 2
    ;;
esac
