#!/usr/bin/env sh
# bench_multigpu.sh — run the multi-GPU schedule-grid benchmark and
# emit/check a machine-readable baseline.
#
#   scripts/bench_multigpu.sh write [out.json]
#       Run the benchmark and write the JSON baseline (default
#       BENCH_multigpu.json). Commit the result to refresh the baseline.
#
#   scripts/bench_multigpu.sh check [baseline.json]
#       Run the benchmark, write BENCH_multigpu_current.json next to the
#       baseline for artifact upload, and fail if its ns/op exceeds 3x
#       the committed baseline — a smoke test that the shared-link
#       arbitration and the scheduler's event chains stay a handful of
#       DES events per job, not a per-byte loop.
#
# BENCHTIME overrides the per-benchmark iteration count (default 1x;
# simulation benchmarks are deterministic, so one iteration measures the
# workload, not noise).
set -eu

mode="${1:-write}"
baseline="${2:-BENCH_multigpu.json}"
benchtime="${BENCHTIME:-1x}"

cd "$(dirname "$0")/.."

run_bench() {
    go test -run '^$' -bench 'BenchmarkMultiGPU$' \
        -benchtime "$benchtime" -benchmem . |
        awk '
            /^Benchmark/ {
                name = $1
                sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
                ns = ""; allocs = ""
                for (i = 2; i <= NF; i++) {
                    if ($i == "ns/op") ns = $(i-1)
                    if ($i == "allocs/op") allocs = $(i-1)
                }
                if (ns == "") next
                if (out != "") out = out ","
                out = out sprintf("\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs == "" ? 0 : allocs)
            }
            END { printf "{\n  \"benchmarks\": [%s\n  ]\n}\n", out }
        '
}

case "$mode" in
write)
    run_bench > "$baseline"
    echo "wrote $baseline:"
    cat "$baseline"
    ;;
check)
    current="${baseline%.json}_current.json"
    run_bench > "$current"
    echo "current results ($current):"
    cat "$current"
    python3 - "$baseline" "$current" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    base = {b["name"]: b for b in json.load(f)["benchmarks"]}
with open(sys.argv[2]) as f:
    cur = {b["name"]: b for b in json.load(f)["benchmarks"]}

LIMIT = 3.0
failed = False
for name, b in base.items():
    c = cur.get(name)
    if c is None:
        print(f"FAIL {name}: benchmark missing from current run")
        failed = True
        continue
    ratio = c["ns_per_op"] / b["ns_per_op"]
    status = "ok  "
    if ratio > LIMIT:
        status, failed = "FAIL", True
    print(f"{status} {name}: {c['ns_per_op']:.0f} ns/op vs baseline "
          f"{b['ns_per_op']:.0f} ({ratio:.2f}x, limit {LIMIT}x)")
sys.exit(1 if failed else 0)
EOF
    ;;
*)
    echo "usage: $0 write|check [baseline.json]" >&2
    exit 2
    ;;
esac
