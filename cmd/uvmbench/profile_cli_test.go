package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uvmasim/internal/profile"
)

// TestProfilesSubcommand covers the inventory verbs: bare list, show and
// dump for a built-in machine.
func TestProfilesSubcommand(t *testing.T) {
	out := capture(t, "profiles")
	for _, name := range profile.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("profiles list lacks %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "(default)") {
		t.Errorf("profiles list should mark the default:\n%s", out)
	}

	show := capture(t, "profiles", "show", "v100-16g-pcie3")
	if !strings.Contains(show, "fingerprint") || !strings.Contains(show, "16 GB HBM") {
		t.Errorf("profiles show output incomplete:\n%s", show)
	}

	if err := run([]string{"profiles", "show"}); err == nil {
		t.Error("profiles show without a name should error")
	}
	if err := run([]string{"profiles", "frobnicate"}); err == nil {
		t.Error("unknown profiles verb should error")
	}
}

// TestProfileDumpRoundTrip is the end-to-end form of the dump/load
// regression: `profiles dump` piped back in as -profile must resolve to
// the identical machine (same fingerprint in `profiles show`).
func TestProfileDumpRoundTrip(t *testing.T) {
	dump := capture(t, "profiles", "dump", "grace-hopper-c2c")
	path := filepath.Join(t.TempDir(), "gh.json")
	if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}

	orig := capture(t, "profiles", "show", "grace-hopper-c2c")
	loaded := capture(t, "profiles", "show", path)
	if orig != loaded {
		t.Errorf("dumped profile shows differently after reload:\n%s\n---\n%s", orig, loaded)
	}
}

// TestProfileFlag runs an experiment under a non-default machine and
// checks the numbers actually move.
func TestProfileFlag(t *testing.T) {
	a100 := capture(t, "-i", "1", "table3") // profile-independent artifact works under default
	if a100 == "" {
		t.Fatal("empty table3 output")
	}
	def := capture(t, "-i", "1", "fig14")
	v100 := capture(t, "-profile", "v100-16g-pcie3", "-i", "1", "fig14")
	if def == v100 {
		t.Error("fig14 output identical on A100 and V100 profiles")
	}

	if err := run([]string{"-profile", "no-such-gpu", "-i", "1", "table3"}); err == nil {
		t.Error("unknown profile should error")
	}
}

// TestValueSuggestions pins the did-you-mean UX on every value-typed
// flag: misspelled workload, size, setup and profile names each name the
// nearest valid value.
func TestValueSuggestions(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-workload", "gem", "-i", "1", "trace"}, `did you mean "gemm"?`},
		{[]string{"-size", "larg", "-i", "1", "fig8"}, `did you mean "large"?`},
		{[]string{"-setup", "asink", "-i", "1", "trace"}, `did you mean "async"?`},
		{[]string{"-profile", "a100-40g-pci4", "-i", "1", "table3"}, `did you mean "a100-40g-pcie4"?`},
		{[]string{"-profiles", "v100-16g", "-i", "1", "compare-profiles"}, `did you mean "v100-16g-pcie3"?`},
	}
	for _, c := range cases {
		err := run(c.args)
		if err == nil {
			t.Errorf("%v: expected an error", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%v: error %q should suggest %s", c.args, err.Error(), c.want)
		}
	}
}

// TestCompareProfiles covers the cross-profile study end to end: default
// machine set, an explicit -profiles list, and par-invariance of the
// rendered table.
func TestCompareProfiles(t *testing.T) {
	out := capture(t, "-i", "1", "-size", "tiny", "-workload", "vector_seq", "compare-profiles")
	for _, name := range profile.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("compare-profiles output lacks %s:\n%s", name, out)
		}
	}

	pair := capture(t, "-i", "1", "-size", "tiny", "-workload", "vector_seq",
		"-profiles", "a100-40g-pcie4, grace-hopper-c2c", "compare-profiles")
	if !strings.Contains(pair, "grace-hopper-c2c") || strings.Contains(pair, "v100-16g-pcie3") {
		t.Errorf("-profiles list not honoured:\n%s", pair)
	}

	serial := capture(t, "-i", "2", "-size", "tiny", "-workload", "vector_seq", "-par", "1", "-json", "compare-profiles")
	parallel := capture(t, "-i", "2", "-size", "tiny", "-workload", "vector_seq", "-par", "8", "-json", "compare-profiles")
	if serial != parallel {
		t.Errorf("compare-profiles JSON differs between -par 1 and -par 8")
	}
}

// TestFeasibilityGating: on the 16 GB V100, fig4 drops the mega class
// with a note and fig6 (defined at mega) reports a skip instead of
// failing, so `all` completes on small-memory machines.
func TestFeasibilityGating(t *testing.T) {
	fig4 := capture(t, "-profile", "v100-16g-pcie3", "-i", "1", "fig4")
	if !strings.Contains(fig4, "size classes fit") {
		t.Errorf("fig4 on V100 should note dropped classes:\n%.200s", fig4)
	}
	if strings.Contains(fig4, "mega") {
		t.Errorf("fig4 on V100 should not include mega:\n%s", fig4)
	}

	fig6 := capture(t, "-profile", "v100-16g-pcie3", "-i", "1", "fig6")
	if !strings.Contains(fig6, "skipped") {
		t.Errorf("fig6 on V100 should be skipped:\n%s", fig6)
	}

	// The default machine fits every class: no note, no skip.
	fig6Def := capture(t, "-i", "1", "fig6")
	if strings.Contains(fig6Def, "skipped") {
		t.Error("fig6 on the default profile should run")
	}
}
