package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestPprofFlags runs a subcommand with -cpuprofile and -memprofile and
// checks both files come out in pprof's file format (a proto decode
// would drag in a dependency; the gzip header is the format's invariant
// first two bytes, and an empty or text file fails it).
func TestPprofFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if err := run([]string{"-i", "1", "-cpuprofile", cpu, "-memprofile", mem, "fig12"}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s: not a gzipped pprof profile (got % x...)", path, data[:min(8, len(data))])
		}
	}
}

// TestPprofFlagErrors pins the failure modes: an unwritable profile path
// fails up front, before any simulation runs — for the heap profile too,
// even though its snapshot is only taken after the run. The huge -i
// makes these hang if creation regresses to run-end; the deadline
// catches that.
func TestPprofFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"cpuprofile": {"-i", "100000", "-cpuprofile",
			filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof"), "fig12"},
		"memprofile": {"-i", "100000", "-memprofile",
			filepath.Join(t.TempDir(), "no", "such", "dir", "mem.prof"), "fig12"},
	}
	for name, args := range cases {
		done := make(chan error, 1)
		go func() { done <- run(args) }()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("unwritable -%s path should error", name)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("-%s: bad path did not fail before the run", name)
		}
	}
}
