package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPprofFlags runs a subcommand with -cpuprofile and -memprofile and
// checks both files come out in pprof's file format (a proto decode
// would drag in a dependency; the gzip header is the format's invariant
// first two bytes, and an empty or text file fails it).
func TestPprofFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if err := run([]string{"-i", "1", "-cpuprofile", cpu, "-memprofile", mem, "fig12"}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s: not a gzipped pprof profile (got % x...)", path, data[:min(8, len(data))])
		}
	}
}

// TestPprofFlagErrors pins the failure modes: an unwritable profile path
// fails up front, before any simulation runs.
func TestPprofFlagErrors(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof")
	if err := run([]string{"-i", "1", "-cpuprofile", bad, "fig12"}); err == nil {
		t.Error("unwritable -cpuprofile path should error")
	}
}
