// Command uvmbench regenerates the paper's tables and figures on the
// simulated CPU-GPU system. Each subcommand corresponds to one artifact
// of the evaluation:
//
//	uvmbench table3            input-size parameter table
//	uvmbench fig4              micro exec-time distributions across sizes
//	uvmbench fig5              std/mean across sizes
//	uvmbench fig6              per-run breakdowns at Mega (memcpy noise)
//	uvmbench fig7              micro multi-setup comparison (Large+Super)
//	uvmbench fig8              application multi-setup comparison (Super)
//	uvmbench fig9              instruction-mix counters (gemm/lud/yolov3)
//	uvmbench fig10             L1 miss-rate counters (gemm/lud/yolov3)
//	uvmbench fig11             block-count sensitivity sweep
//	uvmbench fig12             threads-per-block sensitivity sweep
//	uvmbench fig13             L1/shared partition sensitivity sweep
//	uvmbench fig14             inter-job pipeline model (§6)
//	uvmbench multigpu          fig14 headroom under multi-GPU contention
//	uvmbench micro|apps        §4.1 geomean summaries
//	uvmbench trace             record a Perfetto-loadable run timeline
//	uvmbench list              workload inventory
//	uvmbench profiles          hardware-profile inventory (list|show|dump)
//	uvmbench compare-profiles  one workload across hardware profiles
//	uvmbench merge             reassemble output from -shard artifacts
//	uvmbench serve             experiment HTTP service with /metrics
//	uvmbench all               everything above
//
// Flags (before the subcommand): -i iterations (default 30), -seed,
// -size (overrides the default class where applicable), -par executor
// workers (0 = all cores, 1 = serial; output is byte-identical at any
// setting), -itpar intra-cell iteration workers (0 = executor width,
// 1 = serial iterations; a cell's repetitions split across pooled
// contexts and merge in iteration order, so output stays byte-identical
// at any -par x -itpar combination), -json (emit figure data as a JSON
// document instead of the text table), -profile (hardware profile: a
// built-in name or a profile
// JSON file; every experiment runs on that machine), -profiles (the
// comma-separated machines compare-profiles sweeps), -setups (a
// comma-separated subset of registered setup names — e.g.
// standard,uvm,uvm_zerocopy — that every study iterates instead of the
// paper's default five; unknown names fail upfront with a nearest-name
// hint), -workload and -setup (select the traced/compared run; an empty
// -setup traces every study setup), -gpus, -topology and -policy (the
// multigpu grid: device-count list, interconnect shapes and placement
// policy; with the trace subcommand they select per-GPU schedule
// timelines instead), -out (directory for trace files),
// -cpuprofile and -memprofile
// (write pprof profiles covering the whole invocation), -cache-dir (the
// persistent cell store: hits skip simulation, misses are written back,
// so a warm rerun of any sweep costs file reads, not simulation), and
// -shard i/n (run the i-th of n deterministic partitions of the cell
// grid and print a mergeable shard artifact instead of normal output;
// `uvmbench merge a.json b.json ...` over a complete partition prints
// output byte-identical to the unsharded run).
//
// The serve subcommand runs the experiment service (internal/serve):
// POST /v1/experiments computes figures (responses byte-identical to
// -json output for the same spec), /metrics exposes the Prometheus
// registry, /healthz reports readiness, /debug/pprof/ serves profiles.
// It honors -addr, -max-inflight (a worker-slot budget: each admitted
// request claims its executor width), -par, -itpar, -cache-dir and
// -profile (the default machine for specs that name none) and drains
// gracefully on SIGTERM.
//
// The trace subcommand writes one Chrome trace-event file per setup,
// named trace_<workload>_<setup>.json, loadable in Perfetto or
// chrome://tracing. Files are byte-identical across runs with the same
// seed and any -par value.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"uvmasim/internal/core"
	"uvmasim/internal/cuda"
	"uvmasim/internal/metrics"
	"uvmasim/internal/nearest"
	"uvmasim/internal/profile"
	"uvmasim/internal/serve"
	"uvmasim/internal/store"
	"uvmasim/internal/trace"
	"uvmasim/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "uvmbench:", err)
		os.Exit(1)
	}
}

// options carries the per-invocation settings dispatch needs beyond the
// Runner itself.
type options struct {
	out       io.Writer // artifact destination (io.Discard in -shard mode)
	sizeName  string    // raw -size value (recorded in shard specs)
	sizeOr    func(def workloads.Size) (workloads.Size, error)
	jobs      int
	json      bool
	workload  string
	setupName string
	gpus      string // -gpus device-count list for multigpu ("" = default grid)
	topology  string // -topology interconnect list for multigpu
	policy    string // -policy placement for multigpu
	setups    []cuda.Setup // resolved -setups study list (nil = paper five)
	outDir    string
	profiles  string            // -profiles list for compare-profiles
	fixed     []profile.Profile // pre-resolved compare-profiles set (merge replay)
	rest      []string          // arguments after the subcommand (profiles show/dump)
	// reg is the invocation's metrics registry (nil in merge replay);
	// traceTotals accumulates the trace subcommand's counter-registry
	// totals. Both feed the cache-summary JSON doc.
	reg         *metrics.Registry
	traceTotals map[string]float64
}

// emit prints either the text rendering or the JSON document, depending
// on the -json flag.
func (o *options) emit(text func() string, doc core.FigureDoc) error {
	if !o.json {
		fmt.Fprint(o.out, text())
		return nil
	}
	s, err := core.RenderJSON(doc)
	if err != nil {
		return err
	}
	fmt.Fprint(o.out, s)
	return nil
}

// commandNames lists every subcommand, for upfront validation (a typo in
// `fig4,nope` must fail before fig4 spends seconds simulating).
var commandNames = []string{
	"list", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13", "fig14", "micro", "apps", "oversub", "multigpu",
	"trace", "profiles", "compare-profiles", "merge", "serve", "all",
}

func knownCommand(cmd string) bool {
	for _, c := range commandNames {
		if c == cmd {
			return true
		}
	}
	return false
}

func containsCmd(cmds []string, want string) bool {
	for _, c := range cmds {
		if c == want {
			return true
		}
	}
	return false
}

// shardable reports whether a subcommand's cells can be partitioned.
// Inventory listings and trace (whose artifact is a timeline, not cells)
// cannot; merge is the consumer side of sharding.
func shardable(cmd string) bool {
	switch cmd {
	case "trace", "list", "profiles", "merge", "serve":
		return false
	}
	return true
}

func run(args []string) error {
	fs := flag.NewFlagSet("uvmbench", flag.ContinueOnError)
	// The flag package prints its own error + full flag dump before
	// returning it, and main prints the error again — a duplicated,
	// noisy failure for a typo like `-iters`. Silence the package's
	// copy; parse errors are reported once by main, with a nearest-flag
	// suggestion (see flagError).
	fs.SetOutput(io.Discard)
	iters := fs.Int("i", core.DefaultIterations, "iterations per configuration")
	seed := fs.Int64("seed", 1, "base random seed")
	sizeName := fs.String("size", "", "override input-size class (tiny..mega)")
	jobs := fs.Int("jobs", 8, "batch size for the fig14 pipeline model and the multigpu grid")
	gpusCSV := fs.String("gpus", "", "multigpu: comma-separated device counts to sweep (empty = "+serve.DefaultGPUs+")")
	topology := fs.String("topology", "", "multigpu: comma-separated interconnects, pcie-switch and/or nvlink (empty = "+serve.DefaultTopology+")")
	policy := fs.String("policy", "", "multigpu: placement policy, first-fit, least-loaded or bandwidth-aware (empty = "+serve.DefaultPolicy+")")
	par := fs.Int("par", 0, "experiment executor workers (0 = all cores, 1 = serial); output is identical at any value")
	itpar := fs.Int("itpar", 0, "intra-cell iteration workers (0 = executor width, 1 = serial iterations); output is identical at any value")
	jsonOut := fs.Bool("json", false, "emit figure data as a JSON document instead of a text table")
	workload := fs.String("workload", "gemm", "workload for the trace and compare-profiles subcommands")
	setupName := fs.String("setup", "", "setup for the trace subcommand (empty = every study setup)")
	setupsCSV := fs.String("setups", "", "comma-separated registered setups every study iterates (empty = the paper's five)")
	outDir := fs.String("out", ".", "directory for trace output files")
	prof := fs.String("profile", profile.DefaultName, "hardware profile: a built-in name (see 'uvmbench profiles') or a profile JSON file")
	profs := fs.String("profiles", "", "comma-separated profiles for compare-profiles (empty = all built-ins)")
	cpuProf := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProf := fs.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	cacheDir := fs.String("cache-dir", "", "directory of the persistent cell store (created if missing); cell hits skip simulation, misses are written back")
	shard := fs.String("shard", "", "run one shard i/n of the cell grid and print a mergeable shard artifact instead of normal output")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address for the serve subcommand")
	maxInflight := fs.Int("max-inflight", 0, "serve: max concurrently admitted experiment requests (0 = one per core); excess requests get 429")
	usage := func(w io.Writer) {
		fmt.Fprintln(w, "usage: uvmbench [flags] <subcommand>[,<subcommand>...]")
		fmt.Fprintln(w, "       uvmbench [flags] merge <shard.json> ...")
		fmt.Fprintln(w, "       uvmbench [flags] serve")
		fmt.Fprintln(w, "subcommands: table3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 micro apps oversub multigpu trace list profiles compare-profiles merge serve all")
		fmt.Fprintln(w, "flags:")
		fs.SetOutput(w)
		fs.PrintDefaults()
		fs.SetOutput(io.Discard)
	}
	// Parse calls fs.Usage itself on every error; keep that a no-op so a
	// typo gets one diagnostic line, not a flag dump, and print the
	// usage explicitly on -h and on a missing subcommand.
	fs.Usage = func() {}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			usage(os.Stdout)
			return nil
		}
		return flagError(fs, err)
	}
	if fs.NArg() < 1 {
		usage(os.Stderr)
		return fmt.Errorf("missing subcommand (try: uvmbench all)")
	}
	if *par < 0 {
		return fmt.Errorf("-par must be >= 0, got %d", *par)
	}
	if *itpar < 0 {
		return fmt.Errorf("-itpar must be >= 0, got %d", *itpar)
	}

	// Validate everything cheap before the first simulation: subcommand
	// names, the shard spec, output paths, profile files, the cell-store
	// directory. A typo in any of them must fail in milliseconds, not
	// after a full sweep.
	cmds := strings.Split(fs.Arg(0), ",")
	for _, cmd := range cmds {
		if !knownCommand(cmd) {
			return fmt.Errorf("unknown subcommand %q%s", cmd, nearest.Hint(cmd, commandNames, 2))
		}
	}
	var studySetups []cuda.Setup
	if *setupsCSV != "" {
		var err error
		studySetups, err = cuda.ParseSetupList(*setupsCSV)
		if err != nil {
			return fmt.Errorf("-setups: %w", err)
		}
	}
	if *gpusCSV != "" || *topology != "" || *policy != "" || containsCmd(cmds, "multigpu") {
		if _, _, _, err := serve.ResolveMultiGPU(serve.FigureOptions{
			GPUs: *gpusCSV, Topology: *topology, Policy: *policy,
		}); err != nil {
			return err
		}
	}
	if containsCmd(cmds, "merge") {
		if len(cmds) != 1 {
			return fmt.Errorf("merge cannot be combined with other subcommands")
		}
		if *shard != "" {
			return fmt.Errorf("-shard does not apply to merge (it consumes shard artifacts)")
		}
		return runMerge(fs.Args()[1:], *par, *itpar, *jsonOut, *cacheDir)
	}
	if containsCmd(cmds, "serve") {
		if len(cmds) != 1 {
			return fmt.Errorf("serve cannot be combined with other subcommands")
		}
		if *shard != "" {
			return fmt.Errorf("-shard does not apply to serve")
		}
		return runServe(*addr, *maxInflight, *par, *itpar, *cacheDir, *prof)
	}
	shardIdx, shardCnt := 0, 0
	if *shard != "" {
		var err error
		shardIdx, shardCnt, err = parseShard(*shard)
		if err != nil {
			return err
		}
		for _, cmd := range cmds {
			if !shardable(cmd) {
				return fmt.Errorf("subcommand %s cannot run sharded", cmd)
			}
		}
	}
	if containsCmd(cmds, "trace") {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("-out: %w", err)
		}
	}

	p, err := profile.Resolve(*prof)
	if err != nil {
		return err
	}
	r := core.NewRunnerFor(p)
	r.Iterations = *iters
	r.BaseSeed = *seed
	r.Parallelism = *par
	r.IterParallelism = *itpar
	r.Setups = studySetups
	// Every invocation carries a metrics registry: batch runs expose the
	// same counter/histogram numbers in the cache-summary doc that a
	// serve process exports over /metrics.
	reg := metrics.New()
	r.InstrumentMetrics(reg)
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			return err
		}
		st.Instrument(reg)
		r.Store = st
	}

	o := &options{
		out:       os.Stdout,
		sizeName:  *sizeName,
		jobs:      *jobs,
		json:      *jsonOut,
		workload:  *workload,
		setupName: *setupName,
		gpus:      *gpusCSV,
		topology:  *topology,
		policy:    *policy,
		setups:    studySetups,
		outDir:    *outDir,
		profiles:  *profs,
		rest:      fs.Args()[1:],
		reg:       reg,
	}
	o.sizeOr = sizeOrFunc(*sizeName)

	var spec shardSpec
	if shardCnt > 0 {
		// Shard mode: normal output is suppressed (its cells are mostly
		// placeholders); the run's product is the captured-cell artifact.
		// The spec embeds everything merge needs to replay the run
		// hermetically, the full resolved profile included.
		r.ShardIndex, r.ShardCount = shardIdx, shardCnt
		r.Capture = store.NewMem()
		o.out = io.Discard
		o.json = false
		spec = shardSpec{
			Commands: cmds,
			Iters:    *iters,
			Seed:     *seed,
			Size:     *sizeName,
			Jobs:     *jobs,
			Workload: *workload,
			Setups:   setupNames(studySetups),
			Gpus:     *gpusCSV,
			Topology: *topology,
			Policy:   *policy,
			Profile:  p,
		}
		if containsCmd(cmds, "compare-profiles") {
			ps, err := serve.ResolveProfiles(*profs)
			if err != nil {
				return err
			}
			spec.Profiles = ps
		}
	}

	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}

	for _, cmd := range cmds {
		if err := dispatch(r, cmd, o); err != nil {
			stopProfiles()
			return err
		}
	}
	if shardCnt > 0 {
		docs := r.Capture.Docs()
		if err := emitShardArtifact(os.Stdout, shardArtifact{
			Schema:               store.SchemaVersion,
			Spec:                 spec,
			ShardIndex:           shardIdx,
			ShardCount:           shardCnt,
			EstimatedCellSeconds: estimateArtifactSeconds(spec, docs),
			ActualCellSeconds:    r.SimulatedSeconds(),
			Cells:                docs,
		}); err != nil {
			stopProfiles()
			return err
		}
	} else if containsCmd(cmds, "all") || r.Store != nil {
		// The two-tier traffic summary rides along with every
		// store-backed run (satellite: not just `all`): on stderr, so
		// stdout artifacts stay byte-comparable cold vs warm.
		printCacheSummary(r, o)
	}
	return stopProfiles()
}

// sizeOrFunc builds the -size resolution closure: an empty override
// keeps each subcommand's default class.
func sizeOrFunc(name string) func(def workloads.Size) (workloads.Size, error) {
	return func(def workloads.Size) (workloads.Size, error) {
		if name == "" {
			return def, nil
		}
		return workloads.ParseSize(name)
	}
}

// printCacheSummary reports both cache tiers after an `all` or any
// store-backed run — to stderr, so stdout artifacts stay
// byte-comparable between cold, warm, and merged runs whose cache
// traffic necessarily differs. In JSON mode the doc also carries the
// full metrics-registry snapshot and the trace subcommand's
// counter-registry totals, so batch runs expose the same numbers a
// serve process exports over /metrics.
func printCacheSummary(r *core.Runner, o *options) {
	if o.json {
		doc := core.FigureDoc{Figure: "cache_summary", Data: struct {
			MemoryHits    uint64             `json:"memory_hits"`
			MemoryMisses  uint64             `json:"memory_misses"`
			StoreHits     uint64             `json:"store_hits"`
			StoreMisses   uint64             `json:"store_misses"`
			TraceCounters map[string]float64 `json:"trace_counters,omitempty"`
			Metrics       []metrics.Snapshot `json:"metrics,omitempty"`
		}{r.CacheHits(), r.CacheMisses(), r.StoreHits(), r.StoreMisses(),
			o.traceTotals, o.reg.Snapshot()}}
		if s, err := core.RenderJSON(doc); err == nil {
			fmt.Fprint(os.Stderr, s)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "cache: %d memory hits, %d memory misses; store: %d hits, %d misses\n",
		r.CacheHits(), r.CacheMisses(), r.StoreHits(), r.StoreMisses())
}

// startProfiles begins CPU profiling and/or arms a heap snapshot,
// covering every subcommand of the invocation. Both files are created
// up front, so a mistyped path fails before any simulation runs — the
// heap snapshot itself is still taken at stop time, after the run. The
// returned stop function finishes both files; it is also called
// (ignoring its error) on the failure path so a partial CPU profile is
// still flushed.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile, memFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, err
		}
		memFile = f
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memFile != nil {
			// Collect garbage first so the snapshot shows live retained
			// memory (the arenas), not yet-unswept iteration garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				memFile.Close()
				return err
			}
			return memFile.Close()
		}
		return nil
	}, nil
}

// flagError rewrites a flag.Parse error for single-line reporting. For
// an unknown flag it appends the nearest registered flag: a registered
// name that prefixes the typo wins (so `-iters` suggests `-i`, the
// iterations flag), otherwise the smallest edit distance within 2.
func flagError(fs *flag.FlagSet, err error) error {
	const unknown = "flag provided but not defined: -"
	msg := err.Error()
	if !strings.HasPrefix(msg, unknown) {
		return err
	}
	name := strings.TrimPrefix(msg, unknown)
	best, bestDist := "", 3
	fs.VisitAll(func(f *flag.Flag) {
		if strings.HasPrefix(name, f.Name) {
			if bestDist > 0 || len(f.Name) > len(best) {
				best, bestDist = f.Name, 0
			}
			return
		}
		if d := nearest.Distance(name, f.Name); d < bestDist {
			best, bestDist = f.Name, d
		}
	})
	if best != "" {
		return fmt.Errorf("unknown flag -%s (did you mean -%s?)", name, best)
	}
	return fmt.Errorf("unknown flag -%s (run 'uvmbench -h' for the flag list)", name)
}

func dispatch(r *core.Runner, cmd string, o *options) error {
	switch cmd {
	case "list":
		fmt.Fprintln(o.out, "microbenchmarks:")
		for _, w := range workloads.Micro() {
			fmt.Fprintf(o.out, "  %-12s %s\n", w.Name(), w.Domain())
		}
		fmt.Fprintln(o.out, "applications:")
		for _, w := range workloads.Apps() {
			fmt.Fprintf(o.out, "  %-12s %s\n", w.Name(), w.Domain())
		}
		if extras := workloads.Extras(); len(extras) > 0 {
			fmt.Fprintln(o.out, "extras (outside the Table 2 grids, use -workload):")
			for _, w := range extras {
				fmt.Fprintf(o.out, "  %-12s %s\n", w.Name(), w.Domain())
			}
		}
		return nil

	case "profiles":
		return runProfiles(o)

	case "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "micro", "apps", "oversub",
		"multigpu", "compare-profiles":
		// The figure dispatch lives in internal/serve and is shared with
		// the HTTP service, which is what keeps POST /v1/experiments
		// responses byte-identical to -json output: both sides render the
		// same documents from the same code.
		text, doc, err := serve.Figure(r, cmd, serve.FigureOptions{
			Size:        o.sizeName,
			Jobs:        o.jobs,
			Workload:    o.workload,
			ProfilesCSV: o.profiles,
			Profiles:    o.fixed,
			GPUs:        o.gpus,
			Topology:    o.topology,
			Policy:      o.policy,
		})
		if err != nil {
			return err
		}
		return o.emit(text, doc)

	case "trace":
		return runTrace(r, o)

	case "all":
		for _, sub := range []string{"table3", "fig4", "fig5", "fig6", "fig7", "fig8",
			"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "oversub", "multigpu"} {
			if !o.json {
				fmt.Fprintf(o.out, "==== %s ====\n", sub)
			}
			if err := dispatch(r, sub, o); err != nil {
				return err
			}
			if !o.json {
				fmt.Fprintln(o.out)
			}
		}
		return nil
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// runMultiGPUTrace writes per-GPU schedule timelines for the multigpu
// grid: one Chrome trace-event file per (topology, device count,
// schedule), each with host-alloc/transfer/kernel rows per GPU. It is
// selected by passing any of -gpus/-topology/-policy to the trace
// subcommand, and replays the same deterministic schedules the multigpu
// figure measures (same workload, setup and default grid).
func runMultiGPUTrace(r *core.Runner, o *options) error {
	size, err := o.sizeOr(workloads.Super)
	if err != nil {
		return err
	}
	gpus, topos, policy, err := serve.ResolveMultiGPU(serve.FigureOptions{
		GPUs: o.gpus, Topology: o.topology, Policy: o.policy,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(o.outDir, 0o755); err != nil {
		return err
	}
	var infos []any
	for _, kind := range topos {
		for _, g := range gpus {
			for _, schedName := range []string{"serial", "pipelined"} {
				st, err := r.MultiGPUTrace("vector_seq", cuda.UVMPrefetchAsync, size,
					o.jobs, kind, g, policy, schedName == "pipelined")
				if err != nil {
					return err
				}
				path := filepath.Join(o.outDir,
					fmt.Sprintf("trace_multigpu_%s_%d_%s.json", kind, g, schedName))
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := st.WriteChromeTrace(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				if o.json {
					infos = append(infos, struct {
						Topology   string  `json:"topology"`
						GPUs       int     `json:"gpus"`
						Schedule   string  `json:"schedule"`
						Path       string  `json:"path"`
						Jobs       int     `json:"jobs"`
						MakespanNs float64 `json:"makespan_ns"`
					}{string(kind), g, schedName, path, len(st.Jobs), st.Makespan})
					continue
				}
				fmt.Fprintf(o.out, "wrote %s (%d jobs, makespan %12.2f ms)\n",
					path, len(st.Jobs), st.Makespan/1e6)
			}
		}
	}
	if o.json {
		s, err := core.RenderJSON(core.FigureDoc{Figure: "trace", Data: infos})
		if err != nil {
			return err
		}
		fmt.Fprint(o.out, s)
	}
	return nil
}

// runProfiles implements the profiles subcommand. With no argument (or
// `list`) it prints the built-in machine inventory; `show <name|file>`
// prints one profile's summary; `dump <name|file>` writes the complete
// JSON definition to stdout, which is itself a valid -profile file.
func runProfiles(o *options) error {
	if len(o.rest) == 0 || o.rest[0] == "list" {
		for _, p := range profile.Builtins() {
			def := ""
			if p.Name == profile.DefaultName {
				def = " (default)"
			}
			fmt.Fprintf(o.out, "%-18s %s  %s%s\n", p.Name, p.Fingerprint(), p.Description, def)
		}
		return nil
	}
	verb := o.rest[0]
	switch verb {
	case "show", "dump":
		if len(o.rest) != 2 {
			return fmt.Errorf("usage: uvmbench profiles %s <name|file.json>", verb)
		}
		p, err := profile.Resolve(o.rest[1])
		if err != nil {
			return err
		}
		if verb == "show" {
			fmt.Fprint(o.out, p.Describe())
			return nil
		}
		return profile.Save(o.out, p)
	}
	return fmt.Errorf("unknown profiles verb %q (expected list, show or dump)%s",
		verb, nearest.Hint(verb, []string{"list", "show", "dump"}, 2))
}

// runTrace records one timeline per requested setup and writes each as
// a Chrome trace-event file under -out. The runs fan out across the
// executor (each binds its own tracer), and the files are byte-identical
// for a given seed at any -par.
func runTrace(r *core.Runner, o *options) error {
	if o.gpus != "" || o.topology != "" || o.policy != "" {
		return runMultiGPUTrace(r, o)
	}
	size, err := o.sizeOr(workloads.Large)
	if err != nil {
		return err
	}
	setups := o.setups
	if len(setups) == 0 {
		setups = cuda.PaperSetups()
	}
	if o.setupName != "" {
		setup, err := cuda.ParseSetup(o.setupName)
		if err != nil {
			return err
		}
		setups = []cuda.Setup{setup}
	}
	if err := os.MkdirAll(o.outDir, 0o755); err != nil {
		return err
	}

	results, err := r.TraceSetups(o.workload, size, setups)
	if err != nil {
		return err
	}

	infos := make([]any, 0, len(results))
	for _, res := range results {
		path := filepath.Join(o.outDir, fmt.Sprintf("trace_%s_%s.json", res.Workload, res.Setup))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := res.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		m := res.Tracer.Metrics()
		// Fold this run's counter registry into the invocation totals the
		// cache-summary doc reports (satellite: batch runs expose the
		// same numbers /metrics serves).
		if len(m.Counters) > 0 {
			if o.traceTotals == nil {
				o.traceTotals = make(map[string]float64, len(m.Counters))
			}
			for name, v := range m.Counters {
				o.traceTotals[name] += v
			}
		}
		if o.json {
			busy := make(map[string]float64, trace.NumTracks)
			for t := 0; t < trace.NumTracks; t++ {
				tk := trace.Track(t)
				if b := m.Busy(tk); b > 0 {
					busy[tk.String()] = b
				}
			}
			infos = append(infos, struct {
				Workload string             `json:"workload"`
				Setup    cuda.Setup         `json:"setup"`
				Size     workloads.Size     `json:"size"`
				Path     string             `json:"path"`
				Events   int                `json:"events"`
				BusyNs   map[string]float64 `json:"busy_ns_by_track"`
			}{res.Workload, res.Setup, res.Size, path, res.Tracer.Len(), busy})
			continue
		}
		fmt.Fprintf(o.out, "wrote %s (%d events)\n", path, res.Tracer.Len())
		for t := 0; t < trace.NumTracks; t++ {
			tk := trace.Track(t)
			tm := m.Tracks[t]
			if tm.Spans == 0 && tm.Instants == 0 {
				continue
			}
			fmt.Fprintf(o.out, "  %-16s busy %12.2f ms  spans %5d  instants %5d\n",
				tk, tm.Busy/1e6, tm.Spans, tm.Instants)
		}
	}
	if o.json {
		s, err := core.RenderJSON(core.FigureDoc{Figure: "trace", Data: infos})
		if err != nil {
			return err
		}
		fmt.Fprint(o.out, s)
	}
	return nil
}
