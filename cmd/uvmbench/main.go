// Command uvmbench regenerates the paper's tables and figures on the
// simulated CPU-GPU system. Each subcommand corresponds to one artifact
// of the evaluation:
//
//	uvmbench table3            input-size parameter table
//	uvmbench fig4              micro exec-time distributions across sizes
//	uvmbench fig5              std/mean across sizes
//	uvmbench fig6              per-run breakdowns at Mega (memcpy noise)
//	uvmbench fig7              micro five-setup comparison (Large+Super)
//	uvmbench fig8              application five-setup comparison (Super)
//	uvmbench fig9              instruction-mix counters (gemm/lud/yolov3)
//	uvmbench fig10             L1 miss-rate counters (gemm/lud/yolov3)
//	uvmbench fig11             block-count sensitivity sweep
//	uvmbench fig12             threads-per-block sensitivity sweep
//	uvmbench fig13             L1/shared partition sensitivity sweep
//	uvmbench fig14             inter-job pipeline model (§6)
//	uvmbench micro|apps        §4.1 geomean summaries
//	uvmbench list              workload inventory
//	uvmbench all               everything above
//
// Flags: -i iterations (default 30), -seed, -size (overrides the default
// class where applicable), -par executor workers (0 = all cores, 1 =
// serial; the rendered output is byte-identical at any setting).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uvmasim/internal/core"
	"uvmasim/internal/cuda"
	"uvmasim/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "uvmbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("uvmbench", flag.ContinueOnError)
	iters := fs.Int("i", core.DefaultIterations, "iterations per configuration")
	seed := fs.Int64("seed", 1, "base random seed")
	sizeName := fs.String("size", "", "override input-size class (tiny..mega)")
	jobs := fs.Int("jobs", 8, "batch size for the fig14 pipeline model")
	par := fs.Int("par", 0, "experiment executor workers (0 = all cores, 1 = serial); output is identical at any value")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("missing subcommand (try: uvmbench all)")
	}
	if *par < 0 {
		return fmt.Errorf("-par must be >= 0, got %d", *par)
	}

	r := core.NewRunner()
	r.Iterations = *iters
	r.BaseSeed = *seed
	r.Parallelism = *par

	sizeOr := func(def workloads.Size) (workloads.Size, error) {
		if *sizeName == "" {
			return def, nil
		}
		return workloads.ParseSize(*sizeName)
	}

	cmds := strings.Split(fs.Arg(0), ",")
	for _, cmd := range cmds {
		if err := dispatch(r, cmd, sizeOr, *jobs); err != nil {
			return err
		}
	}
	return nil
}

func dispatch(r *core.Runner, cmd string, sizeOr func(workloads.Size) (workloads.Size, error), jobs int) error {
	switch cmd {
	case "list":
		fmt.Println("microbenchmarks:")
		for _, w := range workloads.Micro() {
			fmt.Printf("  %-12s %s\n", w.Name(), w.Domain())
		}
		fmt.Println("applications:")
		for _, w := range workloads.Apps() {
			fmt.Printf("  %-12s %s\n", w.Name(), w.Domain())
		}
		return nil

	case "table3":
		fmt.Print(core.RenderTable3())
		return nil

	case "fig4", "fig5":
		sizes := workloads.AllSizes
		study, err := r.Distributions(workloads.Micro(), sizes)
		if err != nil {
			return err
		}
		if cmd == "fig4" {
			fmt.Print(study.RenderFig4())
		} else {
			fmt.Print(study.RenderFig5())
		}
		return nil

	case "fig6":
		f, err := r.Fig6()
		if err != nil {
			return err
		}
		fmt.Print(f.Render())
		return nil

	case "fig7":
		for _, size := range []workloads.Size{workloads.Large, workloads.Super} {
			study, err := r.BreakdownComparison(workloads.Micro(), size)
			if err != nil {
				return err
			}
			fmt.Print(study.Render("Figure 7"))
			fmt.Println()
		}
		return nil

	case "fig8":
		size, err := sizeOr(workloads.Super)
		if err != nil {
			return err
		}
		study, err := r.BreakdownComparison(workloads.Apps(), size)
		if err != nil {
			return err
		}
		fmt.Print(study.Render("Figure 8"))
		return nil

	case "fig9", "fig10":
		size, err := sizeOr(workloads.Super)
		if err != nil {
			return err
		}
		study, err := r.CounterComparison([]string{"gemm", "lud", "yolov3"}, size)
		if err != nil {
			return err
		}
		if cmd == "fig9" {
			fmt.Print(study.RenderFig9())
		} else {
			fmt.Print(study.RenderFig10())
		}
		return nil

	case "fig11":
		size, err := sizeOr(workloads.Large)
		if err != nil {
			return err
		}
		sw, err := r.SweepBlocks(size, []int{4096, 2048, 1024, 512, 256, 128, 64, 32, 16})
		if err != nil {
			return err
		}
		fmt.Print(sw.Render("Figure 11"))
		return nil

	case "fig12":
		size, err := sizeOr(workloads.Large)
		if err != nil {
			return err
		}
		sw, err := r.SweepThreads(size, []int{1024, 512, 256, 128, 64, 32})
		if err != nil {
			return err
		}
		fmt.Print(sw.Render("Figure 12"))
		return nil

	case "fig13":
		size, err := sizeOr(workloads.Large)
		if err != nil {
			return err
		}
		sw, err := r.SweepShared(size, []float64{2, 4, 8, 16, 32, 64, 128})
		if err != nil {
			return err
		}
		fmt.Print(sw.Render("Figure 13"))
		return nil

	case "fig14":
		size, err := sizeOr(workloads.Super)
		if err != nil {
			return err
		}
		res, err := r.MultiJob("vector_seq", cuda.UVMPrefetchAsync, size, jobs)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil

	case "micro":
		size, err := sizeOr(workloads.Super)
		if err != nil {
			return err
		}
		study, err := r.BreakdownComparison(workloads.Micro(), size)
		if err != nil {
			return err
		}
		fmt.Print(study.Render("Microbenchmarks (§4.1.1)"))
		return nil

	case "apps":
		size, err := sizeOr(workloads.Super)
		if err != nil {
			return err
		}
		study, err := r.BreakdownComparison(workloads.Apps(), size)
		if err != nil {
			return err
		}
		fmt.Print(study.Render("Real-world applications (§4.1.2)"))
		return nil

	case "oversub":
		// Extension experiment: UVM oversubscription (see §2.1's cited
		// related work). Two passes over footprints around capacity.
		study, err := r.Oversubscription(cuda.UVMPrefetch,
			[]float64{0.25, 0.5, 0.75, 0.9, 1.1, 1.3}, 2)
		if err != nil {
			return err
		}
		fmt.Print(study.Render())
		return nil

	case "all":
		for _, sub := range []string{"table3", "fig4", "fig5", "fig6", "fig7", "fig8",
			"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "oversub"} {
			fmt.Printf("==== %s ====\n", sub)
			if err := dispatch(r, sub, sizeOr, jobs); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}
