package main

import (
	"context"
	"log"
	"os"
	"os/signal"
	"syscall"

	"uvmasim/internal/core"
	"uvmasim/internal/metrics"
	"uvmasim/internal/profile"
	"uvmasim/internal/serve"
	"uvmasim/internal/store"
)

// runServe boots the experiment service and blocks until SIGTERM or
// SIGINT, then drains gracefully (readiness flips to 503, in-flight
// requests finish, the listener closes). One metrics registry spans the
// whole process: the serving plane, the cell cache and executor, and
// the persistent store all report into it, and /metrics exposes it.
func runServe(addr string, maxInflight, par, itpar int, cacheDir, profName string) error {
	p, err := profile.Resolve(profName)
	if err != nil {
		return err
	}
	reg := metrics.New()
	var st core.CellStore
	if cacheDir != "" {
		dir, err := store.Open(cacheDir)
		if err != nil {
			return err
		}
		dir.Instrument(reg)
		st = dir
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s := serve.New(serve.Config{
		Store:           st,
		StoreDir:        cacheDir,
		MaxInFlight:     maxInflight,
		Parallelism:     par,
		IterParallelism: itpar,
		Registry:        reg,
		Log:             log.New(os.Stderr, "", 0),
		DefaultProfile:  p,
	})
	return s.ListenAndServe(ctx, addr)
}
