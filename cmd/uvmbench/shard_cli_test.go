package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestShardMergeByteIdentity is the tentpole's property test: for every
// partition width n, sharding `all` into n artifacts and merging them
// reproduces the unsharded text and JSON output byte for byte — with
// shards produced at -par 4 and merges replayed at both -par 1 and 4.
func TestShardMergeByteIdentity(t *testing.T) {
	const iters = "2"
	wantText := capture(t, "-i", iters, "-par", "1", "all")
	wantJSON := capture(t, "-i", iters, "-par", "1", "-json", "all")
	if wantText == "" || wantJSON == "" {
		t.Fatal("unsharded reference output is empty")
	}

	for _, n := range []int{1, 2, 3, 5, 7} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			files := make([]string, n)
			for i := 1; i <= n; i++ {
				art := capture(t, "-i", iters, "-par", "4",
					"-shard", fmt.Sprintf("%d/%d", i, n), "all")
				files[i-1] = filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
				if err := os.WriteFile(files[i-1], []byte(art), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			mergeArgs := append([]string{"-par", "1", "merge"}, files...)
			if got := capture(t, mergeArgs...); got != wantText {
				t.Errorf("merged text diverges from unsharded output\nmerged:\n%.2000s\nwant:\n%.2000s", got, wantText)
			}
			mergeArgs = append([]string{"-par", "4", "merge"}, files...)
			if got := capture(t, mergeArgs...); got != wantText {
				t.Errorf("-par 4 merge diverges from unsharded output")
			}
			mergeArgs = append([]string{"-par", "4", "-json", "merge"}, files...)
			if got := capture(t, mergeArgs...); got != wantJSON {
				t.Errorf("merged JSON diverges from unsharded -json output")
			}
		})
	}
}

// TestShardArtifactDeterminism: a shard artifact is byte-identical at
// any executor parallelism (cells serialize sorted by key, not in
// completion order) — except the actual-seconds field, which records
// real wall time and is normalized to zero before comparing.
func TestShardArtifactDeterminism(t *testing.T) {
	stripActual := func(raw string) (string, shardArtifact) {
		t.Helper()
		var art shardArtifact
		if err := json.Unmarshal([]byte(raw), &art); err != nil {
			t.Fatalf("artifact is not valid JSON: %v", err)
		}
		art.ActualCellSeconds = 0
		b, err := json.Marshal(art)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), art
	}
	serial, art := stripActual(capture(t, "-i", "2", "-par", "1", "-shard", "1/2", "all"))
	wide, _ := stripActual(capture(t, "-i", "2", "-par", "8", "-itpar", "4", "-shard", "1/2", "all"))
	if serial != wide {
		t.Error("shard artifact differs between -par 1 and -par 8 -itpar 4")
	}
	if art.ShardIndex != 1 || art.ShardCount != 2 {
		t.Errorf("artifact labeled %d/%d, want 1/2", art.ShardIndex, art.ShardCount)
	}
	if len(art.Cells) == 0 {
		t.Error("shard 1/2 of `all` captured no cells")
	}
	if art.EstimatedCellSeconds <= 0 {
		t.Errorf("estimated cell seconds = %g, want > 0", art.EstimatedCellSeconds)
	}
}

// TestShardCostEstimatesConsistent: the per-shard static cost estimates
// cover the whole cell grid — for any partition width, the shard
// estimates sum to the 1-shard total (each cell is estimated by a pure
// function of its key, and the partition is a disjoint cover).
func TestShardCostEstimatesConsistent(t *testing.T) {
	artifact := func(args ...string) shardArtifact {
		t.Helper()
		var art shardArtifact
		if err := json.Unmarshal([]byte(capture(t, args...)), &art); err != nil {
			t.Fatal(err)
		}
		return art
	}
	whole := artifact("-i", "2", "-shard", "1/1", "all")
	if whole.EstimatedCellSeconds <= 0 {
		t.Fatalf("whole-grid estimate = %g, want > 0", whole.EstimatedCellSeconds)
	}
	for _, n := range []int{2, 3} {
		var sum float64
		var cells int
		for i := 1; i <= n; i++ {
			art := artifact("-i", "2", "-shard", fmt.Sprintf("%d/%d", i, n), "all")
			sum += art.EstimatedCellSeconds
			cells += len(art.Cells)
		}
		if cells != len(whole.Cells) {
			t.Errorf("n=%d: shards cover %d cells, whole grid has %d", n, cells, len(whole.Cells))
		}
		if diff := math.Abs(sum-whole.EstimatedCellSeconds) / whole.EstimatedCellSeconds; diff > 1e-9 {
			t.Errorf("n=%d: shard estimates sum to %g, whole grid %g (rel diff %g)",
				n, sum, whole.EstimatedCellSeconds, diff)
		}
	}
}

// TestMergeValidation pins merge's failure modes: incomplete partitions,
// duplicate shards, mismatched specs, and garbage files all fail with a
// diagnostic instead of producing wrong output.
func TestMergeValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	s1 := write("s1.json", capture(t, "-i", "1", "-shard", "1/2", "fig12"))
	s2 := write("s2.json", capture(t, "-i", "1", "-shard", "2/2", "fig12"))
	other := write("other.json", capture(t, "-i", "2", "-shard", "1/2", "fig12"))
	garbage := write("garbage.json", "{ not json")

	cases := map[string][]string{
		"no files":             {"merge"},
		"incomplete partition": {"merge", s1},
		"duplicate shard":      {"merge", s1, s1},
		"mismatched specs":     {"merge", s1, other},
		"garbage artifact":     {"merge", s1, garbage},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: merge should fail", name)
		}
	}
	// Sanity: the intact pair does merge.
	if err := run([]string{"merge", s1, s2}); err != nil {
		t.Errorf("valid merge failed: %v", err)
	}
}

// TestShardFlagValidation covers the -shard flag's own error surface.
func TestShardFlagValidation(t *testing.T) {
	for _, bad := range []string{"x", "0/2", "3/2", "1/0", "1/2/3", "a/b"} {
		if err := run([]string{"-shard", bad, "fig12"}); err == nil {
			t.Errorf("-shard %s should be rejected", bad)
		}
	}
	for _, sub := range []string{"trace", "list", "profiles"} {
		if err := run([]string{"-shard", "1/2", sub}); err == nil ||
			!strings.Contains(err.Error(), "sharded") {
			t.Errorf("-shard %s should be rejected as unshardable", sub)
		}
	}
	if err := run([]string{"-shard", "1/2", "merge"}); err == nil {
		t.Error("-shard with merge should be rejected")
	}
}

// TestCacheDirWarmRerun: a second run against the same -cache-dir
// prints byte-identical output (exercising the CLI wiring of the
// persistent store; the ≥5x wall-time claim is gated by
// scripts/bench_store.sh).
func TestCacheDirWarmRerun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cellstore")
	cold := capture(t, "-i", "2", "-cache-dir", dir, "fig9,fig12,oversub")
	warm := capture(t, "-i", "2", "-cache-dir", dir, "fig9,fig12,oversub")
	if cold != warm {
		t.Error("warm -cache-dir rerun diverges from cold run")
	}
	entries, err := os.ReadDir(filepath.Join(dir, "v1"))
	if err != nil || len(entries) == 0 {
		t.Errorf("cache dir not populated (err=%v, entries=%d)", err, len(entries))
	}
}

// TestUpfrontValidation: every path-like flag and the subcommand list
// are validated before any simulation, so typos fail fast even when the
// requested run would take minutes.
func TestUpfrontValidation(t *testing.T) {
	// A huge iteration count makes these hang for minutes if validation
	// happens after the run; the deadline catches regressions.
	cases := map[string][]string{
		"bad cache-dir":        {"-i", "100000", "-cache-dir", "/dev/null/nope", "fig12"},
		"bad shard":            {"-i", "100000", "-shard", "9/3", "fig12"},
		"bad out for trace":    {"-i", "100000", "-out", "/dev/null/nope", "trace"},
		"unknown late command": {"-i", "100000", "fig12,bogus"},
	}
	for name, args := range cases {
		done := make(chan error, 1)
		go func() { done <- run(args) }()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("%s: expected an error", name)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: validation did not fail fast", name)
		}
	}
}
