package main

import (
	"bytes"
	"fmt"
	"testing"
)

// TestParItparMatrix is the fan-out determinism property test: every
// (-par, -itpar) combination prints byte-identical artifacts, for both
// text and JSON renderings. The matrix crosses serial, partial and
// over-wide widths (itpar 8 exceeds the 2-iteration cells, so blocks
// degenerate to single iterations).
func TestParItparMatrix(t *testing.T) {
	wantText := capture(t, "-i", "2", "-par", "1", "-itpar", "1", "fig7")
	wantJSON := capture(t, "-i", "2", "-par", "1", "-itpar", "1", "-json", "fig7")
	if wantText == "" || wantJSON == "" {
		t.Fatal("reference output is empty")
	}
	for _, par := range []int{1, 2, 4} {
		for _, itpar := range []int{1, 2, 8} {
			if par == 1 && itpar == 1 {
				continue
			}
			t.Run(fmt.Sprintf("par=%d_itpar=%d", par, itpar), func(t *testing.T) {
				pv, iv := fmt.Sprint(par), fmt.Sprint(itpar)
				if got := capture(t, "-i", "2", "-par", pv, "-itpar", iv, "fig7"); got != wantText {
					t.Errorf("text output diverges from -par 1 -itpar 1")
				}
				if got := capture(t, "-i", "2", "-par", pv, "-itpar", iv, "-json", "fig7"); got != wantJSON {
					t.Errorf("JSON output diverges from -par 1 -itpar 1")
				}
			})
		}
	}
	if err := run([]string{"-itpar", "-1", "table3"}); err == nil {
		t.Error("negative -itpar should error")
	}
}

// TestTraceItparIdentity: trace files are byte-identical under fan-out
// (the traced runner records one iteration per setup, so the fan-out is
// trivial there — but the flag must not perturb the timeline either).
func TestTraceItparIdentity(t *testing.T) {
	serialDir, fanDir := t.TempDir(), t.TempDir()
	capture(t, "-i", "1", "-workload", "gemm", "-setup", "uvm_prefetch",
		"-par", "1", "-itpar", "1", "-out", serialDir, "trace")
	capture(t, "-i", "1", "-workload", "gemm", "-setup", "uvm_prefetch",
		"-par", "4", "-itpar", "8", "-out", fanDir, "trace")
	serial := readTrace(t, serialDir, "gemm", "uvm_prefetch")
	fan := readTrace(t, fanDir, "gemm", "uvm_prefetch")
	if !bytes.Equal(serial, fan) {
		t.Error("trace file differs between serial and fan-out runs")
	}
}
