package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readTrace loads one written trace file and fails the test if it is
// missing or not valid JSON.
func readTrace(t *testing.T, dir, workload, setup string) []byte {
	t.Helper()
	path := filepath.Join(dir, "trace_"+workload+"_"+setup+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("%s is not valid JSON", path)
	}
	return data
}

// TestTraceSubcommand records one timeline and checks the written file
// is a well-formed Chrome trace plus that the stdout summary names it.
func TestTraceSubcommand(t *testing.T) {
	dir := t.TempDir()
	out := capture(t, "-i", "1", "-workload", "gemm", "-setup", "uvm_prefetch_async",
		"-out", dir, "trace")
	data := readTrace(t, dir, "gemm", "uvm_prefetch_async")

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)] = true
	}
	for _, ph := range []string{"M", "X"} {
		if !phases[ph] {
			t.Errorf("trace has no %q events", ph)
		}
	}
	if !strings.Contains(out, "trace_gemm_uvm_prefetch_async.json") {
		t.Errorf("summary does not name the written file:\n%s", out)
	}
	if !strings.Contains(out, "busy") {
		t.Errorf("summary has no per-track busy line:\n%s", out)
	}
}

// TestTraceAllSetups checks that an empty -setup writes one timeline
// per paper setup.
func TestTraceAllSetups(t *testing.T) {
	dir := t.TempDir()
	capture(t, "-i", "1", "-size", "small", "-workload", "vector_seq", "-out", dir, "trace")
	for _, setup := range []string{"standard", "async", "uvm", "uvm_prefetch", "uvm_prefetch_async"} {
		readTrace(t, dir, "vector_seq", setup)
	}
}

// TestTraceDeterministic is the ISSUE's acceptance check: the trace
// file must be byte-identical across runs with the same seed and any
// -par value.
func TestTraceDeterministic(t *testing.T) {
	files := make([][]byte, 0, 3)
	for _, par := range []string{"1", "0", "1"} {
		dir := t.TempDir()
		capture(t, "-i", "1", "-par", par, "-workload", "gemm",
			"-setup", "uvm_prefetch_async", "-out", dir, "trace")
		files = append(files, readTrace(t, dir, "gemm", "uvm_prefetch_async"))
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Error("trace differs between -par 1 and -par 0")
	}
	if !bytes.Equal(files[0], files[2]) {
		t.Error("trace differs between two runs with the same seed")
	}
}

// TestJSONFlag checks the -json figure mode: the output must be a valid
// JSON document with the figure envelope, byte-identical between the
// serial and parallel executor.
func TestJSONFlag(t *testing.T) {
	serial := capture(t, "-i", "2", "-par", "1", "-json", "fig6")
	parallel := capture(t, "-i", "2", "-par", "8", "-json", "fig6")
	if serial != parallel {
		t.Errorf("-json output diverges between -par 1 and -par 8\n%s\nvs\n%s", serial, parallel)
	}
	var doc struct {
		Figure string          `json:"figure"`
		Data   json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal([]byte(serial), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Figure != "fig6" {
		t.Errorf("figure = %q, want fig6", doc.Figure)
	}
	if len(doc.Data) == 0 {
		t.Error("empty data payload")
	}
}

// TestJSONFlagAcrossSubcommands smoke-checks that every -json-capable
// subcommand prints exactly one valid JSON document.
func TestJSONFlagAcrossSubcommands(t *testing.T) {
	for _, sub := range []string{"table3", "fig9", "fig12", "fig14"} {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			out := capture(t, "-i", "1", "-json", sub)
			var doc struct {
				Figure string `json:"figure"`
			}
			if err := json.Unmarshal([]byte(out), &doc); err != nil {
				t.Fatalf("%s -json output is not one JSON document: %v", sub, err)
			}
			if doc.Figure != sub {
				t.Errorf("figure = %q, want %q", doc.Figure, sub)
			}
		})
	}
}

// TestTraceJSONSummary checks the machine-readable trace summary mode.
func TestTraceJSONSummary(t *testing.T) {
	dir := t.TempDir()
	out := capture(t, "-i", "1", "-json", "-workload", "gemm",
		"-setup", "uvm", "-out", dir, "trace")
	var doc struct {
		Figure string `json:"figure"`
		Data   []struct {
			Workload string             `json:"workload"`
			Setup    string             `json:"setup"`
			Path     string             `json:"path"`
			Events   int                `json:"events"`
			Busy     map[string]float64 `json:"busy_ns_by_track"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Figure != "trace" || len(doc.Data) != 1 {
		t.Fatalf("unexpected summary: %s", out)
	}
	d := doc.Data[0]
	if d.Workload != "gemm" || d.Setup != "uvm" || d.Events == 0 || len(d.Busy) == 0 {
		t.Errorf("summary fields wrong: %+v", d)
	}
	readTrace(t, dir, "gemm", "uvm")
}
