package main

import "testing"

// TestDispatchSubcommands smoke-tests every subcommand end to end with a
// single iteration (output goes to stdout; correctness of the numbers is
// covered by internal/core's tests).
func TestDispatchSubcommands(t *testing.T) {
	subs := []string{"list", "table3", "fig6", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "micro"}
	for _, sub := range subs {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			if err := run([]string{"-i", "1", sub}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing subcommand should error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand should error")
	}
	if err := run([]string{"-size", "giga", "fig8"}); err == nil {
		t.Error("bad size should error")
	}
	if err := run([]string{"-i", "1", "-size", "small", "fig8"}); err != nil {
		t.Errorf("size override should work: %v", err)
	}
}

func TestCommaSeparatedCommands(t *testing.T) {
	if err := run([]string{"-i", "1", "table3,list"}); err != nil {
		t.Fatal(err)
	}
}
