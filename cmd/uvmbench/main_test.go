package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// TestDispatchSubcommands smoke-tests every subcommand end to end with a
// single iteration (output goes to stdout; correctness of the numbers is
// covered by internal/core's tests).
func TestDispatchSubcommands(t *testing.T) {
	subs := []string{"list", "table3", "fig6", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "micro"}
	for _, sub := range subs {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			if err := run([]string{"-i", "1", sub}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing subcommand should error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand should error")
	}
	if err := run([]string{"-size", "giga", "fig8"}); err == nil {
		t.Error("bad size should error")
	}
	if err := run([]string{"-i", "1", "-size", "small", "fig8"}); err != nil {
		t.Errorf("size override should work: %v", err)
	}
}

func TestCommaSeparatedCommands(t *testing.T) {
	if err := run([]string{"-i", "1", "table3,list"}); err != nil {
		t.Fatal(err)
	}
}

// capture runs the CLI with stdout redirected and returns what it
// printed. The pipe is drained concurrently, so outputs larger than the
// kernel pipe buffer (full -json dumps, shard artifacts) cannot
// deadlock the writer.
func capture(t *testing.T, args ...string) string {
	t.Helper()
	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	type readResult struct {
		out []byte
		err error
	}
	done := make(chan readResult, 1)
	go func() {
		out, err := io.ReadAll(rp)
		rp.Close()
		done <- readResult{out, err}
	}()
	os.Stdout = wp
	runErr := run(args)
	wp.Close()
	os.Stdout = old
	res := <-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	return string(res.out)
}

// TestParFlag covers the executor flag end to end: -par 1 (legacy serial
// path) and a wide pool must print byte-identical artifacts, and negative
// values are rejected.
func TestParFlag(t *testing.T) {
	serial := capture(t, "-i", "2", "-par", "1", "fig6,fig9,fig12")
	parallel := capture(t, "-i", "2", "-par", "8", "fig6,fig9,fig12")
	if serial != parallel {
		t.Errorf("-par 8 output diverges from -par 1\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if err := run([]string{"-par", "-1", "table3"}); err == nil {
		t.Error("negative -par should error")
	}
}

// TestUnknownFlagSuggestion pins the deduped flag diagnostics: a typo
// produces exactly one error mentioning the nearest registered flag, and
// no flag dump from the flag package itself.
func TestUnknownFlagSuggestion(t *testing.T) {
	cases := []struct{ typo, want string }{
		{"-iters", "did you mean -i?"},
		{"-pra", "did you mean -par?"},
		{"-sede", "did you mean -seed?"},
	}
	for _, c := range cases {
		err := run([]string{c.typo, "3", "oversub"})
		if err == nil {
			t.Fatalf("%s: expected an error", c.typo)
		}
		msg := err.Error()
		if !strings.Contains(msg, "unknown flag "+c.typo) || !strings.Contains(msg, c.want) {
			t.Errorf("%s: error %q should name the flag and suggest %q", c.typo, msg, c.want)
		}
		if n := strings.Count(msg, c.typo); n != 1 {
			t.Errorf("%s: flag named %d times in %q, want once", c.typo, n, msg)
		}
	}
	// A typo near nothing gets the -h pointer instead of a bad guess.
	if err := run([]string{"-zzzzzz", "list"}); err == nil ||
		!strings.Contains(err.Error(), "uvmbench -h") {
		t.Errorf("far-off typo should point at -h, got %v", err)
	}
}

// TestHelpFlag: -h prints the usage (once, to stdout) and succeeds.
func TestHelpFlag(t *testing.T) {
	out := capture(t, "-h")
	if n := strings.Count(out, "usage: uvmbench"); n != 1 {
		t.Errorf("usage printed %d times, want 1:\n%s", n, out)
	}
	if !strings.Contains(out, "subcommands:") || !strings.Contains(out, "-i int") {
		t.Errorf("usage should list subcommands and flags:\n%s", out)
	}
}
