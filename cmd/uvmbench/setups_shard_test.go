package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSetupsShardMerge: a -setups subset that includes the extension
// modes survives the shard→merge round trip byte for byte. The subset
// is embedded in the artifact by name, so the merge replays the same
// study list without any ordinal assumptions.
func TestSetupsShardMerge(t *testing.T) {
	const subset = "standard,uvm,uvm_zerocopy,uvm_smcopy"
	want := capture(t, "-i", "1", "-size", "tiny", "-setups", subset, "fig7")
	if !strings.Contains(want, "uvm_zerocopy") {
		t.Fatalf("unsharded subset output lacks the new modes:\n%s", want)
	}
	dir := t.TempDir()
	files := make([]string, 2)
	for i := 1; i <= 2; i++ {
		art := capture(t, "-i", "1", "-size", "tiny", "-setups", subset,
			"-shard", fmt.Sprintf("%d/2", i), "fig7")
		if !strings.Contains(art, `"uvm_zerocopy"`) {
			t.Fatalf("shard artifact %d does not carry the subset by name:\n%.500s", i, art)
		}
		files[i-1] = filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		if err := os.WriteFile(files[i-1], []byte(art), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := capture(t, append([]string{"merge"}, files...)...); got != want {
		t.Errorf("merged subset output diverges\nmerged:\n%s\nwant:\n%s", got, want)
	}
}

// TestSetupsStoreWarmHit: the persistent cell store keys cells by setup
// name, so a warm re-run over a subset with the extension modes is
// byte-identical and served from the store.
func TestSetupsStoreWarmHit(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-i", "1", "-size", "tiny", "-cache-dir", dir,
		"-setups", "uvm,uvm_zerocopy,uvm_smcopy", "fig7"}
	cold := capture(t, args...)
	warm := capture(t, args...)
	stripFooter := func(s string) string {
		// The cache-summary footer legitimately differs cold vs warm.
		if i := strings.Index(s, "cache:"); i >= 0 {
			return s[:i]
		}
		return s
	}
	if stripFooter(cold) != stripFooter(warm) {
		t.Errorf("warm store run diverges from cold run\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range entries {
		if e.IsDir() {
			sub, _ := os.ReadDir(filepath.Join(dir, e.Name()))
			if len(sub) > 0 {
				found = true
			}
		} else {
			found = true
		}
	}
	if !found {
		t.Error("store directory is empty after a subset run")
	}
}
