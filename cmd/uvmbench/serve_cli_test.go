package main

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"uvmasim/internal/serve"
)

// captureStderr runs the CLI with both stdout and stderr redirected and
// returns them separately; the footer satellite prints to stderr so
// stdout must be asserted unchanged.
func captureStderr(t *testing.T, args ...string) (stdout, stderr string) {
	t.Helper()
	read := func(f *os.File, c chan<- string) {
		out, _ := io.ReadAll(f)
		f.Close()
		c <- string(out)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	re, we, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	outc := make(chan string, 1)
	errc := make(chan string, 1)
	go read(ro, outc)
	go read(re, errc)
	os.Stdout, os.Stderr = wo, we
	runErr := run(args)
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	stdout, stderr = <-outc, <-errc
	if runErr != nil {
		t.Fatal(runErr)
	}
	return stdout, stderr
}

// TestServeResponseMatchesCLI is the end-to-end byte-identity check:
// the server's POST /v1/experiments response equals what the real CLI
// prints with -json for the same spec.
func TestServeResponseMatchesCLI(t *testing.T) {
	want := capture(t, "-i", "2", "-json", "fig6,fig9")
	s := serve.New(serve.Config{Log: log.New(io.Discard, "", 0)})
	req := httptest.NewRequest(http.MethodPost, "/v1/experiments",
		strings.NewReader(`{"figures":["fig6","fig9"],"iters":2}`))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("POST status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Body.String(); got != want {
		t.Errorf("server response diverges from CLI -json output:\n--- server\n%s--- cli\n%s", got, want)
	}
}

// TestServeArgErrors: serve is exclusive and unshardable.
func TestServeArgErrors(t *testing.T) {
	if err := run([]string{"serve,table3"}); err == nil ||
		!strings.Contains(err.Error(), "serve cannot be combined") {
		t.Errorf("serve,table3 should be rejected, got %v", err)
	}
	if err := run([]string{"-shard", "1/2", "serve"}); err == nil {
		t.Error("-shard serve should be rejected")
	}
}

// TestCacheFooterForStoreBackedRuns covers the footer satellite: every
// store-backed subcommand prints the two-tier summary to stderr (not
// just `all`), stdout stays byte-identical, and in JSON mode the doc
// carries the metrics snapshot.
func TestCacheFooterForStoreBackedRuns(t *testing.T) {
	dir := t.TempDir()
	plainOut, plainErr := captureStderr(t, "-i", "1", "fig6")
	if strings.Contains(plainErr, "cache:") {
		t.Errorf("storeless fig6 run should print no footer, got %q", plainErr)
	}
	storedOut, storedErr := captureStderr(t, "-i", "1", "-cache-dir", dir, "fig6")
	if !strings.Contains(storedErr, "cache:") || !strings.Contains(storedErr, "store:") {
		t.Errorf("store-backed fig6 run should print the footer, got %q", storedErr)
	}
	if storedOut != plainOut {
		t.Error("-cache-dir must not change stdout")
	}

	_, jsonErr := captureStderr(t, "-i", "2", "-json", "-cache-dir", dir, "fig6")
	for _, want := range []string{`"figure": "cache_summary"`, `"store_hits"`,
		`"metrics"`, `"uvmbench_store_hits_total"`} {
		if !strings.Contains(jsonErr, want) {
			t.Errorf("JSON footer missing %s:\n%s", want, jsonErr)
		}
	}
}

// TestTraceCountersInSummary: a traced store-backed run folds the trace
// counter-registry totals into the cache-summary doc.
func TestTraceCountersInSummary(t *testing.T) {
	dir := t.TempDir()
	out := t.TempDir()
	_, stderr := captureStderr(t, "-i", "1", "-json", "-cache-dir", dir,
		"-workload", "vector_seq", "-setup", "uvm_prefetch", "-out", out, "trace")
	if !strings.Contains(stderr, `"trace_counters"`) {
		t.Errorf("traced run's summary should carry trace_counters:\n%s", stderr)
	}
}

// TestServeUsageListed: the serve subcommand shows up in -h.
func TestServeUsageListed(t *testing.T) {
	out := capture(t, "-h")
	for _, want := range []string{"uvmbench [flags] serve", "-addr", "-max-inflight"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage missing %q", want)
		}
	}
}
