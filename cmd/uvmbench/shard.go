package main

// Shard artifacts are the fan-out half of the cell store: `-shard i/n`
// runs only the cells whose key hash lands in shard i, captures them as
// portable cell documents, and prints them with the full run spec;
// `merge` over a complete partition preloads the cells into an in-memory
// store and replays the run, which renders byte-identical output to the
// unsharded invocation (every cell is a store hit, and store payloads
// round-trip float64s exactly). The partition is keyed on content
// hashes, so it is stable across machines and -par settings, and shard
// artifacts are themselves deterministic: cells serialize sorted by
// canonical key.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"uvmasim/internal/core"
	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/store"
)

// shardSpec pins everything that determines the cell grid of a sharded
// run, so merge can replay it hermetically: the subcommand list, the
// runner settings, and the fully resolved hardware profile(s) — a merge
// machine does not need the producer's profile files.
type shardSpec struct {
	Commands []string `json:"commands"`
	Iters    int      `json:"iters"`
	Seed     int64    `json:"seed"`
	Size     string   `json:"size,omitempty"`
	Jobs     int      `json:"jobs"`
	Workload string   `json:"workload"`
	// Setups is the -setups study list by registered name; empty means
	// the paper's five (omitted from JSON, so artifacts from builds
	// without the flag still merge).
	Setups []string `json:"setups,omitempty"`
	// Gpus/Topology/Policy pin the multigpu grid flags; empty means the
	// figure defaults (omitted, so pre-multigpu artifacts still merge).
	Gpus     string            `json:"gpus,omitempty"`
	Topology string            `json:"topology,omitempty"`
	Policy   string            `json:"policy,omitempty"`
	Profile  profile.Profile   `json:"profile"`
	Profiles []profile.Profile `json:"profiles,omitempty"`
}

// setupNames maps a resolved study list back to its registered names
// for embedding in a shard spec (nil stays nil).
func setupNames(setups []cuda.Setup) []string {
	if len(setups) == 0 {
		return nil
	}
	names := make([]string, len(setups))
	for i, s := range setups {
		names[i] = s.String()
	}
	return names
}

// shardArtifact is the printed product of a -shard run. Besides the
// cells it carries the shard's cost accounting: the static cost-model
// estimate of its cells (deterministic, comparable across shards before
// any run) and the wall seconds this producer actually spent
// simulating (zero when every cell was a store hit). Merge reports the
// balance across the partition from these fields.
type shardArtifact struct {
	Schema               int             `json:"schema"`
	Spec                 shardSpec       `json:"spec"`
	ShardIndex           int             `json:"shard_index"`
	ShardCount           int             `json:"shard_count"`
	EstimatedCellSeconds float64         `json:"estimated_cell_seconds"`
	ActualCellSeconds    float64         `json:"actual_cell_seconds"`
	Cells                []store.CellDoc `json:"cells"`
}

// estimateArtifactSeconds sums the static cost-model estimate over a
// shard's captured cells. Each cell is estimated under the hardware
// profile it actually ran on (matched by fingerprint — compare-profiles
// shards mix machines), falling back to the spec's default profile for
// unknown fingerprints.
func estimateArtifactSeconds(spec shardSpec, docs []store.CellDoc) float64 {
	cfgByFP := map[string]cuda.SystemConfig{spec.Profile.Fingerprint(): spec.Profile.Config}
	for _, p := range spec.Profiles {
		cfgByFP[p.Fingerprint()] = p.Config
	}
	var total float64
	warned := make(map[string]bool)
	for _, doc := range docs {
		cfg, ok := cfgByFP[doc.Key.ProfileFP]
		if !ok {
			cfg = spec.Profile.Config
		}
		// An unknown setup/size name still yields a usable generic
		// estimate; flag each distinct identity once on stderr instead of
		// silently mispricing the shard (estimates steer scheduling, never
		// results).
		secs, err := core.EstimateCellSeconds(cfg, doc)
		if err != nil && !warned[err.Error()] {
			warned[err.Error()] = true
			fmt.Fprintf(os.Stderr, "uvmbench: shard estimate: %v (using generic estimate)\n", err)
		}
		total += secs
	}
	return total
}

// printShardBalance reports how evenly the partition spread its cost —
// on stderr, so merged stdout stays byte-identical to the unsharded
// run. Estimated seconds show what the static partitioner promised;
// actual seconds show what each producer really paid (zero for fully
// store-warm shards, which is why the two columns can disagree).
func printShardBalance(w io.Writer, files []string, arts []shardArtifact) {
	if len(arts) < 2 {
		return
	}
	var estSum, estMax, actSum, actMax float64
	for _, art := range arts {
		estSum += art.EstimatedCellSeconds
		actSum += art.ActualCellSeconds
		estMax = max(estMax, art.EstimatedCellSeconds)
		actMax = max(actMax, art.ActualCellSeconds)
	}
	n := float64(len(arts))
	fmt.Fprintf(w, "shard balance: %d shards, estimated max/mean %.2f, actual max/mean %.2f\n",
		len(arts), ratioOrZero(estMax, estSum/n), ratioOrZero(actMax, actSum/n))
	for i, art := range arts {
		fmt.Fprintf(w, "  shard %d/%d %s: %d cells, estimated %.3fs, actual %.3fs\n",
			art.ShardIndex, art.ShardCount, files[i], len(art.Cells),
			art.EstimatedCellSeconds, art.ActualCellSeconds)
	}
}

func ratioOrZero(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// parseShard parses the -shard flag's "i/n" form (1-based index).
func parseShard(s string) (idx, count int, err error) {
	i, n, ok := strings.Cut(s, "/")
	if ok {
		idx, err = strconv.Atoi(i)
		if err == nil {
			count, err = strconv.Atoi(n)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard must be i/n (e.g. 2/3), got %q", s)
	}
	if count < 1 || idx < 1 || idx > count {
		return 0, 0, fmt.Errorf("-shard index out of range: %d/%d needs 1 <= i <= n", idx, count)
	}
	return idx, count, nil
}

// emitShardArtifact prints the artifact as indented JSON. The encoding
// is deterministic (sorted cells, fixed field order), so artifacts from
// the same shard are byte-identical at any -par.
func emitShardArtifact(w io.Writer, art shardArtifact) error {
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// runMerge implements the merge subcommand: validate that the given
// artifacts form one complete partition of one run, preload their cells
// into an in-memory store, and replay the recorded subcommands against
// it. Cells all hit the store, so the merge simulates nothing — and if
// an artifact were somehow missing a cell, the replay would recompute
// it, yielding the same bytes (cells are pure functions of their keys).
func runMerge(files []string, par, itpar int, jsonOut bool, cacheDir string) error {
	if len(files) == 0 {
		return fmt.Errorf("usage: uvmbench merge <shard.json> ...")
	}
	arts := make([]shardArtifact, len(files))
	var specJSON []byte
	for i, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(b, &arts[i]); err != nil {
			return fmt.Errorf("%s: not a shard artifact: %w", path, err)
		}
		if arts[i].Schema != store.SchemaVersion {
			return fmt.Errorf("%s: artifact schema v%d, this build reads v%d",
				path, arts[i].Schema, store.SchemaVersion)
		}
		sj, err := json.Marshal(arts[i].Spec)
		if err != nil {
			return err
		}
		if i == 0 {
			specJSON = sj
		} else if !bytes.Equal(sj, specJSON) {
			return fmt.Errorf("%s: produced by a different run spec than %s", path, files[0])
		}
	}
	n := arts[0].ShardCount
	byIndex := make([]string, n+1)
	for i, art := range arts {
		if art.ShardCount != n {
			return fmt.Errorf("%s: shard count %d, expected %d", files[i], art.ShardCount, n)
		}
		if art.ShardIndex < 1 || art.ShardIndex > n {
			return fmt.Errorf("%s: shard index %d out of 1..%d", files[i], art.ShardIndex, n)
		}
		if byIndex[art.ShardIndex] != "" {
			return fmt.Errorf("%s and %s are both shard %d/%d",
				byIndex[art.ShardIndex], files[i], art.ShardIndex, n)
		}
		byIndex[art.ShardIndex] = files[i]
	}
	for i := 1; i <= n; i++ {
		if byIndex[i] == "" {
			return fmt.Errorf("incomplete partition: shard %d/%d missing", i, n)
		}
	}
	printShardBalance(os.Stderr, files, arts)

	spec := arts[0].Spec
	if err := spec.Profile.Validate(); err != nil {
		return fmt.Errorf("%s: embedded profile: %w", files[0], err)
	}
	for _, p := range spec.Profiles {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("%s: embedded profile: %w", files[0], err)
		}
	}

	mem := store.NewMem()
	for _, art := range arts {
		for _, doc := range art.Cells {
			if err := mem.Put(doc.Key, doc); err != nil {
				return err
			}
		}
	}

	r := core.NewRunnerFor(spec.Profile)
	r.Iterations = spec.Iters
	r.BaseSeed = spec.Seed
	r.Parallelism = par
	r.IterParallelism = itpar
	r.Store = mem
	if len(spec.Setups) > 0 {
		setups, err := cuda.ParseSetupList(strings.Join(spec.Setups, ","))
		if err != nil {
			return fmt.Errorf("%s: embedded setups: %w", files[0], err)
		}
		r.Setups = setups
	}
	if cacheDir != "" {
		// Also persist the merged cells, so the union of shard runs
		// leaves behind the same warm store a single-shot -cache-dir run
		// would have.
		dir, err := store.Open(cacheDir)
		if err != nil {
			return err
		}
		for _, doc := range mem.Docs() {
			if err := dir.Put(doc.Key, doc); err != nil {
				return err
			}
		}
		r.Store = store.NewTiered(mem, dir)
	}

	o := &options{
		out:      os.Stdout,
		json:     jsonOut,
		sizeName: spec.Size,
		jobs:     spec.Jobs,
		workload: spec.Workload,
		gpus:     spec.Gpus,
		topology: spec.Topology,
		policy:   spec.Policy,
		fixed:    spec.Profiles,
	}
	o.sizeOr = sizeOrFunc(spec.Size)
	for _, cmd := range spec.Commands {
		if err := dispatch(r, cmd, o); err != nil {
			return err
		}
	}
	// Merge is always store-backed (the shard cells), so the footer
	// prints for every replayed command set, like any -cache-dir run.
	printCacheSummary(r, o)
	return nil
}
