package main

import (
	"strings"
	"testing"
)

// TestSetupsFlag covers the study-subset flag end to end: a named subset
// narrows every column of a figure, the new transfer modes resolve by
// registered name, and unknown names are rejected upfront with a
// nearest-name hint.
func TestSetupsFlag(t *testing.T) {
	out := capture(t, "-i", "1", "-size", "tiny",
		"-setups", "standard,uvm,uvm_zerocopy,uvm_smcopy", "fig7")
	for _, want := range []string{"standard", "uvm_zerocopy", "uvm_smcopy"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 subset output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "uvm_prefetch_async") {
		t.Errorf("excluded setup leaked into the subset output:\n%s", out)
	}
}

// TestSetupsFlagErrors: unknown and duplicate names fail before any
// simulation, with a suggestion for near-misses.
func TestSetupsFlagErrors(t *testing.T) {
	err := run([]string{"-setups", "uvm_zercopy", "fig7"})
	if err == nil || !strings.Contains(err.Error(), "uvm_zerocopy") {
		t.Errorf("typo should suggest uvm_zerocopy, got %v", err)
	}
	err = run([]string{"-setups", "uvm,uvm", "fig7"})
	if err == nil || !strings.Contains(err.Error(), "listed twice") {
		t.Errorf("duplicate setups should be rejected, got %v", err)
	}
	err = run([]string{"-setups", ",", "fig7"})
	if err == nil || !strings.Contains(err.Error(), "names no setups") {
		t.Errorf("empty subset should be rejected, got %v", err)
	}
}

// TestSetupsFlagDefaultUnchanged: without -setups the figure runs the
// paper's five-setup presentation exactly — the extension modes stay out
// of default output (that is what keeps the goldens byte-identical).
func TestSetupsFlagDefaultUnchanged(t *testing.T) {
	out := capture(t, "-i", "1", "-size", "tiny", "fig7")
	if strings.Contains(out, "uvm_zerocopy") || strings.Contains(out, "uvm_smcopy") {
		t.Errorf("extension modes leaked into the default presentation:\n%s", out)
	}
	if !strings.Contains(out, "uvm_prefetch_async") {
		t.Errorf("default presentation incomplete:\n%s", out)
	}
}
