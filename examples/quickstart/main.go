// Quickstart: the canonical CUDA flow of the paper's Figure 2 —
// allocate, stage, launch, consume — executed under each of the five
// data-transfer setups, printing the execution-time breakdown the paper
// measures (data allocation, CPU-GPU transfer, GPU kernel).
//
// Run with:
//
//	go run ./examples/quickstart [-profile v100-16g-pcie3]
package main

import (
	"flag"
	"fmt"
	"log"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
	"uvmasim/internal/profile"
)

func main() {
	profName := flag.String("profile", profile.DefaultName, "hardware profile (built-in name or JSON file)")
	flag.Parse()
	p, err := profile.Resolve(*profName)
	if err != nil {
		log.Fatal(err)
	}

	const n = 64 << 20 // 256 MB of float32
	fmt.Printf("saxpy over %d elements on the simulated %s system\n", int64(n), p.Name)
	fmt.Printf("%-20s %10s %10s %10s %12s\n", "setup", "alloc ms", "memcpy ms", "kernel ms", "total ms")

	for _, setup := range cuda.PaperSetups() {
		b, err := runSaxpy(p.Config, setup, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %10.2f %10.2f %10.2f %12.2f\n",
			setup, b.Alloc/1e6, b.Memcpy/1e6, b.Kernel/1e6, b.Total/1e6)
	}
	fmt.Println("\nUVM removes the explicit memcpy; prefetch removes the fault stalls;")
	fmt.Println("async staging trims the kernel's staging overhead (Takeaway 2).")
}

func runSaxpy(cfg cuda.SystemConfig, setup cuda.Setup, n int64) (cuda.Breakdown, error) {
	ctx := cuda.NewContext(cfg, setup, 42)

	// cudaMalloc or cudaMallocManaged, depending on the setup — the
	// code is identical either way, as in the paper's Figure 2.
	x, err := ctx.Alloc("x", 4*n)
	if err != nil {
		return cuda.Breakdown{}, err
	}
	y, err := ctx.Alloc("y", 4*n)
	if err != nil {
		return cuda.Breakdown{}, err
	}

	// Explicit cudaMemcpy for standard/async; a no-op under UVM, where
	// the kernel's page faults (or the prefetcher) move the data.
	if err := ctx.Upload(x); err != nil {
		return cuda.Breakdown{}, err
	}
	if err := ctx.Upload(y); err != nil {
		return cuda.Breakdown{}, err
	}

	spec := kernels.Stream("saxpy", n, 2, 1, 2, 3, gpu.Sequential)
	if err := ctx.Launch(cuda.Launch{
		Spec:   spec,
		Reads:  []*cuda.Buffer{x, y},
		Writes: []*cuda.Buffer{y},
	}); err != nil {
		return cuda.Breakdown{}, err
	}
	ctx.Synchronize()

	// The host reads the result (a D2H copy, or dirty-page writeback
	// under UVM).
	if err := ctx.Consume(y); err != nil {
		return cuda.Breakdown{}, err
	}
	if err := ctx.Free(x); err != nil {
		return cuda.Breakdown{}, err
	}
	if err := ctx.Free(y); err != nil {
		return cuda.Breakdown{}, err
	}
	return ctx.Breakdown(), nil
}
