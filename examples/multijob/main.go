// Multijob: the paper's §6 proposal (Figure 14). After UVM and Async
// Memcpy remove most transfer stalls, data allocation becomes the
// bottleneck; overlapping job i+1's cudaMallocManaged with job i's GPU
// kernel recovers it. This example quantifies the improvement for a
// batch of jobs across the setups.
//
// Run with:
//
//	go run ./examples/multijob [-jobs 8] [-workload vector_seq] [-profile grace-hopper-c2c]
package main

import (
	"flag"
	"fmt"
	"log"

	"uvmasim/internal/core"
	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/workloads"
)

func main() {
	jobs := flag.Int("jobs", 8, "jobs in the batch")
	name := flag.String("workload", "vector_seq", "workload per job")
	profName := flag.String("profile", profile.DefaultName, "hardware profile (built-in name or JSON file)")
	flag.Parse()
	p, err := profile.Resolve(*profName)
	if err != nil {
		log.Fatal(err)
	}

	r := core.NewRunnerFor(p)
	r.Iterations = 5

	fmt.Printf("inter-job pipeline model: %d x %s (Super input) on %s\n\n", *jobs, *name, p.Name)
	fmt.Printf("%-20s %12s %12s %12s %12s\n",
		"setup", "serial ms", "pipelined ms", "improvement", "alloc share")
	for _, setup := range cuda.PaperSetups() {
		res, err := r.MultiJob(*name, setup, workloads.Super, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %12.1f %12.1f %11.1f%% %11.1f%%\n",
			setup, res.SerialTotal/1e6, res.PipelinedTotal/1e6,
			100*res.Improvement, 100*res.AllocShare)
	}

	fmt.Println("\nThe allocation share grows once UVM+prefetch+async shrink the")
	fmt.Println("transfer time (§6.1), so the pipelined schedule gains the most")
	fmt.Println("under uvm_prefetch_async — the paper's >30% headroom estimate.")

	res, err := r.MultiJob(*name, cuda.UVMPrefetchAsync, workloads.Super, *jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Render())
}
