// Multijob: the paper's §6 proposal (Figure 14). After UVM and Async
// Memcpy remove most transfer stalls, data allocation becomes the
// bottleneck; overlapping job i+1's cudaMallocManaged with job i's GPU
// kernel recovers it. This example quantifies the improvement for a
// batch of jobs across the setups — first with the closed-form §6
// projection, then by actually scheduling the batch on the concurrent-
// job scheduler (internal/sched) over a multi-GPU topology, where the
// transfer fabric contends and part of the projected gain erodes.
//
// Run with:
//
//	go run ./examples/multijob [-jobs 8] [-workload vector_seq] \
//	    [-gpus 1,2,4] [-topology pcie-switch,nvlink] [-policy least-loaded] \
//	    [-profile grace-hopper-c2c]
package main

import (
	"flag"
	"fmt"
	"log"

	"uvmasim/internal/core"
	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/serve"
	"uvmasim/internal/workloads"
)

func main() {
	jobs := flag.Int("jobs", 8, "jobs in the batch")
	name := flag.String("workload", "vector_seq", "workload per job")
	gpus := flag.String("gpus", serve.DefaultGPUs, "comma-separated GPU counts for the schedule grid")
	topology := flag.String("topology", serve.DefaultTopology, "comma-separated topologies (pcie-switch, nvlink)")
	policy := flag.String("policy", serve.DefaultPolicy, "placement policy (first-fit, least-loaded, bandwidth-aware)")
	profName := flag.String("profile", profile.DefaultName, "hardware profile (built-in name or JSON file)")
	flag.Parse()
	p, err := profile.Resolve(*profName)
	if err != nil {
		log.Fatal(err)
	}
	gpuCounts, topos, pol, err := serve.ResolveMultiGPU(serve.FigureOptions{
		GPUs: *gpus, Topology: *topology, Policy: *policy,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := core.NewRunnerFor(p)
	r.Iterations = 5

	fmt.Printf("inter-job pipeline model: %d x %s (Super input) on %s\n\n", *jobs, *name, p.Name)
	fmt.Printf("%-20s %12s %12s %12s %12s\n",
		"setup", "serial ms", "pipelined ms", "improvement", "alloc share")
	for _, setup := range cuda.PaperSetups() {
		res, err := r.MultiJob(*name, setup, workloads.Super, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %12.1f %12.1f %11.1f%% %11.1f%%\n",
			setup, res.SerialTotal/1e6, res.PipelinedTotal/1e6,
			100*res.Improvement, 100*res.AllocShare)
	}

	fmt.Println("\nThe allocation share grows once UVM+prefetch+async shrink the")
	fmt.Println("transfer time (§6.1), so the pipelined schedule gains the most")
	fmt.Println("under uvm_prefetch_async — the paper's >30% headroom estimate.")

	// The closed form above assumes each job owns one GPU and an
	// uncontended link. Now run the same batch through the event-driven
	// scheduler on a real topology: on one GPU with no contention the
	// measured makespans reproduce the projection exactly (the
	// scheduler's differential oracle), and on shared fabrics the
	// transfer stretch shows how much of the gain survives multi-tenancy.
	study, err := r.MultiGPU(*name, cuda.UVMPrefetchAsync, workloads.Super,
		*jobs, gpuCounts, topos, pol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(study.Render())
}
