// Tuner: the paper's §5 sensitivity studies in the form a CUDA
// programmer would actually use them — sweep the launch hyperparameters
// (threads per block, L1/shared-memory partition) for a workload under a
// chosen setup and report the best configuration, illustrating
// Takeaways 4 and 5.
//
// Run with:
//
//	go run ./examples/tuner [-setup uvm_prefetch_async] [-profile v100-16g-pcie3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/workloads"
)

func main() {
	setupName := flag.String("setup", "uvm_prefetch_async", "data-transfer setup to tune for")
	profName := flag.String("profile", profile.DefaultName, "hardware profile (built-in name or JSON file)")
	flag.Parse()
	setup, err := cuda.ParseSetup(*setupName)
	if err != nil {
		log.Fatal(err)
	}
	p, err := profile.Resolve(*profName)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(opt workloads.SensitivityOptions, seed int64) float64 {
		ctx := cuda.NewContext(p.Config, setup, seed)
		if err := workloads.RunVectorSeqSensitivity(ctx, workloads.Large, opt); err != nil {
			log.Fatal(err)
		}
		b := ctx.Breakdown()
		return b.Total - b.Overhead
	}

	fmt.Printf("tuning vector_seq (Large) under %s on %s\n\n", setup, p.Name)

	// Takeaway 4: block count barely matters, threads per block matter.
	fmt.Println("threads-per-block sweep (64 blocks):")
	bestThreads, bestT := 0, math.Inf(1)
	for _, tpb := range []int{32, 64, 128, 256, 512, 1024} {
		t := measure(workloads.SensitivityOptions{Blocks: 64, ThreadsPerBlock: tpb}, 7)
		marker := ""
		if t < bestT {
			bestT, bestThreads = t, tpb
			marker = "  <-"
		}
		fmt.Printf("  %4d threads: %8.2f ms%s\n", tpb, t/1e6, marker)
	}

	// Takeaway 5: the L1/shared partition has a sweet spot — enough
	// shared memory for double buffering, enough L1 for the UVM
	// prefetcher.
	fmt.Println("\nshared-memory-per-block sweep (108 blocks):")
	bestShared, bestS := 0.0, math.Inf(1)
	for _, kb := range []float64{2, 4, 8, 16, 32, 64, 128} {
		t := measure(workloads.SensitivityOptions{
			Blocks: 108, ThreadsPerBlock: 256, SharedPerBlockKB: kb,
		}, 7)
		marker := ""
		if t < bestS {
			bestS, bestShared = t, kb
			marker = "  <-"
		}
		fmt.Printf("  %4.0f KB: %8.2f ms%s\n", kb, t/1e6, marker)
	}

	fmt.Printf("\nrecommendation: %d threads/block, %.0f KB shared per block\n",
		bestThreads, bestShared)
}
