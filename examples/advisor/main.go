// Advisor: automates the paper's design guideline (§7). Given a
// workload, it profiles every registered data-transfer setup — the
// paper's five plus uvm_zerocopy and uvm_smcopy — with a few quick
// runs, reports the breakdowns, and recommends a configuration using the
// paper's decision rules:
//
//   - GB-scale memory-bound workloads: UVM with prefetch, plus Async
//     Memcpy when the kernel is staging-bound.
//   - Irregular access patterns: Async Memcpy over UVM prefetching.
//   - Compute-bound kernels: leave Async Memcpy off.
//
// Run with:
//
//	go run ./examples/advisor [-workload lud] [-size super] [-profile a100-80g-sxm]
package main

import (
	"flag"
	"fmt"
	"log"

	"uvmasim/internal/core"
	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/workloads"
)

func main() {
	name := flag.String("workload", "lud", "workload to advise on")
	sizeName := flag.String("size", "super", "input class")
	profName := flag.String("profile", profile.DefaultName, "hardware profile (built-in name or JSON file)")
	flag.Parse()
	p, err := profile.Resolve(*profName)
	if err != nil {
		log.Fatal(err)
	}

	w, err := workloads.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	size, err := workloads.ParseSize(*sizeName)
	if err != nil {
		log.Fatal(err)
	}

	r := core.NewRunnerFor(p)
	r.Iterations = 5
	r.Setups = cuda.Registered()
	study, err := r.BreakdownComparison([]workloads.Workload{w}, size)
	if err != nil {
		log.Fatal(err)
	}
	row := study.Rows[0]

	fmt.Printf("profile of %s (%s input):\n", w.Name(), size)
	fmt.Printf("%-20s %10s %10s %10s %10s\n", "setup", "kernel ms", "memcpy ms", "alloc ms", "roi ms")
	best, bestROI := cuda.Standard, 0.0
	for i, setup := range study.Setups {
		b := row.BySetup[i]
		roi := b.Total - b.Overhead
		fmt.Printf("%-20s %10.2f %10.2f %10.2f %10.2f\n",
			setup, b.Kernel/1e6, b.Memcpy/1e6, b.Alloc/1e6, roi/1e6)
		if i == 0 || roi < bestROI {
			best, bestROI = setup, roi
		}
	}

	std := row.BySetup[study.Baseline]
	roiStd := std.Total - std.Overhead
	transferBound := std.Memcpy > std.Kernel
	fmt.Println()
	fmt.Printf("transfer-bound: %v (memcpy %.0f%% of region of interest)\n",
		transferBound, 100*std.Memcpy/roiStd)
	fmt.Printf("recommendation: %s (%.1f%% faster than standard)\n",
		best, 100*(1-bestROI/roiStd))

	switch {
	case best.ZeroCopy():
		fmt.Println("rationale: sparse or single-pass access — migrating whole pages")
		fmt.Println("wastes bandwidth, so reading host memory in place over the link wins.")
	case best.SMCopy():
		fmt.Println("rationale: SM-driven staging hides the copy inside the kernel and")
		fmt.Println("skips the fault replays, beating both the copy engine and demand paging.")
	case best.AsyncCopy() && !best.Managed():
		fmt.Println("rationale: the kernel is staging-bound with an access pattern the")
		fmt.Println("UVM prefetcher cannot track — Async Memcpy alone wins (Takeaway 2).")
	case best.Managed() && best.AsyncCopy():
		fmt.Println("rationale: memory-bound with transfers worth pipelining end to end;")
		fmt.Println("use UVM with prefetch and stage tiles with memcpy_async.")
	case best.Managed():
		fmt.Println("rationale: regular, transfer-bound workload — UVM prefetch moves the")
		fmt.Println("data at streaming rate; the kernel gains nothing from async staging.")
	default:
		fmt.Println("rationale: neither feature pays for its overhead on this profile.")
	}
}
