module uvmasim

go 1.22
