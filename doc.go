// Package uvmasim is a pure-Go reproduction of "Performance Implications
// of Async Memcpy and UVM: A Tale of Two Data Transfer Modes" (Li et
// al., IISWC 2023).
//
// The repository models an A100-class CPU-GPU heterogeneous system —
// host DRAM, PCIe DMA, SM array with a unified L1/shared-memory
// partition, and the Unified Virtual Memory driver — and rebuilds the
// paper's 21-workload benchmark suite on a CUDA-shaped API so that the
// five data-transfer configurations (standard, async, uvm, uvm_prefetch,
// uvm_prefetch_async) can be compared the way the paper does.
//
// Entry points:
//
//   - cmd/uvmbench regenerates every table and figure.
//   - examples/ hold runnable programs against the public API.
//   - bench_test.go exposes one testing.B benchmark per table/figure.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison.
package uvmasim
