package uvm

import (
	"math"
	"math/rand"
	"testing"

	"uvmasim/internal/counters"
	"uvmasim/internal/pcie"
	"uvmasim/internal/sim"
)

func newTestManager(capacity int64) (*Manager, *pcie.Bus, *counters.UVMStats) {
	eng := sim.New()
	bus := pcie.New(eng, pcie.DefaultConfig())
	stats := &counters.UVMStats{}
	m := NewManager(DefaultConfig(), bus, capacity, stats)
	return m, bus, stats
}

func TestRegisterUnregister(t *testing.T) {
	m, _, _ := newTestManager(1 << 30)
	r, err := m.Register(5 << 20) // 5 MB = 3 chunks (2+2+1)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumChunks() != 3 {
		t.Errorf("NumChunks = %d, want 3", r.NumChunks())
	}
	if r.ResidentChunks() != 0 {
		t.Errorf("fresh region should have no resident chunks")
	}
	if m.chunkSize(r, 2) != 1<<20 {
		t.Errorf("tail chunk size = %d, want 1MB", m.chunkSize(r, 2))
	}
	if err := m.Unregister(r); err != nil {
		t.Fatal(err)
	}
	if err := m.Unregister(r); err == nil {
		t.Error("double unregister should fail")
	}
	if _, err := m.Register(0); err == nil {
		t.Error("zero-size region should fail")
	}
}

func TestDemandChunkFaultsAndMigrates(t *testing.T) {
	m, bus, stats := newTestManager(1 << 30)
	r, _ := m.Register(4 << 20)
	ready := m.DemandChunk(r, 0, 1000, 1, false)
	// Fault batch latency then migration at fault efficiency.
	expectMin := 1000 + m.cfg.FaultBatchLatencyNs +
		float64(2<<20)/(sim.GBPerSec(bus.Config().BandwidthGBs)*bus.Config().FaultEfficiency)
	if math.Abs(ready-expectMin) > 1 {
		t.Errorf("ready = %v, want ~%v", ready, expectMin)
	}
	if !r.Resident(0) {
		t.Error("chunk should be resident after demand migration")
	}
	if stats.FaultBatches != 1 {
		t.Errorf("FaultBatches = %v, want 1", stats.FaultBatches)
	}
	if want := float64((2 << 20) / (64 << 10)); stats.PageFaults != want {
		t.Errorf("PageFaults = %v, want %v", stats.PageFaults, want)
	}
	if stats.MigratedBytes != float64(2<<20) {
		t.Errorf("MigratedBytes = %v", stats.MigratedBytes)
	}
	// Second access to the same chunk at a later time: free.
	if got := m.DemandChunk(r, 0, ready+5, 1, false); got != ready+5 {
		t.Errorf("resident re-access = %v, want %v", got, ready+5)
	}
	if m.ResidentBytes() != 2<<20 {
		t.Errorf("ResidentBytes = %d", m.ResidentBytes())
	}
}

func TestDemandRacesInFlightPrefetch(t *testing.T) {
	m, _, stats := newTestManager(1 << 30)
	r, _ := m.Register(64 << 20) // 32 chunks
	drain := m.PrefetchRegion(r, 0)
	if drain <= 0 {
		t.Fatalf("drain = %v", drain)
	}
	// Demand the last chunk long before its prefetch arrival: the access
	// faults and waits for the in-flight transfer.
	last := r.NumChunks() - 1
	arr := r.arrival[last]
	before := stats.FaultBatches
	got := m.DemandChunk(r, last, 10, 1, false)
	if got < arr {
		t.Errorf("demand completed at %v before in-flight arrival %v", got, arr)
	}
	if stats.FaultBatches != before+1 {
		t.Errorf("racing demand should raise a fault batch")
	}
	// Demand well after arrival: free.
	if got := m.DemandChunk(r, last, arr+100, 1, false); got != arr+100 {
		t.Errorf("post-arrival access should not stall")
	}
}

func TestPrefetchRegionStreamsInOrder(t *testing.T) {
	m, _, stats := newTestManager(1 << 30)
	r, _ := m.Register(16 << 20)
	m.PrefetchRegion(r, 0)
	if r.ResidentChunks() != r.NumChunks() {
		t.Errorf("all chunks should be resident after prefetch")
	}
	for i := 1; i < r.NumChunks(); i++ {
		if r.arrival[i] <= r.arrival[i-1] {
			t.Errorf("prefetch arrivals not increasing: chunk %d at %v, chunk %d at %v",
				i-1, r.arrival[i-1], i, r.arrival[i])
		}
	}
	if stats.PrefetchBytes != float64(16<<20) {
		t.Errorf("PrefetchBytes = %v", stats.PrefetchBytes)
	}
}

func TestRedundantPrefetchCostsBookkeepingOnly(t *testing.T) {
	m, bus, _ := newTestManager(1 << 30)
	r, _ := m.Register(32 << 20)
	end1 := m.PrefetchRegion(r, 0)
	busy1 := bus.H2D.Busy().Total()
	end2 := m.PrefetchRegion(r, end1)
	busy2 := bus.H2D.Busy().Total() - busy1
	if busy2 != 0 {
		t.Errorf("redundant prefetch should move no data, saw %v ns of link busy", busy2)
	}
	wantBookkeeping := m.cfg.PrefetchCallNs + float64(32<<20)/float64(1<<30)*m.cfg.ResidentPrefetchNsPerGB
	if got := end2 - end1; got < wantBookkeeping*0.99 || got > wantBookkeeping*1.01 {
		t.Errorf("redundant prefetch driver time = %v, want ~%v", got, wantBookkeeping)
	}
}

func TestWritebackDirty(t *testing.T) {
	m, _, stats := newTestManager(1 << 30)
	r, _ := m.Register(8 << 20)
	m.PrefetchRegion(r, 0)
	m.MarkDirty(r, 0, 3<<20) // chunks 0 and 1
	end := m.WritebackDirty(r, 100)
	if end <= 100 {
		t.Errorf("writeback should take time")
	}
	if stats.WritebackBytes != float64(4<<20) {
		t.Errorf("WritebackBytes = %v, want 4MB (two dirty chunks)", stats.WritebackBytes)
	}
	// Second writeback: nothing dirty.
	if got := m.WritebackDirty(r, end); got != end {
		t.Errorf("clean writeback should be free")
	}
	m.MarkDirty(r, 0, 0) // no-op
	if got := m.WritebackDirty(r, end); got != end {
		t.Errorf("zero-length dirty mark should not dirty anything")
	}
}

func TestEvictionLRU(t *testing.T) {
	// Capacity of 3 chunks; two 2-chunk regions force eviction.
	cap3 := int64(6 << 20)
	m, _, stats := newTestManager(cap3)
	a, _ := m.Register(4 << 20)
	b, _ := m.Register(4 << 20)
	t0 := m.DemandChunk(a, 0, 0, 1, false)
	t1 := m.DemandChunk(a, 1, t0, 1, false)
	t2 := m.DemandChunk(b, 0, t1, 1, false)
	if m.ResidentBytes() != 6<<20 {
		t.Fatalf("ResidentBytes = %d, want full capacity", m.ResidentBytes())
	}
	// Next demand must evict the LRU chunk: a[0].
	m.DemandChunk(b, 1, t2, 1, false)
	if a.Resident(0) {
		t.Error("LRU chunk a[0] should have been evicted")
	}
	if !a.Resident(1) || !b.Resident(0) || !b.Resident(1) {
		t.Error("wrong victim evicted")
	}
	if stats.EvictedBytes != float64(2<<20) {
		t.Errorf("EvictedBytes = %v", stats.EvictedBytes)
	}
	if m.ResidentBytes() > cap3 {
		t.Errorf("resident %d exceeds capacity %d", m.ResidentBytes(), cap3)
	}
}

func TestEvictionWritesBackDirtyVictims(t *testing.T) {
	m, _, stats := newTestManager(2 << 20) // single chunk capacity
	a, _ := m.Register(2 << 20)
	b, _ := m.Register(2 << 20)
	end := m.DemandChunk(a, 0, 0, 1, false)
	m.MarkDirty(a, 0, 1)
	m.DemandChunk(b, 0, end, 1, false)
	if stats.WritebackBytes == 0 {
		t.Error("evicting a dirty chunk must write it back")
	}
	if a.Resident(0) {
		t.Error("dirty victim should be evicted after writeback")
	}
}

// Property: random demand/prefetch sequences never exceed capacity and
// keep resident accounting consistent.
func TestQuickResidencyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 40; iter++ {
		capacity := int64(4+rng.Intn(8)) << 20
		m, _, _ := newTestManager(capacity)
		var regions []*Region
		for i := 0; i < 3; i++ {
			r, err := m.Register(int64(1+rng.Intn(6)) << 20)
			if err != nil {
				t.Fatal(err)
			}
			regions = append(regions, r)
		}
		now := 0.0
		for step := 0; step < 200; step++ {
			r := regions[rng.Intn(len(regions))]
			switch rng.Intn(3) {
			case 0:
				now = m.DemandChunk(r, rng.Intn(r.NumChunks()), now, 1, rng.Intn(2) == 0)
			case 1:
				now = m.PrefetchRegion(r, now)
			case 2:
				m.MarkDirty(r, int64(rng.Intn(int(r.Size))), int64(rng.Intn(1<<20)))
				now = m.WritebackDirty(r, now)
			}
			if m.ResidentBytes() > capacity {
				t.Fatalf("resident %d exceeds capacity %d", m.ResidentBytes(), capacity)
			}
			var sum int64
			for _, reg := range regions {
				for i := 0; i < reg.NumChunks(); i++ {
					if reg.Resident(i) {
						sum += m.chunkSize(reg, i)
					}
				}
			}
			if sum != m.ResidentBytes() {
				t.Fatalf("resident accounting drift: per-chunk %d vs counter %d", sum, m.ResidentBytes())
			}
			// The indexed bookkeeping must agree with the per-chunk truth
			// arrays it summarizes.
			for ri, reg := range regions {
				chunks, bytes, dirty := 0, int64(0), 0
				for i := 0; i < reg.NumChunks(); i++ {
					if reg.Resident(i) {
						chunks++
						bytes += m.chunkSize(reg, i)
					}
					if reg.dirty[i] {
						dirty++
					}
				}
				if chunks != reg.ResidentChunks() || bytes != reg.ResidentBytes() || dirty != reg.DirtyChunks() {
					t.Fatalf("region %d index drift: chunks %d/%d bytes %d/%d dirty %d/%d",
						ri, chunks, reg.ResidentChunks(), bytes, reg.ResidentBytes(), dirty, reg.DirtyChunks())
				}
				// Every queued index is in range and flagged; every dirty
				// chunk is somewhere in the queue.
				queued := make(map[int32]bool, len(reg.dirtyQ))
				for _, idx := range reg.dirtyQ {
					if !reg.queued[idx] {
						t.Fatalf("region %d: queue entry %d not flagged as queued", ri, idx)
					}
					if queued[idx] {
						t.Fatalf("region %d: duplicate queue entry %d", ri, idx)
					}
					queued[idx] = true
				}
				for i := 0; i < reg.NumChunks(); i++ {
					if reg.dirty[i] && !queued[int32(i)] {
						t.Fatalf("region %d: dirty chunk %d missing from queue", ri, i)
					}
				}
			}
		}
		for _, r := range regions {
			if err := m.Unregister(r); err != nil {
				t.Fatal(err)
			}
		}
		if m.ResidentBytes() != 0 {
			t.Fatalf("resident bytes leaked after unregister: %d", m.ResidentBytes())
		}
	}
}
