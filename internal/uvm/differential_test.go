package uvm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"uvmasim/internal/counters"
	"uvmasim/internal/pcie"
	"uvmasim/internal/sim"
	"uvmasim/internal/trace"
)

// The differential harness drives the O(1) LRU-ring evictor and the
// retained reference scan evictor (refscan.go) through identical random
// workloads — demand faults, prefetch streams, device writes, dirty
// marks, partial writebacks, unregister/re-register — on two managers
// with independent buses, and asserts they stay bit-for-bit equal:
// identical victim order and eviction-complete times, identical returned
// availability times, identical UVMStats, identical per-chunk state and
// identical trace event streams.

type evictRec struct {
	region int // ordinal in the harness's region table
	idx    int
	at     float64
}

// diffRig is one manager under test plus its recording hooks.
type diffRig struct {
	m       *Manager
	bus     *pcie.Bus
	tr      *trace.Tracer
	regions []*Region
	ords    map[*Region]int
	evicts  []evictRec
}

func newDiffRig(capacity int64, reference bool) *diffRig {
	eng := sim.New()
	tr := trace.New()
	eng.SetTracer(tr)
	bus := pcie.New(eng, pcie.DefaultConfig())
	rig := &diffRig{
		m:    NewManager(DefaultConfig(), bus, capacity, &counters.UVMStats{}),
		bus:  bus,
		tr:   tr,
		ords: make(map[*Region]int),
	}
	rig.m.SetReferenceEviction(reference)
	rig.m.onEvict = func(r *Region, idx int, ready float64) {
		rig.evicts = append(rig.evicts, evictRec{rig.ords[r], idx, ready})
	}
	return rig
}

func (rig *diffRig) register(t *testing.T, size int64) {
	t.Helper()
	r, err := rig.m.Register(size)
	if err != nil {
		t.Fatal(err)
	}
	rig.ords[r] = len(rig.regions)
	rig.regions = append(rig.regions, r)
}

// step applies one scripted operation and returns its time result (NaN
// for untimed operations) plus a label for failure messages.
func (rig *diffRig) step(rng *rand.Rand, now float64) (float64, string) {
	r := rig.regions[rng.Intn(len(rig.regions))]
	switch op := rng.Intn(7); op {
	case 0:
		idx := rng.Intn(r.NumChunks())
		return rig.m.DemandChunk(r, idx, now, 0.5+0.5*rng.Float64(), rng.Intn(2) == 0),
			fmt.Sprintf("demand r%d[%d]", rig.ords[r], idx)
	case 6:
		n := r.NumChunks()
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		cpb := rng.Float64() * 0.01
		return rig.m.DemandRange(r, lo, hi, now, cpb),
			fmt.Sprintf("range r%d[%d:%d]", rig.ords[r], lo, hi)
	case 1:
		return rig.m.PrefetchRegion(r, now), fmt.Sprintf("prefetch r%d", rig.ords[r])
	case 2:
		rig.m.MarkDeviceWritten(r, now)
		return math.NaN(), fmt.Sprintf("write r%d", rig.ords[r])
	case 3:
		off := int64(rng.Intn(int(r.Size)))
		n := int64(1 + rng.Intn(4<<20))
		rig.m.MarkDirty(r, off, n)
		return math.NaN(), fmt.Sprintf("dirty r%d %d+%d", rig.ords[r], off, n)
	case 4:
		max := int64(1+rng.Intn(8)) << 20
		return rig.m.WritebackPartial(r, now, max), fmt.Sprintf("writeback r%d max %d", rig.ords[r], max)
	default:
		return rig.m.WritebackDirty(r, now), fmt.Sprintf("flush r%d", rig.ords[r])
	}
}

// TestDifferentialEviction is the property test of the tentpole: for
// random capacities, region mixes (including regions larger than the
// whole device budget, the self-evicting oversubscription regime) and
// operation scripts, the new and reference evictors must be
// indistinguishable.
func TestDifferentialEviction(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			capacity := int64(3+rng.Intn(10)) << 20
			nRegions := 2 + rng.Intn(3)
			sizes := make([]int64, nRegions)
			for i := range sizes {
				// Up to ~2x capacity so single regions oversubscribe.
				sizes[i] = int64(1+rng.Intn(int(2*capacity>>20))) << 20
				if rng.Intn(3) == 0 {
					sizes[i] -= int64(rng.Intn(1 << 20)) // short tail chunk
				}
			}

			fast := newDiffRig(capacity, false)
			ref := newDiffRig(capacity, true)
			for _, s := range sizes {
				fast.register(t, s)
				ref.register(t, s)
			}

			// Both rigs replay the same script: clone the op stream by
			// running two identical RNGs in lockstep.
			opsA := rand.New(rand.NewSource(seed + 1000))
			opsB := rand.New(rand.NewSource(seed + 1000))
			now := 0.0
			for step := 0; step < 300; step++ {
				gotA, label := fast.step(opsA, now)
				gotB, _ := ref.step(opsB, now)
				if gotA != gotB && !(math.IsNaN(gotA) && math.IsNaN(gotB)) {
					t.Fatalf("step %d (%s): time %v (lru) != %v (scan)", step, label, gotA, gotB)
				}
				if !math.IsNaN(gotA) && gotA > now {
					now = gotA
				}
				// Occasionally recycle a region mid-run.
				if step%97 == 96 {
					i := opsA.Intn(len(fast.regions))
					_ = opsB.Intn(len(ref.regions))
					recycle(t, fast, i)
					recycle(t, ref, i)
				}
				// And occasionally reset the whole manager (the pooled
				// context lifecycle), re-registering every region from
				// the recycled arenas.
				if step%131 == 130 {
					resetRig(t, fast, sizes)
					resetRig(t, ref, sizes)
				}
			}

			compareRigs(t, fast, ref)

			// Everything ends clean.
			for i := range fast.regions {
				recycle(t, fast, i)
				recycle(t, ref, i)
			}
			if fast.m.ResidentBytes() != 0 || ref.m.ResidentBytes() != 0 {
				t.Fatalf("resident bytes leaked: lru %d, scan %d",
					fast.m.ResidentBytes(), ref.m.ResidentBytes())
			}
		})
	}
}

// recycle unregisters region i and registers a same-size replacement in
// its table slot.
func recycle(t *testing.T, rig *diffRig, i int) {
	t.Helper()
	old := rig.regions[i]
	if err := rig.m.Unregister(old); err != nil {
		t.Fatal(err)
	}
	delete(rig.ords, old)
	r, err := rig.m.Register(old.Size)
	if err != nil {
		t.Fatal(err)
	}
	rig.regions[i] = r
	rig.ords[r] = i
}

// resetRig resets the rig's manager (exercising the arena recycling
// path) and re-registers the same region sizes in order, so the rig's
// ordinal table keeps describing the same logical regions.
func resetRig(t *testing.T, rig *diffRig, sizes []int64) {
	t.Helper()
	rig.m.Reset()
	rig.regions = rig.regions[:0]
	rig.ords = make(map[*Region]int)
	for _, s := range sizes {
		rig.register(t, s)
	}
}

// compareRigs asserts full observable-state equality between the two
// rigs, trace streams included.
func compareRigs(t *testing.T, fast, ref *diffRig) {
	t.Helper()
	compareRigsState(t, fast, ref)
	compareTraces(t, fast.tr.Events(), ref.tr.Events())
}

// compareRigsState asserts equality of everything except the raw trace
// streams (TestResetMatchesFresh compares those over a suffix, since the
// recycled rig's tracer keeps its warm-phase events).
func compareRigsState(t *testing.T, fast, ref *diffRig) {
	t.Helper()
	if len(fast.evicts) != len(ref.evicts) {
		t.Fatalf("eviction counts differ: %d (lru) vs %d (scan)", len(fast.evicts), len(ref.evicts))
	}
	for i := range fast.evicts {
		if fast.evicts[i] != ref.evicts[i] {
			t.Fatalf("eviction %d differs: %+v (lru) vs %+v (scan)", i, fast.evicts[i], ref.evicts[i])
		}
	}
	if *fast.m.Stats != *ref.m.Stats {
		t.Fatalf("stats differ:\nlru:  %+v\nscan: %+v", *fast.m.Stats, *ref.m.Stats)
	}
	if fast.m.ResidentBytes() != ref.m.ResidentBytes() {
		t.Fatalf("resident bytes differ: %d vs %d", fast.m.ResidentBytes(), ref.m.ResidentBytes())
	}
	for i, fr := range fast.regions {
		rr := ref.regions[i]
		if fr.ResidentChunks() != rr.ResidentChunks() || fr.ResidentBytes() != rr.ResidentBytes() ||
			fr.DirtyChunks() != rr.DirtyChunks() {
			t.Fatalf("region %d summary differs: res %d/%d bytes %d/%d dirty %d/%d", i,
				fr.ResidentChunks(), rr.ResidentChunks(), fr.ResidentBytes(), rr.ResidentBytes(),
				fr.DirtyChunks(), rr.DirtyChunks())
		}
		for c := range fr.arrival {
			if fr.arrival[c] != rr.arrival[c] && !(math.IsInf(fr.arrival[c], 1) && math.IsInf(rr.arrival[c], 1)) {
				t.Fatalf("region %d chunk %d arrival differs: %v vs %v", i, c, fr.arrival[c], rr.arrival[c])
			}
			if fr.dirty[c] != rr.dirty[c] {
				t.Fatalf("region %d chunk %d dirty differs", i, c)
			}
			if fr.lastUse[c] != rr.lastUse[c] {
				t.Fatalf("region %d chunk %d stamp differs: %d vs %d", i, c, fr.lastUse[c], rr.lastUse[c])
			}
		}
	}
}

// compareTraces asserts two trace event streams are identical.
func compareTraces(t *testing.T, evA, evB []trace.Event) {
	t.Helper()
	if len(evA) != len(evB) {
		t.Fatalf("trace lengths differ: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("trace event %d differs:\nA: %+v\nB: %+v", i, evA[i], evB[i])
		}
	}
}

// TestLRUMatchesStampOrder pins the structural invariant behind the O(1)
// victim choice: the global ring is always sorted by last-use stamp.
func TestLRUMatchesStampOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rig := newDiffRig(9<<20, false)
	for _, s := range []int64{5 << 20, 7 << 20, 4<<20 - 777} {
		rig.register(t, s)
	}
	now := 0.0
	for step := 0; step < 500; step++ {
		if got, _ := rig.step(rng, now); !math.IsNaN(got) && got > now {
			now = got
		}
		last := int64(-1)
		count := 0
		for s := rig.m.nodes[0].next; s != 0; s = rig.m.nodes[s].next {
			n := rig.m.nodes[s]
			reg := rig.m.regs[n.region]
			stamp := reg.lastUse[n.idx]
			if stamp <= last {
				t.Fatalf("step %d: ring out of stamp order (%d after %d)", step, stamp, last)
			}
			if !reg.Resident(int(n.idx)) {
				t.Fatalf("step %d: non-resident chunk on the ring", step)
			}
			last = stamp
			count++
		}
		total := 0
		for _, r := range rig.regions {
			total += r.ResidentChunks()
		}
		if count != total {
			t.Fatalf("step %d: ring has %d nodes, regions count %d resident", step, count, total)
		}
	}
}

// TestDemandRangeMatchesChunkLoop pins the batched demand path to its
// definition: DemandRange(lo, hi) must be observably identical — returned
// compute cursor, stats, per-chunk state, victim order and trace stream —
// to the caller-side loop of DemandChunk(i, cursor, 1, true) it replaced
// on the sequential launch path.
func TestDemandRangeMatchesChunkLoop(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			capacity := int64(3+rng.Intn(8)) << 20
			nRegions := 1 + rng.Intn(3)
			sizes := make([]int64, nRegions)
			for i := range sizes {
				sizes[i] = int64(1+rng.Intn(int(2*capacity>>20))) << 20
				if rng.Intn(3) == 0 {
					sizes[i] -= int64(rng.Intn(1 << 20))
				}
			}

			batched := newDiffRig(capacity, false)
			looped := newDiffRig(capacity, false)
			for _, s := range sizes {
				batched.register(t, s)
				looped.register(t, s)
			}

			opsA := rand.New(rand.NewSource(seed + 2000))
			opsB := rand.New(rand.NewSource(seed + 2000))
			now := 0.0
			for step := 0; step < 200; step++ {
				// Mostly mixed ops (run in lockstep on both rigs) to build
				// up partial residency, prefetch races and dirty state;
				// every fourth step is the range-vs-loop probe itself.
				if step%4 != 3 {
					gotA, label := batched.step(opsA, now)
					gotB, _ := looped.step(opsB, now)
					if gotA != gotB && !(math.IsNaN(gotA) && math.IsNaN(gotB)) {
						t.Fatalf("step %d (%s): mixed op diverged: %v vs %v", step, label, gotA, gotB)
					}
					if !math.IsNaN(gotA) && gotA > now {
						now = gotA
					}
					continue
				}
				ri := opsA.Intn(len(batched.regions))
				_ = opsB.Intn(len(looped.regions))
				rA, rB := batched.regions[ri], looped.regions[ri]
				n := rA.NumChunks()
				lo := opsA.Intn(n)
				hi := lo + 1 + opsA.Intn(n-lo)
				cpb := opsA.Float64() * 0.01
				_, _, _ = opsB.Intn(n), opsB.Intn(n-lo), opsB.Float64()

				gotA := batched.m.DemandRange(rA, lo, hi, now, cpb)
				cursor := now
				for i := lo; i < hi; i++ {
					avail := looped.m.DemandChunk(rB, i, cursor, 1, true)
					cursor = avail + float64(looped.m.chunkSize(rB, i))*cpb
				}
				if gotA != cursor {
					t.Fatalf("step %d: DemandRange r%d[%d:%d) returned %v, chunk loop %v",
						step, ri, lo, hi, gotA, cursor)
				}
				if gotA > now {
					now = gotA
				}
			}
			compareRigs(t, batched, looped)
		})
	}
}

// TestResetMatchesFresh pins the recycling oracle behind the context
// pool: a manager that has been driven hard, Reset, and re-registered
// from its free list must replay a script exactly like a freshly
// constructed manager — same availability times, same victim order, same
// stats, same per-chunk state, same trace stream.
func TestResetMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			capacity := int64(3+rng.Intn(8)) << 20
			warmSizes := make([]int64, 2+rng.Intn(3))
			for i := range warmSizes {
				warmSizes[i] = int64(1+rng.Intn(int(2*capacity>>20))) << 20
			}
			sizes := make([]int64, 2+rng.Intn(3))
			for i := range sizes {
				sizes[i] = int64(1+rng.Intn(int(2*capacity>>20))) << 20
				if rng.Intn(3) == 0 {
					sizes[i] -= int64(rng.Intn(1 << 20))
				}
			}

			recycled := newDiffRig(capacity, false)
			for _, s := range warmSizes {
				recycled.register(t, s)
			}
			warm := rand.New(rand.NewSource(seed + 500))
			now := 0.0
			for i := 0; i < 150; i++ {
				if got, _ := recycled.step(warm, now); !math.IsNaN(got) && got > now {
					now = got
				}
			}

			// Reset the full simulated machine the way cuda.Context.Reset
			// does: manager arenas, bus timeline, counters. The tracer keeps
			// its warm-phase events; the comparison below starts after them.
			recycled.m.Reset()
			recycled.bus.Reset()
			*recycled.m.Stats = counters.UVMStats{}
			recycled.evicts = recycled.evicts[:0]
			recycled.regions = recycled.regions[:0]
			recycled.ords = make(map[*Region]int)
			warmEvents := len(recycled.tr.Events())

			fresh := newDiffRig(capacity, false)
			for _, s := range sizes {
				recycled.register(t, s)
				fresh.register(t, s)
			}

			opsA := rand.New(rand.NewSource(seed + 900))
			opsB := rand.New(rand.NewSource(seed + 900))
			now = 0.0
			for step := 0; step < 200; step++ {
				gotA, label := recycled.step(opsA, now)
				gotB, _ := fresh.step(opsB, now)
				if gotA != gotB && !(math.IsNaN(gotA) && math.IsNaN(gotB)) {
					t.Fatalf("step %d (%s): recycled %v, fresh %v", step, label, gotA, gotB)
				}
				if !math.IsNaN(gotA) && gotA > now {
					now = gotA
				}
			}

			compareRigsState(t, recycled, fresh)
			compareTraces(t, recycled.tr.Events()[warmEvents:], fresh.tr.Events())
		})
	}
}
