package uvm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"uvmasim/internal/counters"
	"uvmasim/internal/pcie"
	"uvmasim/internal/sim"
	"uvmasim/internal/trace"
)

// The differential harness drives the O(1) LRU-ring evictor and the
// retained reference scan evictor (refscan.go) through identical random
// workloads — demand faults, prefetch streams, device writes, dirty
// marks, partial writebacks, unregister/re-register — on two managers
// with independent buses, and asserts they stay bit-for-bit equal:
// identical victim order and eviction-complete times, identical returned
// availability times, identical UVMStats, identical per-chunk state and
// identical trace event streams.

type evictRec struct {
	region int // ordinal in the harness's region table
	idx    int
	at     float64
}

// diffRig is one manager under test plus its recording hooks.
type diffRig struct {
	m       *Manager
	tr      *trace.Tracer
	regions []*Region
	ords    map[*Region]int
	evicts  []evictRec
}

func newDiffRig(capacity int64, reference bool) *diffRig {
	eng := sim.New()
	tr := trace.New()
	eng.SetTracer(tr)
	bus := pcie.New(eng, pcie.DefaultConfig())
	rig := &diffRig{
		m:    NewManager(DefaultConfig(), bus, capacity, &counters.UVMStats{}),
		tr:   tr,
		ords: make(map[*Region]int),
	}
	rig.m.SetReferenceEviction(reference)
	rig.m.onEvict = func(r *Region, idx int, ready float64) {
		rig.evicts = append(rig.evicts, evictRec{rig.ords[r], idx, ready})
	}
	return rig
}

func (rig *diffRig) register(t *testing.T, size int64) {
	t.Helper()
	r, err := rig.m.Register(size)
	if err != nil {
		t.Fatal(err)
	}
	rig.ords[r] = len(rig.regions)
	rig.regions = append(rig.regions, r)
}

// step applies one scripted operation and returns its time result (NaN
// for untimed operations) plus a label for failure messages.
func (rig *diffRig) step(rng *rand.Rand, now float64) (float64, string) {
	r := rig.regions[rng.Intn(len(rig.regions))]
	switch op := rng.Intn(6); op {
	case 0:
		idx := rng.Intn(r.NumChunks())
		return rig.m.DemandChunk(r, idx, now, 0.5+0.5*rng.Float64(), rng.Intn(2) == 0),
			fmt.Sprintf("demand r%d[%d]", rig.ords[r], idx)
	case 1:
		return rig.m.PrefetchRegion(r, now), fmt.Sprintf("prefetch r%d", rig.ords[r])
	case 2:
		rig.m.MarkDeviceWritten(r, now)
		return math.NaN(), fmt.Sprintf("write r%d", rig.ords[r])
	case 3:
		off := int64(rng.Intn(int(r.Size)))
		n := int64(1 + rng.Intn(4<<20))
		rig.m.MarkDirty(r, off, n)
		return math.NaN(), fmt.Sprintf("dirty r%d %d+%d", rig.ords[r], off, n)
	case 4:
		max := int64(1+rng.Intn(8)) << 20
		return rig.m.WritebackPartial(r, now, max), fmt.Sprintf("writeback r%d max %d", rig.ords[r], max)
	default:
		return rig.m.WritebackDirty(r, now), fmt.Sprintf("flush r%d", rig.ords[r])
	}
}

// TestDifferentialEviction is the property test of the tentpole: for
// random capacities, region mixes (including regions larger than the
// whole device budget, the self-evicting oversubscription regime) and
// operation scripts, the new and reference evictors must be
// indistinguishable.
func TestDifferentialEviction(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			capacity := int64(3+rng.Intn(10)) << 20
			nRegions := 2 + rng.Intn(3)
			sizes := make([]int64, nRegions)
			for i := range sizes {
				// Up to ~2x capacity so single regions oversubscribe.
				sizes[i] = int64(1+rng.Intn(int(2*capacity>>20))) << 20
				if rng.Intn(3) == 0 {
					sizes[i] -= int64(rng.Intn(1 << 20)) // short tail chunk
				}
			}

			fast := newDiffRig(capacity, false)
			ref := newDiffRig(capacity, true)
			for _, s := range sizes {
				fast.register(t, s)
				ref.register(t, s)
			}

			// Both rigs replay the same script: clone the op stream by
			// running two identical RNGs in lockstep.
			opsA := rand.New(rand.NewSource(seed + 1000))
			opsB := rand.New(rand.NewSource(seed + 1000))
			now := 0.0
			for step := 0; step < 300; step++ {
				gotA, label := fast.step(opsA, now)
				gotB, _ := ref.step(opsB, now)
				if gotA != gotB && !(math.IsNaN(gotA) && math.IsNaN(gotB)) {
					t.Fatalf("step %d (%s): time %v (lru) != %v (scan)", step, label, gotA, gotB)
				}
				if !math.IsNaN(gotA) && gotA > now {
					now = gotA
				}
				// Occasionally recycle a region mid-run.
				if step%97 == 96 {
					i := opsA.Intn(len(fast.regions))
					_ = opsB.Intn(len(ref.regions))
					recycle(t, fast, i)
					recycle(t, ref, i)
				}
			}

			compareRigs(t, fast, ref)

			// Everything ends clean.
			for i := range fast.regions {
				recycle(t, fast, i)
				recycle(t, ref, i)
			}
			if fast.m.ResidentBytes() != 0 || ref.m.ResidentBytes() != 0 {
				t.Fatalf("resident bytes leaked: lru %d, scan %d",
					fast.m.ResidentBytes(), ref.m.ResidentBytes())
			}
		})
	}
}

// recycle unregisters region i and registers a same-size replacement in
// its table slot.
func recycle(t *testing.T, rig *diffRig, i int) {
	t.Helper()
	old := rig.regions[i]
	if err := rig.m.Unregister(old); err != nil {
		t.Fatal(err)
	}
	delete(rig.ords, old)
	r, err := rig.m.Register(old.Size)
	if err != nil {
		t.Fatal(err)
	}
	rig.regions[i] = r
	rig.ords[r] = i
}

// compareRigs asserts full observable-state equality between the two
// evictors.
func compareRigs(t *testing.T, fast, ref *diffRig) {
	t.Helper()
	if len(fast.evicts) != len(ref.evicts) {
		t.Fatalf("eviction counts differ: %d (lru) vs %d (scan)", len(fast.evicts), len(ref.evicts))
	}
	for i := range fast.evicts {
		if fast.evicts[i] != ref.evicts[i] {
			t.Fatalf("eviction %d differs: %+v (lru) vs %+v (scan)", i, fast.evicts[i], ref.evicts[i])
		}
	}
	if *fast.m.Stats != *ref.m.Stats {
		t.Fatalf("stats differ:\nlru:  %+v\nscan: %+v", *fast.m.Stats, *ref.m.Stats)
	}
	if fast.m.ResidentBytes() != ref.m.ResidentBytes() {
		t.Fatalf("resident bytes differ: %d vs %d", fast.m.ResidentBytes(), ref.m.ResidentBytes())
	}
	for i, fr := range fast.regions {
		rr := ref.regions[i]
		if fr.ResidentChunks() != rr.ResidentChunks() || fr.ResidentBytes() != rr.ResidentBytes() ||
			fr.DirtyChunks() != rr.DirtyChunks() {
			t.Fatalf("region %d summary differs: res %d/%d bytes %d/%d dirty %d/%d", i,
				fr.ResidentChunks(), rr.ResidentChunks(), fr.ResidentBytes(), rr.ResidentBytes(),
				fr.DirtyChunks(), rr.DirtyChunks())
		}
		for c := range fr.arrival {
			if fr.arrival[c] != rr.arrival[c] && !(math.IsInf(fr.arrival[c], 1) && math.IsInf(rr.arrival[c], 1)) {
				t.Fatalf("region %d chunk %d arrival differs: %v vs %v", i, c, fr.arrival[c], rr.arrival[c])
			}
			if fr.dirty[c] != rr.dirty[c] {
				t.Fatalf("region %d chunk %d dirty differs", i, c)
			}
			if fr.lastUse[c] != rr.lastUse[c] {
				t.Fatalf("region %d chunk %d stamp differs: %d vs %d", i, c, fr.lastUse[c], rr.lastUse[c])
			}
		}
	}
	evA, evB := fast.tr.Events(), ref.tr.Events()
	if len(evA) != len(evB) {
		t.Fatalf("trace lengths differ: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("trace event %d differs:\nlru:  %+v\nscan: %+v", i, evA[i], evB[i])
		}
	}
}

// TestLRUMatchesStampOrder pins the structural invariant behind the O(1)
// victim choice: the global ring is always sorted by last-use stamp.
func TestLRUMatchesStampOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rig := newDiffRig(9<<20, false)
	for _, s := range []int64{5 << 20, 7 << 20, 4<<20 - 777} {
		rig.register(t, s)
	}
	now := 0.0
	for step := 0; step < 500; step++ {
		if got, _ := rig.step(rng, now); !math.IsNaN(got) && got > now {
			now = got
		}
		last := int64(-1)
		count := 0
		for n := rig.m.lru.next; n != &rig.m.lru; n = n.next {
			stamp := n.region.lastUse[n.idx]
			if stamp <= last {
				t.Fatalf("step %d: ring out of stamp order (%d after %d)", step, stamp, last)
			}
			if !n.region.Resident(int(n.idx)) {
				t.Fatalf("step %d: non-resident chunk on the ring", step)
			}
			last = stamp
			count++
		}
		total := 0
		for _, r := range rig.regions {
			total += r.ResidentChunks()
		}
		if count != total {
			t.Fatalf("step %d: ring has %d nodes, regions count %d resident", step, count, total)
		}
	}
}
