// Package uvm models Nvidia's Unified Virtual Memory driver as the paper
// exercises it: managed regions whose pages materialize on the device on
// first GPU touch (fault batches + on-demand migration over PCIe),
// explicit cudaMemPrefetchAsync streaming, dirty writeback when the host
// touches results, and LRU chunk eviction under device-memory pressure.
//
// Residency is tracked at the driver's migration granule (2 MB chunks);
// faults are counted at the 64 KB fault-block granule within a chunk.
// Timing is expressed through reservations on the pcie.Bus links, so UVM
// traffic naturally contends with (and overlaps) everything else on the
// interconnect — the mechanism behind the U1 pipeline stage of Figure 1.
//
// Eviction bookkeeping is constant-time: an intrusive global LRU ring
// plus per-region resident counters (see lru.go) replace the full
// residency scan the evictor used to pay per victim, and an ascending
// dirty-index queue (dirty.go) lets the writeback paths visit only dirty
// chunks. The pre-optimization scan evictor is retained as a reference
// implementation (refscan.go) and pinned equivalent by a differential
// test. All timing is bit-for-bit identical to the scan era: same victim
// order, same writeback reservations, same stats, same trace instants.
package uvm

import (
	"fmt"
	"math"

	"uvmasim/internal/counters"
	"uvmasim/internal/pcie"
	"uvmasim/internal/trace"
)

// Config tunes the driver model.
type Config struct {
	ChunkBytes          int64   // migration granule
	FaultBlockBytes     int64   // fault granule (faults per chunk = chunk/block)
	FaultBatchLatencyNs float64 // service latency of one fault batch (GPU stall)
	PrefetchCallNs      float64 // driver overhead per cudaMemPrefetchAsync call
	// ResidentPrefetchNsPerGB prices a cudaMemPrefetchAsync over
	// already-resident pages: the driver still walks the range's page
	// tables (CPU/stream time, no data movement) — the overhead that
	// makes per-kernel prefetching hurt nw (§4.1.2).
	ResidentPrefetchNsPerGB float64
}

// DefaultConfig follows published UVM measurements on Volta/Ampere
// (fault service ~20-45 us per batch, 2 MB prefetch granularity).
func DefaultConfig() Config {
	return Config{
		ChunkBytes:              2 << 20,
		FaultBlockBytes:         64 << 10,
		FaultBatchLatencyNs:     25e3,
		PrefetchCallNs:          12e3,
		ResidentPrefetchNsPerGB: 1e6,
	}
}

// Region is one cudaMallocManaged allocation.
type Region struct {
	id   int64
	Size int64

	arrival []float64 // per-chunk availability time; +Inf = not resident
	lastUse []int64   // LRU stamps
	dirty   []bool    // chunk written by the device since last writeback

	// Indexed bookkeeping (see lru.go and dirty.go).
	nodes         []chunkNode // intrusive list nodes, one per chunk
	res           chunkNode   // sentinel of the region resident ring
	residentCount int
	residentBytes int64
	dirtyCount    int
	dirtyQ        []int32 // ascending dirty chunk indices (may hold tombstones)
	queued        []bool  // queue membership, one per chunk
}

// NumChunks returns the number of migration granules in the region.
func (r *Region) NumChunks() int { return len(r.arrival) }

// Resident reports whether chunk idx is device-resident (now or at a
// scheduled arrival).
func (r *Region) Resident(idx int) bool { return !math.IsInf(r.arrival[idx], 1) }

// ResidentChunks counts chunks with device residency. O(1).
func (r *Region) ResidentChunks() int { return r.residentCount }

// ResidentBytes returns the region's device-resident byte count. O(1).
func (r *Region) ResidentBytes() int64 { return r.residentBytes }

// DirtyChunks counts chunks written by the device since their last
// writeback. O(1).
func (r *Region) DirtyChunks() int { return r.dirtyCount }

// Manager is the UVM driver state for one device.
type Manager struct {
	cfg      Config
	bus      *pcie.Bus
	capacity int64 // device bytes available to managed memory

	regions  map[int64]*Region
	nextID   int64
	resident int64 // managed bytes currently on-device
	stamp    int64 // LRU clock

	lru       chunkNode // sentinel of the global LRU ring (next = oldest)
	scanEvict bool      // select victims with the reference scan instead
	// onEvict, when non-nil, observes every eviction (region, chunk,
	// eviction-complete time). Differential tests use it to record and
	// compare victim order between the two evictors.
	onEvict func(r *Region, idx int, ready float64)

	Stats *counters.UVMStats
}

// NewManager creates a Manager backed by bus with the given device
// capacity budget for managed memory.
func NewManager(cfg Config, bus *pcie.Bus, capacity int64, stats *counters.UVMStats) *Manager {
	if cfg.ChunkBytes <= 0 || cfg.FaultBlockBytes <= 0 || cfg.FaultBlockBytes > cfg.ChunkBytes {
		panic("uvm: invalid granule configuration")
	}
	if stats == nil {
		stats = &counters.UVMStats{}
	}
	m := &Manager{
		cfg:      cfg,
		bus:      bus,
		capacity: capacity,
		regions:  make(map[int64]*Region),
		Stats:    stats,
	}
	m.initLRU()
	return m
}

// Config returns the manager configuration.
func (m *Manager) Config() Config { return m.cfg }

// ResidentBytes returns managed bytes currently device-resident.
func (m *Manager) ResidentBytes() int64 { return m.resident }

// Register creates a managed region of size bytes. Pages start
// host-resident (first-touch on device will fault them over).
func (m *Manager) Register(size int64) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("uvm: invalid managed size %d", size)
	}
	n := int((size + m.cfg.ChunkBytes - 1) / m.cfg.ChunkBytes)
	r := &Region{
		Size:    size,
		arrival: make([]float64, n),
		lastUse: make([]int64, n),
		dirty:   make([]bool, n),
		queued:  make([]bool, n),
	}
	for i := range r.arrival {
		r.arrival[i] = math.Inf(1)
	}
	r.initNodes()
	m.nextID++
	r.id = m.nextID
	m.regions[r.id] = r
	return r, nil
}

// Unregister drops the region, releasing its device residency. It walks
// only the region's resident chunks (via the region ring), not every
// chunk.
func (m *Manager) Unregister(r *Region) error {
	if _, ok := m.regions[r.id]; !ok {
		return fmt.Errorf("uvm: unregister of unknown region %d", r.id)
	}
	for n := r.res.rnext; n != &r.res; {
		next := n.rnext
		r.arrival[n.idx] = math.Inf(1)
		n.prev.next = n.next
		n.next.prev = n.prev
		n.prev, n.next, n.rprev, n.rnext = nil, nil, nil, nil
		n = next
	}
	r.res.rnext = &r.res
	r.res.rprev = &r.res
	m.resident -= r.residentBytes
	r.residentBytes = 0
	r.residentCount = 0
	delete(m.regions, r.id)
	return nil
}

// chunkSize returns the byte size of chunk idx (the tail chunk may be
// short).
func (m *Manager) chunkSize(r *Region, idx int) int64 {
	if idx == r.NumChunks()-1 {
		if rem := r.Size % m.cfg.ChunkBytes; rem != 0 {
			return rem
		}
	}
	return m.cfg.ChunkBytes
}

// makeRoom evicts least-recently-used resident chunks until need bytes
// fit. Dirty victims are written back over PCIe at time t; eviction
// completion can push the effective availability time forward, which the
// caller receives. Victim selection is O(1) per eviction (ring head) and
// the whole call is O(1) when the need already fits.
func (m *Manager) makeRoom(t float64, need int64) float64 {
	ready := t
	for m.resident+need > m.capacity {
		victim, vIdx := m.victim()
		if victim == nil {
			panic(fmt.Sprintf("uvm: cannot evict to fit %d bytes in capacity %d", need, m.capacity))
		}
		size := m.chunkSize(victim, vIdx)
		if victim.dirty[vIdx] {
			end := m.bus.Writeback(ready, size)
			m.Stats.WritebackBytes += float64(size)
			ready = end
			victim.clearDirtyOnEvict(vIdx)
		}
		m.release(victim, vIdx, size)
		m.Stats.EvictedBytes += float64(size)
		m.Stats.Evictions++
		if tr := m.bus.Tracer(); tr != nil {
			tr.Instant(trace.UVMFaults, "evict", ready, trace.ChunkArgs(vIdx, size))
			tr.Count("uvm.evicted_bytes", float64(size))
		}
		if m.onEvict != nil {
			m.onEvict(victim, vIdx, ready)
		}
	}
	return ready
}

// DemandChunk makes chunk idx available for a GPU access happening at
// time t and returns the time the access can proceed. patternEff (0,1]
// derates migration bandwidth for demand orders the driver prefetcher
// cannot coalesce. coalesced marks a ramped sequential fault stream, in
// which the driver's density prefetcher amortizes one fault batch over
// many migration granules.
//
//   - Resident and arrived: proceed at t.
//   - In flight (prefetch racing demand): a fault is still raised; the
//     access proceeds at max(arrival, t+batch latency).
//   - Not resident: fault batch + on-demand migration.
func (m *Manager) DemandChunk(r *Region, idx int, t float64, patternEff float64, coalesced bool) float64 {
	m.touch(r, idx)
	if r.Resident(idx) {
		if arr := r.arrival[idx]; arr > t {
			m.Stats.PageFaults++
			m.Stats.FaultBatches++
			wait := t + m.cfg.FaultBatchLatencyNs
			if arr > wait {
				wait = arr
			}
			if tr := m.bus.Tracer(); tr != nil {
				// The access raced an in-flight prefetch: one fault, no
				// migration traffic.
				tr.Instant(trace.UVMFaults, "fault_wait", t, trace.ChunkArgs(idx, 0))
				tr.Count("uvm.fault_batches", 1)
			}
			return wait
		}
		return t
	}
	size := m.chunkSize(r, idx)
	ready := m.makeRoom(t, size)
	blocks := float64((size + m.cfg.FaultBlockBytes - 1) / m.cfg.FaultBlockBytes)
	latency := m.cfg.FaultBatchLatencyNs
	if coalesced {
		latency /= 8
		blocks /= 8
	}
	m.Stats.PageFaults += blocks
	m.Stats.FaultBatches++
	m.Stats.MigratedBytes += float64(size)
	if tr := m.bus.Tracer(); tr != nil {
		args := trace.ChunkArgs(idx, size)
		args.Batch = blocks
		tr.Instant(trace.UVMFaults, "fault_batch", ready, args)
		tr.Count("uvm.fault_batches", 1)
		tr.Count("uvm.migrated_bytes", float64(size))
	}
	end := m.bus.MigrateOnDemand(ready+latency, size, patternEff)
	m.hold(r, idx, end, size)
	return end
}

// PrefetchRegion issues cudaMemPrefetchAsync for the whole region at time
// t, streaming non-resident chunks over the H2D link in order. It returns
// the time the prefetch stream drains. Already-resident chunks cost only
// driver bookkeeping time (page-table walks, no link traffic).
//
// Room for the whole prefetch is checked once against the aggregate
// non-resident byte count: when the stream fits, the per-chunk
// room-making calls are skipped entirely. Under capacity pressure the
// driver keeps evicting per chunk as the stream advances, because victim
// writebacks and evict instants are defined to happen at stream time —
// an oversubscribed prefetch evicts its own earliest chunks mid-stream.
func (m *Manager) PrefetchRegion(r *Region, t float64) float64 {
	end := t + m.cfg.PrefetchCallNs
	evicting := m.resident+r.Size-r.residentBytes > m.capacity
	for i := 0; i < r.NumChunks(); i++ {
		size := m.chunkSize(r, i)
		if r.Resident(i) {
			end += float64(size) / float64(1<<30) * m.cfg.ResidentPrefetchNsPerGB
			continue
		}
		ready := end
		if evicting {
			ready = m.makeRoom(end, size)
		}
		end = m.bus.PrefetchChunk(ready, size)
		m.hold(r, i, end, size)
		m.Stats.PrefetchBytes += float64(size)
		m.touch(r, i)
	}
	return end
}

// MarkDeviceWritten makes all of the region's chunks device-resident as
// of time t without any transfer: a device-side write to a non-resident
// managed page allocates it on the device (first touch), it does not
// migrate stale host data.
//
// The capacity check happens once for the aggregate need: the common
// case (everything fits) links all non-resident chunks without a single
// room-making call. Only when the aggregate need oversubscribes the
// device does the driver fall back to allocate-and-evict per chunk —
// there the interleaving is observable (a written region larger than
// device memory evicts its own earliest chunks as later ones allocate),
// so it is preserved exactly.
func (m *Manager) MarkDeviceWritten(r *Region, t float64) {
	need := r.Size - r.residentBytes
	if need == 0 {
		return
	}
	if m.resident+need > m.capacity {
		for i := range r.arrival {
			if r.Resident(i) {
				continue
			}
			size := m.chunkSize(r, i)
			m.makeRoom(t, size)
			m.hold(r, i, t, size)
			m.touch(r, i)
		}
		return
	}
	for i := range r.arrival {
		if r.Resident(i) {
			continue
		}
		m.hold(r, i, t, m.chunkSize(r, i))
		m.touch(r, i)
	}
}

// MarkDirty records that the device wrote the byte range [off, off+n).
func (m *Manager) MarkDirty(r *Region, off, n int64) {
	if n <= 0 {
		return
	}
	first := off / m.cfg.ChunkBytes
	last := (off + n - 1) / m.cfg.ChunkBytes
	if max := int64(r.NumChunks() - 1); last > max {
		last = max
	}
	if first > last {
		return
	}
	r.markDirtyRange(int(first), int(last))
}

// WritebackDirty migrates the region's dirty chunks back to the host
// (the CPU touching results after cudaDeviceSynchronize), starting at t.
// It returns the completion time. Chunks stay device-resident (UVM keeps
// read duplicates).
func (m *Manager) WritebackDirty(r *Region, t float64) float64 {
	return m.WritebackPartial(r, t, r.Size)
}

// WritebackPartial migrates up to maxBytes of the region's dirty chunks
// back to the host, starting at t, and returns the completion time. It
// models a CPU consumer that touches only part of the result (checksums,
// sampled verification) — with UVM, untouched dirty pages never cross
// the bus, one of the paper's measured transfer savings.
//
// Iteration walks the region's dirty-index queue in ascending chunk
// order — only dirty chunks, not the whole region — dropping tombstones
// of chunks whose dirty state was cleared by eviction along the way.
func (m *Manager) WritebackPartial(r *Region, t float64, maxBytes int64) float64 {
	end := t
	if r.dirtyCount == 0 {
		return end
	}
	var moved int64
	q := r.dirtyQ
	k := 0
	for ; k < len(q); k++ {
		i := int(q[k])
		if !r.dirty[i] {
			r.queued[i] = false
			continue
		}
		if moved >= maxBytes {
			break
		}
		size := m.chunkSize(r, i)
		end = m.bus.Writeback(end, size)
		m.Stats.WritebackBytes += float64(size)
		r.dirty[i] = false
		r.dirtyCount--
		r.queued[i] = false
		moved += size
	}
	if k > 0 {
		n := copy(q, q[k:])
		r.dirtyQ = q[:n]
	}
	return end
}
