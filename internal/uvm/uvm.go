// Package uvm models Nvidia's Unified Virtual Memory driver as the paper
// exercises it: managed regions whose pages materialize on the device on
// first GPU touch (fault batches + on-demand migration over PCIe),
// explicit cudaMemPrefetchAsync streaming, dirty writeback when the host
// touches results, and LRU chunk eviction under device-memory pressure.
//
// Residency is tracked at the driver's migration granule (2 MB chunks);
// faults are counted at the 64 KB fault-block granule within a chunk.
// Timing is expressed through reservations on the pcie.Bus links, so UVM
// traffic naturally contends with (and overlaps) everything else on the
// interconnect — the mechanism behind the U1 pipeline stage of Figure 1.
//
// Eviction bookkeeping is constant-time: a global LRU ring plus
// per-region resident counters (see lru.go) replace the full residency
// scan the evictor used to pay per victim, and an ascending dirty-index
// queue (dirty.go) lets the writeback paths visit only dirty chunks. All
// link state lives in index-linked flat arenas owned by the Manager, and
// Regions are recycled through a free list across Register/Unregister
// cycles, so a warmed-up manager simulates without allocating or writing
// heap pointers. The pre-optimization scan evictor is retained as a
// reference implementation (refscan.go) and pinned equivalent by a
// differential test. All timing is bit-for-bit identical to the scan
// era: same victim order, same writeback reservations, same stats, same
// trace instants.
package uvm

import (
	"fmt"
	"math"

	"uvmasim/internal/counters"
	"uvmasim/internal/pcie"
	"uvmasim/internal/trace"
)

// Config tunes the driver model.
type Config struct {
	ChunkBytes          int64   // migration granule
	FaultBlockBytes     int64   // fault granule (faults per chunk = chunk/block)
	FaultBatchLatencyNs float64 // service latency of one fault batch (GPU stall)
	PrefetchCallNs      float64 // driver overhead per cudaMemPrefetchAsync call
	// ResidentPrefetchNsPerGB prices a cudaMemPrefetchAsync over
	// already-resident pages: the driver still walks the range's page
	// tables (CPU/stream time, no data movement) — the overhead that
	// makes per-kernel prefetching hurt nw (§4.1.2).
	ResidentPrefetchNsPerGB float64
}

// DefaultConfig follows published UVM measurements on Volta/Ampere
// (fault service ~20-45 us per batch, 2 MB prefetch granularity).
func DefaultConfig() Config {
	return Config{
		ChunkBytes:              2 << 20,
		FaultBlockBytes:         64 << 10,
		FaultBatchLatencyNs:     25e3,
		PrefetchCallNs:          12e3,
		ResidentPrefetchNsPerGB: 1e6,
	}
}

// Region is one cudaMallocManaged allocation. Region objects are owned
// by the Manager and recycled: after Unregister the object may be handed
// out again by a later Register, so callers must not use a region past
// its Unregister.
type Region struct {
	id   int64
	Size int64

	arrival []float64 // per-chunk availability time; +Inf = not resident
	lastUse []int64   // LRU stamps
	dirty   []bool    // chunk written by the device since last writeback

	// Indexed bookkeeping (see lru.go and dirty.go). slot, base and
	// nodeCap are fixed at creation: the region permanently owns arena
	// slots [base, base+nodeCap) and is recycled only for sizes that fit.
	slot          int32 // this region's index in Manager.regs
	base          int32 // first owned slot in the Manager node arena
	nodeCap       int32 // owned arena slots (maximum chunk count)
	resHead       int32 // head of the resident list, -1 = empty
	residentCount int
	residentBytes int64
	dirtyCount    int
	dirtyQ        []int32 // ascending dirty chunk indices (may hold tombstones)
	queued        []bool  // queue membership, one per chunk
}

// NumChunks returns the number of migration granules in the region.
func (r *Region) NumChunks() int { return len(r.arrival) }

// Resident reports whether chunk idx is device-resident (now or at a
// scheduled arrival).
func (r *Region) Resident(idx int) bool { return !math.IsInf(r.arrival[idx], 1) }

// ResidentChunks counts chunks with device residency. O(1).
func (r *Region) ResidentChunks() int { return r.residentCount }

// ResidentBytes returns the region's device-resident byte count. O(1).
func (r *Region) ResidentBytes() int64 { return r.residentBytes }

// DirtyChunks counts chunks written by the device since their last
// writeback. O(1).
func (r *Region) DirtyChunks() int { return r.dirtyCount }

// Manager is the UVM driver state for one device.
type Manager struct {
	cfg      Config
	bus      *pcie.Bus
	capacity int64 // device bytes available to managed memory

	regions  map[int64]*Region
	nextID   int64
	resident int64 // managed bytes currently on-device
	stamp    int64 // LRU clock

	// Flat arenas. nodes holds every chunk's intrusive list links as
	// int32 slot indices (slot 0 is the global LRU sentinel); regs holds
	// every Region ever created, indexed by Region.slot so victim lookup
	// resolves a node's owner without a pointer in the node. free lists
	// unregistered regions available for recycling (best-fit by chunk
	// capacity, so the choice is independent of free-list order).
	nodes     []chunkNode
	regs      []*Region
	free      []*Region
	scanEvict bool // select victims with the reference scan instead
	// onEvict, when non-nil, observes every eviction (region, chunk,
	// eviction-complete time). Differential tests use it to record and
	// compare victim order between the two evictors.
	onEvict func(r *Region, idx int, ready float64)

	Stats *counters.UVMStats
}

// NewManager creates a Manager backed by bus with the given device
// capacity budget for managed memory.
func NewManager(cfg Config, bus *pcie.Bus, capacity int64, stats *counters.UVMStats) *Manager {
	if cfg.ChunkBytes <= 0 || cfg.FaultBlockBytes <= 0 || cfg.FaultBlockBytes > cfg.ChunkBytes {
		panic("uvm: invalid granule configuration")
	}
	if stats == nil {
		stats = &counters.UVMStats{}
	}
	m := &Manager{
		cfg:      cfg,
		bus:      bus,
		capacity: capacity,
		regions:  make(map[int64]*Region),
		Stats:    stats,
	}
	m.initLRU()
	return m
}

// Config returns the manager configuration.
func (m *Manager) Config() Config { return m.cfg }

// ResidentBytes returns managed bytes currently device-resident.
func (m *Manager) ResidentBytes() int64 { return m.resident }

// Register creates a managed region of size bytes. Pages start
// host-resident (first-touch on device will fault them over). The
// returned Region may be a recycled object whose previous life ended
// with Unregister; its observable state is identical to a fresh one.
func (m *Manager) Register(size int64) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("uvm: invalid managed size %d", size)
	}
	n := int((size + m.cfg.ChunkBytes - 1) / m.cfg.ChunkBytes)
	r := m.takeRegion(n)
	r.Size = size
	m.nextID++
	r.id = m.nextID
	m.regions[r.id] = r
	return r, nil
}

// takeRegion returns a clean n-chunk region: the best-fitting free
// region when one is large enough (best-fit keeps the choice — and
// therefore the steady-state allocation count — independent of the
// free-list order), otherwise a newly grown one. Free regions hold the
// clean-state invariant (nothing resident, nothing dirty or queued,
// every owned node unlinked) over their whole node capacity, so slicing
// the per-chunk arrays to n is all the reinitialization reuse needs.
func (m *Manager) takeRegion(n int) *Region {
	best := -1
	for i, fr := range m.free {
		if int(fr.nodeCap) < n {
			continue
		}
		if best < 0 || fr.nodeCap < m.free[best].nodeCap {
			best = i
		}
	}
	if best >= 0 {
		r := m.free[best]
		m.free = append(m.free[:best], m.free[best+1:]...)
		r.arrival = r.arrival[:n]
		r.lastUse = r.lastUse[:n]
		r.dirty = r.dirty[:n]
		r.queued = r.queued[:n]
		return r
	}
	r := &Region{
		slot:    int32(len(m.regs)),
		base:    int32(len(m.nodes)),
		nodeCap: int32(n),
		resHead: -1,
		arrival: make([]float64, n),
		lastUse: make([]int64, n),
		dirty:   make([]bool, n),
		queued:  make([]bool, n),
	}
	for i := range r.arrival {
		r.arrival[i] = math.Inf(1)
	}
	m.regs = append(m.regs, r)
	m.newNodeRange(r, n)
	return r
}

// Unregister drops the region, releasing its device residency, and
// recycles the object onto the free list. It walks only the region's
// resident chunks and dirty queue, not every chunk.
func (m *Manager) Unregister(r *Region) error {
	if reg, ok := m.regions[r.id]; !ok || reg != r {
		return fmt.Errorf("uvm: unregister of unknown region %d", r.id)
	}
	m.releaseAll(r)
	m.recycle(r)
	delete(m.regions, r.id)
	return nil
}

// releaseAll unlinks every resident chunk of r from the global ring and
// the region list and clears the arrivals.
func (m *Manager) releaseAll(r *Region) {
	for s := r.resHead; s >= 0; {
		n := &m.nodes[s]
		r.arrival[n.idx] = math.Inf(1)
		m.nodes[n.prev].next = n.next
		m.nodes[n.next].prev = n.prev
		next := n.rnext
		n.prev, n.next, n.rprev, n.rnext = -1, -1, -1, -1
		s = next
	}
	r.resHead = -1
	m.resident -= r.residentBytes
	r.residentBytes = 0
	r.residentCount = 0
}

// recycle scrubs r back to the clean state (dirty bits and queue
// membership cleared via the queue, so the cost is proportional to the
// queue length) and parks it on the free list.
func (m *Manager) recycle(r *Region) {
	for _, qi := range r.dirtyQ {
		r.dirty[qi] = false
		r.queued[qi] = false
	}
	r.dirtyQ = r.dirtyQ[:0]
	r.dirtyCount = 0
	m.free = append(m.free, r)
}

// Reset force-unregisters every remaining region and restarts the id and
// stamp clocks, returning the manager to its post-NewManager state while
// keeping every arena warm for reuse. Configuration (capacity, eviction
// mode, observers, the Stats sink) is preserved; the caller owns
// re-zeroing Stats. Recycling is deterministic and recycled regions are
// indistinguishable from fresh ones, so a reset manager reproduces a
// fresh manager's simulation bit for bit.
func (m *Manager) Reset() {
	for id, r := range m.regions {
		m.releaseAll(r)
		m.recycle(r)
		delete(m.regions, id)
	}
	m.nextID = 0
	m.resident = 0
	m.stamp = 0
}

// chunkSize returns the byte size of chunk idx (the tail chunk may be
// short).
func (m *Manager) chunkSize(r *Region, idx int) int64 {
	if idx == r.NumChunks()-1 {
		if rem := r.Size % m.cfg.ChunkBytes; rem != 0 {
			return rem
		}
	}
	return m.cfg.ChunkBytes
}

// makeRoom evicts least-recently-used resident chunks until need bytes
// fit. Dirty victims are written back over PCIe at time t; eviction
// completion can push the effective availability time forward, which the
// caller receives. Victim selection is O(1) per eviction (ring head) and
// the whole call is O(1) when the need already fits.
func (m *Manager) makeRoom(t float64, need int64) float64 {
	ready := t
	for m.resident+need > m.capacity {
		victim, vIdx := m.victim()
		if victim == nil {
			panic(fmt.Sprintf("uvm: cannot evict to fit %d bytes in capacity %d", need, m.capacity))
		}
		size := m.chunkSize(victim, vIdx)
		if victim.dirty[vIdx] {
			end := m.bus.Writeback(ready, size)
			m.Stats.WritebackBytes += float64(size)
			ready = end
			victim.clearDirtyOnEvict(vIdx)
		}
		m.release(victim, vIdx, size)
		m.Stats.EvictedBytes += float64(size)
		m.Stats.Evictions++
		if tr := m.bus.Tracer(); tr != nil {
			tr.Instant(trace.UVMFaults, "evict", ready, trace.ChunkArgs(vIdx, size))
			tr.Count("uvm.evicted_bytes", float64(size))
		}
		if m.onEvict != nil {
			m.onEvict(victim, vIdx, ready)
		}
	}
	return ready
}

// DemandChunk makes chunk idx available for a GPU access happening at
// time t and returns the time the access can proceed. patternEff (0,1]
// derates migration bandwidth for demand orders the driver prefetcher
// cannot coalesce. coalesced marks a ramped sequential fault stream, in
// which the driver's density prefetcher amortizes one fault batch over
// many migration granules.
//
//   - Resident and arrived: proceed at t.
//   - In flight (prefetch racing demand): a fault is still raised; the
//     access proceeds at max(arrival, t+batch latency).
//   - Not resident: fault batch + on-demand migration.
func (m *Manager) DemandChunk(r *Region, idx int, t float64, patternEff float64, coalesced bool) float64 {
	m.touch(r, idx)
	if r.Resident(idx) {
		if arr := r.arrival[idx]; arr > t {
			m.Stats.PageFaults++
			m.Stats.FaultBatches++
			wait := t + m.cfg.FaultBatchLatencyNs
			if arr > wait {
				wait = arr
			}
			if tr := m.bus.Tracer(); tr != nil {
				// The access raced an in-flight prefetch: one fault, no
				// migration traffic.
				tr.Instant(trace.UVMFaults, "fault_wait", t, trace.ChunkArgs(idx, 0))
				tr.Count("uvm.fault_batches", 1)
			}
			return wait
		}
		return t
	}
	size := m.chunkSize(r, idx)
	ready := m.makeRoom(t, size)
	blocks := float64((size + m.cfg.FaultBlockBytes - 1) / m.cfg.FaultBlockBytes)
	latency := m.cfg.FaultBatchLatencyNs
	if coalesced {
		latency /= 8
		blocks /= 8
	}
	m.Stats.PageFaults += blocks
	m.Stats.FaultBatches++
	m.Stats.MigratedBytes += float64(size)
	if tr := m.bus.Tracer(); tr != nil {
		args := trace.ChunkArgs(idx, size)
		args.Batch = blocks
		tr.Instant(trace.UVMFaults, "fault_batch", ready, args)
		tr.Count("uvm.fault_batches", 1)
		tr.Count("uvm.migrated_bytes", float64(size))
	}
	end := m.bus.MigrateOnDemand(ready+latency, size, patternEff)
	m.hold(r, idx, end, size)
	return end
}

// DemandRange walks chunks [lo, hi) of r as one coalesced sequential
// demand stream: per chunk it performs exactly what
// DemandChunk(r, i, cursor, 1, true) does, then advances the compute
// cursor by the chunk's payload bytes × computePerByte, starting from
// cursor = t. The per-chunk float arithmetic, stats accumulation order
// and trace instants are identical to the equivalent caller-side
// DemandChunk loop — goldens and traces observe the same bytes — while
// the loop invariants (tracer lookup, the fault geometry of full-size
// chunks, the coalesced batch latency) are hoisted out of the hot loop.
// It returns the compute cursor after the last chunk.
func (m *Manager) DemandRange(r *Region, lo, hi int, t, computePerByte float64) float64 {
	tr := m.bus.Tracer()
	full := m.cfg.ChunkBytes
	fullBlocks := float64((full+m.cfg.FaultBlockBytes-1)/m.cfg.FaultBlockBytes) / 8
	latency := m.cfg.FaultBatchLatencyNs / 8
	last := r.NumChunks() - 1
	cursor := t
	for i := lo; i < hi; i++ {
		m.touch(r, i)
		size := full
		blocks := fullBlocks
		if i == last {
			if rem := r.Size % full; rem != 0 {
				size = rem
				blocks = float64((size+m.cfg.FaultBlockBytes-1)/m.cfg.FaultBlockBytes) / 8
			}
		}
		if !math.IsInf(r.arrival[i], 1) {
			avail := cursor
			if arr := r.arrival[i]; arr > cursor {
				m.Stats.PageFaults++
				m.Stats.FaultBatches++
				wait := cursor + m.cfg.FaultBatchLatencyNs
				if arr > wait {
					wait = arr
				}
				if tr != nil {
					tr.Instant(trace.UVMFaults, "fault_wait", cursor, trace.ChunkArgs(i, 0))
					tr.Count("uvm.fault_batches", 1)
				}
				avail = wait
			}
			cursor = avail + float64(size)*computePerByte
			continue
		}
		ready := cursor
		if m.resident+size > m.capacity {
			ready = m.makeRoom(cursor, size)
		}
		m.Stats.PageFaults += blocks
		m.Stats.FaultBatches++
		m.Stats.MigratedBytes += float64(size)
		if tr != nil {
			args := trace.ChunkArgs(i, size)
			args.Batch = blocks
			tr.Instant(trace.UVMFaults, "fault_batch", ready, args)
			tr.Count("uvm.fault_batches", 1)
			tr.Count("uvm.migrated_bytes", float64(size))
		}
		end := m.bus.MigrateOnDemand(ready+latency, size, 1)
		m.hold(r, i, end, size)
		cursor = end + float64(size)*computePerByte
	}
	return cursor
}

// PrefetchRegion issues cudaMemPrefetchAsync for the whole region at time
// t, streaming non-resident chunks over the H2D link in order. It returns
// the time the prefetch stream drains. Already-resident chunks cost only
// driver bookkeeping time (page-table walks, no link traffic).
//
// Room for the whole prefetch is checked once against the aggregate
// non-resident byte count: when the stream fits, the per-chunk
// room-making calls are skipped entirely. Under capacity pressure the
// driver keeps evicting per chunk as the stream advances, because victim
// writebacks and evict instants are defined to happen at stream time —
// an oversubscribed prefetch evicts its own earliest chunks mid-stream.
func (m *Manager) PrefetchRegion(r *Region, t float64) float64 {
	end := t + m.cfg.PrefetchCallNs
	evicting := m.resident+r.Size-r.residentBytes > m.capacity
	for i := 0; i < r.NumChunks(); i++ {
		size := m.chunkSize(r, i)
		if r.Resident(i) {
			end += float64(size) / float64(1<<30) * m.cfg.ResidentPrefetchNsPerGB
			continue
		}
		ready := end
		if evicting {
			ready = m.makeRoom(end, size)
		}
		end = m.bus.PrefetchChunk(ready, size)
		m.hold(r, i, end, size)
		m.Stats.PrefetchBytes += float64(size)
		m.touch(r, i)
	}
	return end
}

// MarkDeviceWritten makes all of the region's chunks device-resident as
// of time t without any transfer: a device-side write to a non-resident
// managed page allocates it on the device (first touch), it does not
// migrate stale host data.
//
// The capacity check happens once for the aggregate need: the common
// case (everything fits) links all non-resident chunks without a single
// room-making call. Only when the aggregate need oversubscribes the
// device does the driver fall back to allocate-and-evict per chunk —
// there the interleaving is observable (a written region larger than
// device memory evicts its own earliest chunks as later ones allocate),
// so it is preserved exactly.
func (m *Manager) MarkDeviceWritten(r *Region, t float64) {
	need := r.Size - r.residentBytes
	if need == 0 {
		return
	}
	if m.resident+need > m.capacity {
		for i := range r.arrival {
			if r.Resident(i) {
				continue
			}
			size := m.chunkSize(r, i)
			m.makeRoom(t, size)
			m.hold(r, i, t, size)
			m.touch(r, i)
		}
		return
	}
	for i := range r.arrival {
		if r.Resident(i) {
			continue
		}
		m.hold(r, i, t, m.chunkSize(r, i))
		m.touch(r, i)
	}
}

// MarkDirty records that the device wrote the byte range [off, off+n).
func (m *Manager) MarkDirty(r *Region, off, n int64) {
	if n <= 0 {
		return
	}
	first := off / m.cfg.ChunkBytes
	last := (off + n - 1) / m.cfg.ChunkBytes
	if max := int64(r.NumChunks() - 1); last > max {
		last = max
	}
	if first > last {
		return
	}
	r.markDirtyRange(int(first), int(last))
}

// WritebackDirty migrates the region's dirty chunks back to the host
// (the CPU touching results after cudaDeviceSynchronize), starting at t.
// It returns the completion time. Chunks stay device-resident (UVM keeps
// read duplicates).
func (m *Manager) WritebackDirty(r *Region, t float64) float64 {
	return m.WritebackPartial(r, t, r.Size)
}

// WritebackPartial migrates up to maxBytes of the region's dirty chunks
// back to the host, starting at t, and returns the completion time. It
// models a CPU consumer that touches only part of the result (checksums,
// sampled verification) — with UVM, untouched dirty pages never cross
// the bus, one of the paper's measured transfer savings.
//
// Iteration walks the region's dirty-index queue in ascending chunk
// order — only dirty chunks, not the whole region — dropping tombstones
// of chunks whose dirty state was cleared by eviction along the way.
func (m *Manager) WritebackPartial(r *Region, t float64, maxBytes int64) float64 {
	end := t
	if r.dirtyCount == 0 {
		return end
	}
	var moved int64
	q := r.dirtyQ
	k := 0
	for ; k < len(q); k++ {
		i := int(q[k])
		if !r.dirty[i] {
			r.queued[i] = false
			continue
		}
		if moved >= maxBytes {
			break
		}
		size := m.chunkSize(r, i)
		end = m.bus.Writeback(end, size)
		m.Stats.WritebackBytes += float64(size)
		r.dirty[i] = false
		r.dirtyCount--
		r.queued[i] = false
		moved += size
	}
	if k > 0 {
		n := copy(q, q[k:])
		r.dirtyQ = q[:n]
	}
	return end
}
