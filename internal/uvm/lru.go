package uvm

import "math"

// The eviction path used to select victims with a full scan over every
// chunk of every region — O(chunks) per evicted chunk, O(chunks²) for an
// oversubscribed pass. The manager keeps constant-time residency
// bookkeeping instead:
//
//   - a global LRU ring threaded through every resident chunk, ordered
//     by last-use stamp (the stamp clock is monotone and every residency
//     transition is accompanied by a touch, so append-at-MRU keeps the
//     ring sorted). Victim selection pops the ring's head; touch unlinks
//     and re-appends at the tail.
//   - a per-region resident list through the same nodes, so Unregister
//     releases a region in O(resident chunks) instead of O(chunks).
//   - per-region resident counters (count and bytes), making
//     ResidentChunks and aggregate capacity checks O(1).
//
// The links are int32 slot indices into one flat node arena owned by the
// Manager, not pointers: a simulated iteration relinks chunks millions
// of times, and pointer links made every relink a write-barrier hit and
// every node a GC scan target (the ~45% GC share of the pre-arena
// figure-suite profile). Index links touch no pointers, so the hot loop
// runs barrier-free and the arena is skipped by the garbage collector's
// scan entirely.
//
// The reference scan selector is retained in refscan.go; the
// differential test pins the two implementations to identical victim
// order, timing and stats.

// chunkNode is the intrusive list node of one migration granule, living
// in the Manager's flat arena at slot region.base+idx. A chunk is linked
// into the global ring and its region's resident list exactly while it
// is device-resident.
//
// Link encoding: slots are arena indices; slot 0 is the global LRU
// sentinel. prev/next use 0 for the sentinel and -1 for "not linked";
// rprev/rnext use -1 for the list ends.
type chunkNode struct {
	prev, next   int32 // global LRU ring, oldest stamp first
	rprev, rnext int32 // region resident list, arbitrary order
	region       int32 // owning region's slot in Manager.regs
	idx          int32 // chunk index within the region
}

// initLRU creates the node arena with the empty global-ring sentinel at
// slot 0.
func (m *Manager) initLRU() {
	m.nodes = append(m.nodes[:0], chunkNode{region: -1, idx: -1, rprev: -1, rnext: -1})
}

// newNodeRange appends n arena slots permanently owned by region r
// (slots [r.base, r.base+n)), all unlinked.
func (m *Manager) newNodeRange(r *Region, n int) {
	for i := 0; i < n; i++ {
		m.nodes = append(m.nodes, chunkNode{
			prev: -1, next: -1, rprev: -1, rnext: -1,
			region: r.slot, idx: int32(i),
		})
	}
}

// hold makes chunk idx device-resident with the given availability time:
// it links the chunk at the MRU end of the global ring, onto the region
// list, and updates the resident counters. The caller has touched (or is
// about to touch) the chunk, so MRU placement matches its stamp.
func (m *Manager) hold(r *Region, idx int, arrival float64, size int64) {
	r.arrival[idx] = arrival
	s := r.base + int32(idx)
	n := &m.nodes[s]
	tail := m.nodes[0].prev
	n.prev, n.next = tail, 0
	m.nodes[tail].next = s
	m.nodes[0].prev = s
	n.rprev, n.rnext = -1, r.resHead
	if r.resHead >= 0 {
		m.nodes[r.resHead].rprev = s
	}
	r.resHead = s
	r.residentCount++
	r.residentBytes += size
	m.resident += size
}

// release drops chunk idx's residency: unlink from the ring and the
// region list, clear the arrival, and update the counters.
func (m *Manager) release(r *Region, idx int, size int64) {
	r.arrival[idx] = math.Inf(1)
	s := r.base + int32(idx)
	n := &m.nodes[s]
	m.nodes[n.prev].next = n.next
	m.nodes[n.next].prev = n.prev
	n.prev, n.next = -1, -1
	if n.rprev >= 0 {
		m.nodes[n.rprev].rnext = n.rnext
	} else {
		r.resHead = n.rnext
	}
	if n.rnext >= 0 {
		m.nodes[n.rnext].rprev = n.rprev
	}
	n.rprev, n.rnext = -1, -1
	r.residentCount--
	r.residentBytes -= size
	m.resident -= size
}

// touch stamps chunk idx as recently used and, if it is resident, moves
// it to the MRU end of the global ring. next > 0 means "linked and not
// already the MRU tail" (0 is the sentinel, -1 is unlinked).
func (m *Manager) touch(r *Region, idx int) {
	m.stamp++
	r.lastUse[idx] = m.stamp
	s := r.base + int32(idx)
	if n := &m.nodes[s]; n.next > 0 {
		m.nodes[n.prev].next = n.next
		m.nodes[n.next].prev = n.prev
		tail := m.nodes[0].prev
		n.prev, n.next = tail, 0
		m.nodes[tail].next = s
		m.nodes[0].prev = s
	}
}

// victim returns the least-recently-used resident chunk, or (nil, -1)
// when nothing is resident. O(1) on the LRU ring; the reference scan
// selector is used instead when the manager is in reference mode.
func (m *Manager) victim() (*Region, int) {
	if m.scanEvict {
		return m.victimScan()
	}
	if s := m.nodes[0].next; s != 0 {
		n := &m.nodes[s]
		return m.regs[n.region], int(n.idx)
	}
	return nil, -1
}
