package uvm

import "math"

// The eviction path used to select victims with a full scan over every
// chunk of every region — O(chunks) per evicted chunk, O(chunks²) for an
// oversubscribed pass. The manager now keeps constant-time residency
// bookkeeping instead:
//
//   - a global intrusive doubly-linked LRU ring threaded through every
//     resident chunk, ordered by last-use stamp (the stamp clock is
//     monotone and every residency transition is accompanied by a touch,
//     so append-at-MRU keeps the ring sorted). Victim selection pops the
//     ring's head; touch unlinks and re-appends at the tail.
//   - a per-region resident ring through the same nodes, so Unregister
//     releases a region in O(resident chunks) instead of O(chunks).
//   - per-region resident counters (count and bytes), making
//     ResidentChunks and aggregate capacity checks O(1).
//
// The reference scan selector is retained in refscan.go; the
// differential test pins the two implementations to identical victim
// order, timing and stats.

// chunkNode is the intrusive list node of one migration granule. A chunk
// is linked into both rings exactly while it is device-resident
// (prev/next and rprev/rnext are nil otherwise).
type chunkNode struct {
	region *Region
	idx    int32

	prev, next   *chunkNode // global LRU ring, oldest stamp first
	rprev, rnext *chunkNode // region resident ring, arbitrary order
}

// initLRU makes the manager's global ring empty.
func (m *Manager) initLRU() {
	m.lru.prev = &m.lru
	m.lru.next = &m.lru
}

// initNodes builds the region's node array and empties its resident ring.
func (r *Region) initNodes() {
	r.nodes = make([]chunkNode, len(r.arrival))
	for i := range r.nodes {
		r.nodes[i].region = r
		r.nodes[i].idx = int32(i)
	}
	r.res.rprev = &r.res
	r.res.rnext = &r.res
}

// hold makes chunk idx device-resident with the given availability time:
// it links the chunk at the MRU end of the global ring, into the region
// ring, and updates the resident counters. The caller has touched (or is
// about to touch) the chunk, so MRU placement matches its stamp.
func (m *Manager) hold(r *Region, idx int, arrival float64, size int64) {
	r.arrival[idx] = arrival
	n := &r.nodes[idx]
	n.prev = m.lru.prev
	n.next = &m.lru
	n.prev.next = n
	m.lru.prev = n
	n.rprev = r.res.rprev
	n.rnext = &r.res
	n.rprev.rnext = n
	r.res.rprev = n
	r.residentCount++
	r.residentBytes += size
	m.resident += size
}

// release drops chunk idx's residency: unlink from both rings, clear the
// arrival, and update the counters.
func (m *Manager) release(r *Region, idx int, size int64) {
	r.arrival[idx] = math.Inf(1)
	n := &r.nodes[idx]
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
	n.rprev.rnext = n.rnext
	n.rnext.rprev = n.rprev
	n.rprev, n.rnext = nil, nil
	r.residentCount--
	r.residentBytes -= size
	m.resident -= size
}

// touch stamps chunk idx as recently used and, if it is resident, moves
// it to the MRU end of the global ring.
func (m *Manager) touch(r *Region, idx int) {
	m.stamp++
	r.lastUse[idx] = m.stamp
	if n := &r.nodes[idx]; n.next != nil && n.next != &m.lru {
		n.prev.next = n.next
		n.next.prev = n.prev
		n.prev = m.lru.prev
		n.next = &m.lru
		n.prev.next = n
		m.lru.prev = n
	}
}

// victim returns the least-recently-used resident chunk, or (nil, -1)
// when nothing is resident. O(1) on the LRU ring; the reference scan
// selector is used instead when the manager is in reference mode.
func (m *Manager) victim() (*Region, int) {
	if m.scanEvict {
		return m.victimScan()
	}
	if n := m.lru.next; n != &m.lru {
		return n.region, int(n.idx)
	}
	return nil, -1
}
