package uvm

import "math"

// victimScan is the retained reference evictor: the pre-optimization
// full scan over every chunk of every region for the smallest last-use
// stamp. It is O(chunks) per call where the LRU ring is O(1), but selects
// the exact same victim: stamps are unique, and the ring is kept sorted
// by stamp. The differential test (differential_test.go) drives random
// workloads through both selectors and asserts identical victim order,
// arrival times, stats and trace events.
//
// Map iteration order over m.regions is not deterministic, but the
// strict `<` comparison on unique stamps makes the selected victim
// independent of it — a property the scan relied on all along.
func (m *Manager) victimScan() (*Region, int) {
	var victim *Region
	vIdx := -1
	var oldest int64 = math.MaxInt64
	for _, reg := range m.regions {
		for i := range reg.arrival {
			if reg.Resident(i) && reg.lastUse[i] < oldest {
				oldest = reg.lastUse[i]
				victim, vIdx = reg, i
			}
		}
	}
	return victim, vIdx
}

// SetReferenceEviction switches victim selection to the reference scan
// evictor (on) or back to the O(1) LRU ring (off). Both produce
// bit-identical simulation results; the scan exists as the oracle for
// differential tests and benchmarks.
func (m *Manager) SetReferenceEviction(on bool) { m.scanEvict = on }
