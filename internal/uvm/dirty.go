package uvm

import "sort"

// Dirty bookkeeping: r.dirty remains the per-chunk truth, and the region
// additionally keeps an ascending queue of dirty chunk indices so the
// writeback paths iterate only dirty chunks instead of scanning the whole
// region. Eviction clears a chunk's dirty bit in O(1) and leaves its
// queue entry behind as a stale tombstone (r.queued tracks queue
// membership, so an index appears at most once); the writeback iteration
// drops tombstones as it passes them. Queue length is therefore bounded
// by the chunk count.

// markDirtyRange marks chunks [first, last] dirty and splices the range
// into the dirty queue. Because chunk indices in a contiguous range
// occupy one contiguous span of the ascending queue, the splice is a
// single copy regardless of how many of them were already queued.
func (r *Region) markDirtyRange(first, last int) {
	for i := first; i <= last; i++ {
		if !r.dirty[i] {
			r.dirty[i] = true
			r.dirtyCount++
		}
	}
	lo := sort.Search(len(r.dirtyQ), func(k int) bool { return r.dirtyQ[k] >= int32(first) })
	hi := sort.Search(len(r.dirtyQ), func(k int) bool { return r.dirtyQ[k] > int32(last) })
	want := last - first + 1
	if hi-lo == want {
		return // the whole range is already queued
	}
	grow := want - (hi - lo)
	n := len(r.dirtyQ)
	if n+grow > cap(r.dirtyQ) {
		// Queue length is bounded by the chunk count, so after warm-up the
		// retained capacity makes this branch (the only allocation) dead.
		tmp := make([]int32, n, n+grow+n)
		copy(tmp, r.dirtyQ)
		r.dirtyQ = tmp
	}
	r.dirtyQ = r.dirtyQ[:n+grow]
	copy(r.dirtyQ[lo+want:], r.dirtyQ[hi:n])
	for i := 0; i < want; i++ {
		idx := int32(first + i)
		r.dirtyQ[lo+i] = idx
		r.queued[idx] = true
	}
}

// clearDirtyOnEvict drops chunk idx's dirty bit without touching the
// queue (the entry becomes a tombstone).
func (r *Region) clearDirtyOnEvict(idx int) {
	if r.dirty[idx] {
		r.dirty[idx] = false
		r.dirtyCount--
	}
}
