// Package cuda is the simulated CUDA runtime the workloads program
// against. It exposes the paper's five data-transfer configurations
// (standard, async, uvm, uvm_prefetch, uvm_prefetch_async), a CUDA-shaped
// API (Malloc/MallocManaged/Free, MemcpyH2D/D2H, kernel launch,
// Synchronize) and the execution-time breakdown the paper's harness
// measures: data allocation, CPU-GPU data transfer, and GPU kernel time.
package cuda

import (
	"encoding/json"
	"fmt"

	"uvmasim/internal/nearest"
)

// Setup is one of the paper's five architecture configurations (§3.1.3).
type Setup int

const (
	// Standard uses explicit cudaMalloc + cudaMemcpy, synchronous tile
	// staging.
	Standard Setup = iota
	// Async keeps explicit transfers but stages tiles with memcpy_async.
	Async
	// UVM uses cudaMallocManaged with on-demand page migration.
	UVM
	// UVMPrefetch adds cudaMemPrefetchAsync streaming to UVM.
	UVMPrefetch
	// UVMPrefetchAsync combines UVM, prefetch and memcpy_async — the
	// full three-stage pipeline of Figure 1.
	UVMPrefetchAsync
)

// AllSetups lists the five configurations in the paper's presentation
// order.
var AllSetups = []Setup{Standard, Async, UVM, UVMPrefetch, UVMPrefetchAsync}

// String returns the paper's name for the setup.
func (s Setup) String() string {
	switch s {
	case Standard:
		return "standard"
	case Async:
		return "async"
	case UVM:
		return "uvm"
	case UVMPrefetch:
		return "uvm_prefetch"
	case UVMPrefetchAsync:
		return "uvm_prefetch_async"
	}
	return fmt.Sprintf("Setup(%d)", int(s))
}

// MarshalJSON encodes the setup as its paper name, so machine-readable
// figure output carries "uvm_prefetch" rather than an enum ordinal.
func (s Setup) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a paper name back into a Setup.
func (s *Setup) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	parsed, err := ParseSetup(name)
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// ParseSetup resolves a setup by its paper name.
func ParseSetup(name string) (Setup, error) {
	names := make([]string, len(AllSetups))
	for i, s := range AllSetups {
		if s.String() == name {
			return s, nil
		}
		names[i] = AllSetups[i].String()
	}
	return 0, fmt.Errorf("cuda: unknown setup %q%s", name, nearest.Hint(name, names, 3))
}

// Managed reports whether buffers allocate through cudaMallocManaged.
func (s Setup) Managed() bool {
	return s == UVM || s == UVMPrefetch || s == UVMPrefetchAsync
}

// Prefetch reports whether cudaMemPrefetchAsync is issued before kernels.
func (s Setup) Prefetch() bool {
	return s == UVMPrefetch || s == UVMPrefetchAsync
}

// AsyncCopy reports whether kernels stage tiles with memcpy_async.
func (s Setup) AsyncCopy() bool {
	return s == Async || s == UVMPrefetchAsync
}
