// Package cuda is the simulated CUDA runtime the workloads program
// against. It exposes an open-ended registry of data-transfer setups —
// seeded with the paper's five configurations (standard, async, uvm,
// uvm_prefetch, uvm_prefetch_async) plus the zero-copy and SM-copy
// extension modes — a CUDA-shaped API (Malloc/MallocManaged/Free,
// MemcpyH2D/D2H, kernel launch, Synchronize) and the execution-time
// breakdown the paper's harness measures: data allocation, CPU-GPU data
// transfer, and GPU kernel time.
package cuda

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"uvmasim/internal/nearest"
)

// Setup identifies one registered data-transfer configuration: an index
// into the setup registry. The zero value is the standard setup.
type Setup int

// The built-in setups, registered in this order at package init. The
// first five are the paper's §3.1.3 configurations; the last two are the
// extension modes behind the ROADMAP's "new transfer modes" item.
const (
	// Standard uses explicit cudaMalloc + cudaMemcpy, synchronous tile
	// staging. It is the registry's baseline: improvement statistics are
	// computed against it whenever a study includes it.
	Standard Setup = iota
	// Async keeps explicit transfers but stages tiles with memcpy_async.
	Async
	// UVM uses cudaMallocManaged with on-demand page migration.
	UVM
	// UVMPrefetch adds cudaMemPrefetchAsync streaming to UVM.
	UVMPrefetch
	// UVMPrefetchAsync combines UVM, prefetch and memcpy_async — the
	// full three-stage pipeline of Figure 1.
	UVMPrefetchAsync
	// UVMZeroCopy accesses host-coherent managed memory in place over
	// the link: no fault migration, no device residency, no eviction
	// pressure — every access pays the link's latency/bandwidth instead
	// (the MI300A-style unified-physical-memory mode).
	UVMZeroCopy
	// UVMSMCopy stages inputs with SM-driven bulk copies into device
	// memory before computing: the transfer consumes kernel-side
	// bandwidth and SM time instead of copy-engine bandwidth (the
	// nvbandwidth SM-copy path).
	UVMSMCopy
)

// Desc describes one registered setup: its wire/CLI name, its capability
// bits, and its role in presentation (Paper marks membership in the
// paper's default five-setup presentation; Baseline marks the setup
// improvement statistics normalize against).
type Desc struct {
	Name string

	// Managed marks buffers as cudaMallocManaged allocations.
	Managed bool
	// Prefetch issues cudaMemPrefetchAsync before kernels.
	Prefetch bool
	// AsyncCopy stages tiles with memcpy_async inside kernels.
	AsyncCopy bool
	// ZeroCopy accesses host memory in place over the link (implies
	// Managed, excludes Prefetch and SMCopy).
	ZeroCopy bool
	// SMCopy stages inputs with SM-driven copies (implies Managed,
	// excludes Prefetch and ZeroCopy).
	SMCopy bool

	// Baseline designates the improvement baseline. Studies that include
	// a baseline setup normalize against it; studies that do not use
	// their first setup.
	Baseline bool
	// Paper marks the setup as part of the paper's default presentation
	// list (PaperSetups).
	Paper bool
}

// registry holds the immutable descriptor snapshot; Register swaps in a
// copy under regMu. Hot-path capability reads (Managed() in the demand
// loop) are a single atomic load plus an index.
var (
	regMu    sync.Mutex
	registry atomic.Value // []Desc
)

func init() {
	registry.Store([]Desc{
		{Name: "standard", Baseline: true, Paper: true},
		{Name: "async", AsyncCopy: true, Paper: true},
		{Name: "uvm", Managed: true, Paper: true},
		{Name: "uvm_prefetch", Managed: true, Prefetch: true, Paper: true},
		{Name: "uvm_prefetch_async", Managed: true, Prefetch: true, AsyncCopy: true, Paper: true},
		{Name: "uvm_zerocopy", Managed: true, ZeroCopy: true},
		{Name: "uvm_smcopy", Managed: true, SMCopy: true},
	})
}

func descs() []Desc { return registry.Load().([]Desc) }

// Register adds a setup descriptor to the registry and returns its
// Setup. Names must be unique, non-empty and free of whitespace and
// commas (they appear in CLI lists, store keys and JSON); capability
// bits must be coherent (zero-copy and SM-copy are managed modes and
// mutually exclusive, prefetch requires managed memory). Registration
// is append-only: existing Setup values never change meaning.
func Register(d Desc) (Setup, error) {
	if d.Name == "" {
		return 0, fmt.Errorf("cuda: setup name must not be empty")
	}
	if strings.ContainsAny(d.Name, " \t\n,") {
		return 0, fmt.Errorf("cuda: setup name %q must not contain whitespace or commas", d.Name)
	}
	if d.ZeroCopy && d.SMCopy {
		return 0, fmt.Errorf("cuda: setup %q: zero-copy and SM-copy are mutually exclusive", d.Name)
	}
	if (d.ZeroCopy || d.SMCopy) && !d.Managed {
		return 0, fmt.Errorf("cuda: setup %q: zero-copy and SM-copy modes require managed memory", d.Name)
	}
	if d.ZeroCopy && d.Prefetch {
		return 0, fmt.Errorf("cuda: setup %q: zero-copy never migrates, prefetch does not apply", d.Name)
	}
	if d.Prefetch && !d.Managed {
		return 0, fmt.Errorf("cuda: setup %q: prefetch requires managed memory", d.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	cur := descs()
	for _, e := range cur {
		if e.Name == d.Name {
			return 0, fmt.Errorf("cuda: setup %q already registered", d.Name)
		}
	}
	next := make([]Desc, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = d
	registry.Store(next)
	return Setup(len(cur)), nil
}

// Registered returns every registered setup in registration order. The
// slice is fresh; callers may reorder it.
func Registered() []Setup {
	n := len(descs())
	out := make([]Setup, n)
	for i := range out {
		out[i] = Setup(i)
	}
	return out
}

// PaperSetups returns the setups of the paper's default presentation
// (the original five), in the paper's order. The slice is fresh.
func PaperSetups() []Setup {
	var out []Setup
	for i, d := range descs() {
		if d.Paper {
			out = append(out, Setup(i))
		}
	}
	return out
}

// SetupNames returns every registered setup name in registration order,
// for inventory listings and nearest-name hints.
func SetupNames() []string {
	ds := descs()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// BaselineIndex returns the position, within the given study list, of
// the setup improvement statistics should normalize against: the first
// registered Baseline setup present, or position 0 when none is. An
// empty list returns 0.
func BaselineIndex(setups []Setup) int {
	for i, s := range setups {
		if d, ok := s.Describe(); ok && d.Baseline {
			return i
		}
	}
	return 0
}

// Describe returns the setup's registry descriptor; ok is false for a
// Setup value outside the registry.
func (s Setup) Describe() (Desc, bool) {
	ds := descs()
	if s < 0 || int(s) >= len(ds) {
		return Desc{}, false
	}
	return ds[int(s)], true
}

// String returns the setup's registered name.
func (s Setup) String() string {
	if d, ok := s.Describe(); ok {
		return d.Name
	}
	return fmt.Sprintf("Setup(%d)", int(s))
}

// MarshalJSON encodes the setup as its registered name, so
// machine-readable figure output carries "uvm_prefetch" rather than a
// registry ordinal.
func (s Setup) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a registered name back into a Setup.
func (s *Setup) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	parsed, err := ParseSetup(name)
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// ParseSetup resolves a setup by its registered name, suggesting the
// nearest registered name on a miss.
func ParseSetup(name string) (Setup, error) {
	ds := descs()
	for i, d := range ds {
		if d.Name == name {
			return Setup(i), nil
		}
	}
	return 0, fmt.Errorf("cuda: unknown setup %q%s", name, nearest.Hint(name, SetupNames(), 3))
}

// ParseSetupList resolves a comma-separated list of registered setup
// names (the -setups flag and the serve spec's "setups" field), in
// order, rejecting unknown names, empty lists and duplicates upfront.
func ParseSetupList(list string) ([]Setup, error) {
	var out []Setup
	seen := make(map[Setup]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := ParseSetup(name)
		if err != nil {
			return nil, err
		}
		if seen[s] {
			return nil, fmt.Errorf("cuda: setup %q listed twice", name)
		}
		seen[s] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cuda: setup list names no setups")
	}
	return out, nil
}

// Managed reports whether buffers allocate through cudaMallocManaged.
func (s Setup) Managed() bool {
	d, _ := s.Describe()
	return d.Managed
}

// Prefetch reports whether cudaMemPrefetchAsync is issued before kernels.
func (s Setup) Prefetch() bool {
	d, _ := s.Describe()
	return d.Prefetch
}

// AsyncCopy reports whether kernels stage tiles with memcpy_async.
func (s Setup) AsyncCopy() bool {
	d, _ := s.Describe()
	return d.AsyncCopy
}

// ZeroCopy reports whether kernels access host-coherent memory in place
// over the link instead of migrating pages.
func (s Setup) ZeroCopy() bool {
	d, _ := s.Describe()
	return d.ZeroCopy
}

// SMCopy reports whether kernels stage inputs with SM-driven copies
// before computing.
func (s Setup) SMCopy() bool {
	d, _ := s.Describe()
	return d.SMCopy
}
