package cuda

import (
	"math"
	"testing"

	"uvmasim/internal/gpu"
)

// streamSpec is a vector_seq-like kernel over n float32 elements.
func streamSpec(n int64) gpu.KernelSpec {
	return gpu.KernelSpec{
		Name:            "stream",
		Blocks:          4096,
		ThreadsPerBlock: 256,
		LoadBytes:       4 * n,
		StoreBytes:      4 * n,
		Flops:           40 * float64(n),
		IntOps:          6 * float64(n),
		CtrlOps:         float64(n) / 8,
		TileBytes:       16 << 10,
		Access:          gpu.Sequential,
		WorkingSetKB:    8,
	}
}

func irregularSpec(n int64) gpu.KernelSpec {
	s := streamSpec(n)
	s.Name = "irregular"
	s.Access = gpu.Irregular
	s.LoadAccessBytes = s.LoadBytes * 3
	return s
}

// runStream executes the canonical alloc/upload/launch/download/free flow
// and returns the breakdown.
func runStream(t *testing.T, setup Setup, n int64, seed int64) Breakdown {
	t.Helper()
	ctx := NewContext(DefaultSystemConfig(), setup, seed)
	buf, err := ctx.Alloc("v", 4*n)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Upload(buf); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(Launch{Spec: streamSpec(n), Reads: []*Buffer{buf}, Writes: []*Buffer{buf}}); err != nil {
		t.Fatal(err)
	}
	ctx.Synchronize()
	if err := ctx.Consume(buf); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(buf); err != nil {
		t.Fatal(err)
	}
	return ctx.Breakdown()
}

const largeN = 128 << 20 // 512 MB footprint ("Large" 1D input)

func TestSetupNames(t *testing.T) {
	want := []string{"standard", "async", "uvm", "uvm_prefetch", "uvm_prefetch_async"}
	for i, s := range PaperSetups() {
		if s.String() != want[i] {
			t.Errorf("setup %d name = %q, want %q", i, s, want[i])
		}
		parsed, err := ParseSetup(want[i])
		if err != nil || parsed != s {
			t.Errorf("ParseSetup(%q) = %v, %v", want[i], parsed, err)
		}
	}
	if _, err := ParseSetup("bogus"); err == nil {
		t.Error("ParseSetup should reject unknown names")
	}
	if !UVMPrefetchAsync.Managed() || !UVMPrefetchAsync.Prefetch() || !UVMPrefetchAsync.AsyncCopy() {
		t.Error("uvm_prefetch_async should enable all three features")
	}
	if Standard.Managed() || Standard.Prefetch() || Standard.AsyncCopy() {
		t.Error("standard should enable none")
	}
}

func TestStandardFlowBreakdown(t *testing.T) {
	b := runStream(t, Standard, largeN, 1)
	if b.Alloc <= 0 || b.Memcpy <= 0 || b.Kernel <= 0 || b.Overhead <= 0 {
		t.Fatalf("all components should be positive: %+v", b)
	}
	// Components must account for the total (CPU never idles elsewhere in
	// this flow).
	sum := b.Alloc + b.Memcpy + b.Kernel + b.Overhead
	if math.Abs(sum-b.Total)/b.Total > 0.02 {
		t.Errorf("components sum %v != total %v", sum, b.Total)
	}
	// H2D + D2H of 512 MB at ~24 GB/s effective: tens of ms; memcpy must
	// dominate the kernel for this memory-bound workload.
	if b.Memcpy < b.Kernel {
		t.Errorf("standard memcpy (%v) should dominate kernel (%v)", b.Memcpy, b.Kernel)
	}
}

func TestUVMSkipsExplicitCopyButMigrates(t *testing.T) {
	std := runStream(t, Standard, largeN, 2)
	uvm := runStream(t, UVM, largeN, 2)
	// UVM moves data during the kernel: kernel component inflates, and
	// transfer busy time persists (migration + writeback).
	if uvm.Kernel <= std.Kernel {
		t.Errorf("uvm kernel (%v) should exceed standard kernel (%v)", uvm.Kernel, std.Kernel)
	}
	if uvm.Memcpy <= 0 {
		t.Errorf("uvm should still show transfer busy time (migration), got %v", uvm.Memcpy)
	}
	// Transfer savings: dirty writeback replaces the full D2H, and
	// fault-granularity H2D overlaps the kernel (§4.1.1: 31-35% savings).
	if uvm.Memcpy >= std.Memcpy {
		t.Errorf("uvm transfer time (%v) should be below standard (%v)", uvm.Memcpy, std.Memcpy)
	}
}

func TestPrefetchBeatsOnDemandForSequential(t *testing.T) {
	uvm := runStream(t, UVM, largeN, 3)
	pf := runStream(t, UVMPrefetch, largeN, 3)
	if pf.Total >= uvm.Total {
		t.Errorf("uvm_prefetch total (%v) should beat uvm (%v) on a sequential workload",
			pf.Total, uvm.Total)
	}
	if pf.Kernel >= uvm.Kernel {
		t.Errorf("prefetch should cut kernel stall time: %v >= %v", pf.Kernel, uvm.Kernel)
	}
}

// Multi-launch irregular workloads (lud's per-diagonal kernels, nw's
// alternating kernels) gain nothing from prefetching: the data is
// resident after the first sweep, yet every launch pays the redundant
// prefetch's driver bookkeeping (§4.1.2).
func TestPrefetchUselessForMultiLaunchIrregular(t *testing.T) {
	const launches = 12
	run := func(setup Setup) Breakdown {
		ctx := NewContext(DefaultSystemConfig(), setup, 4)
		buf, err := ctx.Alloc("v", 4*largeN)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.Upload(buf); err != nil {
			t.Fatal(err)
		}
		spec := irregularSpec(largeN)
		spec.Flops /= launches
		spec.IntOps /= launches
		spec.CtrlOps /= launches
		for i := 0; i < launches; i++ {
			if err := ctx.Launch(Launch{Spec: spec, Reads: []*Buffer{buf}, Writes: []*Buffer{buf}}); err != nil {
				t.Fatal(err)
			}
		}
		ctx.Synchronize()
		if err := ctx.Consume(buf); err != nil {
			t.Fatal(err)
		}
		if err := ctx.Free(buf); err != nil {
			t.Fatal(err)
		}
		return ctx.Breakdown()
	}
	uvm := run(UVM)
	pf := run(UVMPrefetch)
	gainIrr := 1 - pf.Total/uvm.Total
	// Only the first sweep's migration can be accelerated; every later
	// launch pays redundant driver bookkeeping, so the gain stays small
	// (possibly negative).
	if gainIrr > 0.12 {
		t.Errorf("per-launch prefetch gained %.1f%% on a multi-launch irregular workload; expected <=12%%",
			100*gainIrr)
	}
}

func TestSecondKernelOnResidentDataIsCheap(t *testing.T) {
	ctx := NewContext(DefaultSystemConfig(), UVM, 5)
	buf, _ := ctx.Alloc("v", 4*largeN)
	spec := streamSpec(largeN)
	if err := ctx.Launch(Launch{Spec: spec, Reads: []*Buffer{buf}, Writes: []*Buffer{buf}}); err != nil {
		t.Fatal(err)
	}
	spans := ctx.KernelSpans()
	first := spans[0].Len()
	if err := ctx.Launch(Launch{Spec: spec, Reads: []*Buffer{buf}, Writes: []*Buffer{buf}}); err != nil {
		t.Fatal(err)
	}
	spans = ctx.KernelSpans()
	second := spans[1].Len()
	if second >= first/2 {
		t.Errorf("second kernel on resident data (%v) should be far cheaper than first (%v)", second, first)
	}
}

func TestManagedMismatchErrors(t *testing.T) {
	ctx := NewContext(DefaultSystemConfig(), Standard, 6)
	buf, _ := ctx.Alloc("v", 1<<20)
	if err := ctx.Consume(buf); err != nil {
		t.Fatal(err)
	}
	// Managed buffer in a standard context.
	mb, err := ctx.MallocManaged("m", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	err = ctx.Launch(Launch{Spec: streamSpec(1 << 10), Reads: []*Buffer{mb}})
	if err == nil {
		t.Error("launch with mismatched buffer kind should fail")
	}
	if err := ctx.MemcpyH2D(mb); err == nil {
		t.Error("explicit memcpy on managed buffer should fail")
	}
	if err := ctx.Free(mb); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(buf); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(buf); err == nil {
		t.Error("double free should fail")
	}
	if err := ctx.MemcpyH2D(buf); err == nil {
		t.Error("memcpy on freed buffer should fail")
	}
	if err := ctx.Launch(Launch{Spec: streamSpec(1 << 10), Reads: []*Buffer{buf}}); err == nil {
		t.Error("launch with freed buffer should fail")
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	a := runStream(t, UVMPrefetchAsync, largeN, 42)
	b := runStream(t, UVMPrefetchAsync, largeN, 42)
	if a != b {
		t.Errorf("same seed should reproduce identical breakdowns:\n%+v\n%+v", a, b)
	}
	c := runStream(t, UVMPrefetchAsync, largeN, 43)
	if a == c {
		t.Errorf("different seeds should differ")
	}
}

func TestLaunchBodyRuns(t *testing.T) {
	ctx := NewContext(DefaultSystemConfig(), Standard, 7)
	buf, _ := ctx.Alloc("v", 1<<20)
	ran := false
	err := ctx.Launch(Launch{
		Spec:  streamSpec(1 << 10),
		Reads: []*Buffer{buf},
		Body:  func() { ran = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("launch body did not run")
	}
}

func TestCountersPopulated(t *testing.T) {
	ctx := NewContext(DefaultSystemConfig(), UVMPrefetchAsync, 8)
	buf, _ := ctx.Alloc("v", 4*largeN)
	if err := ctx.Launch(Launch{Spec: streamSpec(largeN), Reads: []*Buffer{buf}, Writes: []*Buffer{buf}}); err != nil {
		t.Fatal(err)
	}
	ctx.Synchronize()
	ctrs := ctx.Counters()
	if ctrs.Inst.Total() <= 0 {
		t.Error("instruction mix should be populated")
	}
	if ctrs.UVM.PrefetchBytes <= 0 {
		t.Error("prefetch bytes should be recorded")
	}
	if ctrs.Occupancy() <= 0 || ctrs.Occupancy() > 1 {
		t.Errorf("occupancy %v out of range", ctrs.Occupancy())
	}
	if ctrs.KernelBusy() <= 0 {
		t.Error("kernel busy time should be recorded")
	}
}

func TestDeviceOOM(t *testing.T) {
	ctx := NewContext(DefaultSystemConfig(), Standard, 9)
	if _, err := ctx.Malloc("too-big", 100<<30); err == nil {
		t.Error("allocating beyond HBM capacity should fail")
	}
}

func TestAllocKindFollowsSetup(t *testing.T) {
	for _, s := range Registered() {
		ctx := NewContext(DefaultSystemConfig(), s, 10)
		b, err := ctx.Alloc("x", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if b.Managed() != s.Managed() {
			t.Errorf("setup %v: buffer managed=%v, want %v", s, b.Managed(), s.Managed())
		}
	}
}
