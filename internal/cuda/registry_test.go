package cuda

import (
	"strings"
	"sync"
	"testing"
)

// TestRegisterValidation pins the descriptor coherence rules: names must
// be non-empty and list-safe, and the capability bits must describe a
// mode the simulator can execute.
func TestRegisterValidation(t *testing.T) {
	cases := []struct {
		name    string
		d       Desc
		wantErr string
	}{
		{"empty name", Desc{}, "must not be empty"},
		{"space in name", Desc{Name: "a b"}, "whitespace"},
		{"comma in name", Desc{Name: "a,b"}, "whitespace or commas"},
		{"newline in name", Desc{Name: "a\nb"}, "whitespace"},
		{"zerocopy+smcopy", Desc{Name: "x", Managed: true, ZeroCopy: true, SMCopy: true}, "mutually exclusive"},
		{"zerocopy unmanaged", Desc{Name: "x", ZeroCopy: true}, "require managed"},
		{"smcopy unmanaged", Desc{Name: "x", SMCopy: true}, "require managed"},
		{"zerocopy+prefetch", Desc{Name: "x", Managed: true, ZeroCopy: true, Prefetch: true}, "prefetch does not apply"},
		{"prefetch unmanaged", Desc{Name: "x", Prefetch: true}, "prefetch requires managed"},
		{"duplicate", Desc{Name: "uvm", Managed: true}, "already registered"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Register(c.d); err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Register(%+v) = %v, want error containing %q", c.d, err, c.wantErr)
			}
		})
	}
}

// TestBuiltinRegistry pins the built-in registrations: the paper's five
// in presentation order with standard as the baseline, plus the two
// extension modes with their capability bits.
func TestBuiltinRegistry(t *testing.T) {
	paper := PaperSetups()
	want := []Setup{Standard, Async, UVM, UVMPrefetch, UVMPrefetchAsync}
	if len(paper) != len(want) {
		t.Fatalf("PaperSetups() = %v, want %v", paper, want)
	}
	for i, s := range want {
		if paper[i] != s {
			t.Fatalf("PaperSetups()[%d] = %v, want %v", i, paper[i], s)
		}
	}
	if n := len(Registered()); n < 7 {
		t.Errorf("Registered() has %d setups, want >= 7", n)
	}
	if !UVMZeroCopy.Managed() || !UVMZeroCopy.ZeroCopy() || UVMZeroCopy.Prefetch() || UVMZeroCopy.SMCopy() {
		t.Errorf("uvm_zerocopy capability bits wrong")
	}
	if !UVMSMCopy.Managed() || !UVMSMCopy.SMCopy() || UVMSMCopy.Prefetch() || UVMSMCopy.ZeroCopy() {
		t.Errorf("uvm_smcopy capability bits wrong")
	}
	if d, ok := Standard.Describe(); !ok || !d.Baseline {
		t.Errorf("standard should be the registered baseline")
	}
}

// TestParseSetupHints: unknown names are rejected upfront with a
// nearest-name suggestion, both singly and in lists.
func TestParseSetupHints(t *testing.T) {
	if _, err := ParseSetup("uvm_zercopy"); err == nil ||
		!strings.Contains(err.Error(), "uvm_zerocopy") {
		t.Errorf("ParseSetup hint missing: %v", err)
	}
	if _, err := ParseSetupList("standard,uvm_smcpy"); err == nil ||
		!strings.Contains(err.Error(), "uvm_smcopy") {
		t.Errorf("ParseSetupList hint missing: %v", err)
	}
	if _, err := ParseSetupList("uvm,uvm"); err == nil ||
		!strings.Contains(err.Error(), "listed twice") {
		t.Errorf("duplicate setups should be rejected: %v", err)
	}
	if _, err := ParseSetupList(" , ,"); err == nil ||
		!strings.Contains(err.Error(), "names no setups") {
		t.Errorf("empty list should be rejected: %v", err)
	}
	got, err := ParseSetupList(" standard , uvm_zerocopy ")
	if err != nil || len(got) != 2 || got[0] != Standard || got[1] != UVMZeroCopy {
		t.Errorf("ParseSetupList = %v, %v", got, err)
	}
}

// TestRegisterSynthetic registers a new setup at runtime and checks the
// registry stays append-only and name-addressable, and that baseline
// resolution follows the registered Baseline bit rather than position.
func TestRegisterSynthetic(t *testing.T) {
	before := len(Registered())
	s, err := Register(Desc{Name: "synthetic_cuda_test", Managed: true, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if int(s) != before {
		t.Errorf("synthetic setup ordinal %d, want append at %d", s, before)
	}
	if got := len(Registered()); got != before+1 {
		t.Errorf("Registered() grew to %d, want %d", got, before+1)
	}
	if got := len(PaperSetups()); got != 5 {
		t.Errorf("PaperSetups() = %d entries after extension, want 5", got)
	}
	back, err := ParseSetup("synthetic_cuda_test")
	if err != nil || back != s {
		t.Errorf("ParseSetup round-trip = %v, %v", back, err)
	}
	if s.String() != "synthetic_cuda_test" || !s.Managed() || !s.Prefetch() {
		t.Errorf("synthetic descriptor not honoured: %v", s)
	}
	// Baseline resolution: standard wins wherever it sits; without it
	// the study's first setup is the baseline.
	if i := BaselineIndex([]Setup{UVM, Standard, s}); i != 1 {
		t.Errorf("BaselineIndex with standard at 1 = %d", i)
	}
	if i := BaselineIndex([]Setup{s, UVM}); i != 0 {
		t.Errorf("BaselineIndex without standard = %d", i)
	}
	if i := BaselineIndex(nil); i != 0 {
		t.Errorf("BaselineIndex(nil) = %d", i)
	}
}

// TestRegisterConcurrent: Register and capability reads may race; the
// registry swap must stay atomic (run with -race).
func TestRegisterConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range Registered() {
					_ = s.Managed()
					_ = s.String()
				}
			}
		}
	}()
	for i := 0; i < 4; i++ {
		name := "synthetic_race_" + string(rune('a'+i))
		if _, err := Register(Desc{Name: name, Managed: true}); err != nil {
			t.Errorf("Register(%s): %v", name, err)
		}
	}
	close(stop)
	wg.Wait()
}
