package cuda

import (
	"fmt"
	"strings"

	"uvmasim/internal/gpu"
	"uvmasim/internal/sim"
	"uvmasim/internal/trace"
)

// Launch describes one kernel invocation: its analytic work spec, the
// buffers it reads and writes, and an optional functional body executed
// at launch (used by tests and examples to compute real results).
type Launch struct {
	Spec   gpu.KernelSpec
	Reads  []*Buffer
	Writes []*Buffer
	// SharedPerBlockKB overrides the shared allocation for this launch
	// only (0 = context/default).
	SharedPerBlockKB float64
	// SequentialDemand marks kernels whose page-level demand order is a
	// linear sweep even though their element-level access pattern is
	// irregular (nw's wavefronts, kmeans' point scan). The UVM driver's
	// density prefetcher coalesces such fault streams.
	SequentialDemand bool
	// Body, when non-nil, performs the kernel's real computation.
	Body func()
}

// Launch executes a kernel under the context's setup:
//
//   - standard / async: inputs must have been Uploaded; the kernel runs
//     for the analytic execution time.
//   - uvm: the kernel demand-faults input chunks as its progress cursor
//     reaches them, serializing fault batches and migration with compute.
//   - uvm_prefetch(_async): cudaMemPrefetchAsync is issued for every
//     input first; the kernel then consumes chunks as they arrive. For
//     regular access patterns demand follows the prefetch stream (a clean
//     software pipeline); for irregular ones demand order is shuffled, so
//     the kernel races ahead of the stream and faults anyway — the reason
//     lud gains nothing from prefetching (§4.1.2).
//   - uvm_zerocopy: the kernel accesses host-coherent memory in place;
//     every load and store pays link bandwidth/latency inside the exec
//     time, and no page ever migrates or writes back.
//   - uvm_smcopy: the kernel's SMs stage non-resident inputs into device
//     memory first (kernel-side bandwidth), then run at device speed.
func (c *Context) Launch(l Launch) error {
	// The error paths clone the names they box: interface-converting
	// l.Spec.Name (or a buffer's Name) directly would leak l itself, and
	// with it the callers' Reads/Writes slice literals — the launch path
	// must leave those on the stack to stay alloc-free.
	for _, bufs := range [2][]*Buffer{l.Reads, l.Writes} {
		for _, b := range bufs {
			if b == nil || b.freed {
				return fmt.Errorf("cuda: launch %q uses an invalid buffer", strings.Clone(l.Spec.Name))
			}
			if b.managed != c.setup.Managed() {
				return fmt.Errorf("cuda: launch %q: buffer %q allocation kind does not match setup %v",
					strings.Clone(l.Spec.Name), strings.Clone(b.Name), c.setup)
			}
		}
	}
	if err := l.Spec.Validate(); err != nil {
		return err
	}

	if c.tracer.Enabled() {
		c.tracer.Span(trace.Host, "cudaLaunchKernel", c.now, c.now+c.cfg.KernelLaunchNs,
			trace.Args{Detail: strings.Clone(l.Spec.Name)})
	}
	c.now += c.cfg.KernelLaunchNs

	// Prefetch pass (uvm_prefetch*): one driver call per input region.
	// The prefetch operations are enqueued on the kernel's stream, so the
	// kernel waits for them — the transfer is moved off the fault path
	// (and up to streaming efficiency) rather than overlapped with this
	// kernel. Redundant prefetches of resident data still serialize their
	// driver bookkeeping, which is what hurts multi-launch workloads like
	// nw (§4.1.2).
	if c.setup.Prefetch() {
		streamReady := c.now
		for _, b := range l.Reads {
			c.tracer.Span(trace.Host, "cudaMemPrefetchAsync", c.now, c.now+c.cfg.UVM.PrefetchCallNs,
				trace.Args{Bytes: b.Size})
			end := c.mgr.PrefetchRegion(b.region, c.now)
			c.now += c.cfg.UVM.PrefetchCallNs
			if end > streamReady {
				streamReady = end
			}
		}
		if streamReady > c.now {
			c.now = streamReady
		}
	}

	res := c.model.Launch(l.Spec, c.execConfig(l.SharedPerBlockKB, l.SequentialDemand))
	start := c.now
	end := start + res.ExecTime*c.jitter(0.005)

	switch {
	case c.setup.ZeroCopy():
		// In-place access over the link: the analytic model already
		// priced every load and store at link bandwidth and latency, so
		// the exec time stands. Nothing migrates, nothing becomes
		// device-resident, nothing needs writing back — the link
		// traffic is accounted as transfer counters without reserving
		// the DMA links (SM-issued remote accesses bypass the copy
		// engines, so the whole cost lands in kernel time).
		storeBytes := float64(res.Spec.StoreBytes)
		c.ctrs.H2DBytes += res.TrafficBytes - storeBytes
		c.ctrs.D2HBytes += storeBytes
	case c.setup.SMCopy():
		// SM-driven staging: the kernel first copies its non-resident
		// input chunks into device memory itself, serializing the
		// staging with compute inside the kernel span (kernel-side
		// bandwidth, not copy-engine bandwidth), then runs at device
		// speed.
		end = c.paceSMCopy(l, start) + (end - start)
	case c.setup.Managed():
		end = c.paceManaged(l, res, start)
	}

	// Written managed buffers become fully resident and dirty. Both calls
	// are batched per region: MarkDeviceWritten does one capacity check
	// for the region's whole non-resident remainder (falling back to
	// per-chunk eviction only under pressure), and MarkDirty splices the
	// full chunk range into the dirty index with one pass. Zero-copy
	// writes go straight to host memory, so they mark nothing: there is
	// no residency and no dirty state to write back.
	if !c.setup.ZeroCopy() {
		for _, b := range l.Writes {
			if b.managed {
				c.mgr.MarkDeviceWritten(b.region, end)
				c.mgr.MarkDirty(b.region, 0, b.Size)
			}
		}
	}

	dur := end - start
	c.kernelSpans = append(c.kernelSpans, sim.Interval{Start: start, End: end})
	if c.tracer.Enabled() {
		var readBytes int64
		for _, b := range l.Reads {
			readBytes += b.Size
		}
		c.tracer.Span(trace.Kernel, strings.Clone(l.Spec.Name), start, end, trace.Args{
			Bytes:  readBytes,
			Setup:  c.setup.String(),
			Detail: fmt.Sprintf("occupancy=%.3f", res.Occ.Fraction),
		})
	}
	c.ctrs.RecordKernel(dur, res.Occ.Fraction)
	c.ctrs.Inst.Add(res.Inst)
	c.ctrs.L1.Add(res.L1)
	c.now = end

	if l.Body != nil {
		l.Body()
	}
	return nil
}

// paceManaged walks the kernel's input chunks through the UVM manager,
// interleaving demand migration with compute progress, and returns the
// kernel end time.
func (c *Context) paceManaged(l Launch, res gpu.LaunchResult, start float64) float64 {
	var totalBytes int64
	chunks := 0
	for _, b := range l.Reads {
		chunks += b.region.NumChunks()
		totalBytes += b.Size
	}
	if chunks == 0 || totalBytes == 0 {
		return start + res.ExecTime*c.jitter(0.005)
	}

	// Demand order: regular kernels touch pages in address order;
	// irregular ones effectively shuffle it, unless the workload marked
	// its page-level demand as a linear sweep.
	sequential := l.SequentialDemand
	if !sequential {
		switch l.Spec.Access {
		case gpu.Irregular, gpu.Random:
		default:
			sequential = true
		}
	}

	chunkBytes := c.cfg.UVM.ChunkBytes
	if sequential {
		// Hot path: each input region is one extent-ranged manager call
		// that walks its chunks in address order — identical per-chunk
		// faulting and pacing to a DemandChunk loop (the goldens pin it),
		// minus the per-chunk call and bounds setup.
		computePerByte := res.ExecTime / float64(totalBytes) * c.jitter(0.005)
		cursor := start
		for _, b := range l.Reads {
			cursor = c.mgr.DemandRange(b.region, 0, b.region.NumChunks(), cursor, computePerByte)
		}
		return cursor
	}

	seq := c.demandSeq[:0]
	for bi, b := range l.Reads {
		for i := 0; i < b.region.NumChunks(); i++ {
			seq = append(seq, demandRef{buf: int32(bi), idx: int32(i)})
		}
	}
	c.demandSeq = seq
	c.rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })

	// Demand migration efficiency depends on how well the driver's
	// density prefetcher coalesces the kernel's fault stream.
	var patternEff float64
	switch l.Spec.Access {
	case gpu.Strided:
		patternEff = 0.88
	case gpu.Irregular:
		patternEff = 0.55
	default: // Random
		patternEff = 0.38
	}

	computePerByte := res.ExecTime / float64(totalBytes) * c.jitter(0.005)
	cursor := start
	for _, d := range seq {
		b := l.Reads[d.buf]
		size := chunkBytes
		if rem := b.Size - int64(d.idx)*chunkBytes; rem < size {
			size = rem
		}
		avail := c.mgr.DemandChunk(b.region, int(d.idx), cursor, patternEff, false)
		cursor = avail + float64(size)*computePerByte
	}
	return cursor
}

// paceSMCopy models the uvm_smcopy staging pass: the kernel's own SMs
// bulk-copy every non-resident input chunk from host to device memory
// over the link before computing. Staging time is SM time — it extends
// the kernel span and never reserves the DMA links, so the breakdown
// attributes it to Kernel, not Memcpy (the defining difference from the
// copy-engine setups). Staged chunks become device-resident through the
// same capacity-checked path as device writes, so SM-copy keeps
// migration's eviction pressure and its reuse benefit across launches:
// already-resident chunks are skipped. Returns the staging end time.
func (c *Context) paceSMCopy(l Launch, start float64) float64 {
	bw := c.cfg.PCIe.BytesPerNs() * c.cfg.PCIe.SMCopyEfficiency()
	chunkBytes := c.cfg.UVM.ChunkBytes
	t := start
	for _, b := range l.Reads {
		var staged int64
		for i := 0; i < b.region.NumChunks(); i++ {
			if b.region.Resident(i) {
				continue
			}
			size := chunkBytes
			if rem := b.Size - int64(i)*chunkBytes; rem < size {
				size = rem
			}
			staged += size
		}
		if staged == 0 {
			continue
		}
		t += c.cfg.PCIe.LatencyNs + float64(staged)/bw
		c.mgr.MarkDeviceWritten(b.region, t)
		c.ctrs.H2DBytes += float64(staged)
		if c.tracer.Enabled() {
			// An instant, not a span: staging time lives inside the kernel
			// span that Launch emits over [start, end], so a nested span
			// would double-count Kernel-track busy time.
			c.tracer.Instant(trace.Kernel, "sm_copy_stage", t, trace.Args{
				Bytes: staged, Setup: c.setup.String(),
			})
		}
	}
	return t
}

// demandRef names one chunk of one launch input (an index into
// Launch.Reads plus a chunk index) in the shuffled demand order. It is
// pointer-free so the retained shuffle scratch stays off the garbage
// collector's scan list.
type demandRef struct {
	buf int32
	idx int32
}

// Breakdown is the paper's execution-time decomposition: data allocation
// (cudaMalloc/cudaMallocManaged/cudaFree), CPU-GPU data transfer, and GPU
// kernel time, plus the fixed process overhead and the wall total.
type Breakdown struct {
	Alloc    float64
	Memcpy   float64
	Kernel   float64
	Overhead float64
	Total    float64
}

// Breakdown reports the run's decomposition. Transfer activity that
// overlapped a kernel span is attributed to Memcpy and removed from the
// Kernel component, matching how the paper's CUPTI-based tooling
// attributes concurrent UVM migration.
func (c *Context) Breakdown() Breakdown {
	memTotal := c.bus.BusyTotal()
	kernel := 0.0
	for _, span := range c.kernelSpans {
		k := span.Len() - c.bus.BusyWithin(span.Start, span.End)
		if k > 0 {
			kernel += k
		}
	}
	wall := c.now
	if t := c.bus.H2D.BusyUntil(); t > wall {
		wall = t
	}
	if t := c.bus.D2H.BusyUntil(); t > wall {
		wall = t
	}
	return Breakdown{
		Alloc:    c.allocBusy,
		Memcpy:   memTotal,
		Kernel:   kernel,
		Overhead: c.overhead,
		Total:    wall + c.overhead,
	}
}

// KernelSpans exposes the recorded kernel intervals (tests and the
// multi-job pipeline analysis use them).
func (c *Context) KernelSpans() []sim.Interval {
	return append([]sim.Interval(nil), c.kernelSpans...)
}
