package cuda

import (
	"math"
	"strings"
	"testing"

	"uvmasim/internal/trace"
)

// runTracedMicro executes a vector_seq-shaped micro workload (alloc,
// upload, one streaming kernel, synchronize, consume, free) under the
// given setup with a tracer attached and returns both views of the run.
func runTracedMicro(t *testing.T, setup Setup, seed int64, tr *trace.Tracer) Breakdown {
	t.Helper()
	ctx := NewContext(DefaultSystemConfig(), setup, seed)
	if tr != nil {
		ctx.SetTracer(tr)
	}
	const n = int64(16 << 20) // 16M float32 elements
	x, err := ctx.Alloc("x", 4*n)
	if err != nil {
		t.Fatal(err)
	}
	y, err := ctx.Alloc("y", 4*n)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Upload(x); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Upload(y); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(Launch{
		Spec:   streamSpec(n),
		Reads:  []*Buffer{x, y},
		Writes: []*Buffer{y},
	}); err != nil {
		t.Fatal(err)
	}
	ctx.Synchronize()
	if err := ctx.Consume(y); err != nil {
		t.Fatal(err)
	}
	for _, b := range []*Buffer{x, y} {
		if err := ctx.Free(b); err != nil {
			t.Fatal(err)
		}
	}
	return ctx.Breakdown()
}

// relClose reports whether a and b agree within a small relative
// tolerance (floating-point summation order differs between the two
// accountings).
func relClose(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// TestBreakdownReconcilesWithTrace is the observability cross-check: for
// every setup, the cuda.Breakdown components (Alloc, Memcpy, Kernel,
// Overhead) must reconcile with the busy time derived independently from
// the trace's per-track spans, and attaching a tracer must not perturb
// the simulated timing at all.
func TestBreakdownReconcilesWithTrace(t *testing.T) {
	for _, setup := range Registered() {
		setup := setup
		t.Run(setup.String(), func(t *testing.T) {
			const seed = 42
			plain := runTracedMicro(t, setup, seed, nil)
			tr := trace.New()
			traced := runTracedMicro(t, setup, seed, tr)

			if plain != traced {
				t.Errorf("tracing perturbed the run:\nplain  %+v\ntraced %+v", plain, traced)
			}
			if !tr.SpansMonotonic() {
				t.Error("trace has non-monotonic per-track spans")
			}

			m := tr.Metrics()

			// Memcpy: transfer-track busy time equals the bus busy total.
			if !relClose(m.TransferBusy(), traced.Memcpy) {
				t.Errorf("memcpy: trace %v vs breakdown %v", m.TransferBusy(), traced.Memcpy)
			}

			// Alloc: the host-track cudaMalloc*/cudaFree spans.
			var alloc float64
			var kernelSpans []trace.Event
			for _, e := range tr.Events() {
				switch {
				case e.Track == trace.Host && (strings.HasPrefix(e.Name, "cudaMalloc") || e.Name == "cudaFree"):
					alloc += e.Dur
				case e.Track == trace.Kernel && !e.Instant:
					kernelSpans = append(kernelSpans, e)
				}
			}
			if !relClose(alloc, traced.Alloc) {
				t.Errorf("alloc: trace %v vs breakdown %v", alloc, traced.Alloc)
			}

			// Kernel: span lengths minus overlapped transfer time, exactly
			// the attribution Breakdown applies.
			var kernel float64
			for _, e := range kernelSpans {
				k := e.Dur - tr.OverlapWithin(e.Start, e.End(), trace.PCIeH2D, trace.PCIeD2H, trace.Prefetch)
				if k > 0 {
					kernel += k
				}
			}
			if !relClose(kernel, traced.Kernel) {
				t.Errorf("kernel: trace %v vs breakdown %v", kernel, traced.Kernel)
			}

			// Overhead travels through the counter registry.
			if !relClose(m.Counters["process.overhead_ns"], traced.Overhead) {
				t.Errorf("overhead: trace %v vs breakdown %v",
					m.Counters["process.overhead_ns"], traced.Overhead)
			}

			// Sanity: the components the trace reconstructs never exceed
			// the wall total.
			if traced.Total < kernel || traced.Total < m.TransferBusy() || traced.Total < alloc {
				t.Errorf("total %v smaller than a component (k=%v m=%v a=%v)",
					traced.Total, kernel, m.TransferBusy(), alloc)
			}

			// Setup-specific shape: managed runs must emit UVM activity
			// (faults under uvm, prefetch spans under uvm_prefetch*).
			if setup == UVM && m.Tracks[trace.UVMFaults].Instants == 0 {
				t.Error("uvm run recorded no fault events")
			}
			if setup.Prefetch() && m.Tracks[trace.Prefetch].Spans == 0 {
				t.Error("prefetch run recorded no prefetch spans")
			}
			if !setup.Managed() && m.Tracks[trace.PCIeH2D].Spans == 0 {
				t.Error("explicit-copy run recorded no H2D spans")
			}
		})
	}
}
