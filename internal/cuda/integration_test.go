package cuda

import (
	"math/rand"
	"testing"

	"uvmasim/internal/gpu"
)

// Property: for every setup and a randomized single-kernel flow, the
// breakdown is internally consistent — components non-negative, total at
// least the sum of serial CPU-side pieces, and deterministic per seed.
func TestQuickBreakdownConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 60; iter++ {
		setups := Registered()
		setup := setups[rng.Intn(len(setups))]
		n := int64(1+rng.Intn(64)) << 20 // 1..64M elements
		seed := rng.Int63()

		runOnce := func() Breakdown {
			ctx := NewContext(DefaultSystemConfig(), setup, seed)
			buf, err := ctx.Alloc("b", 4*n)
			if err != nil {
				t.Fatal(err)
			}
			if err := ctx.Upload(buf); err != nil {
				t.Fatal(err)
			}
			spec := streamSpec(n)
			spec.Access = gpu.Access(rng.Intn(4))
			seqSpec := spec // capture before the closure below mutates rng state
			if err := ctx.Launch(Launch{Spec: seqSpec, Reads: []*Buffer{buf}, Writes: []*Buffer{buf}}); err != nil {
				t.Fatal(err)
			}
			ctx.Synchronize()
			if err := ctx.Consume(buf); err != nil {
				t.Fatal(err)
			}
			if err := ctx.Free(buf); err != nil {
				t.Fatal(err)
			}
			return ctx.Breakdown()
		}
		b := runOnce()
		if b.Alloc <= 0 || b.Kernel < 0 || b.Memcpy < 0 || b.Overhead <= 0 {
			t.Fatalf("%v: bad components %+v", setup, b)
		}
		if b.Total < b.Alloc+b.Overhead {
			t.Fatalf("%v: total %v below serial floor", setup, b)
		}
		if b.Total < b.Kernel {
			t.Fatalf("%v: total below kernel component", setup)
		}
	}
}

// Eviction integration: a managed working set beyond device capacity
// must run (slowly) rather than fail, and record eviction traffic.
func TestManagedOversubscriptionRuns(t *testing.T) {
	cfg := DefaultSystemConfig()
	cfg.GPU.HBMCapacity = 256 << 20 // shrink the device for the test
	ctx := NewContext(cfg, UVMPrefetch, 3)
	buf, err := ctx.Alloc("big", 400<<20) // 1.6x capacity
	if err != nil {
		t.Fatal(err)
	}
	spec := streamSpec(100 << 20)
	for pass := 0; pass < 2; pass++ {
		if err := ctx.Launch(Launch{Spec: spec, Reads: []*Buffer{buf}, Writes: []*Buffer{buf}}); err != nil {
			t.Fatal(err)
		}
	}
	ctx.Synchronize()
	if ctx.Counters().UVM.EvictedBytes <= 0 {
		t.Error("oversubscribed managed run should evict")
	}
	if err := ctx.Free(buf); err != nil {
		t.Fatal(err)
	}
	// Standard allocation of the same size must fail outright.
	ctx2 := NewContext(cfg, Standard, 3)
	if _, err := ctx2.Malloc("big", 400<<20); err == nil {
		t.Error("cudaMalloc beyond capacity must fail")
	}
}

func TestHostCompute(t *testing.T) {
	ctx := NewContext(DefaultSystemConfig(), Standard, 5)
	before := ctx.Now()
	ctx.HostCompute(123456)
	if got := ctx.Now() - before; got != 123456 {
		t.Errorf("HostCompute advanced %v, want 123456", got)
	}
	b := ctx.Breakdown()
	if b.Alloc != 0 || b.Memcpy != 0 || b.Kernel != 0 {
		t.Errorf("host compute must not be attributed to components: %+v", b)
	}
	if b.Total-b.Overhead < 123456 {
		t.Errorf("host compute must count toward the total")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative host compute should panic")
		}
	}()
	ctx.HostCompute(-1)
}

// Transfers under different setups must reconcile with the counter view:
// explicit copies count H2D/D2H bytes, UVM counts migration/prefetch.
func TestTransferCounterAttribution(t *testing.T) {
	const n = 32 << 20
	std := NewContext(DefaultSystemConfig(), Standard, 9)
	buf, _ := std.Alloc("b", 4*n)
	if err := std.Upload(buf); err != nil {
		t.Fatal(err)
	}
	if std.Counters().H2DBytes != 4*n {
		t.Errorf("standard H2D bytes = %v, want %v", std.Counters().H2DBytes, 4*n)
	}
	if std.Counters().UVM.MigratedBytes != 0 {
		t.Errorf("standard run must not migrate")
	}

	uvm := NewContext(DefaultSystemConfig(), UVM, 9)
	mbuf, _ := uvm.Alloc("b", 4*n)
	if err := uvm.Upload(mbuf); err != nil { // no-op
		t.Fatal(err)
	}
	if err := uvm.Launch(Launch{Spec: streamSpec(n), Reads: []*Buffer{mbuf}, Writes: []*Buffer{mbuf}}); err != nil {
		t.Fatal(err)
	}
	c := uvm.Counters()
	if c.H2DBytes != 0 {
		t.Errorf("uvm run must not do explicit copies, saw %v", c.H2DBytes)
	}
	if c.UVM.MigratedBytes < 4*n*0.95 {
		t.Errorf("uvm should migrate the touched footprint, saw %v of %v", c.UVM.MigratedBytes, 4*n)
	}
	if c.UVM.PageFaults <= 0 || c.UVM.FaultBatches <= 0 {
		t.Errorf("uvm run should fault: %+v", c.UVM)
	}

	pf := NewContext(DefaultSystemConfig(), UVMPrefetch, 9)
	pbuf, _ := pf.Alloc("b", 4*n)
	if err := pf.Launch(Launch{Spec: streamSpec(n), Reads: []*Buffer{pbuf}, Writes: []*Buffer{pbuf}}); err != nil {
		t.Fatal(err)
	}
	if pf.Counters().UVM.PrefetchBytes < 4*n*0.95 {
		t.Errorf("prefetch setup should stream the footprint, saw %v", pf.Counters().UVM.PrefetchBytes)
	}
	if pf.Counters().UVM.MigratedBytes != 0 {
		t.Errorf("prefetched run should not demand-migrate, saw %v", pf.Counters().UVM.MigratedBytes)
	}
}

// KernelSpans must be non-overlapping and ordered (synchronous launch
// semantics).
func TestKernelSpansOrdered(t *testing.T) {
	ctx := NewContext(DefaultSystemConfig(), Async, 11)
	buf, _ := ctx.Alloc("b", 64<<20)
	if err := ctx.Upload(buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ctx.Launch(Launch{Spec: streamSpec(16 << 20), Reads: []*Buffer{buf}, Writes: []*Buffer{buf}}); err != nil {
			t.Fatal(err)
		}
	}
	spans := ctx.KernelSpans()
	if len(spans) != 5 {
		t.Fatalf("spans = %d", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			t.Errorf("kernel spans overlap: %v then %v", spans[i-1], spans[i])
		}
	}
}

// TestEvictionBookkeepingAcrossSetups drives every managed setup past
// the device budget and checks the indexed residency bookkeeping the
// O(1) evictor maintains: eviction counters advance, the resident
// footprint never exceeds the managed capacity, and the per-region O(1)
// summaries agree with manager-level accounting.
func TestEvictionBookkeepingAcrossSetups(t *testing.T) {
	for _, setup := range Registered() {
		// Zero-copy is managed but never makes anything device-resident,
		// so there is nothing to evict.
		if !setup.Managed() || setup.ZeroCopy() {
			continue
		}
		setup := setup
		t.Run(setup.String(), func(t *testing.T) {
			cfg := DefaultSystemConfig()
			cfg.GPU.HBMCapacity = 192 << 20
			capacity := int64(float64(cfg.GPU.HBMCapacity) * cfg.ManagedCapacityFraction)
			ctx := NewContext(cfg, setup, 11)
			a, err := ctx.Alloc("a", 150<<20)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ctx.Alloc("b", 150<<20) // together 1.6x capacity
			if err != nil {
				t.Fatal(err)
			}
			spec := streamSpec(30 << 20)
			for pass := 0; pass < 2; pass++ {
				for _, buf := range []*Buffer{a, b} {
					if err := ctx.Launch(Launch{Spec: spec, Reads: []*Buffer{buf}, Writes: []*Buffer{buf}}); err != nil {
						t.Fatal(err)
					}
					ctx.Synchronize()
					if got := ctx.mgr.ResidentBytes(); got > capacity {
						t.Fatalf("resident %d exceeds managed capacity %d", got, capacity)
					}
				}
			}
			uvmStats := ctx.Counters().UVM
			if uvmStats.Evictions <= 0 || uvmStats.EvictedBytes <= 0 {
				t.Errorf("oversubscribed run should evict: %+v", uvmStats)
			}
			if sum := a.region.ResidentBytes() + b.region.ResidentBytes(); sum != ctx.mgr.ResidentBytes() {
				t.Errorf("region summaries %d disagree with manager residency %d",
					sum, ctx.mgr.ResidentBytes())
			}
			for _, buf := range []*Buffer{a, b} {
				if err := ctx.Free(buf); err != nil {
					t.Fatal(err)
				}
			}
			if got := ctx.mgr.ResidentBytes(); got != 0 {
				t.Errorf("resident bytes leaked after free: %d", got)
			}
		})
	}
}
