package cuda

import (
	"fmt"
	"math/rand"

	"uvmasim/internal/counters"
	"uvmasim/internal/devmem"
	"uvmasim/internal/gpu"
	"uvmasim/internal/hostmem"
	"uvmasim/internal/pcie"
	"uvmasim/internal/seedrng"
	"uvmasim/internal/sim"
	"uvmasim/internal/trace"
	"uvmasim/internal/uvm"
)

// Context is one simulated process execution: a CUDA context on the
// modelled system, under one registered setup, with its own noise
// draw. The paper measures 30 such executions per configuration; the
// harness creates a fresh Context per iteration.
//
// A Context is single-threaded, like the benchmarks it models.
type Context struct {
	cfg   SystemConfig
	setup Setup

	// device is the ordinal of the GPU this context is bound to
	// (cudaSetDevice). Single-GPU studies leave it 0; the multi-GPU
	// scheduler binds one context per device so buffers carry their
	// placement. Binding is identity only — it never changes simulated
	// timing, so single-device results are unaffected.
	device int

	eng   *sim.Engine
	bus   *pcie.Bus
	model *gpu.Model
	mgr   *uvm.Manager
	host  *hostmem.Memory
	dev   *devmem.Allocator
	ctrs  *counters.Set
	rng   *rand.Rand

	// SharedPerBlockKB overrides the per-block shared-memory allocation
	// for every launch (Figure 13 sweeps it). Zero keeps the 32 KB
	// default.
	SharedPerBlockKB float64

	now         float64
	allocBusy   float64
	overhead    float64
	kernelSpans []sim.Interval
	live        int
	tracer      *trace.Tracer

	// Buffer watermark pool: Alloc hands out bufs[bufNext] when one is
	// left from an earlier life of this context, growing the pool
	// otherwise. Buffers are recycled only by Reset — never by Free — so
	// double frees stay detectable for the whole run.
	bufs    []*Buffer
	bufNext int
	// demandSeq is the reusable shuffle scratch of the irregular demand
	// path in paceManaged (pointer-free, so refills are barrier-free).
	demandSeq []demandRef
}

// NewContext creates a fresh simulated process under the given setup.
// The seed determines every stochastic draw, so a (config, setup, seed)
// triple is fully reproducible.
func NewContext(cfg SystemConfig, setup Setup, seed int64) *Context {
	eng := sim.New()
	bus := pcie.New(eng, cfg.PCIe)
	ctrs := &counters.Set{}
	managedCap := int64(float64(cfg.GPU.HBMCapacity) * cfg.ManagedCapacityFraction)
	ctx := &Context{
		cfg:   cfg,
		setup: setup,
		eng:   eng,
		bus:   bus,
		model: gpu.NewModel(cfg.GPU),
		mgr:   uvm.NewManager(cfg.UVM, bus, managedCap, &ctrs.UVM),
		host:  hostmem.New(cfg.Host),
		dev:   devmem.NewAllocator(cfg.GPU.HBMCapacity),
		ctrs:  ctrs,
		// seedrng reproduces rand.NewSource(seed)'s stream exactly while
		// making the per-iteration reseed in Reset a state copy instead of
		// a full generator expansion (see internal/seedrng).
		rng: rand.New(seedrng.New(seed)),
	}
	ctx.host.Randomize(ctx.rng)
	ctx.overhead = cfg.SystemOverheadNs * ctx.jitter(cfg.OverheadJitterRel)
	return ctx
}

// Reset rewinds the context to the state NewContext(cfg, setup, seed)
// would produce, reusing every arena the previous runs warmed up: the
// event queue, link interval sets, UVM region/node arenas, host and
// device allocator storage, and the Buffer pool. A reset context
// reproduces a fresh context's simulation bit for bit (the RNG is
// reseeded, so the draw stream is identical), which is what lets the
// harness hold one context per measurement cell instead of allocating
// thirty. When the system configuration differs from the context's
// current one, the arenas are rebuilt from scratch.
func (c *Context) Reset(cfg SystemConfig, setup Setup, seed int64) {
	if cfg != c.cfg {
		*c = *NewContext(cfg, setup, seed)
		return
	}
	c.setup = setup
	c.device = 0 // a reset context matches a fresh one: bound to device 0
	c.eng.Reset()
	c.eng.SetTracer(nil)
	c.bus.Reset()
	c.model.SetTracer(nil)
	*c.ctrs = counters.Set{}
	c.mgr.Reset()
	c.host.Reset()
	c.dev.Reset()
	c.rng.Seed(seed)
	c.SharedPerBlockKB = 0
	c.now = 0
	c.allocBusy = 0
	c.kernelSpans = c.kernelSpans[:0]
	c.live = 0
	c.tracer = nil
	c.bufNext = 0
	c.host.Randomize(c.rng)
	c.overhead = cfg.SystemOverheadNs * c.jitter(cfg.OverheadJitterRel)
}

// newBuffer takes the next Buffer from the pool, growing it when the
// high-water mark is reached.
func (c *Context) newBuffer() *Buffer {
	if c.bufNext < len(c.bufs) {
		b := c.bufs[c.bufNext]
		c.bufNext++
		*b = Buffer{}
		return b
	}
	b := &Buffer{}
	c.bufs = append(c.bufs, b)
	c.bufNext++
	return b
}

// jitter returns a multiplicative noise factor uniform in [1-rel, 1+rel].
func (c *Context) jitter(rel float64) float64 {
	if rel <= 0 {
		return 1
	}
	return 1 + rel*(2*c.rng.Float64()-1)
}

// SetTracer attaches an observability tracer to the context and to every
// device model underneath it (engine, PCIe bus, UVM manager, GPU model).
// Attach it right after NewContext, before the workload runs; a nil
// tracer (the default) disables recording with no measurable cost. The
// tracer only observes — attaching one never changes simulated timing.
func (c *Context) SetTracer(tr *trace.Tracer) {
	c.tracer = tr
	c.eng.SetTracer(tr)
	c.model.SetTracer(tr)
	tr.Instant(trace.Host, "process_start", c.now, trace.Args{Setup: c.setup.String()})
	tr.Count("process.overhead_ns", c.overhead)
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (c *Context) Tracer() *trace.Tracer { return c.tracer }

// Setup returns the context's data-transfer configuration.
func (c *Context) Setup() Setup { return c.setup }

// Device returns the GPU ordinal the context is bound to (0 unless
// BindDevice was called, matching cudaSetDevice's default).
func (c *Context) Device() int { return c.device }

// BindDevice models cudaSetDevice: subsequent allocations are placed on
// (and tagged with) the given GPU ordinal. Negative ordinals panic.
func (c *Context) BindDevice(device int) {
	if device < 0 {
		panic("cuda: negative device ordinal")
	}
	c.device = device
}

// Config returns the system configuration.
func (c *Context) Config() SystemConfig { return c.cfg }

// Counters returns the context's hardware-counter set.
func (c *Context) Counters() *counters.Set { return c.ctrs }

// Now returns the context's CPU-side time cursor in ns.
func (c *Context) Now() float64 { return c.now }

// Buffer is a device allocation (cudaMalloc) or a managed allocation
// (cudaMallocManaged), plus the host-side staging area it copies from.
type Buffer struct {
	Name string
	Size int64

	device    int // GPU ordinal the buffer was allocated on
	managed   bool
	addr      devmem.Addr
	region    *uvm.Region
	hostID    int64
	hostPlace hostmem.Placement
	freed     bool
}

// Managed reports whether the buffer lives in unified memory.
func (b *Buffer) Managed() bool { return b.managed }

// Device returns the GPU ordinal the buffer was allocated on.
func (b *Buffer) Device() int { return b.device }

// Alloc allocates a buffer the way the context's setup dictates:
// cudaMallocManaged under the managed setups, cudaMalloc otherwise.
// This is the call workloads use so one implementation serves every
// registered variant.
func (c *Context) Alloc(name string, size int64) (*Buffer, error) {
	if c.setup.Managed() {
		return c.MallocManaged(name, size)
	}
	return c.Malloc(name, size)
}

// Malloc models cudaMalloc: device memory is reserved and the call's
// driver time advances the allocation clock.
func (c *Context) Malloc(name string, size int64) (*Buffer, error) {
	addr, err := c.dev.Alloc(size)
	if err != nil {
		return nil, err
	}
	b := c.newBuffer()
	b.Name, b.Size, b.addr, b.device = name, size, addr, c.device
	if err := c.placeHost(b); err != nil {
		c.dev.Free(addr)
		c.bufNext-- // b was the last buffer handed out
		return nil, err
	}
	c.chargeAlloc(c.cfg.Alloc.MallocTime(size), "cudaMalloc", size)
	c.live++
	return b, nil
}

// MallocManaged models cudaMallocManaged: a unified region whose pages
// migrate on demand.
func (c *Context) MallocManaged(name string, size int64) (*Buffer, error) {
	region, err := c.mgr.Register(size)
	if err != nil {
		return nil, err
	}
	b := c.newBuffer()
	b.Name, b.Size, b.managed, b.region, b.device = name, size, true, region, c.device
	if err := c.placeHost(b); err != nil {
		c.mgr.Unregister(region)
		c.bufNext-- // b was the last buffer handed out
		return nil, err
	}
	c.chargeAlloc(c.cfg.Alloc.ManagedTime(size), "cudaMallocManaged", size)
	c.live++
	return b, nil
}

// placeHost reserves the buffer's host staging pages, recording the chip
// placement that determines bulk-copy efficiency.
func (c *Context) placeHost(b *Buffer) error {
	id, place, err := c.host.Alloc(b.Size)
	if err != nil {
		return err
	}
	b.hostID = id
	b.hostPlace = place
	return nil
}

// chargeAlloc advances the CPU cursor by a jittered allocation cost,
// attributes it to the allocation component and records the API call on
// the host track.
func (c *Context) chargeAlloc(base float64, op string, size int64) {
	cost := base * c.jitter(c.cfg.OverheadJitterRel)
	c.tracer.Span(trace.Host, op, c.now, c.now+cost, trace.Args{Bytes: size})
	c.now += cost
	c.allocBusy += cost
}

// Free models cudaFree. Freeing twice is an error, as in CUDA.
func (c *Context) Free(b *Buffer) error {
	if b.freed {
		return fmt.Errorf("cuda: double free of buffer %q", b.Name)
	}
	b.freed = true
	c.live--
	if b.managed {
		if err := c.mgr.Unregister(b.region); err != nil {
			return err
		}
	} else {
		if err := c.dev.Free(b.addr); err != nil {
			return err
		}
	}
	if err := c.host.Free(b.hostID); err != nil {
		return err
	}
	c.chargeAlloc(c.cfg.Alloc.FreeTime(b.Size, b.managed), "cudaFree", b.Size)
	return nil
}

// Live reports the number of outstanding buffers.
func (c *Context) Live() int { return c.live }

// hostEff derates a bulk copy for this buffer's host placement plus a
// small per-copy link jitter.
func (c *Context) hostEff(b *Buffer) float64 {
	eff := c.host.CopyEfficiency(b.hostPlace, c.rng) * c.jitter(0.01)
	if eff > 1 {
		eff = 1
	}
	return eff
}

// MemcpyH2D models a synchronous cudaMemcpy(..., HostToDevice) of the
// whole buffer. Calling it on a managed buffer is an error: the UVM
// variants of the paper's workloads never copy explicitly.
func (c *Context) MemcpyH2D(b *Buffer) error {
	if b.managed {
		return fmt.Errorf("cuda: explicit H2D memcpy on managed buffer %q", b.Name)
	}
	if b.freed {
		return fmt.Errorf("cuda: memcpy on freed buffer %q", b.Name)
	}
	end := c.bus.CopyH2DBulk(c.now, b.Size, c.hostEff(b))
	c.ctrs.H2DBytes += float64(b.Size)
	c.now = end
	return nil
}

// MemcpyD2H models a synchronous cudaMemcpy(..., DeviceToHost).
func (c *Context) MemcpyD2H(b *Buffer) error {
	if b.managed {
		return fmt.Errorf("cuda: explicit D2H memcpy on managed buffer %q", b.Name)
	}
	if b.freed {
		return fmt.Errorf("cuda: memcpy on freed buffer %q", b.Name)
	}
	end := c.bus.CopyD2HBulk(c.now, b.Size, c.hostEff(b))
	c.ctrs.D2HBytes += float64(b.Size)
	c.now = end
	return nil
}

// Upload stages an input buffer onto the device the way the setup does
// it: an explicit H2D copy for standard/async, nothing for UVM (pages
// migrate when the kernel touches them).
func (c *Context) Upload(b *Buffer) error {
	if b.managed {
		return nil
	}
	return c.MemcpyH2D(b)
}

// Download brings results back to the host: an explicit D2H copy for
// standard/async, a dirty-page writeback (the CPU touching managed
// results) for UVM.
func (c *Context) Download(b *Buffer) error {
	if !b.managed {
		return c.MemcpyD2H(b)
	}
	if b.freed {
		return fmt.Errorf("cuda: download of freed buffer %q", b.Name)
	}
	end := c.mgr.WritebackDirty(b.region, c.now)
	c.now = end
	return nil
}

// HostCompute advances the CPU cursor by d nanoseconds of host-side work
// (image decoding, centroid updates, result post-processing). It is not
// attributed to any breakdown component, mirroring how the paper's
// region-of-interest timers bracket only the CUDA API calls.
func (c *Context) HostCompute(d float64) {
	if d < 0 {
		panic("cuda: negative host compute time")
	}
	c.tracer.Span(trace.Host, "host_compute", c.now, c.now+d, trace.Args{})
	c.now += d
}

// Consume models the host consuming kernel results the way the paper's
// benchmarks do (checksums and sampled verification): the standard/async
// variants still copy the whole buffer back explicitly (their code calls
// cudaMemcpy on the full allocation), while the UVM variants fault back
// only the pages the CPU actually touches — a configured fraction of the
// buffer. This asymmetry is one of the measured UVM transfer savings of
// §4.1.
func (c *Context) Consume(b *Buffer) error {
	if !b.managed {
		return c.MemcpyD2H(b)
	}
	if b.freed {
		return fmt.Errorf("cuda: consume of freed buffer %q", b.Name)
	}
	sample := int64(float64(b.Size) * c.cfg.HostConsumeFraction)
	if sample < c.cfg.UVM.ChunkBytes {
		sample = c.cfg.UVM.ChunkBytes
	}
	c.now = c.mgr.WritebackPartial(b.region, c.now, sample)
	return nil
}

// Synchronize models cudaDeviceSynchronize: the CPU waits for all queued
// device work, including in-flight prefetch streams.
func (c *Context) Synchronize() {
	before := c.now
	if t := c.bus.H2D.BusyUntil(); t > c.now {
		c.now = t
	}
	if t := c.bus.D2H.BusyUntil(); t > c.now {
		c.now = t
	}
	c.tracer.Span(trace.Host, "cudaDeviceSynchronize", before, c.now, trace.Args{})
}

// execConfig resolves the gpu.ExecConfig for a launch under this setup.
// Zero-copy launches carry the link's effective bandwidth and latency
// down into the analytic model, derived from the PCIe configuration —
// the per-access remote cost lives in the gpu layer, the link
// parameters in pcie.
func (c *Context) execConfig(shared float64, pageSequential bool) gpu.ExecConfig {
	kb := shared
	if kb == 0 {
		kb = c.SharedPerBlockKB
	}
	e := gpu.ExecConfig{
		Async:            c.setup.AsyncCopy(),
		Managed:          c.setup.Managed(),
		DriverPrefetch:   c.setup.Prefetch(),
		PageSequential:   pageSequential,
		SharedPerBlockKB: kb,
	}
	if c.setup.ZeroCopy() {
		e.ZeroCopy = true
		e.LinkBytesPerNs = c.cfg.PCIe.BytesPerNs() * c.cfg.PCIe.ZeroCopyEfficiency()
		e.LinkLatencyNs = c.cfg.PCIe.LatencyNs
	}
	return e
}
