package cuda

import (
	"uvmasim/internal/devmem"
	"uvmasim/internal/gpu"
	"uvmasim/internal/hostmem"
	"uvmasim/internal/pcie"
	"uvmasim/internal/uvm"
)

// SystemConfig assembles the whole heterogeneous system model.
type SystemConfig struct {
	GPU   gpu.Config
	PCIe  pcie.Config
	Host  hostmem.Config
	UVM   uvm.Config
	Alloc devmem.CostModel

	// SystemOverheadNs is the fixed per-process cost (CUDA context
	// creation, module loading, profiler attach) visible as the common
	// floor of the Figure 4 Tiny-input measurements (~0.2 s).
	SystemOverheadNs float64
	// OverheadJitterRel is the relative run-to-run jitter of the fixed
	// overhead and allocation costs.
	OverheadJitterRel float64
	// KernelLaunchNs is the per-launch driver cost.
	KernelLaunchNs float64
	// ManagedCapacityFraction bounds the share of device memory that
	// managed chunks may occupy before the driver starts evicting.
	ManagedCapacityFraction float64
	// HostConsumeFraction is the share of an output buffer the host
	// actually touches when consuming results (Consume); UVM writes back
	// only these pages.
	HostConsumeFraction float64
}

// FitsFootprint reports whether a workload footprint can run under
// every registered setup on this system: the explicit-copy setups
// need the whole footprint resident in device memory at once (managed
// setups may oversubscribe), and every setup stages the footprint in
// host DRAM, of which the worst ambient draw leaves
// (1-AmbientMax) x capacity free. The harness uses this to drop
// size classes a smaller-memory profile cannot host — on the default
// A100-40GB profile every paper size class fits.
func (c SystemConfig) FitsFootprint(footprint int64) bool {
	if footprint > c.GPU.HBMCapacity {
		return false
	}
	hostFree := float64(c.Host.Chips) * float64(c.Host.ChipCapacity) * (1 - c.Host.AmbientMax)
	return float64(footprint) <= hostFree
}

// DefaultSystemConfig models the paper's testbed: an A100-40GB attached
// to a 16-chip EPYC host over PCIe 4.0 x16.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		GPU:   gpu.A100(),
		PCIe:  pcie.DefaultConfig(),
		Host:  hostmem.DefaultConfig(),
		UVM:   uvm.DefaultConfig(),
		Alloc: devmem.DefaultCostModel(),

		SystemOverheadNs:        1.9e8,
		OverheadJitterRel:       0.03,
		KernelLaunchNs:          6e3,
		ManagedCapacityFraction: 0.95,
		HostConsumeFraction:     1.0 / 16,
	}
}
