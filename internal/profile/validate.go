package profile

import (
	"fmt"
	"strings"

	"uvmasim/internal/cuda"
)

// violations accumulates human-readable validation failures so one
// Validate call reports every problem at once.
type violations []string

func (v *violations) addf(format string, args ...any) {
	*v = append(*v, fmt.Sprintf(format, args...))
}

// pos requires val > 0.
func (v *violations) pos(name string, val float64) {
	if !(val > 0) { // rejects NaN too
		v.addf("%s must be positive, got %v", name, val)
	}
}

// nonneg requires val >= 0.
func (v *violations) nonneg(name string, val float64) {
	if !(val >= 0) {
		v.addf("%s must be non-negative, got %v", name, val)
	}
}

// frac01 requires val in (0, 1].
func (v *violations) frac01(name string, val float64) {
	if !(val > 0 && val <= 1) {
		v.addf("%s must be in (0, 1], got %v", name, val)
	}
}

// frac0lt1 requires val in [0, 1).
func (v *violations) frac0lt1(name string, val float64) {
	if !(val >= 0 && val < 1) {
		v.addf("%s must be in [0, 1), got %v", name, val)
	}
}

// Validate rejects nonsensical system configurations: non-positive
// bandwidths, capacities or granules, shared-memory carveouts exceeding
// the unified cache, link efficiencies outside (0, 1], fractions outside
// their ranges. It reports every violation, not just the first, so a
// hand-written profile JSON can be fixed in one pass.
func Validate(cfg cuda.SystemConfig) error {
	var v violations

	g := cfg.GPU
	v.pos("gpu.SMs", float64(g.SMs))
	v.pos("gpu.CoresPerSM", float64(g.CoresPerSM))
	v.pos("gpu.ClockGHz", g.ClockGHz)
	v.pos("gpu.MaxThreadsPerSM", float64(g.MaxThreadsPerSM))
	v.pos("gpu.MaxBlocksPerSM", float64(g.MaxBlocksPerSM))
	v.pos("gpu.MaxWarpsPerSM", float64(g.MaxWarpsPerSM))
	v.pos("gpu.WarpSize", float64(g.WarpSize))
	v.pos("gpu.HBMBandwidthGBs", g.HBMBandwidthGBs)
	v.nonneg("gpu.HBMLatencyNs", g.HBMLatencyNs)
	v.pos("gpu.HBMCapacity", float64(g.HBMCapacity))
	v.pos("gpu.UnifiedCacheKB", float64(g.UnifiedCacheKB))
	v.nonneg("gpu.MaxSharedKB", float64(g.MaxSharedKB))
	v.nonneg("gpu.MinL1KB", float64(g.MinL1KB))
	if g.MaxSharedKB > g.UnifiedCacheKB {
		v.addf("gpu.MaxSharedKB (%d) exceeds gpu.UnifiedCacheKB (%d)", g.MaxSharedKB, g.UnifiedCacheKB)
	}
	if g.MinL1KB > g.UnifiedCacheKB {
		v.addf("gpu.MinL1KB (%d) exceeds gpu.UnifiedCacheKB (%d)", g.MinL1KB, g.UnifiedCacheKB)
	}
	v.pos("gpu.SyncInflightBytes", g.SyncInflightBytes)
	v.pos("gpu.CacheLineBytes", g.CacheLineBytes)

	p := cfg.PCIe
	v.pos("pcie.BandwidthGBs", p.BandwidthGBs)
	v.nonneg("pcie.LatencyNs", p.LatencyNs)
	v.frac01("pcie.BulkEfficiency", p.BulkEfficiency)
	v.frac01("pcie.PrefetchEfficiency", p.PrefetchEfficiency)
	v.frac01("pcie.FaultEfficiency", p.FaultEfficiency)
	v.frac01("pcie.WritebackEfficiency", p.WritebackEfficiency)

	h := cfg.Host
	v.pos("host.Chips", float64(h.Chips))
	v.pos("host.ChipCapacity", float64(h.ChipCapacity))
	v.frac0lt1("host.AmbientMin", h.AmbientMin)
	v.frac0lt1("host.AmbientMax", h.AmbientMax)
	if h.AmbientMax < h.AmbientMin {
		v.addf("host.AmbientMax (%v) is below host.AmbientMin (%v)", h.AmbientMax, h.AmbientMin)
	}
	v.nonneg("host.CrossPenalty", h.CrossPenalty)
	v.nonneg("host.CrossJitter", h.CrossJitter)

	u := cfg.UVM
	v.pos("uvm.ChunkBytes", float64(u.ChunkBytes))
	v.pos("uvm.FaultBlockBytes", float64(u.FaultBlockBytes))
	if u.FaultBlockBytes > u.ChunkBytes {
		v.addf("uvm.FaultBlockBytes (%d) exceeds uvm.ChunkBytes (%d)", u.FaultBlockBytes, u.ChunkBytes)
	}
	v.nonneg("uvm.FaultBatchLatencyNs", u.FaultBatchLatencyNs)
	v.nonneg("uvm.PrefetchCallNs", u.PrefetchCallNs)
	v.nonneg("uvm.ResidentPrefetchNsPerGB", u.ResidentPrefetchNsPerGB)

	a := cfg.Alloc
	v.nonneg("alloc.MallocBase", a.MallocBase)
	v.nonneg("alloc.MallocPerGB", a.MallocPerGB)
	v.nonneg("alloc.ManagedBase", a.ManagedBase)
	v.nonneg("alloc.ManagedPerGB", a.ManagedPerGB)
	v.nonneg("alloc.FreeBase", a.FreeBase)
	v.nonneg("alloc.FreePerGB", a.FreePerGB)
	v.nonneg("alloc.ManagedFreePerGB", a.ManagedFreePerGB)

	v.nonneg("SystemOverheadNs", cfg.SystemOverheadNs)
	v.frac0lt1("OverheadJitterRel", cfg.OverheadJitterRel)
	v.nonneg("KernelLaunchNs", cfg.KernelLaunchNs)
	v.frac01("ManagedCapacityFraction", cfg.ManagedCapacityFraction)
	v.frac01("HostConsumeFraction", cfg.HostConsumeFraction)

	if len(v) == 0 {
		return nil
	}
	return fmt.Errorf("profile: invalid config: %s", strings.Join(v, "; "))
}

// Validate checks the profile's name and configuration.
func (p Profile) Validate() error {
	if strings.TrimSpace(p.Name) == "" {
		return fmt.Errorf("profile: profile has no name")
	}
	return Validate(p.Config)
}
