package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/workloads"
)

// TestDefaultMatchesPaperTestbed pins the contract the goldens rely on:
// the default profile is bit-identical to the config every experiment
// used before profiles existed.
func TestDefaultMatchesPaperTestbed(t *testing.T) {
	p := Default()
	if p.Name != DefaultName {
		t.Fatalf("Default().Name = %q, want %q", p.Name, DefaultName)
	}
	if p.Config != cuda.DefaultSystemConfig() {
		t.Fatalf("Default().Config differs from cuda.DefaultSystemConfig()")
	}
	if got, want := Fingerprint(p.Config), Fingerprint(cuda.DefaultSystemConfig()); got != want {
		t.Fatalf("fingerprint mismatch: %s != %s", got, want)
	}
}

func TestBuiltinsValidate(t *testing.T) {
	ps := Builtins()
	if len(ps) != len(Names()) {
		t.Fatalf("Builtins() returned %d profiles, Names() lists %d", len(ps), len(Names()))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("builtin %s fails validation: %v", p.Name, err)
		}
	}
}

// TestRegistryImmutable checks that mutating a looked-up profile cannot
// corrupt the registry: constructors return fresh values.
func TestRegistryImmutable(t *testing.T) {
	p, err := Lookup(DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	p.Config.GPU.SMs = 1
	q, _ := Lookup(DefaultName)
	if q.Config.GPU.SMs == 1 {
		t.Fatal("mutating a Lookup result changed the registry")
	}
}

func TestFingerprints(t *testing.T) {
	seen := map[string]string{}
	for _, p := range Builtins() {
		fp := p.Fingerprint()
		if len(fp) != 16 {
			t.Errorf("%s: fingerprint %q is not 16 hex digits", p.Name, fp)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("profiles %s and %s share fingerprint %s", prev, p.Name, fp)
		}
		seen[fp] = p.Name
		if p.Fingerprint() != fp {
			t.Errorf("%s: fingerprint not stable across calls", p.Name)
		}
		// The digest covers the machine, not its label.
		renamed := p
		renamed.Name, renamed.Description = "other", "other"
		if renamed.Fingerprint() != fp {
			t.Errorf("%s: renaming changed the fingerprint", p.Name)
		}
	}
}

// numericField is one numeric leaf of the SystemConfig struct tree.
type numericField struct {
	name  string
	index []int
}

func numericFields(t reflect.Type, prefix string, base []int) []numericField {
	var out []numericField
	for i := 0; i < t.NumField(); i++ {
		ft := t.Field(i)
		idx := append(append([]int{}, base...), i)
		name := prefix + ft.Name
		switch ft.Type.Kind() {
		case reflect.Struct:
			out = append(out, numericFields(ft.Type, name+".", idx)...)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Float32, reflect.Float64:
			out = append(out, numericField{name: name, index: idx})
		}
	}
	return out
}

// TestValidateRejectsMutatedFields is the property test of the Validate
// contract: take every built-in machine, corrupt any single numeric
// field to -1 (no field of a physical machine model is negative), and
// Validate must reject the result.
func TestValidateRejectsMutatedFields(t *testing.T) {
	fields := numericFields(reflect.TypeOf(cuda.SystemConfig{}), "", nil)
	// The config spans the whole system model; if this shrinks, fields
	// were dropped from validation's reach.
	if len(fields) < 40 {
		t.Fatalf("only %d numeric fields found in SystemConfig; expected the full system model", len(fields))
	}
	for _, p := range Builtins() {
		for _, f := range fields {
			cfg := p.Config
			fv := reflect.ValueOf(&cfg).Elem().FieldByIndex(f.index)
			if fv.CanInt() {
				fv.SetInt(-1)
			} else {
				fv.SetFloat(-1)
			}
			if err := Validate(cfg); err == nil {
				t.Errorf("%s: Validate accepted %s = -1", p.Name, f.name)
			}
		}
	}
}

func TestValidateRejectsRelationalNonsense(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*cuda.SystemConfig)
	}{
		{"shared carveout over cache", func(c *cuda.SystemConfig) { c.GPU.MaxSharedKB = c.GPU.UnifiedCacheKB + 1 }},
		{"L1 floor over cache", func(c *cuda.SystemConfig) { c.GPU.MinL1KB = c.GPU.UnifiedCacheKB + 1 }},
		{"fault block over chunk", func(c *cuda.SystemConfig) { c.UVM.FaultBlockBytes = c.UVM.ChunkBytes + 1 }},
		{"ambient range inverted", func(c *cuda.SystemConfig) { c.Host.AmbientMin, c.Host.AmbientMax = 0.9, 0.1 }},
		{"efficiency above 1", func(c *cuda.SystemConfig) { c.PCIe.BulkEfficiency = 1.5 }},
		{"NaN bandwidth", func(c *cuda.SystemConfig) { c.PCIe.BandwidthGBs = nan() }},
	}
	for _, tc := range cases {
		cfg := cuda.DefaultSystemConfig()
		tc.mutate(&cfg)
		if err := Validate(cfg); err == nil {
			t.Errorf("Validate accepted config with %s", tc.name)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestRoundTrip is the dump/load regression test: Save -> Load must be
// the identity on every built-in, fingerprint included.
func TestRoundTrip(t *testing.T) {
	for _, p := range Builtins() {
		var buf bytes.Buffer
		if err := Save(&buf, p); err != nil {
			t.Fatalf("%s: save: %v", p.Name, err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", p.Name, err)
		}
		if got != p {
			t.Errorf("%s: round trip changed the profile", p.Name)
		}
		if got.Fingerprint() != p.Fingerprint() {
			t.Errorf("%s: round trip changed the fingerprint", p.Name)
		}
	}
}

// TestRoundTripPreservesExplicitZeros guards the zero-vs-default
// semantics: a profile that sets a field to zero which the default
// profile sets non-zero (a deliberately jitter-free machine, say) must
// survive dump -> load with the zero intact — absent and zero fields are
// never silently refilled from defaults.
func TestRoundTripPreservesExplicitZeros(t *testing.T) {
	p := Default()
	p.Name = "a100-noiseless"
	p.Description = "default testbed with all jitter sources disabled"
	p.Config.OverheadJitterRel = 0
	p.Config.Host.CrossJitter = 0
	p.Config.UVM.PrefetchCallNs = 0
	if err := p.Validate(); err != nil {
		t.Fatalf("zeroed profile should be valid: %v", err)
	}
	if p.Fingerprint() == Default().Fingerprint() {
		t.Fatal("zeroing fields did not change the fingerprint")
	}

	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.OverheadJitterRel != 0 || got.Config.Host.CrossJitter != 0 || got.Config.UVM.PrefetchCallNs != 0 {
		t.Fatal("explicit zeros were replaced after a round trip")
	}
	if got != p || got.Fingerprint() != p.Fingerprint() {
		t.Fatal("round trip changed the zeroed profile")
	}
}

func TestLoadRejectsUnknownField(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, Default()); err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(buf.String(), `"name"`, `"nmae"`, 1)
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("Load accepted a misspelled field")
	}
}

func TestLoadRejectsInvalidConfig(t *testing.T) {
	p := Default()
	p.Config.PCIe.BandwidthGBs = -5
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("Load accepted a negative link bandwidth")
	}
}

func TestLookupSuggestion(t *testing.T) {
	_, err := Lookup("a100-40g-pci4")
	if err == nil {
		t.Fatal("Lookup accepted a misspelled name")
	}
	if !strings.Contains(err.Error(), `did you mean "a100-40g-pcie4"?`) {
		t.Fatalf("error lacks the nearest-name hint: %v", err)
	}
}

func TestResolve(t *testing.T) {
	if _, err := Resolve("v100-16g-pcie3"); err != nil {
		t.Fatalf("Resolve(builtin): %v", err)
	}

	// A near-miss name must be reported as a name typo, not a missing
	// file.
	_, err := Resolve("v100-16g-pcie")
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("Resolve near-miss: want a name suggestion, got %v", err)
	}

	// Anything path-shaped goes to the filesystem.
	path := filepath.Join(t.TempDir(), "machine.json")
	p := Default()
	p.Name = "my-machine"
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Resolve(path)
	if err != nil {
		t.Fatalf("Resolve(file): %v", err)
	}
	if got != p {
		t.Fatal("Resolve(file) returned a different profile")
	}

	if _, err := Resolve(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Resolve accepted a missing file")
	}
}

// TestBuiltinsRunTiny runs the smallest paper workload on every built-in
// machine under every registered transfer setup: each preset must be a complete,
// runnable system model, not just a bag of plausible numbers.
func TestBuiltinsRunTiny(t *testing.T) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Builtins() {
		for _, setup := range cuda.Registered() {
			ctx := p.NewContext(setup, 1)
			if err := w.Run(ctx, workloads.Tiny); err != nil {
				t.Errorf("%s/%s: %v", p.Name, setup, err)
				continue
			}
			if b := ctx.Breakdown(); !(b.Total > 0) {
				t.Errorf("%s/%s: non-positive total %v", p.Name, setup, b.Total)
			}
		}
	}
}
