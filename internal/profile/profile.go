// Package profile makes the modelled machine a first-class, swappable
// input to the simulator. The paper's findings are expressed against
// exactly one testbed — an A100-40GB over PCIe 4.0 — but the
// transfer-mode tradeoffs it studies shift dramatically across GPU
// generations (Svedin et al.) and invert entirely on coherent
// CPU-GPU interconnects (Wahlgren et al.). A Profile bundles a complete
// cuda.SystemConfig under a stable name, so every future "new hardware
// scenario" is a data change, not a code change.
//
// The package provides:
//
//   - a registry of validated built-in presets (Builtins, Lookup), with
//     the paper's testbed as Default — bit-identical to
//     cuda.DefaultSystemConfig(), pinned by golden tests;
//   - JSON save/load for user-defined machines (Save, Load, LoadFile),
//     with strict decoding: a loaded file contains exactly the fields it
//     states, zero values stay zero, and nothing is silently filled from
//     defaults, so dump -> load -> Fingerprint is the identity;
//   - Validate, which rejects nonsensical configs (non-positive
//     bandwidths or capacities, shared-memory carveouts exceeding the
//     unified cache, zero fault granules, out-of-range fractions);
//   - Fingerprint, a deterministic digest of the full SystemConfig that
//     keys the experiment cell cache, so cached cells can never leak
//     between profiles.
package profile

import (
	"fmt"

	"uvmasim/internal/cuda"
	"uvmasim/internal/devmem"
	"uvmasim/internal/gpu"
	"uvmasim/internal/hostmem"
	"uvmasim/internal/nearest"
	"uvmasim/internal/pcie"
	"uvmasim/internal/uvm"
)

// Profile is one named, immutable system model. The struct is all
// values (no pointers or slices), so copies are deep and a registry
// lookup can never alias mutable state.
type Profile struct {
	Name        string            `json:"name"`
	Description string            `json:"description"`
	Config      cuda.SystemConfig `json:"config"`
}

// DefaultName is the paper's testbed profile; it is the implicit
// machine everywhere a profile is not given.
const DefaultName = "a100-40g-pcie4"

// builtins maps names to preset constructors. Constructors return fresh
// values on every call, so callers can never mutate the registry.
var builtins = map[string]func() Profile{
	DefaultName:        a10040gPCIe4,
	"v100-16g-pcie3":   v10016gPCIe3,
	"a100-80g-sxm":     a10080gSXM,
	"grace-hopper-c2c": graceHopperC2C,
}

// builtinOrder is the presentation order (paper testbed first, then by
// generation).
var builtinOrder = []string{
	DefaultName,
	"v100-16g-pcie3",
	"a100-80g-sxm",
	"grace-hopper-c2c",
}

// Default returns the paper's testbed profile. Its Config is
// bit-identical to cuda.DefaultSystemConfig(), which the golden tests
// pin byte-for-byte.
func Default() Profile { return a10040gPCIe4() }

// Names lists the built-in profile names in presentation order.
func Names() []string {
	out := make([]string, len(builtinOrder))
	copy(out, builtinOrder)
	return out
}

// Builtins returns every built-in profile in presentation order.
func Builtins() []Profile {
	out := make([]Profile, len(builtinOrder))
	for i, name := range builtinOrder {
		out[i] = builtins[name]()
	}
	return out
}

// Lookup resolves a built-in profile by name. Unknown names get a
// single-line error with the nearest valid name.
func Lookup(name string) (Profile, error) {
	if ctor, ok := builtins[name]; ok {
		return ctor(), nil
	}
	return Profile{}, fmt.Errorf("profile: unknown profile %q%s",
		name, nearest.Hint(name, Names(), 3))
}

// NewContext creates a simulated process on this profile's machine —
// the profile-aware form of cuda.NewContext.
func (p Profile) NewContext(setup cuda.Setup, seed int64) *cuda.Context {
	return cuda.NewContext(p.Config, setup, seed)
}

// a10040gPCIe4 is the paper's testbed: an A100-SXM4-40GB on a 16-chip
// EPYC host over PCIe 4.0 x16. It must stay bit-identical to
// cuda.DefaultSystemConfig() — the committed goldens depend on it.
func a10040gPCIe4() Profile {
	return Profile{
		Name:        DefaultName,
		Description: "paper testbed: A100-SXM4-40GB, 16x64GB EPYC host, PCIe 4.0 x16",
		Config:      cuda.DefaultSystemConfig(),
	}
}

// v10016gPCIe3 models the previous generation: a V100-16GB on a PCIe
// 3.0 x16 host. Less HBM bandwidth and capacity, a slower link, and
// Volta's slower fault servicing — the machine on which the paper's
// Mega inputs do not even fit device memory.
func v10016gPCIe3() Profile {
	return Profile{
		Name:        "v100-16g-pcie3",
		Description: "previous generation: V100-SXM2-16GB, 16x32GB host, PCIe 3.0 x16",
		Config: cuda.SystemConfig{
			GPU: gpu.Config{
				SMs:             80,
				CoresPerSM:      64,
				ClockGHz:        1.53,
				MaxThreadsPerSM: 2048,
				MaxBlocksPerSM:  32,
				MaxWarpsPerSM:   64,
				WarpSize:        32,

				HBMBandwidthGBs: 900,
				HBMLatencyNs:    440,
				HBMCapacity:     16 << 30,

				UnifiedCacheKB: 128,
				MaxSharedKB:    96,
				MinL1KB:        32,

				SyncInflightBytes: 96,
				CacheLineBytes:    32,
			},
			PCIe: pcie.Config{
				BandwidthGBs:        13,
				LatencyNs:           1800,
				BulkEfficiency:      0.90,
				PrefetchEfficiency:  0.82,
				FaultEfficiency:     0.68,
				WritebackEfficiency: 0.62,
			},
			Host: hostmem.Config{
				Chips:        16,
				ChipCapacity: 32 << 30,
				AmbientMin:   0.30,
				AmbientMax:   0.92,
				CrossPenalty: 1.8,
				CrossJitter:  0.75,
			},
			UVM: uvm.Config{
				ChunkBytes:              2 << 20,
				FaultBlockBytes:         64 << 10,
				FaultBatchLatencyNs:     35e3,
				PrefetchCallNs:          14e3,
				ResidentPrefetchNsPerGB: 1.3e6,
			},
			Alloc: devmem.CostModel{
				MallocBase:       140e3,
				MallocPerGB:      13e6,
				ManagedBase:      95e3,
				ManagedPerGB:     11e6,
				FreeBase:         110e3,
				FreePerGB:        8e6,
				ManagedFreePerGB: 3.5e6,
			},

			SystemOverheadNs:        2.1e8,
			OverheadJitterRel:       0.035,
			KernelLaunchNs:          7e3,
			ManagedCapacityFraction: 0.95,
			HostConsumeFraction:     1.0 / 16,
		},
	}
}

// a10080gSXM is the paper's GPU in its big-memory SXM form: the same
// SM array with the 80 GB HBM2e stack (more capacity, ~30% more
// bandwidth), so capacity-cliff experiments move while in-SM behaviour
// stays put.
func a10080gSXM() Profile {
	cfg := cuda.DefaultSystemConfig()
	cfg.GPU.HBMBandwidthGBs = 2039
	cfg.GPU.HBMCapacity = 80 << 30
	return Profile{
		Name:        "a100-80g-sxm",
		Description: "big-memory variant: A100-SXM4-80GB (HBM2e, 2039 GB/s), same PCIe 4.0 host",
		Config:      cfg,
	}
}

// graceHopperC2C models a Grace-Hopper-class superchip: a Hopper GPU
// whose host link is NVLink-C2C (~450 GB/s per direction, sub-us
// latency, hardware coherence) rather than PCIe. Fault service is far
// cheaper and migration efficiencies far higher, the regime in which
// published UVM conclusions invert.
func graceHopperC2C() Profile {
	return Profile{
		Name:        "grace-hopper-c2c",
		Description: "coherent superchip: H100-96GB over NVLink-C2C (450 GB/s), LPDDR5X host",
		Config: cuda.SystemConfig{
			GPU: gpu.Config{
				SMs:             132,
				CoresPerSM:      128,
				ClockGHz:        1.98,
				MaxThreadsPerSM: 2048,
				MaxBlocksPerSM:  32,
				MaxWarpsPerSM:   64,
				WarpSize:        32,

				HBMBandwidthGBs: 4000,
				HBMLatencyNs:    350,
				HBMCapacity:     96 << 30,

				UnifiedCacheKB: 256,
				MaxSharedKB:    228,
				MinL1KB:        28,

				SyncInflightBytes: 96,
				CacheLineBytes:    32,
			},
			PCIe: pcie.Config{
				BandwidthGBs:        450,
				LatencyNs:           600,
				BulkEfficiency:      0.95,
				PrefetchEfficiency:  0.92,
				FaultEfficiency:     0.85,
				WritebackEfficiency: 0.85,
			},
			Host: hostmem.Config{
				Chips:        8,
				ChipCapacity: 60 << 30,
				AmbientMin:   0.10,
				AmbientMax:   0.55,
				CrossPenalty: 0.8,
				CrossJitter:  0.40,
			},
			UVM: uvm.Config{
				ChunkBytes:              2 << 20,
				FaultBlockBytes:         64 << 10,
				FaultBatchLatencyNs:     8e3,
				PrefetchCallNs:          8e3,
				ResidentPrefetchNsPerGB: 5e5,
			},
			Alloc: devmem.CostModel{
				MallocBase:       110e3,
				MallocPerGB:      9e6,
				ManagedBase:      70e3,
				ManagedPerGB:     6e6,
				FreeBase:         90e3,
				FreePerGB:        6e6,
				ManagedFreePerGB: 2e6,
			},

			SystemOverheadNs:        1.6e8,
			OverheadJitterRel:       0.025,
			KernelLaunchNs:          5e3,
			ManagedCapacityFraction: 0.95,
			HostConsumeFraction:     1.0 / 16,
		},
	}
}
