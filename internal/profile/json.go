package profile

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"

	"uvmasim/internal/cuda"
)

// Fingerprint returns a deterministic 16-hex-digit digest of the full
// system configuration. Two configs fingerprint equally iff every field
// is bit-identical: the digest hashes the canonical JSON encoding, whose
// field order is the struct declaration order and whose float64
// rendering is Go's shortest exact round-trip form. The experiment cell
// cache keys on this digest, so results can never leak between
// profiles, and a profile that survives a JSON save/load round trip
// keeps its fingerprint (the round trip preserves every field exactly,
// including explicit zeros).
func Fingerprint(cfg cuda.SystemConfig) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// SystemConfig is all scalar fields; Marshal cannot fail.
		panic("profile: config not marshalable: " + err.Error())
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint digests the profile's configuration (the name and
// description do not contribute: a renamed copy of a machine is the same
// machine).
func (p Profile) Fingerprint() string { return Fingerprint(p.Config) }

// Save writes the profile as indented JSON. The dump is complete —
// every config field appears explicitly, zero or not — so a dumped file
// is both a schema to edit and a loss-free snapshot: Load(Save(p))
// reproduces p exactly, fingerprint included.
func Save(w io.Writer, p Profile) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// Load reads a profile from JSON and validates it. Decoding is strict:
// unknown fields are rejected (catching typos in hand-written files),
// and absent fields stay at their zero value — nothing is silently
// filled in from a default profile, so an explicit zero and an omitted
// field behave identically and a round-tripped profile never changes.
func Load(r io.Reader) (Profile, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("profile: decode: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// LoadFile loads and validates a profile from a JSON file.
func LoadFile(path string) (Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return Profile{}, fmt.Errorf("profile: %w", err)
	}
	defer f.Close()
	p, err := Load(f)
	if err != nil {
		return Profile{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Resolve turns a user-supplied -profile argument into a profile: a
// built-in name resolves through the registry, anything that looks like
// a path (a .json suffix or a path separator) loads from disk, and
// unknown names report the nearest built-in.
func Resolve(arg string) (Profile, error) {
	if p, err := Lookup(arg); err == nil {
		return p, nil
	} else if !strings.HasSuffix(arg, ".json") && !strings.ContainsAny(arg, `/\`) {
		return Profile{}, err
	}
	return LoadFile(arg)
}

// Describe renders the profile's key parameters as the text block the
// `uvmbench profiles show` subcommand prints.
func (p Profile) Describe() string {
	c := p.Config
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", p.Name, p.Description)
	fmt.Fprintf(&b, "  fingerprint    %s\n", p.Fingerprint())
	fmt.Fprintf(&b, "  gpu            %d SMs x %d cores @ %.2f GHz, %.0f GB HBM @ %.0f GB/s\n",
		c.GPU.SMs, c.GPU.CoresPerSM, c.GPU.ClockGHz,
		float64(c.GPU.HBMCapacity)/float64(1<<30), c.GPU.HBMBandwidthGBs)
	fmt.Fprintf(&b, "  l1/shared      %d KB unified, max %d KB shared, min %d KB L1 per SM\n",
		c.GPU.UnifiedCacheKB, c.GPU.MaxSharedKB, c.GPU.MinL1KB)
	fmt.Fprintf(&b, "  link           %.0f GB/s per direction, %.0f ns latency (bulk eff %.2f, fault eff %.2f)\n",
		c.PCIe.BandwidthGBs, c.PCIe.LatencyNs, c.PCIe.BulkEfficiency, c.PCIe.FaultEfficiency)
	fmt.Fprintf(&b, "  host dram      %d chips x %.0f GB\n",
		c.Host.Chips, float64(c.Host.ChipCapacity)/float64(1<<30))
	fmt.Fprintf(&b, "  uvm            %d KB fault blocks in %d MB chunks, %.0f us fault batches\n",
		c.UVM.FaultBlockBytes>>10, c.UVM.ChunkBytes>>20, c.UVM.FaultBatchLatencyNs/1e3)
	return b.String()
}
