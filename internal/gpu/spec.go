package gpu

import (
	"fmt"
	"strings"
)

// Access classifies a kernel's dominant global-memory access pattern.
// It drives DRAM efficiency, L1 behaviour, UVM prefetcher accuracy and
// page-walk costs — the axis separating 2DCONV-like workloads (regular,
// prefetch-friendly) from lud-like workloads (irregular, async-friendly)
// in Takeaway 2.
type Access int

const (
	// Sequential: fully coalesced streaming (vector_seq, saxpy, conv).
	Sequential Access = iota
	// Strided: regular but with stride >1 or tiled reuse (gemv, gemm).
	Strided
	// Irregular: data-dependent but with some locality (kmeans, lud, nw).
	Irregular
	// Random: uniformly scattered accesses (vector_rand, knn distance
	// gathers, bayesian structure sampling).
	Random
)

// String implements fmt.Stringer.
func (a Access) String() string {
	switch a {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Irregular:
		return "irregular"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Access(%d)", int(a))
}

// dramEfficiency is the fraction of peak DRAM bandwidth the pattern
// achieves (coalescing + row-buffer locality).
func (a Access) dramEfficiency() float64 {
	switch a {
	case Sequential:
		return 1.0
	case Strided:
		return 0.80
	case Irregular:
		return 0.55
	default: // Random
		return 0.30
	}
}

// baseMissRate is the compulsory L1 load miss floor of the pattern for a
// generously sized cache: streaming data misses once per line, irregular
// patterns miss more often.
func (a Access) baseMissRate() float64 {
	switch a {
	case Sequential:
		return 0.125 // one miss per 32 B line of 4 B elements
	case Strided:
		return 0.25
	case Irregular:
		return 0.45
	default: // Random
		return 0.80
	}
}

// walkOverhead is the fractional address-translation cost UVM adds to the
// global fetch path (GPU page walks against the replicated CPU page
// table, §2.1). Irregular patterns walk more distinct pages per byte.
func (a Access) walkOverhead() float64 {
	switch a {
	case Sequential:
		return 0.10
	case Strided:
		return 0.16
	case Irregular:
		return 0.30
	default: // Random
		return 0.48
	}
}

// asyncBypassLoadBenefit is the relative L1 load miss-rate reduction when
// staged traffic bypasses L1 via memcpy_async, leaving the cache to the
// kernel's residual (pointer/index/reused) accesses. Irregular kernels
// benefit most (Figure 10: lud -35.96% load miss rate).
func (a Access) asyncBypassLoadBenefit() float64 {
	switch a {
	case Sequential:
		return 0.06
	case Strided:
		return 0.15
	case Irregular:
		return 0.38
	default: // Random
		return 0.30
	}
}

// asyncBypassStoreBenefit mirrors asyncBypassLoadBenefit for stores
// (Figure 10: lud -69.99% store miss rate): output staging through
// shared memory coalesces writes that would otherwise thrash L1.
func (a Access) asyncBypassStoreBenefit() float64 {
	switch a {
	case Sequential:
		return 0.10
	case Strided:
		return 0.25
	case Irregular:
		return 0.70
	default: // Random
		return 0.55
	}
}

// prefetchAccuracy is the fraction of driver/explicit prefetches that
// deliver useful pages for this pattern; the complement is wasted PCIe
// and cache pollution (the reason lud does not benefit from UVM
// prefetch, §4.1.2).
func (a Access) prefetchAccuracy() float64 {
	switch a {
	case Sequential:
		return 0.98
	case Strided:
		return 0.90
	case Irregular:
		return 0.55
	default: // Random
		return 0.35
	}
}

// KernelSpec describes one kernel launch's work analytically. Workloads
// construct specs from their real algorithm structure (loop bounds, tile
// shapes), so the spec is derived, not assumed.
type KernelSpec struct {
	Name string

	// Launch geometry.
	Blocks          int
	ThreadsPerBlock int

	// Total kernel work across all blocks.
	LoadBytes int64 // unique global-memory bytes read (compulsory volume)
	// LoadAccessBytes is the algorithmic global-load volume (bytes issued
	// by load/cp.async instructions, counting re-reads across tiles).
	// Zero defaults to LoadBytes; tiled kernels like gemm set it to the
	// per-tile re-read volume.
	LoadAccessBytes int64
	StoreBytes      int64   // global-memory bytes written (unique)
	Flops           float64 // floating-point operations
	IntOps          float64 // integer/address operations
	CtrlOps         float64 // control operations at the preferred tile size

	// TileBytes is the preferred per-block shared-memory staging tile.
	// The effective tile shrinks when the shared partition cannot hold
	// it (twice over for async double buffering), growing CtrlOps
	// proportionally.
	TileBytes int64

	// Behavioural characteristics.
	Access         Access
	WorkingSetKB   float64 // per-SM reused working set (L1 pressure)
	StagedFraction float64 // fraction of LoadBytes that flows via shared staging

	// Async-path coefficients (1.0 = neutral). These come from tile
	// geometry: halo re-reads for stencils, lost register blocking for
	// dense kernels with halved tiles.
	AsyncLoadInflation  float64
	AsyncComputePenalty float64
	AsyncCtrlFactor     float64 // multiplier on Int+Ctrl ops (Figure 9)

	// SyncStageOverhead is the extra fraction of fetch time the
	// synchronous path spends shuffling data through the register file
	// into shared memory with barrier waits (the cost async staging
	// eliminates).
	SyncStageOverhead float64
}

// withDefaults fills zero-valued tuning fields with neutral defaults.
func (s KernelSpec) withDefaults() KernelSpec {
	if s.StagedFraction == 0 {
		s.StagedFraction = 1.0
	}
	if s.AsyncLoadInflation == 0 {
		s.AsyncLoadInflation = 1.0
	}
	if s.AsyncComputePenalty == 0 {
		s.AsyncComputePenalty = 1.0
	}
	if s.AsyncCtrlFactor == 0 {
		s.AsyncCtrlFactor = 1.40
	}
	if s.SyncStageOverhead == 0 {
		s.SyncStageOverhead = 0.35
	}
	if s.TileBytes == 0 {
		s.TileBytes = 32 << 10
	}
	if s.LoadAccessBytes == 0 {
		s.LoadAccessBytes = s.LoadBytes
	}
	return s
}

// Validate reports structural problems in the spec.
//
// The error paths clone s.Name before boxing it: interface-converting
// the field directly would make the whole receiver leak, forcing every
// caller's enclosing struct (e.g. cuda.Launch and its buffer slices) to
// heap-allocate on the alloc-free launch path.
func (s KernelSpec) Validate() error {
	switch {
	case s.Blocks <= 0:
		return fmt.Errorf("gpu: kernel %q: Blocks must be positive, got %d", strings.Clone(s.Name), s.Blocks)
	case s.ThreadsPerBlock <= 0:
		return fmt.Errorf("gpu: kernel %q: ThreadsPerBlock must be positive, got %d", strings.Clone(s.Name), s.ThreadsPerBlock)
	case s.ThreadsPerBlock > 1024:
		return fmt.Errorf("gpu: kernel %q: ThreadsPerBlock %d exceeds CUDA limit 1024", strings.Clone(s.Name), s.ThreadsPerBlock)
	case s.LoadBytes < 0 || s.StoreBytes < 0:
		return fmt.Errorf("gpu: kernel %q: negative byte counts", strings.Clone(s.Name))
	case s.LoadAccessBytes != 0 && s.LoadAccessBytes < s.LoadBytes:
		return fmt.Errorf("gpu: kernel %q: LoadAccessBytes %d below unique LoadBytes %d",
			strings.Clone(s.Name), s.LoadAccessBytes, s.LoadBytes)
	case s.Flops < 0 || s.IntOps < 0 || s.CtrlOps < 0:
		return fmt.Errorf("gpu: kernel %q: negative op counts", strings.Clone(s.Name))
	case s.TileBytes < 0:
		return fmt.Errorf("gpu: kernel %q: negative TileBytes", strings.Clone(s.Name))
	case s.StagedFraction < 0 || s.StagedFraction > 1:
		return fmt.Errorf("gpu: kernel %q: StagedFraction %v outside [0,1]", strings.Clone(s.Name), s.StagedFraction)
	}
	return nil
}
