package gpu

import (
	"math"
	"testing"
)

// vectorSpec is a vector_seq-like memory-bound streaming kernel:
// 128M float32 elements, ~40 flops each (the arithmetic iterations of the
// Svedin et al. benchmark the paper builds on).
func vectorSpec() KernelSpec {
	const n = 128 << 20
	return KernelSpec{
		Name:            "vector_seq",
		Blocks:          4096,
		ThreadsPerBlock: 256,
		LoadBytes:       4 * n,
		StoreBytes:      4 * n,
		Flops:           40 * n,
		IntOps:          6 * n,
		CtrlOps:         1 * n / 8,
		TileBytes:       16 << 10,
		Access:          Sequential,
		WorkingSetKB:    8,
	}
}

// gemmSpec is a tiled dense matmul: compute bound, strided tile loads.
func gemmSpec(n int64) KernelSpec {
	reload := n / 128 // each element re-read n/tileDim times
	return KernelSpec{
		Name:                "gemm",
		Blocks:              4096,
		ThreadsPerBlock:     256,
		LoadBytes:           3 * 4 * n * n,
		LoadAccessBytes:     2 * 4 * n * n * reload,
		StoreBytes:          4 * n * n,
		Flops:               2 * float64(n) * float64(n) * float64(n),
		IntOps:              float64(n*n) * 8,
		CtrlOps:             float64(n*n) / 4,
		TileBytes:           16 << 10,
		Access:              Strided,
		WorkingSetKB:        64,
		AsyncComputePenalty: 1.08,
	}
}

// ludSpec is an irregular, latency-sensitive kernel.
func ludSpec() KernelSpec {
	const n = 8192
	return KernelSpec{
		Name:            "lud",
		Blocks:          2048,
		ThreadsPerBlock: 256,
		LoadBytes:       4 * n * n,
		LoadAccessBytes: 4 * n * n * 12,
		StoreBytes:      4 * n * n,
		Flops:           float64(n) * float64(n) * 40,
		IntOps:          float64(n*n) * 20,
		CtrlOps:         float64(n*n) * 2,
		TileBytes:       8 << 10,
		Access:          Irregular,
		WorkingSetKB:    256,
	}
}

func TestA100Config(t *testing.T) {
	c := A100()
	if got := c.FlopsPerNs(); math.Abs(got-19491.84) > 1 {
		t.Errorf("A100 peak = %v flops/ns, want ~19491 (19.5 TFLOPS)", got)
	}
	if c.L1KB(164) != 28 {
		t.Errorf("L1 at max shared = %v, want 28", c.L1KB(164))
	}
	if c.L1KB(0) != 192 {
		t.Errorf("L1 with no shared = %v, want 192", c.L1KB(0))
	}
	if c.ClampSharedKB(500) != 164 || c.ClampSharedKB(-3) != 0 {
		t.Errorf("ClampSharedKB broken")
	}
}

func TestOccupancyBasics(t *testing.T) {
	m := NewModel(A100())
	occ := m.occupancy(vectorSpec().withDefaults(), ExecConfig{})
	if occ.BlocksPerSM != 5 { // 164KB / 32KB shared per block
		t.Errorf("BlocksPerSM = %d, want 5 (shared-limited)", occ.BlocksPerSM)
	}
	if occ.SMUtilization != 1 {
		t.Errorf("SMUtilization = %v, want 1", occ.SMUtilization)
	}
	if occ.Fraction <= 0 || occ.Fraction > 1 {
		t.Errorf("occupancy fraction %v out of range", occ.Fraction)
	}
}

func TestOccupancySharedLimits(t *testing.T) {
	m := NewModel(A100())
	s := vectorSpec().withDefaults()
	// 128 KB per block: at most one block per SM fits in 164 KB.
	occ := m.occupancy(s, ExecConfig{SharedPerBlockKB: 128})
	if occ.BlocksPerSM != 1 {
		t.Errorf("BlocksPerSM = %d, want 1 with 128KB shared", occ.BlocksPerSM)
	}
	// 2 KB per block: thread limit (2048/256 = 8) binds instead.
	occ = m.occupancy(s, ExecConfig{SharedPerBlockKB: 2})
	if occ.BlocksPerSM != 8 {
		t.Errorf("BlocksPerSM = %d, want 8 with 2KB shared", occ.BlocksPerSM)
	}
	if occ.L1KB <= m.Config().L1KB(16)-1e9 { // sanity on partition math
		t.Errorf("unexpected L1 %v", occ.L1KB)
	}
}

func TestOccupancyFewBlocks(t *testing.T) {
	m := NewModel(A100())
	s := vectorSpec()
	s.Blocks = 16
	occ := m.occupancy(s.withDefaults(), ExecConfig{})
	if occ.BlocksPerSM != 1 {
		t.Errorf("BlocksPerSM = %d, want 1 for a 16-block grid", occ.BlocksPerSM)
	}
	if math.Abs(occ.SMUtilization-16.0/108) > 1e-9 {
		t.Errorf("SMUtilization = %v, want 16/108", occ.SMUtilization)
	}
}

// Async staging must cut the kernel time of a memory-bound streaming
// workload appreciably (§4.1.1: -41.78% for vector_seq) but must slow a
// compute-bound tiled workload via control overhead (gemm +7.86% under
// prefetch+async).
func TestAsyncHelpsStreamingHurtsCompute(t *testing.T) {
	m := NewModel(A100())

	vSync := m.Launch(vectorSpec(), ExecConfig{})
	vAsync := m.Launch(vectorSpec(), ExecConfig{Async: true})
	red := 1 - vAsync.ExecTime/vSync.ExecTime
	if red < 0.15 || red > 0.60 {
		t.Errorf("vector_seq async kernel reduction = %.1f%%, want 15-60%% (paper: 41.78%%)", red*100)
	}

	g := gemmSpec(8192)
	gSync := m.Launch(g, ExecConfig{})
	gAsync := m.Launch(g, ExecConfig{Async: true})
	inc := gAsync.ExecTime/gSync.ExecTime - 1
	if inc < 0.01 || inc > 0.5 {
		t.Errorf("gemm async kernel increase = %.1f%%, want 1-50%% (paper: +7.86%%)", inc*100)
	}
}

// Managed memory adds page-walk overhead; irregular patterns pay more.
func TestManagedWalkOverhead(t *testing.T) {
	m := NewModel(A100())
	for _, spec := range []KernelSpec{vectorSpec(), ludSpec()} {
		plain := m.Launch(spec, ExecConfig{})
		managed := m.Launch(spec, ExecConfig{Managed: true})
		if managed.ExecTime <= plain.ExecTime {
			t.Errorf("%s: managed exec %v not slower than plain %v",
				spec.Name, managed.ExecTime, plain.ExecTime)
		}
	}
	vRel := m.Launch(vectorSpec(), ExecConfig{Managed: true}).FetchTime /
		m.Launch(vectorSpec(), ExecConfig{}).FetchTime
	lRel := m.Launch(ludSpec(), ExecConfig{Managed: true}).FetchTime /
		m.Launch(ludSpec(), ExecConfig{}).FetchTime
	if lRel <= vRel {
		t.Errorf("irregular walk overhead (%v) should exceed sequential (%v)", lRel, vRel)
	}
}

// Figure 9: async inflates control/integer instruction counts; UVM does not.
func TestInstructionMix(t *testing.T) {
	m := NewModel(A100())
	g := gemmSpec(4096)
	std := m.Launch(g, ExecConfig{})
	asy := m.Launch(g, ExecConfig{Async: true})
	uvm := m.Launch(g, ExecConfig{Managed: true, DriverPrefetch: true})

	if asy.Inst.Ctrl <= std.Inst.Ctrl*1.2 {
		t.Errorf("async ctrl %v should be >20%% above standard %v", asy.Inst.Ctrl, std.Inst.Ctrl)
	}
	if asy.Inst.Int <= std.Inst.Int {
		t.Errorf("async int %v should exceed standard %v", asy.Inst.Int, std.Inst.Int)
	}
	if uvm.Inst.Ctrl != std.Inst.Ctrl || uvm.Inst.Int != std.Inst.Int {
		t.Errorf("UVM should not change the instruction mix")
	}
	if std.Inst.FP != g.Flops/2 {
		t.Errorf("FP inst = %v, want flops/2", std.Inst.FP)
	}
}

// Figure 10: async staging reduces L1 load and store miss rates for the
// irregular workload, with the store reduction larger.
func TestCacheMissReduction(t *testing.T) {
	m := NewModel(A100())
	l := ludSpec()
	std := m.Launch(l, ExecConfig{})
	asy := m.Launch(l, ExecConfig{Async: true})
	loadRed := 1 - asy.L1.LoadMissRate()/std.L1.LoadMissRate()
	storeRed := 1 - asy.L1.StoreMissRate()/std.L1.StoreMissRate()
	if loadRed < 0.2 || loadRed > 0.6 {
		t.Errorf("lud load miss reduction = %.1f%%, want 20-60%% (paper: 35.96%%)", loadRed*100)
	}
	if storeRed < 0.4 || storeRed > 0.9 {
		t.Errorf("lud store miss reduction = %.1f%%, want 40-90%% (paper: 69.99%%)", storeRed*100)
	}
	if storeRed <= loadRed {
		t.Errorf("store reduction (%v) should exceed load reduction (%v)", storeRed, loadRed)
	}
}

// Takeaway 4: performance is very sensitive to threads per block; a
// 32-thread launch should run the kernel several times slower than a
// 128-thread one (paper: 3.95x), and async recovers much of the loss.
func TestThreadSensitivity(t *testing.T) {
	m := NewModel(A100())
	exec := func(tpb int, async bool) float64 {
		s := vectorSpec()
		s.Blocks = 64
		s.ThreadsPerBlock = tpb
		return m.Launch(s, ExecConfig{Async: async}).ExecTime
	}
	slow := exec(32, false) / exec(128, false)
	if slow < 2 || slow > 8 {
		t.Errorf("32-thread slowdown = %.2fx, want 2-8x (paper: 3.95x)", slow)
	}
	// Async advantage grows with fewer threads (deeper per-thread buffer).
	advAt32 := exec(32, false) / exec(32, true)
	advAt1024 := exec(1024, false) / exec(1024, true)
	if advAt32 <= advAt1024 {
		t.Errorf("async advantage at 32 threads (%.2fx) should exceed 1024 threads (%.2fx)",
			advAt32, advAt1024)
	}
}

// Takeaway 4 (other half): with threads fixed at 256 and total work
// constant, the number of blocks barely matters once the GPU is covered.
func TestBlockInsensitivity(t *testing.T) {
	m := NewModel(A100())
	exec := func(blocks int) float64 {
		s := vectorSpec()
		s.Blocks = blocks
		return m.Launch(s, ExecConfig{}).ExecTime
	}
	base := exec(4096)
	for _, b := range []int{2048, 1024, 512, 256} {
		ratio := exec(b) / base
		if ratio < 0.9 || ratio > 1.2 {
			t.Errorf("exec(%d blocks)/exec(4096) = %v, want ~1", b, ratio)
		}
	}
}

// Takeaway 5: a tiny shared partition starves async staging; a huge one
// shrinks L1 and slows managed-prefetch kernels.
func TestSharedPartitionSensitivity(t *testing.T) {
	m := NewModel(A100())
	s := vectorSpec()

	asyncAt := func(kb float64) float64 {
		return m.Launch(s, ExecConfig{Async: true, SharedPerBlockKB: kb}).ExecTime
	}
	if asyncAt(2) <= asyncAt(32) {
		t.Errorf("2KB shared (%.0f) should be slower than 32KB (%.0f) for async",
			asyncAt(2), asyncAt(32))
	}

	uvmMiss := func(kb float64) float64 {
		r := m.Launch(s, ExecConfig{Managed: true, DriverPrefetch: true, SharedPerBlockKB: kb})
		return r.L1.LoadMissRate()
	}
	if uvmMiss(128) <= uvmMiss(2) {
		t.Errorf("large shared carveout should raise UVM miss rate: 128KB=%v 2KB=%v",
			uvmMiss(128), uvmMiss(2))
	}
}

// The irregular workload's async speedup must exceed the sequential one's
// relative to its own sync baseline on the fetch path (Takeaway 2's
// mechanism: staging converts scattered access into streams).
func TestAsyncTrafficReduction(t *testing.T) {
	m := NewModel(A100())
	l := ludSpec()
	std := m.Launch(l, ExecConfig{})
	asy := m.Launch(l, ExecConfig{Async: true})
	if asy.TrafficBytes >= std.TrafficBytes {
		t.Errorf("async should reduce irregular HBM traffic: %v >= %v",
			asy.TrafficBytes, std.TrafficBytes)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []KernelSpec{
		{Name: "b1", Blocks: 0, ThreadsPerBlock: 64},
		{Name: "b2", Blocks: 1, ThreadsPerBlock: 0},
		{Name: "b3", Blocks: 1, ThreadsPerBlock: 2048},
		{Name: "b4", Blocks: 1, ThreadsPerBlock: 64, LoadBytes: -1},
		{Name: "b5", Blocks: 1, ThreadsPerBlock: 64, Flops: -1},
		{Name: "b6", Blocks: 1, ThreadsPerBlock: 64, LoadBytes: 100, LoadAccessBytes: 50},
		{Name: "b7", Blocks: 1, ThreadsPerBlock: 64, StagedFraction: 1.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %s should fail validation", s.Name)
		}
	}
	good := vectorSpec().withDefaults()
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestWithDefaults(t *testing.T) {
	s := KernelSpec{Name: "d", Blocks: 1, ThreadsPerBlock: 32, LoadBytes: 1000}
	d := s.withDefaults()
	if d.StagedFraction != 1.0 || d.AsyncCtrlFactor != 1.40 ||
		d.AsyncLoadInflation != 1.0 || d.AsyncComputePenalty != 1.0 ||
		d.SyncStageOverhead != 0.35 || d.TileBytes != 32<<10 ||
		d.LoadAccessBytes != 1000 {
		t.Errorf("defaults not applied: %+v", d)
	}
}

func TestAccessStrings(t *testing.T) {
	for a, want := range map[Access]string{
		Sequential: "sequential", Strided: "strided",
		Irregular: "irregular", Random: "random",
	} {
		if a.String() != want {
			t.Errorf("Access(%d).String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestLaunchPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Launch with invalid spec should panic")
		}
	}()
	NewModel(A100()).Launch(KernelSpec{Name: "bad"}, ExecConfig{})
}

// Component times must be non-negative and exec must be at least the
// largest single component under async (pipeline law).
func TestComponentSanity(t *testing.T) {
	m := NewModel(A100())
	for _, spec := range []KernelSpec{vectorSpec(), gemmSpec(2048), ludSpec()} {
		for _, e := range []ExecConfig{{}, {Async: true}, {Managed: true}, {Async: true, Managed: true, DriverPrefetch: true}} {
			r := m.Launch(spec, e)
			if r.ExecTime <= 0 || r.FetchTime < 0 || r.ComputeTime < 0 || r.StoreTime < 0 {
				t.Errorf("%s %+v: negative component: %s", spec.Name, e, r)
			}
			if e.Async && r.ExecTime < math.Max(r.FetchTime, r.ComputeTime)-1e-9 {
				t.Errorf("%s: async exec %v below max component", spec.Name, r.ExecTime)
			}
			if r.HideFactor <= 0 || r.HideFactor > 1 {
				t.Errorf("%s: hide factor %v out of range", spec.Name, r.HideFactor)
			}
		}
	}
}
