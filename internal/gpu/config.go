// Package gpu models an Ampere-class GPU at the granularity the paper's
// analysis needs: SM occupancy, a latency-hiding memory throughput model,
// the unified L1/shared-memory partition, the synchronous
// (global->register->shared) versus asynchronous (global->shared,
// memcpy_async) staging paths, and the instruction-mix and cache counters
// behind Figures 9, 10, 12 and 13.
//
// The model is analytic per kernel launch: given a KernelSpec describing
// the kernel's work (total bytes, flops, tile geometry, access pattern)
// and an ExecConfig describing the launch environment (async staging
// on/off, managed memory on/off, L1/shared partition), it produces the
// in-SM execution time assuming all data is resident, plus the counter
// deltas. Data-arrival stalls (UVM faults, prefetch pipelines) are
// simulated on top of this by the uvm and cuda packages.
package gpu

// Config describes the modelled GPU. Defaults follow the Nvidia A100
// (SXM4 40 GB) used in the paper.
type Config struct {
	SMs             int     // streaming multiprocessors
	CoresPerSM      int     // FP32 CUDA cores per SM
	ClockGHz        float64 // SM clock
	MaxThreadsPerSM int     // resident thread limit per SM
	MaxBlocksPerSM  int     // resident block limit per SM
	MaxWarpsPerSM   int     // resident warp limit per SM
	WarpSize        int

	HBMBandwidthGBs float64 // peak device-memory bandwidth
	HBMLatencyNs    float64 // average global-memory load latency
	HBMCapacity     int64   // device memory bytes

	UnifiedCacheKB int // unified L1/texture/shared capacity per SM
	MaxSharedKB    int // largest shared-memory carveout per SM
	MinL1KB        int // L1 floor when shared memory is maximized

	// SyncInflightBytes is the per-thread in-flight byte budget of the
	// synchronous load path (limited by registers and load-queue slots).
	SyncInflightBytes float64
	// CacheLineBytes is the L1 sector size used for traffic accounting.
	CacheLineBytes float64
}

// A100 returns the configuration of the paper's evaluation GPU.
func A100() Config {
	return Config{
		SMs:             108,
		CoresPerSM:      64,
		ClockGHz:        1.41,
		MaxThreadsPerSM: 2048,
		MaxBlocksPerSM:  32,
		MaxWarpsPerSM:   64,
		WarpSize:        32,

		HBMBandwidthGBs: 1555,
		HBMLatencyNs:    400,
		HBMCapacity:     40 << 30,

		UnifiedCacheKB: 192,
		MaxSharedKB:    164,
		MinL1KB:        28,

		SyncInflightBytes: 96,
		CacheLineBytes:    32,
	}
}

// FlopsPerNs returns the peak FP32 throughput in flops per nanosecond
// (FMA counted as two flops).
func (c Config) FlopsPerNs() float64 {
	return float64(c.SMs*c.CoresPerSM) * 2 * c.ClockGHz
}

// IntOpsPerNs returns the peak integer/control throughput in operations
// per nanosecond (one op per core-cycle).
func (c Config) IntOpsPerNs() float64 {
	return float64(c.SMs*c.CoresPerSM) * c.ClockGHz
}

// HBMBytesPerNs returns peak HBM bandwidth in bytes/ns.
func (c Config) HBMBytesPerNs() float64 { return c.HBMBandwidthGBs }

// ClampSharedKB clamps a requested shared-memory carveout to the legal
// per-SM range [0, MaxSharedKB].
func (c Config) ClampSharedKB(kb float64) float64 {
	if kb < 0 {
		return 0
	}
	if kb > float64(c.MaxSharedKB) {
		return float64(c.MaxSharedKB)
	}
	return kb
}

// L1KB returns the L1/texture capacity left after a shared-memory
// carveout of sharedKB, never below MinL1KB.
func (c Config) L1KB(sharedKB float64) float64 {
	l1 := float64(c.UnifiedCacheKB) - c.ClampSharedKB(sharedKB)
	if l1 < float64(c.MinL1KB) {
		l1 = float64(c.MinL1KB)
	}
	return l1
}
