package gpu

import (
	"fmt"
	"math"

	"uvmasim/internal/counters"
	"uvmasim/internal/trace"
)

// ExecConfig describes the environment of one kernel launch: which of the
// paper's data-transfer features are active and how the unified cache is
// partitioned.
type ExecConfig struct {
	// Async enables memcpy_async staging (global->shared bypassing the
	// register file and L1) with double buffering.
	Async bool
	// Managed marks the kernel's buffers as UVM-managed, adding GPU page
	// walk overhead to the global fetch path.
	Managed bool
	// DriverPrefetch marks that the UVM driver prefetcher is streaming
	// pages during the kernel (uvm_prefetch* setups), polluting L1.
	DriverPrefetch bool
	// PageSequential marks kernels whose page-level access order is a
	// linear sweep even if element-level access is irregular; their GPU
	// TLB walks stay cheap (kmeans scans points linearly while gathering
	// centroids randomly).
	PageSequential bool
	// SharedPerBlockKB is the shared-memory allocation per block in KB.
	// Zero selects the paper's default static allocation of 32 KB.
	SharedPerBlockKB float64
	// ZeroCopy marks the kernel's buffers as host-resident, accessed in
	// place over the host link (the uvm_zerocopy setup): the global
	// fetch and store paths pay the link's bandwidth and latency instead
	// of HBM's, and no page ever migrates.
	ZeroCopy bool
	// LinkBytesPerNs is the effective per-direction host-link bandwidth
	// available to SM-issued remote accesses, already derated for
	// fine-grained access. Used only when ZeroCopy is set.
	LinkBytesPerNs float64
	// LinkLatencyNs is the round-trip latency of one remote access over
	// the host link. Used only when ZeroCopy is set.
	LinkLatencyNs float64
}

// normalizedShared returns the per-block shared allocation in bytes.
func (e ExecConfig) normalizedShared() float64 {
	kb := e.SharedPerBlockKB
	if kb <= 0 {
		kb = 32
	}
	return kb * 1024
}

// Occupancy describes how a launch maps onto the SM array.
type Occupancy struct {
	BlocksPerSM   int
	WarpsPerSM    int
	ActiveThreads int     // simultaneously resident threads, whole GPU
	SMUtilization float64 // fraction of SMs owning at least one block
	Fraction      float64 // resident warps / max warps (CUPTI "occupancy")
	SharedCarveKB float64 // per-SM shared carveout implied by the launch
	L1KB          float64 // remaining L1/texture capacity
	EffTileBytes  float64 // per-block staging tile after shared clamping
	Buffers       int     // staging buffers (2 when double buffered)
}

// LaunchResult is the analytic outcome of one kernel launch with all data
// resident in device memory.
type LaunchResult struct {
	Spec KernelSpec
	Exec ExecConfig
	Occ  Occupancy

	// ExecTime is the in-SM wall time in ns.
	ExecTime float64
	// Component views (memory and compute overlap partially — fully
	// under Async — so components exceed ExecTime by the overlap).
	FetchTime   float64
	StageTime   float64 // sync-path register-file staging overhead
	ComputeTime float64
	StoreTime   float64
	// HideFactor is the achieved fraction of peak memory-level
	// parallelism (1 = latency fully hidden).
	HideFactor float64
	// TrafficBytes is the memory traffic the kernel generates: HBM
	// traffic for device-resident launches, host-link traffic for
	// zero-copy launches.
	TrafficBytes float64

	Inst counters.InstMix
	L1   counters.L1Stats
}

// Model evaluates kernel launches against a GPU configuration.
type Model struct {
	cfg    Config
	tracer *trace.Tracer
}

// NewModel returns a Model for the given GPU.
func NewModel(cfg Config) *Model { return &Model{cfg: cfg} }

// Config returns the GPU configuration.
func (m *Model) Config() Config { return m.cfg }

// SetTracer attaches an observability tracer. The analytic model has no
// clock of its own, so it contributes aggregate counters (launches, HBM
// traffic, occupancy-weighted time) to the registry; the CUDA context
// records the timed kernel spans.
func (m *Model) SetTracer(tr *trace.Tracer) { m.tracer = tr }

// occupancy resolves the launch geometry against SM resource limits.
func (m *Model) occupancy(s KernelSpec, e ExecConfig) Occupancy {
	c := m.cfg
	buffers := 1
	if e.Async {
		buffers = 2
	}
	perBlockShared := e.normalizedShared()
	maxShared := float64(c.MaxSharedKB) * 1024
	if perBlockShared > maxShared {
		perBlockShared = maxShared
	}

	blocks := c.MaxBlocksPerSM
	if byThreads := c.MaxThreadsPerSM / s.ThreadsPerBlock; byThreads < blocks {
		blocks = byThreads
	}
	if byShared := int(maxShared / perBlockShared); byShared < blocks {
		blocks = byShared
	}
	if blocks < 1 {
		blocks = 1
	}
	// No more blocks resident per SM than exist in the grid.
	if per := (s.Blocks + c.SMs - 1) / c.SMs; per < blocks {
		blocks = per
	}

	warps := blocks * s.ThreadsPerBlock / c.WarpSize
	if warps < 1 {
		warps = 1
	}
	if warps > c.MaxWarpsPerSM {
		warps = c.MaxWarpsPerSM
		blocks = warps * c.WarpSize / s.ThreadsPerBlock
		if blocks < 1 {
			blocks = 1
		}
	}

	busySMs := s.Blocks
	if busySMs > c.SMs {
		busySMs = c.SMs
	}
	active := blocks * s.ThreadsPerBlock * busySMs
	if total := s.Blocks * s.ThreadsPerBlock; active > total {
		active = total
	}

	carve := perBlockShared * float64(blocks)
	if carve > maxShared {
		carve = maxShared
	}
	effTile := math.Min(float64(s.TileBytes), perBlockShared/float64(buffers))
	if effTile < 128 {
		effTile = 128 // smallest meaningful staging granule
	}

	return Occupancy{
		BlocksPerSM:   blocks,
		WarpsPerSM:    warps,
		ActiveThreads: active,
		SMUtilization: float64(busySMs) / float64(c.SMs),
		Fraction:      float64(warps) / float64(c.MaxWarpsPerSM),
		SharedCarveKB: carve / 1024,
		L1KB:          c.L1KB(carve / 1024),
		EffTileBytes:  effTile,
		Buffers:       buffers,
	}
}

// hideFactor estimates the achieved fraction of peak memory bandwidth
// from memory-level parallelism: enough in-flight bytes must cover the
// bandwidth-latency product (Little's law). Async staging deepens the
// per-thread in-flight window to the shared-memory buffer (Takeaway 4:
// async wins grow as threads per block shrink).
func (m *Model) hideFactor(s KernelSpec, e ExecConfig, occ Occupancy) float64 {
	c := m.cfg
	inflight := c.SyncInflightBytes
	if e.Async {
		perThreadBuf := occ.EffTileBytes / float64(s.ThreadsPerBlock)
		if perThreadBuf > inflight {
			inflight = perThreadBuf
		}
	}
	latency, bw := c.HBMLatencyNs, c.HBMBytesPerNs()
	if e.ZeroCopy && e.LinkBytesPerNs > 0 {
		// Remote accesses must cover the link's bandwidth-latency
		// product; the link's low bandwidth makes that product small, so
		// modest thread counts hide the (much longer) remote latency.
		latency, bw = e.LinkLatencyNs, e.LinkBytesPerNs
	}
	demand := latency * bw
	h := float64(occ.ActiveThreads) * inflight / demand
	if h > 1 {
		h = 1
	}
	if h < 0.02 {
		h = 0.02
	}
	return h
}

// cache evaluates the unified-L1 model: miss rates for loads and stores
// under the launch's partition, pattern, working set, async bypass and
// UVM prefetcher pollution. These counters feed Figure 10; the timing
// impact of access behaviour flows through trafficFactor and
// dramEfficiency instead, so the two views stay independently auditable.
func (m *Model) cache(s KernelSpec, e ExecConfig, occ Occupancy) (counters.L1Stats, float64) {
	if s.LoadAccessBytes == 0 && s.StoreBytes == 0 {
		return counters.L1Stats{}, 0
	}
	const elem = 4 // float32 accounting granule

	pressure := 0.0
	if s.WorkingSetKB > 0 {
		pressure = 0.40 * (1 - math.Min(1, occ.L1KB/s.WorkingSetKB))
	}
	pollution := 0.0
	if e.Managed {
		p0 := 0.10
		if e.DriverPrefetch {
			p0 = 0.14
		}
		// The prefetcher streams ~48 KB of lines through the cache; the
		// smaller the L1 partition, the larger the fraction of resident
		// lines it evicts (Takeaway 5).
		pollution = p0 * math.Min(1, 48/occ.L1KB)
	}

	loadMiss := clamp01(s.Access.baseMissRate() + pressure + pollution)
	storeMiss := clamp01(s.Access.baseMissRate()*1.25 + pressure + pollution*0.5)

	loadAcc := float64(s.LoadAccessBytes) / elem
	storeAcc := float64(s.StoreBytes) / elem

	if e.Async {
		// Staged loads bypass L1 entirely; the residual accesses see a
		// cleaner cache (Figure 10).
		staged := s.StagedFraction
		loadAcc *= (1 - staged) + staged*0.1 // bookkeeping accesses remain
		loadMiss = clamp01(loadMiss * (1 - s.Access.asyncBypassLoadBenefit()))
		storeMiss = clamp01(storeMiss * (1 - s.Access.asyncBypassStoreBenefit()))
	}

	return counters.L1Stats{
		LoadAccesses:  loadAcc,
		LoadMisses:    loadAcc * loadMiss,
		StoreAccesses: storeAcc,
		StoreMisses:   storeAcc * storeMiss,
	}, pollution
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// trafficFactor is the HBM bytes moved per algorithmic load byte. The
// synchronous path overfetches badly for scattered accesses (a 32 B line
// per 4 B element in the worst case); asynchronous tile staging converts
// scattered element access into streamed line-sized copies, which is the
// timing side of lud's Figure 10 improvement.
func trafficFactor(a Access, async bool) float64 {
	if async {
		switch a {
		case Sequential:
			return 1.0
		case Strided:
			return 1.05
		case Irregular:
			return 1.3
		default: // Random
			return 2.0
		}
	}
	switch a {
	case Sequential:
		return 1.0
	case Strided:
		return 1.15
	case Irregular:
		return 2.0
	default: // Random
		return 6.0
	}
}

// Launch evaluates the kernel analytically and returns timing plus
// counter deltas. It panics on invalid specs (programming error in a
// workload definition), mirroring a CUDA launch failure.
func (m *Model) Launch(spec KernelSpec, e ExecConfig) LaunchResult {
	s := spec.withDefaults()
	if err := s.Validate(); err != nil {
		panic(err)
	}
	c := m.cfg
	occ := m.occupancy(s, e)
	hide := m.hideFactor(s, e, occ)
	l1, pollution := m.cache(s, e, occ)

	// Control work scales with the number of staging iterations: a
	// smaller effective tile means more loop trips.
	tileScale := 1.0
	if s.TileBytes > 0 && occ.EffTileBytes < float64(s.TileBytes) {
		tileScale = float64(s.TileBytes) / occ.EffTileBytes
	}
	intOps := s.IntOps
	ctrlOps := s.CtrlOps * tileScale
	if e.Async {
		intOps *= s.AsyncCtrlFactor
		ctrlOps *= s.AsyncCtrlFactor
	}

	// HBM load traffic from the algorithmic load volume.
	algLoads := float64(s.LoadAccessBytes)
	staged := algLoads * s.StagedFraction
	residual := algLoads - staged
	var loadTraffic float64
	if e.Async {
		loadTraffic = staged*trafficFactor(s.Access, true)*s.AsyncLoadInflation*math.Sqrt(tileScale) +
			residual*trafficFactor(s.Access, false)
	} else {
		loadTraffic = algLoads * trafficFactor(s.Access, false)
	}
	if e.ZeroCopy {
		// In-place remote access gathers at line granularity with warp
		// coalescing — the coalesced overfetch column, like async
		// staging granules — and every algorithmic byte crosses the
		// link. Reuse is never amortized by residency, which is why
		// zero-copy loses to migration on dense-reuse kernels and wins
		// on sparse single-pass ones.
		loadTraffic = algLoads * trafficFactor(s.Access, true)
	}
	storeTraffic := float64(s.StoreBytes)
	traffic := loadTraffic + storeTraffic

	// Memory path times.
	dramEff := s.Access.dramEfficiency()
	if e.Async || e.ZeroCopy {
		// Hardware-coalesced bulk copies are less pattern-sensitive, and
		// so is host DRAM behind a transaction-based link: the pattern
		// cost of remote access is already charged as line-granularity
		// overfetch in trafficFactor, so only residual row-buffer
		// sensitivity derates the link.
		dramEff = math.Sqrt(dramEff)
	}
	memBW := c.HBMBytesPerNs()
	if e.ZeroCopy && e.LinkBytesPerNs > 0 {
		// Loads and stores travel the host link instead of HBM; host
		// DRAM scatter sensitivity still applies through dramEff.
		memBW = e.LinkBytesPerNs
	}
	fetch := loadTraffic / (memBW * dramEff * hide)
	store := storeTraffic / (memBW * math.Sqrt(s.Access.dramEfficiency()) * hide)
	if e.Managed {
		// Page-walk overhead plus the extra evictions the UVM
		// prefetcher's streamed lines cause in a shrunken L1 (the
		// timing face of Takeaway 5's partition sensitivity).
		walk := s.Access.walkOverhead()
		if e.PageSequential {
			walk = Sequential.walkOverhead()
		}
		fetch *= (1 + walk) * (1 + pollution)
	}

	// Compute path time. A handful of warps saturates the issue ports
	// thanks to instruction-level parallelism (~3 independent ops in
	// flight per warp), so ALU throughput degrades much more gently with
	// occupancy than memory latency hiding does.
	util := math.Min(1, float64(occ.WarpsPerSM)*3/8) * occ.SMUtilization
	if util <= 0 {
		util = 0.01
	}
	compute := s.Flops/(c.FlopsPerNs()*util) + (intOps+ctrlOps)/(c.IntOpsPerNs()*util)

	var exec, stage float64
	if e.Async {
		compute *= s.AsyncComputePenalty
		// Double-buffered pipeline: transfer and compute fully overlap;
		// the first tile fill is exposed.
		nTiles := math.Max(1, staged/math.Max(occ.EffTileBytes, 1))
		fill := fetch / nTiles
		exec = math.Max(fetch+store, compute) + fill
	} else {
		// The synchronous staging loop overlaps memory and compute only
		// through warp interleaving; block-wide barriers around the
		// register-file round trip expose the shorter phase. Overlap
		// ability grows with the compute/memory ratio: long compute
		// phases give the scheduler room to issue the next tile's loads.
		stage = s.SyncStageOverhead * (staged / math.Max(algLoads, 1)) * fetch
		memTime := fetch + stage + store
		ratio := compute / math.Max(memTime, 1e-9)
		overlap := math.Min(0.95, math.Max(0.15, ratio))
		if compute > memTime {
			exec = compute + memTime*(1-overlap)
		} else {
			exec = memTime + compute*(1-overlap)
		}
	}

	inst := counters.InstMix{
		FP:   s.Flops / 2, // FMA retires two flops per instruction
		Int:  intOps,
		Ctrl: ctrlOps,
	}
	if e.Async {
		// cp.async moves 16 B per instruction; residual loads and all
		// stores issue per element.
		inst.Mem = staged/16 + residual/4 + float64(s.StoreBytes)/4
	} else {
		inst.Mem = algLoads/4 + float64(s.StoreBytes)/4
	}

	if m.tracer != nil {
		m.tracer.Count("gpu.launches", 1)
		m.tracer.Count("gpu.traffic_bytes", traffic)
		m.tracer.Count("gpu.exec_ns", exec)
	}

	return LaunchResult{
		Spec:         s,
		Exec:         e,
		Occ:          occ,
		ExecTime:     exec,
		FetchTime:    fetch,
		StageTime:    stage,
		ComputeTime:  compute,
		StoreTime:    store,
		HideFactor:   hide,
		TrafficBytes: traffic,
		Inst:         inst,
		L1:           l1,
	}
}

// String summarizes a result for debugging output.
func (r LaunchResult) String() string {
	return fmt.Sprintf("%s: exec=%.0fns fetch=%.0f stage=%.0f compute=%.0f store=%.0f occ=%.2f hide=%.2f",
		r.Spec.Name, r.ExecTime, r.FetchTime, r.StageTime, r.ComputeTime, r.StoreTime,
		r.Occ.Fraction, r.HideFactor)
}
