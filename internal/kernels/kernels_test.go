package kernels

import (
	"math/rand"
	"testing"

	"uvmasim/internal/gpu"
)

func TestGrid(t *testing.T) {
	cases := []struct {
		elems           int64
		blocks, threads int
	}{
		{1, 1, 256},
		{256, 1, 256},
		{257, 2, 256},
		{1 << 20, 4096, 256},
		{1 << 30, 4096, 256}, // capped at the paper's default grid
	}
	for _, c := range cases {
		b, th := Grid(c.elems)
		if b != c.blocks || th != c.threads {
			t.Errorf("Grid(%d) = (%d,%d), want (%d,%d)", c.elems, b, th, c.blocks, c.threads)
		}
	}
}

func TestStreamSpec(t *testing.T) {
	s := Stream("s", 1000, 2, 1, 3, 5, gpu.Sequential)
	if s.LoadBytes != 8000 || s.StoreBytes != 4000 {
		t.Errorf("byte counts wrong: %+v", s)
	}
	if s.Flops != 3000 || s.IntOps != 5000 {
		t.Errorf("op counts wrong: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestStencilSpec(t *testing.T) {
	s := Stencil("st", 1<<20, 9, 24)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.LoadAccessBytes <= s.LoadBytes {
		t.Errorf("stencil taps should exceed unique loads")
	}
	if s.AsyncComputePenalty <= 1 {
		t.Errorf("stencil async penalty should reflect halo redundancy")
	}
}

func TestMatMulSpec(t *testing.T) {
	s := MatMul("mm", 1024, 1024, 1024, 128)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 2.0 * 1024 * 1024 * 1024
	if s.Flops != want {
		t.Errorf("flops = %v, want %v", s.Flops, want)
	}
	// L2 filtering caps the HBM reload factor.
	big := MatMul("big", 8192, 8192, 8192, 64)
	if big.LoadAccessBytes > big.LoadBytes*8 {
		t.Errorf("reload factor should be L2-capped: access %d vs unique %d",
			big.LoadAccessBytes, big.LoadBytes)
	}
	// Zero tileDim defaults sanely.
	d := MatMul("d", 256, 256, 256, 0)
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMatVecSpec(t *testing.T) {
	s := MatVec("mv", 2048, 4096)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Flops != 2*2048*4096 {
		t.Errorf("flops = %v", s.Flops)
	}
	if s.Access != gpu.Strided {
		t.Errorf("gemv should be strided")
	}
}

func TestScale(t *testing.T) {
	s := Stream("s", 1000, 1, 1, 2, 2, gpu.Sequential)
	h := Scale(s, 0.5)
	if h.LoadBytes != s.LoadBytes/2 || h.Flops != s.Flops/2 || h.CtrlOps != s.CtrlOps/2 {
		t.Errorf("Scale(0.5) wrong: %+v", h)
	}
	if h.Blocks != s.Blocks || h.Access != s.Access {
		t.Errorf("Scale must not touch geometry or pattern")
	}
}

// Property: every builder output passes spec validation for arbitrary
// positive inputs.
func TestQuickBuildersValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		elems := int64(1 + rng.Intn(1<<22))
		specs := []gpu.KernelSpec{
			Stream("q", elems, 1+rng.Intn(3), 1, rng.Float64()*64, rng.Float64()*32, gpu.Access(rng.Intn(4))),
			Stencil("q", elems, 1+rng.Intn(27), rng.Float64()*64),
			MatMul("q", int64(1+rng.Intn(4096)), int64(1+rng.Intn(4096)), int64(1+rng.Intn(4096)), int64(rng.Intn(256))),
			MatVec("q", int64(1+rng.Intn(1<<16)), int64(1+rng.Intn(1<<16))),
		}
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Fatalf("builder produced invalid spec: %v", err)
			}
		}
	}
}
