// Package kernels provides builders that derive gpu.KernelSpec work
// descriptions from algorithm structure — element counts, stencil
// shapes, tile geometry — so each workload states *what* its kernel does
// and the builder translates that into the analytic quantities the GPU
// model consumes.
package kernels

import (
	"uvmasim/internal/gpu"
)

// DefaultThreads is the paper's default threads-per-block (§5.1).
const DefaultThreads = 256

// DefaultBlocks is the paper's default grid size for the
// microbenchmarks (§5.1 sweeps 4096 down to 16).
const DefaultBlocks = 4096

// Grid picks a launch geometry for elems work items: the paper's default
// 4096x256 for large inputs, shrinking for small ones.
func Grid(elems int64) (blocks, threads int) {
	threads = DefaultThreads
	blocks = int((elems + int64(threads) - 1) / int64(threads))
	if blocks > DefaultBlocks {
		blocks = DefaultBlocks
	}
	if blocks < 1 {
		blocks = 1
	}
	return blocks, threads
}

// Stream describes an element-wise kernel over vectors: loadsPerElem
// input streams and storesPerElem output streams of float32, with the
// given arithmetic per element.
func Stream(name string, elems int64, loadsPerElem, storesPerElem int, flopsPerElem, intPerElem float64, access gpu.Access) gpu.KernelSpec {
	blocks, threads := Grid(elems)
	return gpu.KernelSpec{
		Name:            name,
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       4 * elems * int64(loadsPerElem),
		StoreBytes:      4 * elems * int64(storesPerElem),
		Flops:           flopsPerElem * float64(elems),
		IntOps:          intPerElem * float64(elems),
		CtrlOps:         float64(elems) / 8, // one loop trip per unrolled 8 elements
		TileBytes:       16 << 10,
		Access:          access,
		WorkingSetKB:    8,
	}
}

// Stencil describes a convolution/diffusion kernel over cells grid
// points with a `points`-wide neighborhood. Halo re-reads are served by
// the staging tile, so unique loads stay ~one pass over the grid while
// algorithmic loads scale with the stencil size.
func Stencil(name string, cells int64, points int, intPerCell float64) gpu.KernelSpec {
	blocks, threads := Grid(cells)
	access := 4 * cells * int64(points) / 4 // tile reuse serves ~3/4 of taps
	if access < 4*cells {
		access = 4 * cells // at least one pass over the grid
	}
	return gpu.KernelSpec{
		Name:            name,
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       4 * cells,
		LoadAccessBytes: access,
		StoreBytes:      4 * cells,
		Flops:           2 * float64(points) * float64(cells),
		IntOps:          intPerCell * float64(cells),
		CtrlOps:         float64(cells) / 4,
		TileBytes:       8 << 10,
		Access:          gpu.Sequential,
		WorkingSetKB:    48,
		// Halving the double-buffered tile re-reads halos and redoes
		// index math; the paper measures a 2.46x kernel-time hit for
		// 2DCONV under async (§4.1.1).
		AsyncComputePenalty: 1.9,
		AsyncCtrlFactor:     1.6,
		AsyncLoadInflation:  1.15,
	}
}

// MatMul describes a shared-memory-tiled dense matrix multiply
// C[m,n] += A[m,k]*B[k,n] with square register/tile blocking of width
// tileDim (the effective reuse factor of global loads).
func MatMul(name string, m, n, k int64, tileDim int64) gpu.KernelSpec {
	if tileDim <= 0 {
		tileDim = 128
	}
	outElems := m * n
	blocks, threads := Grid(outElems / 64) // each thread computes an 8x8 register tile
	// Panel re-reads beyond the tile blocking are filtered by the 40 MB
	// L2, so the HBM-visible reload factor saturates quickly; dense
	// matmul stays compute-bound, as on the real part.
	reload := k / tileDim
	if reload < 1 {
		reload = 1
	}
	if reload > 4 {
		reload = 4
	}
	return gpu.KernelSpec{
		Name:            name,
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       4 * (m*k + k*n),
		LoadAccessBytes: 4 * (m*k + k*n) * reload,
		StoreBytes:      4 * outElems,
		Flops:           2 * float64(m) * float64(n) * float64(k),
		IntOps:          8 * float64(outElems),
		CtrlOps:         float64(outElems) / 4,
		TileBytes:       16 << 10,
		Access:          gpu.Strided,
		WorkingSetKB:    64,
		// Async double buffering halves the K-slab held in shared
		// memory: more pipeline commits and barrier logic per output
		// (gemm spends 7.86% more kernel time under prefetch+async,
		// §4.1.1) but little redundant traffic.
		AsyncComputePenalty: 1.07,
		AsyncCtrlFactor:     1.45,
	}
}

// MatVec describes y = A*x for an m x n matrix.
func MatVec(name string, m, n int64) gpu.KernelSpec {
	blocks, threads := Grid(m)
	return gpu.KernelSpec{
		Name:            name,
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       4 * (m*n + n),
		StoreBytes:      4 * m,
		Flops:           2 * float64(m) * float64(n),
		IntOps:          2 * float64(m*n) / 8,
		CtrlOps:         float64(m*n) / 32,
		TileBytes:       16 << 10,
		Access:          gpu.Strided,
		WorkingSetKB:    32,
	}
}

// Scale multiplies the spec's total work by f (used when one logical
// pass is split across several launches).
func Scale(s gpu.KernelSpec, f float64) gpu.KernelSpec {
	s.LoadBytes = int64(float64(s.LoadBytes) * f)
	s.LoadAccessBytes = int64(float64(s.LoadAccessBytes) * f)
	s.StoreBytes = int64(float64(s.StoreBytes) * f)
	s.Flops *= f
	s.IntOps *= f
	s.CtrlOps *= f
	return s
}
