package sched

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteChromeTrace exports the realized schedule as Chrome trace-event
// JSON (the same {"traceEvents": [...]} object form internal/trace
// emits), loadable in Perfetto or chrome://tracing. Each GPU gets three
// timeline rows — host alloc/free work, fabric transfer, kernel — so
// the inter-job overlap (or its absence) and contention-stretched
// transfers are visible per device. Output is a deterministic function
// of the Stats: spans sort by (start time, job submission order).
func (st *Stats) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	bw.WriteString(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"uvmasim-sched"}}`)

	const lanes = 3
	laneName := [lanes]string{"host-alloc", "transfer", "kernel"}
	for g := range st.GPUs {
		for l := 0; l < lanes; l++ {
			tid := g*lanes + l + 1
			fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"gpu%d %s\"}}", tid, g, laneName[l])
			fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%d}}", tid, tid)
		}
	}

	type span struct {
		tid        int
		name       string
		start, dur float64
	}
	var spans []span
	for i := range st.Jobs {
		js := &st.Jobs[i]
		base := js.GPU * lanes
		add := func(lane int, name string, s, e float64) {
			if e > s {
				spans = append(spans, span{tid: base + lane + 1, name: name, start: s, dur: e - s})
			}
		}
		label := "job " + strconv.Itoa(js.Job.ID)
		add(0, label+" alloc", js.AllocStart, js.AllocEnd)
		add(1, label+" transfer", js.TransferStart, js.TransferEnd)
		add(2, label+" kernel", js.KernelStart, js.KernelEnd)
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start < spans[j].start })

	micros := func(ns float64) string { return strconv.FormatFloat(ns/1e3, 'f', 3, 64) }
	for _, s := range spans {
		fmt.Fprintf(bw, ",\n{\"name\":%q,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{}}",
			s.name, s.tid, micros(s.start), micros(s.dur))
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
