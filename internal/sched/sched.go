// Package sched is the concurrent-job scheduler over the shared
// discrete-event simulation: a queue of jobs with arrival times is
// placed onto a multi-GPU topology (internal/topo) by a pluggable
// policy and executed under one of two batch schedules — serial (each
// job's alloc → transfer → kernel pipeline runs back to back, today's
// CUDA reality) or pipelined (the §6 proposal: job i+1's host-side
// allocation/free work overlaps job i's GPU phase on the same device).
// Transfers are flows on the topology's shared fabric, so concurrent
// jobs contend for real bandwidth; everything else replays the
// measured single-GPU stage durations.
//
// The pipelined schedule reproduces the analytic §6 projection exactly
// in the GPU-bound regime it was derived for (first allocation exposed,
// each steady-state job costing the GPU phase): at one GPU with no
// transfer contention the simulated makespan equals
// alloc + jobs*(transfer+kernel) whenever transfer+kernel >= alloc.
// The differential-oracle test in core pins this, so the analytic
// estimate can never silently drift from the simulation.
package sched

import (
	"fmt"

	"uvmasim/internal/nearest"
	"uvmasim/internal/sim"
	"uvmasim/internal/topo"
)

// Job is one unit of work: the measured zero-contention durations of
// its three stages plus the transfer volume behind the transfer stage.
type Job struct {
	ID      int
	Arrival float64 // earliest start, ns
	// AllocNs is the host-side CPU work (cudaMallocManaged + cudaFree),
	// TransferNs the solo host->device transfer time, KernelNs the
	// device execution time — each as measured on an uncontended GPU.
	AllocNs    float64
	TransferNs float64
	KernelNs   float64
	// Bytes is the transfer volume; with TransferNs it sets the flow's
	// solo rate on the shared fabric.
	Bytes float64
}

// duration is the job's zero-contention end-to-end time.
func (j Job) duration() float64 { return j.AllocNs + j.TransferNs + j.KernelNs }

// Policy selects a placement heuristic.
type Policy int

const (
	// FirstFit places each job on the lowest-numbered GPU estimated
	// idle at its arrival, falling back to GPU 0 — the naive policy
	// that collapses a simultaneous batch onto one device.
	FirstFit Policy = iota
	// LeastLoaded places each job on the GPU with the least total
	// estimated work (ties to the lowest ordinal).
	LeastLoaded
	// BandwidthAware estimates each candidate GPU's finish time with a
	// fabric-contention term (solo transfer time stretched by the flows
	// already assigned to the shared stage) and takes the minimum.
	BandwidthAware
)

// PolicyNames lists the recognized policy names, in Policy order.
var PolicyNames = []string{"first-fit", "least-loaded", "bandwidth-aware"}

func (p Policy) String() string {
	if int(p) < len(PolicyNames) {
		return PolicyNames[p]
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy resolves a policy name, failing with a nearest-name hint
// on a typo.
func ParsePolicy(s string) (Policy, error) {
	for i, name := range PolicyNames {
		if s == name {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q%s", s, nearest.Hint(s, PolicyNames, 2))
}

// Options configures one scheduler run.
type Options struct {
	Policy Policy
	// Pipelined enables the §6 inter-job alloc/free overlap: a job's
	// host-side work may run while its GPU predecessor executes.
	Pipelined bool
}

// JobStat records one job's realized timeline.
type JobStat struct {
	Job Job
	GPU int

	AllocStart, AllocEnd       float64
	TransferStart, TransferEnd float64
	KernelStart, KernelEnd     float64
	// Wait is the idle time inside the job's span: everything between
	// arrival and finish not spent in a stage.
	Wait float64
	// Finish is the job's completion time (== KernelEnd).
	Finish float64
}

// GPUStat aggregates one device's busy time.
type GPUStat struct {
	Jobs         int
	AllocBusy    float64 // host-thread alloc/free work for this device's jobs
	TransferBusy float64
	KernelBusy   float64
	// LastFinish is the completion time of the device's final job.
	LastFinish float64
}

// Stats is the outcome of one scheduler run.
type Stats struct {
	Jobs []JobStat // in Job submission order
	GPUs []GPUStat

	// Makespan is the last finish minus the first arrival.
	Makespan float64
	// ThroughputJobsPerSec is jobs completed per simulated second.
	ThroughputJobsPerSec float64
	// Fairness is Jain's index over per-job slowdowns
	// ((finish-arrival)/solo duration); 1.0 means every job was slowed
	// equally.
	Fairness float64
	// TransferStretch is the mean realized/solo transfer-time ratio
	// over jobs with a transfer stage: 1.0 means no fabric contention.
	TransferStretch float64
}

// Place assigns each job (in submission order) to a GPU under the
// given policy. It is a pure function of its inputs — placement happens
// before simulation, from deterministic zero-contention estimates — so
// a schedule is reproducible from (topology, jobs, options) alone.
func Place(t *topo.Topology, jobs []Job, policy Policy) []int {
	n := t.GPUs
	placement := make([]int, len(jobs))
	estFree := make([]float64, n) // estimated drain time per GPU
	load := make([]float64, n)    // total assigned work per GPU
	assigned := make([]int, n)
	for i, j := range jobs {
		g := 0
		switch policy {
		case FirstFit:
			g = 0
			for c := 0; c < n; c++ {
				if estFree[c] <= j.Arrival {
					g = c
					break
				}
			}
		case LeastLoaded:
			for c := 1; c < n; c++ {
				if load[c] < load[g] {
					g = c
				}
			}
		case BandwidthAware:
			best := 0.0
			for c := 0; c < n; c++ {
				// Flows already mapped onto c's shared stage stretch the
				// transfer estimate; both current shapes share one fabric,
				// but count via SharesFabric so future shapes localize.
				flows := 0
				for p := 0; p < n; p++ {
					if t.SharesFabric(c, p) {
						flows += assigned[p]
					}
				}
				start := estFree[c]
				if j.Arrival > start {
					start = j.Arrival
				}
				fin := start + j.AllocNs + j.TransferNs*float64(1+flows) + j.KernelNs
				if c == 0 || fin < best {
					best, g = fin, c
				}
			}
		}
		placement[i] = g
		start := estFree[g]
		if j.Arrival > start {
			start = j.Arrival
		}
		estFree[g] = start + j.duration()
		load[g] += j.duration()
		assigned[g]++
	}
	return placement
}

// jobState tracks one job's progress through the event-driven run.
type jobState struct {
	job Job
	gpu int
	idx int // index within its GPU's queue

	allocDone bool
	gpuDone   bool
	gpuGoing  bool // transfer started (the pipelined alloc-release point)

	stat *JobStat
}

// Run executes the jobs on the topology under opt and returns the
// realized statistics. The engine must be fresh (time zero); Run drives
// it to completion. Determinism: all event times are pure functions of
// the inputs, and ties fire in scheduling order.
func Run(eng *sim.Engine, t *topo.Topology, jobs []Job, opt Options) (*Stats, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sched: no jobs")
	}
	for _, j := range jobs {
		if j.AllocNs < 0 || j.TransferNs < 0 || j.KernelNs < 0 || j.Arrival < 0 {
			return nil, fmt.Errorf("sched: job %d has negative stage times", j.ID)
		}
	}
	placement := Place(t, jobs, opt.Policy)

	st := &Stats{Jobs: make([]JobStat, len(jobs)), GPUs: make([]GPUStat, t.GPUs)}
	queues := make([][]*jobState, t.GPUs)
	for i, j := range jobs {
		g := placement[i]
		js := &jobState{job: j, gpu: g, idx: len(queues[g]), stat: &st.Jobs[i]}
		js.stat.Job = j
		js.stat.GPU = g
		queues[g] = append(queues[g], js)
	}

	// Per-GPU pipelines. Serial: job k's alloc starts at
	// max(arrival, finish of job k-1). Pipelined: job k's alloc starts
	// once job k-1's alloc finished AND its GPU phase started (the host
	// thread is free then); job k's GPU phase starts once its own alloc
	// finished and job k-1's GPU phase ended. At one GPU with no fabric
	// contention this reproduces the §6 analytic pipelined total exactly
	// in the GPU-bound regime (see the package comment).
	var startAlloc func(q []*jobState, k int)
	var maybeStartGPU func(q []*jobState, k int)

	startAlloc = func(q []*jobState, k int) {
		if k >= len(q) {
			return
		}
		js := q[k]
		now := eng.Now()
		start := js.job.Arrival
		if now > start {
			start = now
		}
		js.stat.AllocStart = start
		end := start + js.job.AllocNs
		eng.At(end, func() {
			js.allocDone = true
			js.stat.AllocEnd = eng.Now()
			// If the GPU phase starts here, maybeStartGPU releases the
			// host thread to the successor's alloc (pipelined only).
			maybeStartGPU(q, k)
		})
	}

	maybeStartGPU = func(q []*jobState, k int) {
		js := q[k]
		if !js.allocDone || js.gpuGoing {
			return
		}
		if k > 0 && !q[k-1].gpuDone {
			return
		}
		js.gpuGoing = true
		now := eng.Now()
		js.stat.TransferStart = now
		if opt.Pipelined && js.allocDone {
			// The host thread just handed off to the GPU: release it to
			// the successor's alloc (if that alloc was the blocker).
			startAlloc(q, k+1)
		}
		afterTransfer := func(end float64) {
			js.stat.TransferEnd = end
			js.stat.KernelStart = end
			kEnd := end + js.job.KernelNs
			eng.At(kEnd, func() {
				now := eng.Now()
				js.gpuDone = true
				js.stat.KernelEnd = now
				js.stat.Finish = now
				if k+1 < len(q) {
					if opt.Pipelined {
						maybeStartGPU(q, k+1)
					} else {
						startAlloc(q, k+1)
					}
				}
			})
		}
		if js.job.TransferNs <= 0 || js.job.Bytes <= 0 {
			afterTransfer(now)
			return
		}
		// The flow's solo rate reproduces the measured solo duration;
		// contention on the shared stage stretches it.
		rate := js.job.Bytes / js.job.TransferNs
		t.Transfer(js.gpu, js.job.Bytes, rate, afterTransfer)
	}

	for g := range queues {
		if len(queues[g]) == 0 {
			continue
		}
		q := queues[g]
		eng.At(q[0].job.Arrival, func() { startAlloc(q, 0) })
	}
	eng.Run()

	return st, finalize(st, jobs, queues)
}

// finalize derives the aggregate statistics from the per-job spans.
func finalize(st *Stats, jobs []Job, queues [][]*jobState) error {
	firstArrival := jobs[0].Arrival
	last := 0.0
	for _, j := range jobs {
		if j.Arrival < firstArrival {
			firstArrival = j.Arrival
		}
	}
	var slowSum, slowSq float64
	var stretchSum float64
	stretchN := 0
	for i := range st.Jobs {
		js := &st.Jobs[i]
		if js.Finish <= 0 && js.Job.duration() > 0 {
			return fmt.Errorf("sched: job %d never finished", js.Job.ID)
		}
		span := js.Finish - js.Job.Arrival
		stages := (js.AllocEnd - js.AllocStart) + (js.TransferEnd - js.TransferStart) + (js.KernelEnd - js.KernelStart)
		js.Wait = span - stages
		if js.Wait < 0 {
			js.Wait = 0
		}
		if js.Finish > last {
			last = js.Finish
		}
		if d := js.Job.duration(); d > 0 {
			s := span / d
			slowSum += s
			slowSq += s * s
		}
		if js.Job.TransferNs > 0 {
			stretchSum += (js.TransferEnd - js.TransferStart) / js.Job.TransferNs
			stretchN++
		}
	}
	st.Makespan = last - firstArrival
	if st.Makespan > 0 {
		st.ThroughputJobsPerSec = float64(len(st.Jobs)) / st.Makespan * 1e9
	}
	if n := float64(len(st.Jobs)); slowSq > 0 {
		st.Fairness = slowSum * slowSum / (n * slowSq)
	}
	if stretchN > 0 {
		st.TransferStretch = stretchSum / float64(stretchN)
	} else {
		st.TransferStretch = 1
	}
	for g, q := range queues {
		gs := &st.GPUs[g]
		gs.Jobs = len(q)
		for _, js := range q {
			gs.AllocBusy += js.stat.AllocEnd - js.stat.AllocStart
			gs.TransferBusy += js.stat.TransferEnd - js.stat.TransferStart
			gs.KernelBusy += js.stat.KernelEnd - js.stat.KernelStart
			if js.stat.Finish > gs.LastFinish {
				gs.LastFinish = js.stat.Finish
			}
		}
	}
	return nil
}
