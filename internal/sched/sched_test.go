package sched

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"uvmasim/internal/profile"
	"uvmasim/internal/sim"
	"uvmasim/internal/topo"
)

func testTopo(t *testing.T, eng *sim.Engine, kind topo.Kind, gpus int) *topo.Topology {
	t.Helper()
	tp, err := topo.New(eng, profile.Default().Config, kind, gpus)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// uniformJobs builds n identical jobs arriving at time zero whose
// transfer runs at exactly the device link rate (no self-capping).
func uniformJobs(t *testing.T, n int, alloc, transfer, kernel float64) []Job {
	t.Helper()
	link := profile.Default().Config.PCIe.BytesPerNs()
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			ID: i, AllocNs: alloc, TransferNs: transfer, KernelNs: kernel,
			Bytes: link * transfer,
		}
	}
	return jobs
}

// TestSerialMatchesAnalytic pins the serial schedule to the §6 analytic
// model: J jobs on one GPU take exactly J*(alloc+transfer+kernel).
func TestSerialMatchesAnalytic(t *testing.T) {
	const jobs, a, tr, k = 5, 300.0, 400.0, 600.0
	eng := sim.New()
	tp := testTopo(t, eng, topo.PCIeSwitch, 1)
	st, err := Run(eng, tp, uniformJobs(t, jobs, a, tr, k), Options{Policy: LeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	want := jobs * (a + tr + k)
	if math.Abs(st.Makespan-want) > 1e-6 {
		t.Fatalf("serial makespan = %v, want analytic %v", st.Makespan, want)
	}
	if math.Abs(st.TransferStretch-1) > 1e-9 {
		t.Fatalf("solo transfers must not stretch, got %v", st.TransferStretch)
	}
}

// TestPipelinedMatchesAnalytic pins the pipelined schedule to the §6
// projection in the GPU-bound regime (transfer+kernel >= alloc): the
// first alloc is exposed, then every job costs its GPU phase, so the
// makespan is alloc + J*(transfer+kernel).
func TestPipelinedMatchesAnalytic(t *testing.T) {
	const jobs, a, tr, k = 5, 300.0, 400.0, 600.0 // tr+k=1000 > a
	eng := sim.New()
	tp := testTopo(t, eng, topo.PCIeSwitch, 1)
	st, err := Run(eng, tp, uniformJobs(t, jobs, a, tr, k), Options{Policy: LeastLoaded, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	want := a + jobs*(tr+k)
	if math.Abs(st.Makespan-want) > 1e-6 {
		t.Fatalf("pipelined makespan = %v, want analytic %v", st.Makespan, want)
	}
}

// TestPipelinedCPUBoundRegime pins the other regime: when alloc
// dominates the GPU phase, the host thread is the bottleneck and the
// makespan is J*alloc + (transfer+kernel) (the last GPU phase exposed).
func TestPipelinedCPUBoundRegime(t *testing.T) {
	const jobs, a, tr, k = 4, 1000.0, 200.0, 300.0 // a > tr+k
	eng := sim.New()
	tp := testTopo(t, eng, topo.PCIeSwitch, 1)
	st, err := Run(eng, tp, uniformJobs(t, jobs, a, tr, k), Options{Policy: LeastLoaded, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	want := jobs*a + tr + k
	if math.Abs(st.Makespan-want) > 1e-6 {
		t.Fatalf("cpu-bound pipelined makespan = %v, want %v", st.Makespan, want)
	}
}

// TestSwitchContentionStretchesTransfers pins the tentpole effect: two
// GPUs behind one switch uplink halve each other's transfer bandwidth,
// while the same placement on NVLink does not contend.
func TestSwitchContentionStretchesTransfers(t *testing.T) {
	jobs := uniformJobs(t, 2, 0, 1000, 500)

	run := func(kind topo.Kind) *Stats {
		eng := sim.New()
		tp := testTopo(t, eng, kind, 2)
		st, err := Run(eng, tp, jobs, Options{Policy: LeastLoaded})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	sw := run(topo.PCIeSwitch)
	if math.Abs(sw.TransferStretch-2) > 1e-6 {
		t.Fatalf("switch transfer stretch = %v, want 2 (halved uplink)", sw.TransferStretch)
	}
	nv := run(topo.NVLink)
	if math.Abs(nv.TransferStretch-1) > 1e-6 {
		t.Fatalf("nvlink transfer stretch = %v, want 1 (private links)", nv.TransferStretch)
	}
	if nv.Makespan >= sw.Makespan {
		t.Fatalf("nvlink makespan %v should beat switch %v", nv.Makespan, sw.Makespan)
	}
}

// TestLeastLoadedSpreads checks that identical simultaneous jobs
// round-robin across devices, while first-fit dumps the overflow of a
// simultaneous batch onto GPU 0 once every device looks busy.
func TestLeastLoadedSpreads(t *testing.T) {
	jobs := uniformJobs(t, 6, 100, 200, 300)
	eng := sim.New()
	tp := testTopo(t, eng, topo.NVLink, 4)

	ll := Place(tp, jobs, LeastLoaded)
	for i, g := range ll {
		if g != i%4 {
			t.Fatalf("least-loaded placement = %v, want round-robin", ll)
		}
	}
	ff := Place(tp, jobs, FirstFit)
	want := []int{0, 1, 2, 3, 0, 0}
	for i, g := range ff {
		if g != want[i] {
			t.Fatalf("first-fit placement = %v, want %v (overflow piles on GPU 0)", ff, want)
		}
	}
}

// TestBandwidthAwareAvoidsSaturatedFabric: with staggered arrivals that
// first-fit would pack onto GPU 0, bandwidth-aware spreads jobs and
// finishes no later than first-fit on a contended switch.
func TestBandwidthAwareAvoidsSaturatedFabric(t *testing.T) {
	jobs := uniformJobs(t, 4, 100, 1000, 200)
	run := func(p Policy) float64 {
		eng := sim.New()
		tp := testTopo(t, eng, topo.PCIeSwitch, 2)
		st, err := Run(eng, tp, jobs, Options{Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	ba := run(BandwidthAware)
	ff := run(FirstFit)
	if ba > ff+1e-9 {
		t.Fatalf("bandwidth-aware makespan %v should not exceed first-fit %v", ba, ff)
	}
}

// TestArrivalsRespected: a job cannot start before it arrives.
func TestArrivalsRespected(t *testing.T) {
	jobs := uniformJobs(t, 2, 100, 200, 300)
	jobs[1].Arrival = 5000
	eng := sim.New()
	tp := testTopo(t, eng, topo.PCIeSwitch, 2)
	st, err := Run(eng, tp, jobs, Options{Policy: LeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs[1].AllocStart < 5000 {
		t.Fatalf("job 1 started at %v before its arrival 5000", st.Jobs[1].AllocStart)
	}
}

// TestDeterminism: two identical runs produce bit-identical stats.
func TestDeterminism(t *testing.T) {
	jobs := uniformJobs(t, 8, 137, 411, 593)
	for i := range jobs {
		jobs[i].Arrival = float64(i * 97)
	}
	run := func() *Stats {
		eng := sim.New()
		tp := testTopo(t, eng, topo.PCIeSwitch, 3)
		st, err := Run(eng, tp, jobs, Options{Policy: BandwidthAware, Pipelined: true})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Fairness != b.Fairness || a.TransferStretch != b.TransferStretch {
		t.Fatalf("nondeterministic aggregate stats: %+v vs %+v", a, b)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d stats differ: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

// TestFairnessUniform: identical simultaneous jobs spread one per GPU
// are slowed identically, so Jain's index is exactly 1.
func TestFairnessUniform(t *testing.T) {
	jobs := uniformJobs(t, 4, 100, 400, 300)
	eng := sim.New()
	tp := testTopo(t, eng, topo.NVLink, 4)
	st, err := Run(eng, tp, jobs, Options{Policy: LeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Fairness-1) > 1e-9 {
		t.Fatalf("uniform spread fairness = %v, want 1", st.Fairness)
	}
}

func TestParsePolicy(t *testing.T) {
	for i, name := range PolicyNames {
		p, err := ParsePolicy(name)
		if err != nil || p != Policy(i) {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
		if p.String() != name {
			t.Fatalf("String() = %q, want %q", p.String(), name)
		}
	}
	if _, err := ParsePolicy("least-loadd"); err == nil {
		t.Fatal("typo should fail")
	}
}

func TestRunValidation(t *testing.T) {
	eng := sim.New()
	tp := testTopo(t, eng, topo.PCIeSwitch, 1)
	if _, err := Run(eng, tp, nil, Options{}); err == nil {
		t.Fatal("no jobs should fail")
	}
	if _, err := Run(eng, tp, []Job{{AllocNs: -1}}, Options{}); err == nil {
		t.Fatal("negative stage should fail")
	}
}

// TestWriteChromeTrace: valid JSON, deterministic bytes, per-GPU rows.
func TestWriteChromeTrace(t *testing.T) {
	jobs := uniformJobs(t, 4, 100, 400, 300)
	eng := sim.New()
	tp := testTopo(t, eng, topo.PCIeSwitch, 2)
	st, err := Run(eng, tp, jobs, Options{Policy: LeastLoaded, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := st.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("trace output not deterministic")
	}
	var doc map[string]any
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	events := doc["traceEvents"].([]any)
	var gpu1 bool
	for _, e := range events {
		m := e.(map[string]any)
		if name, _ := m["args"].(map[string]any)["name"].(string); name == "gpu1 kernel" {
			gpu1 = true
		}
	}
	if !gpu1 {
		t.Fatal("trace missing gpu1 kernel row")
	}
}
