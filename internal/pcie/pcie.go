// Package pcie models the host<->device interconnect: one DMA link per
// direction with a fixed descriptor latency and transfer-mode-dependent
// efficiencies. Bulk cudaMemcpy moves near line rate; fault-granularity
// UVM migration pays per-block overheads; 2 MB prefetch streams land in
// between. These efficiency tiers are what make the standard/uvm/
// uvm_prefetch transfer-time comparison of §4.1 come out the way it does.
package pcie

import "uvmasim/internal/sim"

// Config describes the interconnect. Defaults follow PCIe 4.0 x16 as on
// the paper's A100 host.
type Config struct {
	BandwidthGBs float64 // peak per direction
	LatencyNs    float64 // DMA descriptor setup per transfer

	BulkEfficiency      float64 // cudaMemcpy of large contiguous buffers
	PrefetchEfficiency  float64 // cudaMemPrefetchAsync 2 MB streams
	FaultEfficiency     float64 // on-demand UVM migration (64 KB blocks)
	WritebackEfficiency float64 // device->host dirty-page writeback
}

// DefaultConfig returns the PCIe 4.0 x16 model. FaultEfficiency assumes
// the UVM driver's density-growing prefetcher is coalescing faults on a
// favorable (sequential) pattern; callers derate it with a pattern factor
// for scattered demand.
func DefaultConfig() Config {
	return Config{
		BandwidthGBs:        26,
		LatencyNs:           1500,
		BulkEfficiency:      0.92,
		PrefetchEfficiency:  0.84,
		FaultEfficiency:     0.72,
		WritebackEfficiency: 0.66,
	}
}

// Bus bundles the two DMA directions.
type Bus struct {
	cfg Config
	H2D *sim.Link
	D2H *sim.Link
}

// New creates a Bus on the engine.
func New(eng *sim.Engine, cfg Config) *Bus {
	if cfg.BandwidthGBs <= 0 {
		panic("pcie: bandwidth must be positive")
	}
	return &Bus{
		cfg: cfg,
		H2D: sim.NewLink(eng, "pcie-h2d", sim.GBPerSec(cfg.BandwidthGBs)),
		D2H: sim.NewLink(eng, "pcie-d2h", sim.GBPerSec(cfg.BandwidthGBs)),
	}
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// CopyH2DBulk reserves a bulk host->device copy starting no earlier than
// t. hostEff (0,1] further derates the copy for host-side placement
// effects (cross-chip buffers, Figure 6). It returns the completion time.
func (b *Bus) CopyH2DBulk(t float64, bytes int64, hostEff float64) float64 {
	return b.H2D.TransferAt(t, float64(bytes), b.cfg.LatencyNs, b.cfg.BulkEfficiency*hostEff, nil)
}

// CopyD2HBulk reserves a bulk device->host copy starting no earlier than
// t and returns the completion time.
func (b *Bus) CopyD2HBulk(t float64, bytes int64, hostEff float64) float64 {
	return b.D2H.TransferAt(t, float64(bytes), b.cfg.LatencyNs, b.cfg.BulkEfficiency*hostEff, nil)
}

// MigrateOnDemand reserves a fault-granularity host->device migration and
// returns the completion time. patternEff (0,1] derates the configured
// fault efficiency for demand orders the driver prefetcher cannot
// coalesce (irregular/random kernels). No descriptor latency is charged
// here — the UVM fault-batch latency covers it.
func (b *Bus) MigrateOnDemand(t float64, bytes int64, patternEff float64) float64 {
	eff := b.cfg.FaultEfficiency * patternEff
	if eff <= 0 {
		eff = 0.01
	}
	if eff > 1 {
		eff = 1
	}
	return b.H2D.TransferAt(t, float64(bytes), 0, eff, nil)
}

// PrefetchChunk reserves a prefetch-stream host->device transfer and
// returns the completion time.
func (b *Bus) PrefetchChunk(t float64, bytes int64) float64 {
	return b.H2D.TransferAt(t, float64(bytes), 0, b.cfg.PrefetchEfficiency, nil)
}

// Writeback reserves a device->host dirty-page writeback and returns the
// completion time.
func (b *Bus) Writeback(t float64, bytes int64) float64 {
	return b.D2H.TransferAt(t, float64(bytes), 0, b.cfg.WritebackEfficiency, nil)
}

// BusyTotal returns the combined busy time of both directions.
func (b *Bus) BusyTotal() float64 {
	return b.H2D.Busy().Total() + b.D2H.Busy().Total()
}

// BusyWithin returns the combined busy time of both directions that
// falls inside [a, b2).
func (b *Bus) BusyWithin(a, b2 float64) float64 {
	return b.H2D.Busy().Overlap(a, b2) + b.D2H.Busy().Overlap(a, b2)
}

// Reset clears both links' queues and accounting.
func (b *Bus) Reset() {
	b.H2D.Reset()
	b.D2H.Reset()
}
