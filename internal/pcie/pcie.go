// Package pcie models the host<->device interconnect: one DMA link per
// direction with a fixed descriptor latency and transfer-mode-dependent
// efficiencies. Bulk cudaMemcpy moves near line rate; fault-granularity
// UVM migration pays per-block overheads; 2 MB prefetch streams land in
// between. These efficiency tiers are what make the standard/uvm/
// uvm_prefetch transfer-time comparison of §4.1 come out the way it does.
package pcie

import (
	"uvmasim/internal/sim"
	"uvmasim/internal/trace"
)

// Config describes the interconnect. Defaults follow PCIe 4.0 x16 as on
// the paper's A100 host.
type Config struct {
	BandwidthGBs float64 // peak per direction
	LatencyNs    float64 // DMA descriptor setup per transfer

	BulkEfficiency      float64 // cudaMemcpy of large contiguous buffers
	PrefetchEfficiency  float64 // cudaMemPrefetchAsync 2 MB streams
	FaultEfficiency     float64 // on-demand UVM migration (64 KB blocks)
	WritebackEfficiency float64 // device->host dirty-page writeback
}

// DefaultConfig returns the PCIe 4.0 x16 model. FaultEfficiency assumes
// the UVM driver's density-growing prefetcher is coalescing faults on a
// favorable (sequential) pattern; callers derate it with a pattern factor
// for scattered demand.
func DefaultConfig() Config {
	return Config{
		BandwidthGBs:        26,
		LatencyNs:           1500,
		BulkEfficiency:      0.92,
		PrefetchEfficiency:  0.84,
		FaultEfficiency:     0.72,
		WritebackEfficiency: 0.66,
	}
}

// BytesPerNs returns the peak per-direction link bandwidth in bytes/ns
// (numerically equal to GB/s; see sim.GBPerSec).
func (c Config) BytesPerNs() float64 { return c.BandwidthGBs }

// UplinkBytesPerNs returns the capacity of a shared PCIe-switch uplink
// in bytes/ns. A switch fans several devices out of one host port, so
// the uplink runs at a single link's rate no matter how many GPUs sit
// behind it — the contention regime the multi-GPU topologies model.
func (c Config) UplinkBytesPerNs() float64 { return c.BytesPerNs() }

// ZeroCopyEfficiency is the link efficiency of SM-issued in-place
// accesses to host-coherent memory (the uvm_zerocopy mode): warp-
// coalesced line bursts achieve about what the fault path's driver-
// coalesced 64 KB blocks do, so coherent links (high FaultEfficiency)
// are exactly the machines where zero-copy shines.
func (c Config) ZeroCopyEfficiency() float64 { return c.FaultEfficiency }

// SMCopyEfficiency is the link efficiency of SM-driven bulk staging
// copies (the uvm_smcopy mode): wide unrolled SM copies saturate the
// link nearly as well as the copy engines, minus a small issue overhead
// (nvbandwidth's SM-copy vs CE-copy gap).
func (c Config) SMCopyEfficiency() float64 { return c.BulkEfficiency * 0.95 }

// Bus bundles the two DMA directions.
type Bus struct {
	cfg Config
	eng *sim.Engine
	H2D *sim.Link
	D2H *sim.Link
}

// New creates a Bus on the engine.
func New(eng *sim.Engine, cfg Config) *Bus {
	if cfg.BandwidthGBs <= 0 {
		panic("pcie: bandwidth must be positive")
	}
	return &Bus{
		cfg: cfg,
		eng: eng,
		H2D: sim.NewLink(eng, "pcie-h2d", sim.GBPerSec(cfg.BandwidthGBs)),
		D2H: sim.NewLink(eng, "pcie-d2h", sim.GBPerSec(cfg.BandwidthGBs)),
	}
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Tracer returns the tracer attached to the bus's engine (nil when
// tracing is disabled). The UVM manager records its fault activity
// through it.
func (b *Bus) Tracer() *trace.Tracer { return b.eng.Tracer() }

// CopyH2DBulk reserves a bulk host->device copy starting no earlier than
// t. hostEff (0,1] further derates the copy for host-side placement
// effects (cross-chip buffers, Figure 6). It returns the completion time.
func (b *Bus) CopyH2DBulk(t float64, bytes int64, hostEff float64) float64 {
	start, end := b.H2D.ReserveAt(t, float64(bytes), b.cfg.LatencyNs, b.cfg.BulkEfficiency*hostEff, nil)
	b.Tracer().Span(trace.PCIeH2D, "memcpyH2D", start, end, trace.Args{Bytes: bytes})
	return end
}

// CopyD2HBulk reserves a bulk device->host copy starting no earlier than
// t and returns the completion time.
func (b *Bus) CopyD2HBulk(t float64, bytes int64, hostEff float64) float64 {
	start, end := b.D2H.ReserveAt(t, float64(bytes), b.cfg.LatencyNs, b.cfg.BulkEfficiency*hostEff, nil)
	b.Tracer().Span(trace.PCIeD2H, "memcpyD2H", start, end, trace.Args{Bytes: bytes})
	return end
}

// MigrateOnDemand reserves a fault-granularity host->device migration and
// returns the completion time. patternEff (0,1] derates the configured
// fault efficiency for demand orders the driver prefetcher cannot
// coalesce (irregular/random kernels). No descriptor latency is charged
// here — the UVM fault-batch latency covers it.
func (b *Bus) MigrateOnDemand(t float64, bytes int64, patternEff float64) float64 {
	eff := b.cfg.FaultEfficiency * patternEff
	if eff <= 0 {
		eff = 0.01
	}
	if eff > 1 {
		eff = 1
	}
	start, end := b.H2D.ReserveAt(t, float64(bytes), 0, eff, nil)
	b.Tracer().Span(trace.PCIeH2D, "migrate", start, end, trace.Args{Bytes: bytes})
	return end
}

// PrefetchChunk reserves a prefetch-stream host->device transfer and
// returns the completion time. The span is recorded on the prefetch
// track even though it occupies the H2D link, mirroring how profiler
// timelines show the prefetch stream as its own row.
func (b *Bus) PrefetchChunk(t float64, bytes int64) float64 {
	start, end := b.H2D.ReserveAt(t, float64(bytes), 0, b.cfg.PrefetchEfficiency, nil)
	b.Tracer().Span(trace.Prefetch, "prefetch", start, end, trace.Args{Bytes: bytes})
	return end
}

// Writeback reserves a device->host dirty-page writeback and returns the
// completion time.
func (b *Bus) Writeback(t float64, bytes int64) float64 {
	start, end := b.D2H.ReserveAt(t, float64(bytes), 0, b.cfg.WritebackEfficiency, nil)
	b.Tracer().Span(trace.PCIeD2H, "writeback", start, end, trace.Args{Bytes: bytes})
	return end
}

// BusyTotal returns the combined busy time of both directions.
func (b *Bus) BusyTotal() float64 {
	return b.H2D.Busy().Total() + b.D2H.Busy().Total()
}

// BusyWithin returns the combined busy time of both directions that
// falls inside [a, b2).
func (b *Bus) BusyWithin(a, b2 float64) float64 {
	return b.H2D.Busy().Overlap(a, b2) + b.D2H.Busy().Overlap(a, b2)
}

// Reset clears both links' queues and accounting.
func (b *Bus) Reset() {
	b.H2D.Reset()
	b.D2H.Reset()
}
