package pcie

import (
	"testing"

	"uvmasim/internal/sim"
)

func TestEfficiencyOrdering(t *testing.T) {
	cfg := DefaultConfig()
	if !(cfg.BulkEfficiency > cfg.PrefetchEfficiency &&
		cfg.PrefetchEfficiency > cfg.FaultEfficiency) {
		t.Errorf("efficiency tiers must order bulk > prefetch > fault: %+v", cfg)
	}
}

func TestCopyDirectionsIndependent(t *testing.T) {
	eng := sim.New()
	b := New(eng, DefaultConfig())
	h2d := b.CopyH2DBulk(0, 1<<20, 1)
	d2h := b.CopyD2HBulk(0, 1<<20, 1)
	if h2d != d2h {
		t.Errorf("full-duplex copies should complete together: %v vs %v", h2d, d2h)
	}
	// Same-direction copies serialize.
	second := b.CopyH2DBulk(0, 1<<20, 1)
	if second <= h2d {
		t.Errorf("same-direction copy should queue: %v <= %v", second, h2d)
	}
}

func TestModeSpeeds(t *testing.T) {
	eng := sim.New()
	b := New(eng, DefaultConfig())
	const n = 64 << 20
	bulk := b.CopyH2DBulk(0, n, 1)
	eng2 := sim.New()
	b2 := New(eng2, DefaultConfig())
	pf := b2.PrefetchChunk(0, n)
	eng3 := sim.New()
	b3 := New(eng3, DefaultConfig())
	fault := b3.MigrateOnDemand(0, n, 1)
	if !(bulk < pf && pf < fault) {
		t.Errorf("transfer times must order bulk < prefetch < fault: %v %v %v", bulk, pf, fault)
	}
}

func TestBusyAccounting(t *testing.T) {
	eng := sim.New()
	b := New(eng, DefaultConfig())
	b.CopyH2DBulk(0, 1<<20, 1)
	b.Writeback(0, 1<<20)
	if b.BusyTotal() <= 0 {
		t.Error("busy total should be positive")
	}
	if got := b.BusyWithin(0, 1); got <= 0 {
		t.Error("busy-within should see the active transfers")
	}
	b.Reset()
	if b.BusyTotal() != 0 {
		t.Error("reset should clear accounting")
	}
}

func TestHostEffSlowsCopy(t *testing.T) {
	e1, e2 := sim.New(), sim.New()
	b1, b2 := New(e1, DefaultConfig()), New(e2, DefaultConfig())
	fast := b1.CopyH2DBulk(0, 1<<24, 1.0)
	slow := b2.CopyH2DBulk(0, 1<<24, 0.5)
	if slow <= fast {
		t.Errorf("derated host efficiency should slow the copy: %v <= %v", slow, fast)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth should panic")
		}
	}()
	New(sim.New(), Config{})
}
