// Package hostmem models the host-side DRAM of the heterogeneous system:
// a set of DRAM chips with individual capacities and an ambient occupancy
// that varies run to run (other processes, the OS page cache, ...).
//
// The model exists to reproduce the paper's Figure 6 / Takeaway 1: when a
// benchmark's memory footprint approaches the capacity of a single DRAM
// chip (64 GB on the authors' EPYC host), allocations are likely to
// straddle a chip boundary, and host->device copies from a straddling
// buffer show large run-to-run bandwidth variance. Far below the chip
// size, buffers almost always land on one chip and copies are stable.
package hostmem

import (
	"fmt"
	"math/rand"
)

// Config describes the host memory system.
type Config struct {
	Chips        int   // number of DRAM chips
	ChipCapacity int64 // bytes per chip
	// AmbientMin/AmbientMax bound the fraction of each chip already in
	// use by the rest of the system; a fresh value is drawn per chip on
	// each Randomize call.
	AmbientMin float64
	AmbientMax float64
	// CrossPenalty is the fractional slowdown applied to the spilled
	// portion of a cross-chip copy (before jitter).
	CrossPenalty float64
	// CrossJitter bounds the multiplicative jitter (+/-) applied to the
	// penalty per copy, modelling interleaving and NUMA routing luck.
	CrossJitter float64
}

// DefaultConfig models the paper's host: 16 x 64 GB DDR4-3200.
func DefaultConfig() Config {
	return Config{
		Chips:        16,
		ChipCapacity: 64 << 30,
		AmbientMin:   0.30,
		AmbientMax:   0.92,
		CrossPenalty: 1.6,
		CrossJitter:  0.75,
	}
}

// PerChipBandwidthGBs is the sustained bandwidth of one host DRAM chip
// in GB/s (one DDR4-3200 channel ≈ 25.6 GB/s, as on the paper's EPYC
// host). It is a modelling constant rather than a Config field so that
// adding multi-GPU topologies does not perturb existing profile
// fingerprints or cache keys.
const PerChipBandwidthGBs = 25.6

// AggregateBandwidthBytesPerNs returns the host DRAM system's total
// sustained bandwidth in bytes/ns (numerically GB/s): chips times the
// per-chip channel rate. Point-to-point GPU interconnects (NVLink/C2C)
// remove the shared-uplink bottleneck, which promotes this pool to the
// binding shared resource for concurrent host<->device streams.
func (c Config) AggregateBandwidthBytesPerNs() float64 {
	return float64(c.Chips) * PerChipBandwidthGBs
}

// Segment is a portion of an allocation resident on one chip.
type Segment struct {
	Chip  int
	Bytes int64
}

// Placement describes where an allocation landed.
type Placement struct {
	Size     int64
	Segments []Segment
}

// Spilled reports how many bytes live outside the primary (first) chip.
func (p Placement) Spilled() int64 {
	var s int64
	for _, seg := range p.Segments[1:] {
		s += seg.Bytes
	}
	return s
}

// SpillFraction is Spilled()/Size, in [0,1]. Zero-size placements spill 0.
func (p Placement) SpillFraction() float64 {
	if p.Size == 0 {
		return 0
	}
	return float64(p.Spilled()) / float64(p.Size)
}

// entry is one allocation slot in the Memory arena. Slots are recycled
// LIFO through the free list; a slot's Segments backing array survives
// recycling, so a warmed-up Memory allocates nothing per Alloc/Free
// cycle.
type entry struct {
	active bool
	place  Placement
}

// Memory is the host DRAM allocator/model. It is not safe for concurrent
// use; the simulator is single-threaded.
type Memory struct {
	cfg       Config
	ambient   []int64 // bytes consumed by "the rest of the system" per chip
	used      []int64 // bytes consumed by our allocations per chip
	entries   []entry // allocation arena; id = slot index + 1
	freeIDs   []int32 // recycled slots, LIFO
	live      int
	order     []int // scratch for the first-touch placement walk
	preferred int   // NUMA-local chip that first-touch placement starts on
}

// New creates a Memory with zero ambient occupancy. Call Randomize before
// each measured run to model a fresh system state.
func New(cfg Config) *Memory {
	if cfg.Chips <= 0 || cfg.ChipCapacity <= 0 {
		panic("hostmem: config must have positive chips and capacity")
	}
	return &Memory{
		cfg:     cfg,
		ambient: make([]int64, cfg.Chips),
		used:    make([]int64, cfg.Chips),
		order:   make([]int, cfg.Chips),
	}
}

// Reset releases every allocation and zeroes the background occupancy,
// returning the Memory to its post-New state while keeping the arena
// warm. Call Randomize afterwards to draw the next run's system state.
func (m *Memory) Reset() {
	for i := range m.used {
		m.used[i] = 0
		m.ambient[i] = 0
	}
	m.freeIDs = m.freeIDs[:0]
	for i := len(m.entries) - 1; i >= 0; i-- {
		m.entries[i].active = false
		m.freeIDs = append(m.freeIDs, int32(i))
	}
	m.live = 0
	m.preferred = 0
}

// Config returns the memory system's configuration.
func (m *Memory) Config() Config { return m.cfg }

// TotalCapacity returns the aggregate capacity across chips.
func (m *Memory) TotalCapacity() int64 {
	return int64(m.cfg.Chips) * m.cfg.ChipCapacity
}

// Randomize draws a fresh ambient occupancy for every chip and a fresh
// preferred (NUMA-local) chip for first-touch placement. Existing
// allocations are preserved; only the background state changes.
func (m *Memory) Randomize(rng *rand.Rand) {
	span := m.cfg.AmbientMax - m.cfg.AmbientMin
	for i := range m.ambient {
		frac := m.cfg.AmbientMin + rng.Float64()*span
		m.ambient[i] = int64(frac * float64(m.cfg.ChipCapacity))
	}
	m.preferred = rng.Intn(m.cfg.Chips)
}

// free returns the free bytes on chip i.
func (m *Memory) free(i int) int64 {
	f := m.cfg.ChipCapacity - m.ambient[i] - m.used[i]
	if f < 0 {
		f = 0
	}
	return f
}

// FreeBytes returns the total free bytes across all chips.
func (m *Memory) FreeBytes() int64 {
	var s int64
	for i := range m.ambient {
		s += m.free(i)
	}
	return s
}

// Alloc places size bytes with a first-touch NUMA policy: the preferred
// (local) chip fills first, and the remainder spills onto subsequent
// chips in order. This locality-first behaviour — rather than a globally
// balanced one — is what makes near-chip-capacity footprints straddle a
// boundary with high probability (Figure 6). It returns an id (for Free)
// and the placement, or an error when the host is out of memory.
func (m *Memory) Alloc(size int64) (int64, Placement, error) {
	if size <= 0 {
		return 0, Placement{}, fmt.Errorf("hostmem: invalid allocation size %d", size)
	}
	if size > m.FreeBytes() {
		return 0, Placement{}, fmt.Errorf("hostmem: out of memory: need %d, free %d", size, m.FreeBytes())
	}
	for i := range m.order {
		m.order[i] = (m.preferred + i) % m.cfg.Chips
	}
	var slot int
	if n := len(m.freeIDs); n > 0 {
		slot = int(m.freeIDs[n-1])
		m.freeIDs = m.freeIDs[:n-1]
	} else {
		m.entries = append(m.entries, entry{})
		slot = len(m.entries) - 1
	}
	e := &m.entries[slot]
	e.active = true
	e.place.Size = size
	e.place.Segments = e.place.Segments[:0]
	remaining := size
	for _, chip := range m.order {
		if remaining == 0 {
			break
		}
		take := m.free(chip)
		if take > remaining {
			take = remaining
		}
		if take == 0 {
			continue
		}
		m.used[chip] += take
		e.place.Segments = append(e.place.Segments, Segment{Chip: chip, Bytes: take})
		remaining -= take
	}
	if remaining != 0 {
		panic("hostmem: accounting error, free bytes changed during alloc")
	}
	m.live++
	return int64(slot) + 1, e.place, nil
}

// Free releases the allocation with the given id and recycles its slot.
// Freeing an unknown or already-freed id returns an error so double
// frees surface in tests. The returned Placement's Segments stay
// readable until the slot is reused by a later Alloc.
func (m *Memory) Free(id int64) error {
	slot := int(id) - 1
	if slot < 0 || slot >= len(m.entries) || !m.entries[slot].active {
		return fmt.Errorf("hostmem: free of unknown allocation %d", id)
	}
	e := &m.entries[slot]
	for _, seg := range e.place.Segments {
		m.used[seg.Chip] -= seg.Bytes
		if m.used[seg.Chip] < 0 {
			panic("hostmem: negative usage after free")
		}
	}
	e.active = false
	m.freeIDs = append(m.freeIDs, int32(slot))
	m.live--
	return nil
}

// CopyEfficiency returns the effective link efficiency (0, 1] for a bulk
// copy out of (or into) the placed buffer. Single-chip placements copy at
// full efficiency; the spilled fraction pays CrossPenalty modulated by a
// per-copy jitter drawn from rng. This is the mechanism behind the
// unstable Mega-input memcpy times of Figure 6.
func (m *Memory) CopyEfficiency(p Placement, rng *rand.Rand) float64 {
	sf := p.SpillFraction()
	if sf == 0 {
		return 1
	}
	jitter := 1 + m.cfg.CrossJitter*(2*rng.Float64()-1)
	if jitter < 0.05 {
		jitter = 0.05
	}
	slowdown := 1 + sf*m.cfg.CrossPenalty*jitter
	return 1 / slowdown
}

// LiveAllocations reports how many allocations are outstanding.
func (m *Memory) LiveAllocations() int { return m.live }
