package hostmem

import (
	"math/rand"
	"testing"

	"uvmasim/internal/stats"
)

func testConfig() Config {
	return Config{
		Chips:        4,
		ChipCapacity: 1000,
		AmbientMin:   0.1,
		AmbientMax:   0.5,
		CrossPenalty: 1.5,
		CrossJitter:  0.5,
	}
}

func TestAllocSingleChip(t *testing.T) {
	m := New(testConfig())
	id, p, err := m.Alloc(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 1 {
		t.Fatalf("want single segment, got %v", p.Segments)
	}
	if p.SpillFraction() != 0 {
		t.Errorf("spill fraction = %v, want 0", p.SpillFraction())
	}
	if err := m.Free(id); err != nil {
		t.Fatal(err)
	}
	if m.LiveAllocations() != 0 {
		t.Errorf("live allocations = %d", m.LiveAllocations())
	}
}

func TestAllocSpillsAcrossChips(t *testing.T) {
	m := New(testConfig())
	_, p, err := m.Alloc(2500) // cannot fit on one 1000-byte chip
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) < 3 {
		t.Fatalf("expected >=3 segments, got %v", p.Segments)
	}
	var total int64
	for _, s := range p.Segments {
		total += s.Bytes
	}
	if total != 2500 {
		t.Errorf("segments total %d, want 2500", total)
	}
	if p.SpillFraction() <= 0 {
		t.Errorf("expected positive spill fraction")
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	m := New(testConfig())
	if _, _, err := m.Alloc(5000); err == nil {
		t.Error("expected out-of-memory error")
	}
	if _, _, err := m.Alloc(0); err == nil {
		t.Error("expected error on zero-size allocation")
	}
	if _, _, err := m.Alloc(-5); err == nil {
		t.Error("expected error on negative allocation")
	}
}

func TestFreeUnknown(t *testing.T) {
	m := New(testConfig())
	if err := m.Free(42); err == nil {
		t.Error("expected error freeing unknown id")
	}
}

func TestAllocFreeCycleRestoresSpace(t *testing.T) {
	m := New(testConfig())
	before := m.FreeBytes()
	for i := 0; i < 10; i++ {
		id, _, err := m.Alloc(3500)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if m.FreeBytes() != before {
		t.Errorf("free bytes %d, want %d after alloc/free cycles", m.FreeBytes(), before)
	}
}

func TestRandomizeChangesAmbient(t *testing.T) {
	m := New(testConfig())
	rng := rand.New(rand.NewSource(1))
	m.Randomize(rng)
	f1 := m.FreeBytes()
	if f1 >= m.TotalCapacity() {
		t.Errorf("ambient occupancy should reduce free bytes")
	}
	// Free bytes must stay within the configured ambient band.
	minFree := int64(float64(m.TotalCapacity()) * (1 - testConfig().AmbientMax))
	maxFree := int64(float64(m.TotalCapacity()) * (1 - testConfig().AmbientMin))
	if f1 < minFree || f1 > maxFree {
		t.Errorf("free bytes %d outside ambient band [%d,%d]", f1, minFree, maxFree)
	}
}

func TestCopyEfficiencySingleChipIsPerfect(t *testing.T) {
	m := New(testConfig())
	rng := rand.New(rand.NewSource(2))
	_, p, err := m.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if eff := m.CopyEfficiency(p, rng); eff != 1 {
			t.Fatalf("single-chip efficiency = %v, want 1", eff)
		}
	}
}

func TestCopyEfficiencySpilledIsSlowerAndNoisy(t *testing.T) {
	m := New(testConfig())
	rng := rand.New(rand.NewSource(3))
	_, p, err := m.Alloc(2500)
	if err != nil {
		t.Fatal(err)
	}
	effs := make([]float64, 200)
	for i := range effs {
		effs[i] = m.CopyEfficiency(p, rng)
		if effs[i] >= 1 || effs[i] <= 0 {
			t.Fatalf("spilled efficiency %v out of (0,1)", effs[i])
		}
	}
	if stats.Std(effs) == 0 {
		t.Errorf("spilled copies should jitter run to run")
	}
}

// The Figure 6 / Takeaway 1 mechanism: footprints near the chip capacity
// must show much larger memcpy variance than small footprints.
func TestNearCapacityFootprintIsUnstable(t *testing.T) {
	cfg := DefaultConfig()
	variance := func(size int64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		effs := make([]float64, 30)
		for i := range effs {
			m := New(cfg)
			m.Randomize(rng)
			_, p, err := m.Alloc(size)
			if err != nil {
				t.Fatal(err)
			}
			effs[i] = m.CopyEfficiency(p, rng)
		}
		return stats.CoefVar(effs)
	}
	small := variance(4<<30, 10) // Super: 4 GB
	big := variance(32<<30, 10)  // Mega: 32 GB, near 64 GB chip
	if big <= small+0.01 {
		t.Errorf("Mega-size copies should be noisier: cv(4GB)=%v cv(32GB)=%v", small, big)
	}
}

// Property: allocations never exceed per-chip capacity and always sum to
// the requested size.
func TestQuickAllocInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		cfg := testConfig()
		m := New(cfg)
		m.Randomize(rng)
		var ids []int64
		for j := 0; j < 10; j++ {
			size := int64(1 + rng.Intn(1200))
			id, p, err := m.Alloc(size)
			if err != nil {
				continue // legitimately out of memory
			}
			var total int64
			for _, s := range p.Segments {
				total += s.Bytes
				if s.Chip < 0 || s.Chip >= cfg.Chips {
					t.Fatalf("segment on bogus chip %d", s.Chip)
				}
				if s.Bytes <= 0 {
					t.Fatalf("non-positive segment %v", s)
				}
			}
			if total != size {
				t.Fatalf("placement total %d != size %d", total, size)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			if err := m.Free(id); err != nil {
				t.Fatal(err)
			}
		}
		if m.LiveAllocations() != 0 {
			t.Fatalf("leaked allocations")
		}
	}
}
