// Package trace is the simulator's observability layer: a
// zero-overhead-when-disabled event recorder that the device models
// (pcie, uvm, gpu), the CUDA runtime and the experiment harness thread
// their activity through. It records typed spans and instant events on a
// small set of named tracks — the same tracks a CUPTI/Nsight timeline of
// the paper's testbed shows — using virtual-time timestamps, so a trace
// is a deterministic function of the run's seed.
//
// Recorded traces export as Chrome trace-event JSON (see WriteChromeTrace)
// loadable in Perfetto or chrome://tracing, and aggregate into a Metrics
// registry (per-track busy time, byte volumes, named counters) that can be
// cross-checked against cuda.Breakdown.
//
// A nil *Tracer is the disabled state: every method is nil-receiver-safe
// and returns immediately, so instrumented code calls the tracer
// unconditionally and pays only a nil check when tracing is off.
package trace

import "fmt"

// Track identifies one timeline row. The set mirrors the hardware queues
// the paper's profiler timelines show: the two PCIe DMA directions, the
// GPU compute queue, the UVM fault path, the prefetch stream and the
// host-side CUDA API thread.
type Track uint8

const (
	// Host is the CPU thread issuing CUDA API calls (alloc, launch,
	// prefetch calls, synchronization waits).
	Host Track = iota
	// PCIeH2D carries bulk cudaMemcpy H2D and on-demand UVM migration.
	PCIeH2D
	// PCIeD2H carries bulk cudaMemcpy D2H and dirty-page writeback.
	PCIeD2H
	// Kernel is the GPU compute queue (one span per kernel execution).
	Kernel
	// UVMFaults records fault batches, fault waits and evictions as
	// instant events.
	UVMFaults
	// Prefetch is the cudaMemPrefetchAsync transfer stream (physically
	// the H2D link, shown separately as in the paper's Figure 3).
	Prefetch

	numTracks
)

// NumTracks is the number of defined tracks.
const NumTracks = int(numTracks)

// String returns the track's display name (the Perfetto thread name).
func (t Track) String() string {
	switch t {
	case Host:
		return "host"
	case PCIeH2D:
		return "pcie-h2d"
	case PCIeD2H:
		return "pcie-d2h"
	case Kernel:
		return "gpu-kernel"
	case UVMFaults:
		return "uvm-faults"
	case Prefetch:
		return "prefetch-stream"
	}
	return fmt.Sprintf("track(%d)", int(t))
}

// Args is the optional typed payload of an event. The zero value means
// "no arguments"; fields at their zero value are omitted from the export
// (Chunk carries an explicit presence flag because index 0 is valid).
type Args struct {
	// Bytes is the data volume the event moved or allocated.
	Bytes int64
	// Chunk is the UVM migration-granule index, valid when HasChunk.
	Chunk    int
	HasChunk bool
	// Batch is the fault-batch size in fault blocks.
	Batch float64
	// Setup labels the data-transfer configuration of the run.
	Setup string
	// Detail is a free-form annotation (occupancy, placement, ...).
	Detail string
}

// ChunkArgs returns Args carrying a chunk index and byte count.
func ChunkArgs(idx int, bytes int64) Args {
	return Args{Bytes: bytes, Chunk: idx, HasChunk: true}
}

// Event is one recorded timeline entry: a span (Dur > 0 or Instant
// false) or an instant marker.
type Event struct {
	Track   Track
	Name    string
	Start   float64 // virtual ns
	Dur     float64 // span length in ns; 0 for instants
	Instant bool
	Args    Args
}

// End returns the span's end time (Start for instants).
func (e Event) End() float64 { return e.Start + e.Dur }

// Tracer records events and counters for one simulated run. Create one
// with New and attach it to a cuda.Context (or sim.Engine) before the
// run; a nil Tracer disables all recording.
//
// A Tracer is not safe for concurrent use — like the single-threaded
// simulation it observes, each traced run owns its Tracer. The parallel
// experiment executor binds one Tracer per cell iteration.
type Tracer struct {
	events   []Event
	counters map[string]float64
}

// New returns an empty, enabled Tracer.
func New() *Tracer {
	return &Tracer{counters: make(map[string]float64)}
}

// Enabled reports whether the tracer records (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Span records the activity [start, end) on a track. Zero- and
// negative-length spans are ignored; a nil tracer records nothing.
func (t *Tracer) Span(track Track, name string, start, end float64, args Args) {
	if t == nil || end <= start {
		return
	}
	t.events = append(t.events, Event{Track: track, Name: name, Start: start, Dur: end - start, Args: args})
}

// Instant records a point event at time at on a track. A nil tracer
// records nothing.
func (t *Tracer) Instant(track Track, name string, at float64, args Args) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Track: track, Name: name, Start: at, Instant: true, Args: args})
}

// Count adds delta to the named aggregate counter. Counters have no
// timestamps; they feed the Metrics registry next to span-derived busy
// time. A nil tracer records nothing.
func (t *Tracer) Count(name string, delta float64) {
	if t == nil {
		return
	}
	t.counters[name] += delta
}

// Events returns the recorded events in insertion order (simulation
// call order, which is deterministic). The slice is shared; treat it as
// read-only.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}
