package trace

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Chrome trace-event export. The format is the JSON object form of the
// Trace Event Format ({"traceEvents": [...]}) that Perfetto and
// chrome://tracing load directly: complete events (ph "X") for spans,
// thread-scoped instants (ph "i") for markers, and metadata events
// (ph "M") naming the process and one thread per track.
//
// Timestamps are virtual nanoseconds converted to the format's
// microsecond unit and serialized with fixed three-decimal precision
// (nanosecond resolution), so the byte output is a deterministic
// function of the recorded events.

// writeJSONString appends s as a JSON string literal. Event and counter
// names are simulator-chosen identifiers, but escape defensively.
func writeJSONString(b *strings.Builder, s string) {
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				b.WriteString(`\u`)
				const hex = "0123456789abcdef"
				b.WriteByte('0')
				b.WriteByte('0')
				b.WriteByte(hex[(r>>4)&0xf])
				b.WriteByte(hex[r&0xf])
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
}

// micros formats a virtual-ns quantity in microseconds with fixed
// nanosecond precision.
func micros(ns float64) string {
	return strconv.FormatFloat(ns/1e3, 'f', 3, 64)
}

// writeArgs appends the event's args object (possibly empty).
func writeArgs(b *strings.Builder, a Args) {
	b.WriteString(`"args":{`)
	first := true
	field := func(name string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		writeJSONString(b, name)
		b.WriteByte(':')
	}
	if a.Bytes != 0 {
		field("bytes")
		b.WriteString(strconv.FormatInt(a.Bytes, 10))
	}
	if a.HasChunk {
		field("chunk")
		b.WriteString(strconv.Itoa(a.Chunk))
	}
	if a.Batch != 0 {
		field("batch")
		b.WriteString(strconv.FormatFloat(a.Batch, 'g', -1, 64))
	}
	if a.Setup != "" {
		field("setup")
		writeJSONString(b, a.Setup)
	}
	if a.Detail != "" {
		field("detail")
		writeJSONString(b, a.Detail)
	}
	b.WriteByte('}')
}

// WriteChromeTrace writes the recorded events as Chrome trace-event JSON.
// Events are emitted in (start time, insertion order) so the file is
// byte-identical for identical event sequences. A nil tracer writes a
// valid empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")

	var b strings.Builder
	// Metadata: process name and one named thread per track, in track
	// order so Perfetto shows the timeline rows in pipeline order.
	b.WriteString(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"uvmasim"}}`)
	for tr := Track(0); tr < numTracks; tr++ {
		b.WriteString(",\n")
		b.WriteString(`{"ph":"M","pid":1,"tid":`)
		b.WriteString(strconv.Itoa(int(tr) + 1))
		b.WriteString(`,"name":"thread_name","args":{"name":`)
		writeJSONString(&b, tr.String())
		b.WriteString(`}}`)
		b.WriteString(",\n")
		b.WriteString(`{"ph":"M","pid":1,"tid":`)
		b.WriteString(strconv.Itoa(int(tr) + 1))
		b.WriteString(`,"name":"thread_sort_index","args":{"sort_index":`)
		b.WriteString(strconv.Itoa(int(tr)))
		b.WriteString(`}}`)
	}
	bw.WriteString(b.String())

	events := t.Events()
	// Stable order by start time; ties keep insertion (simulation call)
	// order, which is itself deterministic.
	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return events[order[i]].Start < events[order[j]].Start
	})

	for _, idx := range order {
		e := events[idx]
		b.Reset()
		b.WriteString(",\n{")
		b.WriteString(`"name":`)
		writeJSONString(&b, e.Name)
		if e.Instant {
			b.WriteString(`,"ph":"i","s":"t"`)
		} else {
			b.WriteString(`,"ph":"X"`)
		}
		b.WriteString(`,"pid":1,"tid":`)
		b.WriteString(strconv.Itoa(int(e.Track) + 1))
		b.WriteString(`,"ts":`)
		b.WriteString(micros(e.Start))
		if !e.Instant {
			b.WriteString(`,"dur":`)
			b.WriteString(micros(e.Dur))
		}
		b.WriteByte(',')
		writeArgs(&b, e.Args)
		b.WriteByte('}')
		bw.WriteString(b.String())
	}

	// Counters travel as one final metadata event so aggregate values
	// survive into the exported artifact.
	if t != nil && len(t.counters) > 0 {
		b.Reset()
		b.WriteString(",\n")
		b.WriteString(`{"ph":"M","pid":1,"name":"uvmasim_counters","args":{`)
		names := t.Metrics().CounterNames()
		for i, name := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			writeJSONString(&b, name)
			b.WriteByte(':')
			b.WriteString(strconv.FormatFloat(t.counters[name], 'g', -1, 64))
		}
		b.WriteString(`}}`)
		bw.WriteString(b.String())
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}
