package trace

import "sort"

// TrackMetrics aggregates one track's recorded activity.
type TrackMetrics struct {
	// Spans and Instants count recorded events.
	Spans    int
	Instants int
	// Busy is the union length of the track's spans in ns. Spans on a
	// track never overlap (each track models a FIFO resource), so this
	// equals the summed span durations.
	Busy float64
	// Bytes sums the Bytes argument across the track's events.
	Bytes int64
}

// Metrics is the aggregate view of one Tracer: the registry the harness
// reads instead of (or cross-checked against) cuda.Breakdown.
type Metrics struct {
	// Tracks holds per-track aggregates indexed by Track.
	Tracks [NumTracks]TrackMetrics
	// Counters holds the named counter registry.
	Counters map[string]float64
}

// Busy returns the busy time of one track.
func (m Metrics) Busy(track Track) float64 { return m.Tracks[track].Busy }

// TransferBusy returns the combined busy time of the three transfer
// tracks (PCIe H2D, PCIe D2H, prefetch stream) — the trace-derived
// equivalent of cuda.Breakdown's Memcpy component.
func (m Metrics) TransferBusy() float64 {
	return m.Tracks[PCIeH2D].Busy + m.Tracks[PCIeD2H].Busy + m.Tracks[Prefetch].Busy
}

// Metrics computes the aggregate registry over the recorded events. A
// nil tracer yields zero metrics.
func (t *Tracer) Metrics() Metrics {
	var m Metrics
	if t == nil {
		return m
	}
	for _, e := range t.events {
		tm := &m.Tracks[e.Track]
		if e.Instant {
			tm.Instants++
		} else {
			tm.Spans++
			tm.Busy += e.Dur
		}
		tm.Bytes += e.Args.Bytes
	}
	if len(t.counters) > 0 {
		m.Counters = make(map[string]float64, len(t.counters))
		for k, v := range t.counters {
			m.Counters[k] = v
		}
	}
	return m
}

// CounterNames returns the registry's counter names in sorted order, for
// deterministic iteration.
func (m Metrics) CounterNames() []string {
	names := make([]string, 0, len(m.Counters))
	for k := range m.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// OverlapWithin returns the busy time of the given tracks that falls
// inside [a, b). It is the trace-side counterpart of the bus-overlap
// subtraction cuda.Breakdown applies to kernel spans.
func (t *Tracer) OverlapWithin(a, b float64, tracks ...Track) float64 {
	if t == nil || b <= a {
		return 0
	}
	want := [NumTracks]bool{}
	for _, tr := range tracks {
		want[tr] = true
	}
	sum := 0.0
	for _, e := range t.events {
		if e.Instant || !want[e.Track] {
			continue
		}
		lo, hi := e.Start, e.End()
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if hi > lo {
			sum += hi - lo
		}
	}
	return sum
}

// SpansMonotonic reports whether every track's spans are non-overlapping
// and in non-decreasing start order — the well-formedness property the
// FIFO resources guarantee and the Chrome export relies on.
func (t *Tracer) SpansMonotonic() bool {
	if t == nil {
		return true
	}
	var lastEnd [NumTracks]float64
	for _, e := range t.events {
		if e.Instant {
			continue
		}
		if e.Start < lastEnd[e.Track] {
			return false
		}
		lastEnd[e.Track] = e.End()
	}
	return true
}
