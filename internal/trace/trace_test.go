package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestNilTracerIsSafeAndEmpty(t *testing.T) {
	var tr *Tracer
	tr.Span(Kernel, "k", 0, 10, Args{})
	tr.Instant(UVMFaults, "f", 5, Args{})
	tr.Count("x", 1)
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}
	m := tr.Metrics()
	if m.TransferBusy() != 0 || m.Counters != nil {
		t.Error("nil tracer produced metrics")
	}
	if !tr.SpansMonotonic() {
		t.Error("nil tracer not monotonic")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("nil tracer export is not valid JSON")
	}
}

func TestSpanRecordingAndMetrics(t *testing.T) {
	tr := New()
	tr.Span(PCIeH2D, "memcpyH2D", 0, 100, Args{Bytes: 1 << 20})
	tr.Span(PCIeH2D, "migrate", 100, 150, ChunkArgs(3, 2<<20))
	tr.Span(Prefetch, "prefetch", 50, 90, Args{Bytes: 2 << 20})
	tr.Span(Kernel, "gemm", 40, 240, Args{})
	tr.Span(Kernel, "gemm", 300, 300, Args{}) // zero length: dropped
	tr.Instant(UVMFaults, "fault_batch", 100, Args{Batch: 32})
	tr.Count("uvm.fault_batches", 1)
	tr.Count("uvm.fault_batches", 2)

	if tr.Len() != 5 {
		t.Fatalf("recorded %d events, want 5", tr.Len())
	}
	m := tr.Metrics()
	if got := m.Busy(PCIeH2D); got != 150 {
		t.Errorf("H2D busy = %v, want 150", got)
	}
	if got := m.TransferBusy(); got != 190 {
		t.Errorf("transfer busy = %v, want 190", got)
	}
	if m.Tracks[PCIeH2D].Bytes != 3<<20 {
		t.Errorf("H2D bytes = %d, want %d", m.Tracks[PCIeH2D].Bytes, 3<<20)
	}
	if m.Tracks[UVMFaults].Instants != 1 || m.Tracks[UVMFaults].Spans != 0 {
		t.Errorf("fault track events = %+v", m.Tracks[UVMFaults])
	}
	if m.Counters["uvm.fault_batches"] != 3 {
		t.Errorf("counter = %v, want 3", m.Counters["uvm.fault_batches"])
	}
	// Clipped to [40,240): H2D contributes 60+50, prefetch 40.
	if got := tr.OverlapWithin(40, 240, PCIeH2D, Prefetch, PCIeD2H); got != 150 {
		t.Errorf("overlap within kernel span = %v, want 150", got)
	}
	if !tr.SpansMonotonic() {
		t.Error("per-track monotonic spans reported as non-monotonic")
	}
}

func TestSpansMonotonicDetectsOverlap(t *testing.T) {
	tr := New()
	tr.Span(Kernel, "a", 0, 100, Args{})
	tr.Span(Kernel, "b", 50, 120, Args{})
	if tr.SpansMonotonic() {
		t.Error("overlapping kernel spans reported as monotonic")
	}
}

// chromeDoc mirrors the exported format for validation.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		PID  int             `json:"pid"`
		TID  int             `json:"tid"`
		TS   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func buildSample() *Tracer {
	tr := New()
	tr.Span(Host, "cudaMalloc", 0, 10, Args{Bytes: 4096})
	tr.Span(PCIeH2D, "memcpyH2D", 10, 110, Args{Bytes: 1 << 20})
	tr.Span(Kernel, "saxpy", 110, 210, Args{Setup: "standard"})
	tr.Instant(UVMFaults, "fault_batch", 150, Args{Batch: 8, Bytes: 64 << 10})
	tr.Span(PCIeD2H, "writeback", 210, 260, ChunkArgs(0, 2<<20))
	tr.Count("gpu.launches", 1)
	return tr
}

func TestChromeExportWellFormed(t *testing.T) {
	tr := buildSample()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 2 per track metadata + 5 events + counters.
	wantEvents := 1 + 2*NumTracks + 5 + 1
	if len(doc.TraceEvents) != wantEvents {
		t.Fatalf("exported %d events, want %d", len(doc.TraceEvents), wantEvents)
	}
	// Per-tid "X" spans must be monotonic and non-overlapping.
	lastEnd := map[int]float64{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.TS+1e-9 < lastEnd[e.TID] {
			t.Errorf("span %q on tid %d starts at %v before previous end %v",
				e.Name, e.TID, e.TS, lastEnd[e.TID])
		}
		lastEnd[e.TID] = e.TS + e.Dur
	}
	// Timestamps are microseconds: the 100 ns memcpy span is 0.1 us.
	for _, e := range doc.TraceEvents {
		if e.Name == "memcpyH2D" && math.Abs(e.Dur-0.1) > 1e-9 {
			t.Errorf("memcpyH2D dur = %v us, want 0.1", e.Dur)
		}
	}
}

func TestChromeExportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSample().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical event sequences exported different bytes")
	}
}
