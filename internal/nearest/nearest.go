// Package nearest implements the "did you mean" suggestion shared by
// every layer that resolves user-supplied names — CLI flags, workload
// names, setup names, size classes and hardware-profile names. Keeping
// the edit-distance logic in one dependency-free package guarantees the
// suggestions behave identically everywhere.
package nearest

// Distance returns the Levenshtein edit distance between a and b.
func Distance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Best returns the candidate with the smallest edit distance to name,
// provided that distance is at most maxDist; otherwise "". A non-empty
// name that is a strict prefix of a candidate (a truncated
// "v100-16g" for "v100-16g-pcie3") always qualifies, whatever its
// distance — the distance of a prefix pair is the length difference,
// which for long structured names easily exceeds any sane typo cutoff.
// Ties keep the earliest candidate, so callers that pass candidates in
// presentation order get stable suggestions.
func Best(name string, candidates []string, maxDist int) string {
	best, bestDist := "", maxDist+1
	for _, c := range candidates {
		d := Distance(name, c)
		if name != "" && len(name) < len(c) && c[:len(name)] == name && d > maxDist {
			d = maxDist
		}
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// Hint formats Best's result as the parenthetical suffix the CLI error
// messages append: ` (did you mean "gemm"?)`, or "" when no candidate is
// close enough.
func Hint(name string, candidates []string, maxDist int) string {
	if best := Best(name, candidates, maxDist); best != "" {
		return " (did you mean \"" + best + "\"?)"
	}
	return ""
}
