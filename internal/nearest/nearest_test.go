package nearest

import "testing"

func TestDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"gemm", "gemm", 0},
		{"gemmm", "gemm", 1},
		{"gmem", "gemm", 2},
		{"kitten", "sitting", 3},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBest(t *testing.T) {
	setups := []string{"standard", "async", "uvm", "uvm_prefetch", "uvm_prefetch_async"}
	if got := Best("uvm_prefetcg", setups, 2); got != "uvm_prefetch" {
		t.Errorf("Best = %q, want uvm_prefetch", got)
	}
	if got := Best("totally-unrelated", setups, 2); got != "" {
		t.Errorf("far-off name should suggest nothing, got %q", got)
	}
	// Ties keep the earliest candidate.
	if got := Best("b", []string{"a", "c"}, 2); got != "a" {
		t.Errorf("tie should keep first candidate, got %q", got)
	}
	// A strict prefix qualifies even past the distance cutoff (truncated
	// structured names like profile names), but never beats a real typo
	// within the cutoff, and an empty name suggests nothing.
	if got := Best("uvm_pre", setups, 2); got != "uvm_prefetch" {
		t.Errorf("prefix should qualify, got %q", got)
	}
	if got := Best("asyn", []string{"async_long_name", "async"}, 2); got != "async" {
		t.Errorf("close typo should beat a longer prefix match, got %q", got)
	}
	if got := Best("", setups, 2); got != "" {
		t.Errorf("empty name should suggest nothing, got %q", got)
	}
}

func TestHint(t *testing.T) {
	if got := Hint("gemmm", []string{"gemm", "gemv"}, 2); got != ` (did you mean "gemm"?)` {
		t.Errorf("Hint = %q", got)
	}
	if got := Hint("zzz", []string{"gemm"}, 2); got != "" {
		t.Errorf("Hint for far-off name = %q, want empty", got)
	}
}
