package metrics

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "other help"); again != c {
		t.Error("re-registration should return the same counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Errorf("sum = %v, want 106", h.Sum())
	}
	// le="1" admits 0.5 and the inclusive 1; le="2" adds 1.5; le="4"
	// adds 3; +Inf catches 100.
	wantCum := []uint64{2, 3, 4, 5}
	cum := uint64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, cum, wantCum[i])
		}
	}
}

// TestNilSafety: every operation on nil metrics and a nil registry is a
// no-op — the zero-overhead unregistered state.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram should read 0")
	}
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("y", "").Set(1)
	r.Histogram("z", "", DefSecondsBuckets).Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry should snapshot to nil")
	}
}

// TestUpdatesAllocFree pins the hot-path property the instrumented
// simulation layers rely on: metric updates never allocate.
func TestUpdatesAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DefSecondsBuckets)
	var nilC *Counter
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		h.Observe(0.42)
		nilC.Inc()
	}); n != 0 {
		t.Errorf("metric updates allocate %v times per op, want 0", n)
	}
}

// promLine matches one sample line of the text exposition format:
// name{labels} value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)

// ParseText is the test-side Prometheus parser shared with the serve
// tests (exported from the package's test archive via this helper):
// every non-comment line must match the exposition grammar.
func parseText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line does not parse as Prometheus text format: %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(strings.TrimPrefix(line[i+1:], "+"), 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("uvm_hits_total", "cache hits").Add(7)
	r.Counter(`uvm_responses_total{code="200"}`, "responses by status").Add(3)
	r.Counter(`uvm_responses_total{code="429"}`, "responses by status").Add(1)
	r.Gauge("uvm_inflight", "in-flight cells").Set(2)
	h := r.Histogram("uvm_cell_seconds", "cell wall time", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parseText(t, text)

	want := map[string]float64{
		"uvm_hits_total":                     7,
		`uvm_responses_total{code="200"}`:    3,
		`uvm_responses_total{code="429"}`:    1,
		"uvm_inflight":                       2,
		`uvm_cell_seconds_bucket{le="0.1"}`:  1,
		`uvm_cell_seconds_bucket{le="1"}`:    2,
		`uvm_cell_seconds_bucket{le="+Inf"}`: 3,
		"uvm_cell_seconds_sum":               5.55,
		"uvm_cell_seconds_count":             3,
	}
	for name, v := range want {
		if got, ok := samples[name]; !ok || got != v {
			t.Errorf("sample %s = %v (present=%v), want %v", name, got, ok, v)
		}
	}
	// One TYPE header per base name, even with labeled series.
	if n := strings.Count(text, "# TYPE uvm_responses_total "); n != 1 {
		t.Errorf("TYPE header for labeled family appears %d times, want 1", n)
	}
	// Deterministic: a second exposition is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("exposition is not deterministic for unchanged metrics")
	}
}

func TestSnapshot(t *testing.T) {
	r := New()
	r.Counter("b_total", "").Add(2)
	r.Gauge("a", "").Set(1.5)
	h := r.Histogram("c", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	// Sorted by name: a, b_total, c.
	if snaps[0].Name != "a" || snaps[1].Name != "b_total" || snaps[2].Name != "c" {
		t.Errorf("snapshot order = %s,%s,%s", snaps[0].Name, snaps[1].Name, snaps[2].Name)
	}
	if snaps[0].Value != 1.5 || snaps[1].Value != 2 {
		t.Errorf("snapshot values = %v, %v", snaps[0].Value, snaps[1].Value)
	}
	hs := snaps[2]
	if hs.Count != 2 || hs.Sum != 2.5 {
		t.Errorf("histogram snapshot count=%d sum=%v", hs.Count, hs.Sum)
	}
	if len(hs.Buckets) != 2 || hs.Buckets[0].Cumulative != 1 ||
		hs.Buckets[1].LE != "+Inf" || hs.Buckets[1].Cumulative != 2 {
		t.Errorf("histogram buckets = %+v", hs.Buckets)
	}
}

// TestConcurrentUpdates exercises the lock-free update paths and
// concurrent registration under the race detector, and checks the final
// totals are exact (no lost updates).
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			g := r.Gauge("shared_gauge", "")
			h := r.Histogram("shared_hist", "", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared_gauge", "").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	h := r.Histogram("shared_hist", "", nil)
	if h.Count() != workers*perWorker || h.Sum() != workers*perWorker*0.25 {
		t.Errorf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds should panic")
		}
	}()
	New().Histogram("bad", "", []float64{1, 1})
}

func TestTypeConflictPanics(t *testing.T) {
	r := New()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("cross-type re-registration should panic")
		}
	}()
	r.Gauge("x", "")
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:           "1",
		0.25:        "0.25",
		math.Inf(1): "+Inf",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
