// Package metrics is the process-wide observability registry behind the
// experiment service: typed counters, gauges and fixed-bucket histograms
// that the harness layers (cell cache, persistent store, executor, HTTP
// handlers) thread their traffic through, exposed in Prometheus text
// format by `uvmbench serve`'s /metrics endpoint and embedded as a JSON
// snapshot in the CLI's cache-summary document.
//
// The package follows internal/trace's nil-receiver discipline: a nil
// *Counter, *Gauge or *Histogram accepts every operation and does
// nothing, so instrumented code updates its metrics unconditionally and
// an unregistered layer pays one nil check. All update paths are
// lock-free (single atomic ops; the registry mutex guards only
// registration and exposition), allocation-free, and safe for concurrent
// use — cells fan out across the parallel executor and requests across
// the HTTP server's connection goroutines.
//
// Metric names may carry a constant Prometheus label set in curly braces
// (`uvmbench_http_responses_total{code="200"}`); the exposition groups
// such series under one # HELP/# TYPE header for their base name.
// Histogram bucket bounds are fixed at registration, so exposition
// output shape is deterministic: series sort by full name and the only
// run-to-run differences are the sample values themselves.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefSecondsBuckets is the deterministic bucket ladder used for latency
// histograms (seconds): half-millisecond resolution at the warm-hit end,
// ten-second ceiling for cold full-figure simulations.
var DefSecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil Counter ignores updates and reads as 0.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (queue depths, in-flight
// cells). The zero value is ready to use; a nil Gauge ignores updates
// and reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets with ascending
// inclusive upper bounds (Prometheus `le` semantics; an implicit +Inf
// bucket catches the rest) and accumulates their sum. Bounds are fixed
// at registration so the exposition shape is deterministic. A nil
// Histogram ignores observations.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose inclusive upper bound admits v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry holds the process's metrics. Registration is get-or-create:
// asking for an existing name returns the same metric, so every layer
// can Instrument itself against the shared registry independently. A nil
// Registry returns nil metrics, which discard all updates — the
// zero-overhead unregistered state.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // keyed by base name
	kind       map[string]string // full name -> "counter"|"gauge"|"histogram"
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
		kind:       make(map[string]string),
	}
}

// baseOf strips a constant label set from a series name:
// `foo_total{code="200"}` has base `foo_total`, which is what the # HELP
// and # TYPE headers describe.
func baseOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register claims name for the given kind, records help for its base
// name once, and reports whether the name is new. The caller holds no
// lock; conflicting re-registration under a different type is a
// programming error and panics (matching Prometheus client behavior).
func (r *Registry) register(name, help, kind string) bool {
	if prev, ok := r.kind[name]; ok {
		if prev != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, prev, kind))
		}
		return false
	}
	r.kind[name] = kind
	if _, ok := r.help[baseOf(name)]; !ok {
		r.help[baseOf(name)] = help
	}
	return true
}

// Counter returns the counter registered under name, creating it on
// first use. A nil registry returns a nil (discard-all) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.register(name, help, "counter") {
		return r.counters[name]
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a nil (discard-all) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.register(name, help, "gauge") {
		return r.gauges[name]
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given ascending bucket bounds on first use (later calls
// return the existing histogram regardless of bounds). A nil registry
// returns a nil (discard-all) histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.register(name, help, "histogram") {
		return r.histograms[name]
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bucket bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// formatFloat renders a sample value in Go's shortest exact form, the
// same convention as the store's JSON payloads.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labeledSeries splits a full series name into its base and an opening
// brace-ready label prefix: for `foo{code="200"}` a histogram bucket
// becomes `foo_bucket{code="200",le="..."}`.
func labeledSeries(name, suffix, extraLabel string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i+1:len(name)-1]
	}
	switch {
	case labels == "" && extraLabel == "":
		return base + suffix
	case labels == "":
		return base + suffix + "{" + extraLabel + "}"
	case extraLabel == "":
		return base + suffix + "{" + labels + "}"
	}
	return base + suffix + "{" + labels + "," + extraLabel + "}"
}

// WritePrometheus writes every registered metric in Prometheus text
// exposition format (version 0.0.4), series sorted by full name so the
// output order is deterministic. Values are read without a global
// snapshot lock: each series is internally consistent, which is all the
// format promises.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.kind))
	for name := range r.kind {
		names = append(names, name)
	}
	sort.Strings(names)
	r.mu.Unlock()

	var b strings.Builder
	seenBase := ""
	for _, name := range names {
		r.mu.Lock()
		kind := r.kind[name]
		help := r.help[baseOf(name)]
		counter := r.counters[name]
		gauge := r.gauges[name]
		hist := r.histograms[name]
		r.mu.Unlock()

		if base := baseOf(name); base != seenBase {
			seenBase = base
			if help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", base, help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
		}
		switch kind {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", name, counter.Value())
		case "gauge":
			fmt.Fprintf(&b, "%s %s\n", name, formatFloat(gauge.Value()))
		case "histogram":
			cum := uint64(0)
			for i, bound := range hist.bounds {
				cum += hist.buckets[i].Load()
				fmt.Fprintf(&b, "%s %d\n",
					labeledSeries(name, "_bucket", `le="`+formatFloat(bound)+`"`), cum)
			}
			cum += hist.buckets[len(hist.bounds)].Load()
			fmt.Fprintf(&b, "%s %d\n", labeledSeries(name, "_bucket", `le="+Inf"`), cum)
			fmt.Fprintf(&b, "%s %s\n", labeledSeries(name, "_sum", ""), formatFloat(hist.Sum()))
			fmt.Fprintf(&b, "%s %d\n", labeledSeries(name, "_count", ""), hist.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Bucket is one cumulative histogram bucket of a snapshot. LE is the
// formatted inclusive upper bound ("+Inf" for the overflow bucket, which
// float64 JSON could not carry).
type Bucket struct {
	LE         string `json:"le"`
	Cumulative uint64 `json:"cumulative"`
}

// Snapshot is the JSON-ready state of one metric, the form the CLI
// embeds in its -json cache-summary document so batch runs expose the
// same numbers the /metrics endpoint serves.
type Snapshot struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"`
	Value   float64  `json:"value,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric's current state, sorted by
// name. A nil registry snapshots to nil.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.kind))
	for name := range r.kind {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Snapshot, 0, len(names))
	for _, name := range names {
		s := Snapshot{Name: name, Type: r.kind[name]}
		switch s.Type {
		case "counter":
			s.Value = float64(r.counters[name].Value())
		case "gauge":
			s.Value = r.gauges[name].Value()
		case "histogram":
			h := r.histograms[name]
			s.Count = h.Count()
			s.Sum = h.Sum()
			s.Buckets = make([]Bucket, 0, len(h.bounds)+1)
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				s.Buckets = append(s.Buckets, Bucket{LE: formatFloat(bound), Cumulative: cum})
			}
			cum += h.buckets[len(h.bounds)].Load()
			s.Buckets = append(s.Buckets, Bucket{LE: "+Inf", Cumulative: cum})
		}
		out = append(out, s)
	}
	r.mu.Unlock()
	return out
}
