package seedrng

import (
	"math/rand"
	"testing"
)

// TestStreamMatchesMathRand pins the whole point of the package: for
// many seeds, the Source reproduces rand.NewSource's stream word for
// word, across the replay->recurrence boundary (draw 607 is the last
// replayed output, draw 608 the first recomputed one).
func TestStreamMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 1 << 40, -(1 << 40), 7919, 1000003}
	for s := int64(2); s < 60; s += 7 {
		seeds = append(seeds, s*s*1_000_003+s)
	}
	const draws = 2*ringLen + 13
	for _, seed := range seeds {
		ref := rand.NewSource(seed).(rand.Source64)
		got := New(seed)
		for i := 0; i < draws; i++ {
			if g, w := got.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: got %#x, want %#x", seed, i, g, w)
			}
		}
	}
}

// TestReseedMatchesFreshSource: Seed on a used source (the Context.Reset
// path) must restore the exact fresh stream, for both cached and
// never-before-seen seeds, and regardless of how far the previous seed's
// stream was consumed.
func TestReseedMatchesFreshSource(t *testing.T) {
	s := New(1)
	for _, drain := range []int{0, 1, ringLen - 1, ringLen, ringLen + 1, 3*ringLen + 5} {
		for _, seed := range []int64{1, 2, 999999937, -5} {
			for i := 0; i < drain; i++ {
				s.Uint64()
			}
			s.Seed(seed)
			ref := rand.NewSource(seed).(rand.Source64)
			for i := 0; i < ringLen+9; i++ {
				if g, w := s.Uint64(), ref.Uint64(); g != w {
					t.Fatalf("seed %d after draining %d: draw %d got %#x, want %#x",
						seed, drain, i, g, w)
				}
			}
		}
	}
}

// TestInt63MatchesMathRand covers the masked path rand.Rand actually
// calls for most derived draws (Float64, Intn, ...).
func TestInt63MatchesMathRand(t *testing.T) {
	ref := rand.NewSource(12345)
	got := New(12345)
	for i := 0; i < ringLen+50; i++ {
		if g, w := got.Int63(), ref.Int63(); g != w {
			t.Fatalf("draw %d: got %d, want %d", i, g, w)
		}
	}
}

// TestRandRandDerivedStreams: wrapped in rand.New, every derived
// distribution the simulator uses (Float64, the jitter path's quantity)
// matches a rand.Rand over math/rand's own source, including after a
// mid-stream Rand.Seed — the exact Context.Reset usage.
func TestRandRandDerivedStreams(t *testing.T) {
	got := rand.New(New(777))
	want := rand.New(rand.NewSource(777))
	for i := 0; i < 1500; i++ {
		if g, w := got.Float64(), want.Float64(); g != w {
			t.Fatalf("Float64 draw %d: got %v, want %v", i, g, w)
		}
	}
	got.Seed(778)
	want.Seed(778)
	for i := 0; i < 1500; i++ {
		if g, w := got.Float64(), want.Float64(); g != w {
			t.Fatalf("post-reseed Float64 draw %d: got %v, want %v", i, g, w)
		}
		if g, w := got.Intn(1<<20), want.Intn(1<<20); g != w {
			t.Fatalf("post-reseed Intn draw %d: got %d, want %d", i, g, w)
		}
	}
}

// TestCacheEviction: overflowing maxCached must stay correct (evicted
// seeds re-expand) and bounded.
func TestCacheEviction(t *testing.T) {
	base := int64(1 << 50)
	for i := int64(0); i < 64; i++ {
		New(base + i)
	}
	cacheMu.RLock()
	n := len(cache)
	cacheMu.RUnlock()
	if n > maxCached {
		t.Fatalf("cache grew to %d entries, cap %d", n, maxCached)
	}
	// An (possibly evicted, re-expanded) seed still replays exactly.
	ref := rand.NewSource(base).(rand.Source64)
	got := New(base)
	for i := 0; i < ringLen+3; i++ {
		if g, w := got.Uint64(), ref.Uint64(); g != w {
			t.Fatalf("draw %d after eviction churn: got %#x, want %#x", i, g, w)
		}
	}
}

func BenchmarkSeedCached(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i&7) + 1) // 8 hot seeds, all cached after warm-up
	}
}

func BenchmarkSeedMathRand(b *testing.B) {
	src := rand.NewSource(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i&7) + 1)
	}
}
