// Package seedrng is a drop-in math/rand Source64 that makes reseeding
// cheap. The harness pins determinism by reseeding one context per
// iteration (cuda.Context.Reset), and math/rand's generator pays a full
// additive-lagged-Fibonacci state expansion — ~607 LCG scrambles plus a
// warm-up pass — on every Seed call. Profiles put that expansion at ~8%
// of a warmed simulation iteration (EXPERIMENTS.md, GC-free section).
//
// This package removes the floor without changing a single draw: the
// expanded 607-word state of each seed is computed once (with math/rand
// itself, so the stream is identical by construction), memoized in a
// bounded process-wide cache, and every later Seed of the same value
// restores it with one memcpy. The memoized state is the generator's
// state *after* the first 607 outputs; restoring replays those outputs
// from the state words themselves — during the first full lap of the
// feedback ring, every slot is written exactly once with the value the
// generator emitted, so the cached array doubles as the output log.
//
// The cache only trades memory for speed: eviction or a cold cache
// falls back to math/rand's own expansion, and a replay test pins both
// paths to the reference stream word for word.
package seedrng

import (
	"math/rand"
	"sync"
)

// ringLen is math/rand's additive-generator ring length (its private
// rngLen). The generator is frozen by the Go 1 compatibility promise —
// rand.NewSource(seed) must produce the same stream forever — so these
// structural constants are stable. The replay test cross-checks them
// against math/rand on every run.
const ringLen = 607

// feedStart and tapStart are the ring positions math/rand's Seed
// leaves its feed and tap pointers at (rngLen-rngTap = 607-273 = 334,
// and 0). Both pointers step backwards one slot per draw.
const (
	feedStart = ringLen - 273
	tapStart  = 0
)

// maxCached bounds the seed-state cache: 4096 entries x ~4.9 KB. The
// harness's seed space per process is far smaller (seeds recur across
// every setup of every cell), so eviction is a safety valve, not a
// steady state. Eviction order is arbitrary — the cache affects speed
// only, never a draw.
const maxCached = 4096

var (
	cacheMu sync.RWMutex
	cache   = make(map[int64]*[ringLen]int64)
)

// cachedState returns the memoized post-expansion state for seed,
// expanding and memoizing it on first use. The returned array is shared
// and must not be written.
func cachedState(seed int64) *[ringLen]int64 {
	cacheMu.RLock()
	st, ok := cache[seed]
	cacheMu.RUnlock()
	if ok {
		return st
	}
	st = expand(seed)
	cacheMu.Lock()
	if have, ok := cache[seed]; ok {
		st = have
	} else {
		if len(cache) >= maxCached {
			for k := range cache {
				delete(cache, k)
				break
			}
		}
		cache[seed] = st
	}
	cacheMu.Unlock()
	return st
}

// expand runs math/rand's own seed expansion and drains one full lap of
// the ring. Draw k (1-based) writes the generator's k-th output into
// ring slot (feedStart-k) mod ringLen, and each slot is written exactly
// once during the lap, so the final state is also the output log the
// restore path replays.
func expand(seed int64) *[ringLen]int64 {
	src := rand.NewSource(seed).(rand.Source64)
	var st [ringLen]int64
	feed := feedStart
	for k := 0; k < ringLen; k++ {
		feed--
		if feed < 0 {
			feed += ringLen
		}
		st[feed] = int64(src.Uint64())
	}
	return &st
}

// Source is a rand.Source64 producing exactly rand.NewSource(seed)'s
// stream, with Seed restored by copy from the process-wide state cache.
// Like math/rand's own source it is not safe for concurrent use; the
// cache behind it is.
type Source struct {
	vec    [ringLen]int64
	tap    int
	feed   int
	replay int // outputs left to replay from vec before resuming the recurrence
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the source to the expanded state of seed: one array copy
// on a cache hit, math/rand's full expansion (which then populates the
// cache) on a miss.
func (s *Source) Seed(seed int64) {
	s.vec = *cachedState(seed)
	s.tap = tapStart
	s.feed = feedStart
	s.replay = ringLen
}

// Uint64 returns the next value of the stream. While replaying the
// first lap, the pre-recorded outputs are read from the state words in
// place (they already hold their final values); afterwards the additive
// recurrence runs exactly as in math/rand.
func (s *Source) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += ringLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += ringLen
	}
	if s.replay > 0 {
		s.replay--
		return uint64(s.vec[s.feed])
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns the next value masked to 63 bits, as math/rand does.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() &^ (1 << 63))
}
