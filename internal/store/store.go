// Package store is the persistent, content-addressed cell store under
// the experiment harness's in-memory cell cache. Every measurement cell
// of the figure grid is a pure function of a hashable key — workload
// kind, setup, size, iteration count, seed and the hardware profile's
// fingerprint (see internal/core's cache invariant) — so its result can
// be written to disk once and replayed forever, across process restarts
// and across machines. The store is what turns sweep breadth from a
// wall-clock cost into a caching knob: warm reruns of `uvmbench all`
// skip simulation entirely, and shard artifacts produced on different
// machines merge into one store because equal cells share one address.
//
// Design rules, in order of importance:
//
//   - A wrong result is worse than no result. Reads are
//     corruption-tolerant: any defect — unreadable file, truncated or
//     garbage JSON, schema mismatch, an entry whose embedded key does
//     not match the address it was read from — degrades to a cache
//     miss, never to a bad cell. The simulator recomputes and the bad
//     entry is overwritten.
//   - Writes are atomic. An entry is marshalled to a temp file in the
//     store directory and renamed into place, so a crashed or
//     concurrent writer can leave stale temp files but never a
//     half-written entry under a valid address.
//   - The address is versioned. SchemaVersion participates in the key
//     fingerprint and is embedded in every document, so a format change
//     silently invalidates old entries instead of misreading them.
//   - Exact round trip. All cell payloads are float64s marshalled in
//     Go's shortest exact form, so load(save(result)) is bit-identical
//     and rendered figures are byte-identical whether a cell was
//     simulated or replayed from disk.
//
// The package deliberately knows nothing about the simulator: keys and
// documents carry plain strings and numbers, and internal/core owns the
// conversion to and from its Result type.
package store

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"uvmasim/internal/metrics"
)

// SchemaVersion is the on-disk format version. Bump it when Key or
// CellDoc change shape; old entries then miss (their fingerprints and
// embedded schema no longer match) instead of being misinterpreted.
const SchemaVersion = 1

// Key addresses one measurement cell. It mirrors internal/core's cell
// cache key field for field, with enums flattened to their canonical
// names so the key is self-describing in artifacts and on disk.
type Key struct {
	// Kind is the workload name, or a study-specific cell id such as
	// "sweep:fig11-blocks:4096" or "oversub:1.2:2".
	Kind  string `json:"kind"`
	Setup string `json:"setup"`
	Size  string `json:"size"`
	Iters int    `json:"iters"`
	Seed  int64  `json:"seed"`
	// ProfileFP is the profile.Fingerprint of the SystemConfig the cell
	// was measured under; it is what keeps equal workloads on different
	// machines at different addresses.
	ProfileFP string `json:"profile_fp"`
}

// canonical returns the string the fingerprint hashes. '|' cannot occur
// in any field: kinds are workload names or ':'-joined ids, setups and
// sizes are lowercase identifiers, and the profile fingerprint is hex.
func (k Key) canonical() string {
	return fmt.Sprintf("cellstore/v%d|%s|%s|%s|%d|%d|%s",
		SchemaVersion, k.Kind, k.Setup, k.Size, k.Iters, k.Seed, k.ProfileFP)
}

// Hash returns the FNV-1a digest of the canonical key. The shard
// partitioner reduces this modulo the shard count, so the partition is
// stable across processes and machines.
func (k Key) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.canonical()))
	return h.Sum64()
}

// Fingerprint returns the 16-hex-digit content address of the cell,
// used as the on-disk file name.
func (k Key) Fingerprint() string { return fmt.Sprintf("%016x", k.Hash()) }

// Breakdown mirrors cuda.Breakdown with stable snake_case keys and
// explicit ns units (the same convention as the -json figure documents).
type Breakdown struct {
	AllocNs    float64 `json:"alloc_ns"`
	MemcpyNs   float64 `json:"memcpy_ns"`
	KernelNs   float64 `json:"kernel_ns"`
	OverheadNs float64 `json:"overhead_ns"`
	TotalNs    float64 `json:"total_ns"`
}

// Counters mirrors counters.Set, including the occupancy accumulators
// that back Set.Occupancy(), so a replayed cell reports the same §6
// occupancy as a simulated one.
type Counters struct {
	MemInst  float64 `json:"mem_inst"`
	FPInst   float64 `json:"fp_inst"`
	IntInst  float64 `json:"int_inst"`
	CtrlInst float64 `json:"ctrl_inst"`

	L1LoadAccesses  float64 `json:"l1_load_accesses"`
	L1LoadMisses    float64 `json:"l1_load_misses"`
	L1StoreAccesses float64 `json:"l1_store_accesses"`
	L1StoreMisses   float64 `json:"l1_store_misses"`

	PageFaults     float64 `json:"page_faults"`
	FaultBatches   float64 `json:"fault_batches"`
	MigratedBytes  float64 `json:"migrated_bytes"`
	PrefetchBytes  float64 `json:"prefetch_bytes"`
	WritebackBytes float64 `json:"writeback_bytes"`
	EvictedBytes   float64 `json:"evicted_bytes"`
	Evictions      float64 `json:"evictions"`

	H2DBytes float64 `json:"h2d_bytes"`
	D2HBytes float64 `json:"d2h_bytes"`

	OccupancyIntegral float64 `json:"occupancy_integral"`
	KernelBusyNs      float64 `json:"kernel_busy_ns"`
}

// CellDoc is one stored cell: the key it answers for (embedded so a
// misfiled or tampered entry is detectable), the workload name of the
// measured Result, and the full measurement payload.
type CellDoc struct {
	Schema     int         `json:"schema"`
	Key        Key         `json:"key"`
	Workload   string      `json:"workload"`
	Breakdowns []Breakdown `json:"breakdowns"`
	Counters   Counters    `json:"counters"`
}

// Valid reports whether the document is a plausible answer for key:
// right schema, right embedded key, and a non-empty payload. Anything
// else is treated as corruption by Get implementations.
func (d CellDoc) Valid(key Key) bool {
	return d.Schema == SchemaVersion && d.Key == key && len(d.Breakdowns) > 0
}

// Store is one tier of cell persistence. Get returns (doc, true) only
// for an entry that passed Valid for the key; implementations must
// degrade every failure mode to (zero, false). Both methods must be
// safe for concurrent use — cells fan out across the parallel executor.
type Store interface {
	Get(key Key) (CellDoc, bool)
	Put(key Key, doc CellDoc) error
}

// Dir is the on-disk store: one JSON file per cell, named by the cell's
// fingerprint, under a schema-versioned subdirectory.
type Dir struct {
	root string // <user dir>/v<SchemaVersion>

	// Metric hooks, nil (discard-all) until Instrument attaches a
	// registry. Updates are single atomic ops, so Put/Get stay as
	// concurrent-safe as before.
	writes     *metrics.Counter
	writeBytes *metrics.Counter
}

// Instrument registers the store's write-traffic counters with reg:
// entries and bytes committed to disk. Call before serving traffic; a
// nil registry leaves the store unobserved at zero overhead.
func (d *Dir) Instrument(reg *metrics.Registry) {
	d.writes = reg.Counter("uvmbench_store_writes_total",
		"Cell documents committed to the persistent store.")
	d.writeBytes = reg.Counter("uvmbench_store_written_bytes_total",
		"Bytes of cell documents committed to the persistent store.")
}

// Open creates (if needed) and validates the store directory, probing
// writability so a bad -cache-dir fails at startup, not after a full
// simulation run.
func Open(dir string) (*Dir, error) {
	root := filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	probe, err := os.CreateTemp(root, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: %s not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &Dir{root: root}, nil
}

// Path returns the entry file a key addresses (exposed for tests and
// tooling; the layout is part of the store's public contract only
// within one SchemaVersion).
func (d *Dir) Path(key Key) string {
	return filepath.Join(d.root, key.Fingerprint()+".json")
}

// Get loads the cell stored for key. Every failure mode — missing file,
// unreadable file, truncated or garbage JSON, schema drift, an entry
// whose embedded key disagrees with its address — returns ok=false so
// the caller recomputes; the store never serves a wrong result.
func (d *Dir) Get(key Key) (CellDoc, bool) {
	b, err := os.ReadFile(d.Path(key))
	if err != nil {
		return CellDoc{}, false
	}
	var doc CellDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return CellDoc{}, false
	}
	if !doc.Valid(key) {
		return CellDoc{}, false
	}
	return doc, true
}

// Put atomically writes the cell for key: marshal to a temp file in the
// store directory, fsync-free rename into place. Concurrent writers of
// the same key race benignly — both write identical bytes (cells are
// pure functions of their key) and rename is atomic.
func (d *Dir) Put(key Key, doc CellDoc) error {
	b, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("store: marshal %s: %w", key.Fingerprint(), err)
	}
	tmp, err := os.CreateTemp(d.root, ".tmp-"+key.Fingerprint()+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.Path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	d.writes.Inc()
	d.writeBytes.Add(uint64(len(b)))
	return nil
}

// Len counts the entries currently on disk (tooling and tests).
func (d *Dir) Len() int {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}

// Mem is the in-memory store used to capture shard artifacts and to
// replay them during merge. It applies the same Valid gate as Dir so a
// tampered artifact degrades to recomputation, not a wrong figure.
type Mem struct {
	mu sync.Mutex
	m  map[Key]CellDoc
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[Key]CellDoc)} }

// Get returns the captured cell for key, if valid.
func (m *Mem) Get(key Key) (CellDoc, bool) {
	m.mu.Lock()
	doc, ok := m.m[key]
	m.mu.Unlock()
	if !ok || !doc.Valid(key) {
		return CellDoc{}, false
	}
	return doc, true
}

// Put records the cell for key (last write wins; equal keys hold equal
// docs in correct use).
func (m *Mem) Put(key Key, doc CellDoc) error {
	m.mu.Lock()
	m.m[key] = doc
	m.mu.Unlock()
	return nil
}

// Len returns the number of captured cells.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// Docs returns every captured cell sorted by canonical key, the
// deterministic order shard artifacts are serialized in (so artifacts
// are byte-identical at any executor parallelism).
func (m *Mem) Docs() []CellDoc {
	m.mu.Lock()
	out := make([]CellDoc, 0, len(m.m))
	for _, doc := range m.m {
		out = append(out, doc)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return out[i].Key.canonical() < out[j].Key.canonical()
	})
	return out
}

// Tiered chains stores: Get serves from the first tier that hits, Put
// writes through to every tier. The merge subcommand uses it to serve
// cells from the preloaded shard union while still feeding a -cache-dir
// store.
type Tiered struct {
	Tiers []Store
}

// NewTiered chains the given stores front to back.
func NewTiered(tiers ...Store) *Tiered { return &Tiered{Tiers: tiers} }

// Get returns the first tier's hit.
func (t *Tiered) Get(key Key) (CellDoc, bool) {
	for _, s := range t.Tiers {
		if doc, ok := s.Get(key); ok {
			return doc, true
		}
	}
	return CellDoc{}, false
}

// Put writes through to every tier, reporting the first error after
// attempting all of them.
func (t *Tiered) Put(key Key, doc CellDoc) error {
	var first error
	for _, s := range t.Tiers {
		if err := s.Put(key, doc); err != nil && first == nil {
			first = err
		}
	}
	return first
}
