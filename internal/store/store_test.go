package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKey(kind string) Key {
	return Key{
		Kind:      kind,
		Setup:     "uvm_prefetch",
		Size:      "large",
		Iters:     30,
		Seed:      1,
		ProfileFP: "00f73c969e7b2c9f",
	}
}

func testDoc(key Key) CellDoc {
	return CellDoc{
		Schema:   SchemaVersion,
		Key:      key,
		Workload: key.Kind,
		Breakdowns: []Breakdown{
			{AllocNs: 1.25e6, MemcpyNs: 3.0000000000000004e7, KernelNs: 2.5e7, OverheadNs: 2.1e8, TotalNs: 2.662500000000001e8},
			{AllocNs: 1.3e6, MemcpyNs: 2.9e7, KernelNs: 2.5e7, OverheadNs: 2.1e8, TotalNs: 2.653e8},
		},
		Counters: Counters{
			MemInst:           1 << 20,
			FPInst:            3.1415926535897931,
			PageFaults:        42,
			OccupancyIntegral: 0.875 * 2.5e7,
			KernelBusyNs:      2.5e7,
		},
	}
}

func TestDirRoundTrip(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("gemm")
	if _, ok := d.Get(key); ok {
		t.Fatal("empty store should miss")
	}
	want := testDoc(key)
	if err := d.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key)
	if !ok {
		t.Fatal("stored cell should hit")
	}
	// Exact float round trip is what makes warm renders byte-identical;
	// compare the full documents including awkward values.
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Errorf("round trip not exact:\n got %s\nwant %s", gb, wb)
	}
	if d.Len() != 1 {
		t.Errorf("store should hold 1 entry, got %d", d.Len())
	}
}

func TestFingerprintSeparatesKeys(t *testing.T) {
	base := testKey("gemm")
	variants := []Key{
		{Kind: "lud", Setup: base.Setup, Size: base.Size, Iters: base.Iters, Seed: base.Seed, ProfileFP: base.ProfileFP},
		{Kind: base.Kind, Setup: "standard", Size: base.Size, Iters: base.Iters, Seed: base.Seed, ProfileFP: base.ProfileFP},
		{Kind: base.Kind, Setup: base.Setup, Size: "super", Iters: base.Iters, Seed: base.Seed, ProfileFP: base.ProfileFP},
		{Kind: base.Kind, Setup: base.Setup, Size: base.Size, Iters: 1, Seed: base.Seed, ProfileFP: base.ProfileFP},
		{Kind: base.Kind, Setup: base.Setup, Size: base.Size, Iters: base.Iters, Seed: 99, ProfileFP: base.ProfileFP},
		{Kind: base.Kind, Setup: base.Setup, Size: base.Size, Iters: base.Iters, Seed: base.Seed, ProfileFP: "deadbeefdeadbeef"},
	}
	seen := map[string]bool{base.Fingerprint(): true}
	for _, v := range variants {
		fp := v.Fingerprint()
		if seen[fp] {
			t.Errorf("key %+v collides with another key", v)
		}
		seen[fp] = true
	}
	if got := base.Fingerprint(); got != testKey("gemm").Fingerprint() {
		t.Errorf("fingerprint not deterministic: %s", got)
	}
	if len(base.Fingerprint()) != 16 {
		t.Errorf("fingerprint should be 16 hex digits, got %q", base.Fingerprint())
	}
}

// TestDirCorruptionTolerance pins the store's prime directive: every
// defect class degrades to a miss, and a subsequent Put repairs the
// entry.
func TestDirCorruptionTolerance(t *testing.T) {
	key := testKey("gemm")
	doc := testDoc(key)

	corruptions := map[string]func(t *testing.T, d *Dir){
		"truncated": func(t *testing.T, d *Dir) {
			b, _ := os.ReadFile(d.Path(key))
			os.WriteFile(d.Path(key), b[:len(b)/2], 0o644)
		},
		"garbage": func(t *testing.T, d *Dir) {
			os.WriteFile(d.Path(key), []byte("not json at all"), 0o644)
		},
		"empty": func(t *testing.T, d *Dir) {
			os.WriteFile(d.Path(key), nil, 0o644)
		},
		"schema-drift": func(t *testing.T, d *Dir) {
			bad := doc
			bad.Schema = SchemaVersion + 1
			b, _ := json.Marshal(bad)
			os.WriteFile(d.Path(key), b, 0o644)
		},
		"misfiled-key": func(t *testing.T, d *Dir) {
			// A valid doc for a different cell stored under this address
			// (e.g. a copied or renamed file) must not be served.
			other := testKey("lud")
			bad := testDoc(other)
			b, _ := json.Marshal(bad)
			os.WriteFile(d.Path(key), b, 0o644)
		},
		"empty-payload": func(t *testing.T, d *Dir) {
			bad := doc
			bad.Breakdowns = nil
			b, _ := json.Marshal(bad)
			os.WriteFile(d.Path(key), b, 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			d, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Put(key, doc); err != nil {
				t.Fatal(err)
			}
			corrupt(t, d)
			if _, ok := d.Get(key); ok {
				t.Fatal("corrupted entry must read as a miss, not a result")
			}
			// The store self-heals: recomputing and re-putting repairs it.
			if err := d.Put(key, doc); err != nil {
				t.Fatal(err)
			}
			if _, ok := d.Get(key); !ok {
				t.Fatal("re-put after corruption should hit again")
			}
		})
	}
}

// TestDirAtomicWrite: a Put leaves no temp litter, and the entry file
// appears only complete.
func TestDirAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("gemm")
	if err := d.Put(key, testDoc(key)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "v1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") || strings.HasPrefix(e.Name(), ".probe-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("expected exactly the entry file, got %d files", len(entries))
	}
}

func TestOpenRejectsUnusableDir(t *testing.T) {
	// A path whose parent is a file cannot become a store directory.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(f, "sub")); err == nil {
		t.Error("Open should fail when the path cannot be created")
	}
	if _, err := Open(f); err == nil {
		t.Error("Open should fail when the path is a file")
	}
}

func TestMemDocsSortedAndValidGated(t *testing.T) {
	m := NewMem()
	for _, kind := range []string{"zeta", "alpha", "gemm"} {
		key := testKey(kind)
		if err := m.Put(key, testDoc(key)); err != nil {
			t.Fatal(err)
		}
	}
	docs := m.Docs()
	if len(docs) != 3 || m.Len() != 3 {
		t.Fatalf("captured %d docs, want 3", len(docs))
	}
	for i := 1; i < len(docs); i++ {
		if docs[i-1].Key.canonical() >= docs[i].Key.canonical() {
			t.Errorf("docs not sorted: %q before %q", docs[i-1].Key.Kind, docs[i].Key.Kind)
		}
	}
	// An invalid doc (wrong schema) inserted into a Mem — e.g. from a
	// tampered artifact — must not be served.
	key := testKey("tampered")
	bad := testDoc(key)
	bad.Schema = 99
	m.Put(key, bad)
	if _, ok := m.Get(key); ok {
		t.Error("Mem must gate Get on Valid")
	}
}

func TestTiered(t *testing.T) {
	front := NewMem()
	back, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiers := NewTiered(front, back)
	key := testKey("gemm")
	doc := testDoc(key)
	if err := tiers.Put(key, doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := front.Get(key); !ok {
		t.Error("write-through should populate the front tier")
	}
	if _, ok := back.Get(key); !ok {
		t.Error("write-through should populate the back tier")
	}
	// A back-tier-only entry is still served.
	key2 := testKey("lud")
	if err := back.Put(key2, testDoc(key2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := tiers.Get(key2); !ok {
		t.Error("tiered Get should fall through to the back tier")
	}
}
