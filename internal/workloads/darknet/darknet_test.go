package darknet

import (
	"math"
	"testing"
)

func TestNetworkShapes(t *testing.T) {
	cases := []struct {
		net        *Network
		minLayers  int
		wantOutC   int
		paramRange [2]int // millions
	}{
		{ResNet18(), 20, 1000, [2]int{8, 20}},
		{ResNet50(), 50, 1000, [2]int{20, 40}},
		{YoloV3Tiny(), 18, 255, [2]int{6, 14}},
		{YoloV3(), 75, 255, [2]int{50, 75}},
	}
	for _, c := range cases {
		n := c.net
		if len(n.Layers) < c.minLayers {
			t.Errorf("%s: %d layers, want >= %d", n.Name, len(n.Layers), c.minLayers)
		}
		last := n.Layers[len(n.Layers)-1]
		if last.Out.C != c.wantOutC {
			t.Errorf("%s: final channels %d, want %d", n.Name, last.Out.C, c.wantOutC)
		}
		params := n.TotalWeights() / 1e6
		if params < c.paramRange[0] || params > c.paramRange[1] {
			t.Errorf("%s: %dM parameters, want %v", n.Name, params, c.paramRange)
		}
		if n.TotalFLOPs() <= 0 {
			t.Errorf("%s: zero FLOPs", n.Name)
		}
		if n.MaxActivation() <= 0 {
			t.Errorf("%s: zero max activation", n.Name)
		}
	}
	// resnet50 must be clearly deeper and heavier than resnet18; yolov3
	// heavier than tiny.
	if ResNet50().TotalFLOPs() <= ResNet18().TotalFLOPs() {
		t.Error("resnet50 should out-FLOP resnet18")
	}
	if YoloV3().TotalFLOPs() <= 5*YoloV3Tiny().TotalFLOPs() {
		t.Error("yolov3 should be much heavier than yolov3-tiny")
	}
}

func TestConvForwardHandComputed(t *testing.T) {
	// 1x3x3 input, one 3x3 filter of all ones, stride 1: the center
	// output equals the sum of the input.
	l := Layer{Kind: Conv, Filters: 1, KSize: 3, Stride: 1,
		In: Shape{1, 3, 3}, Out: Shape{1, 3, 3}}
	in := NewTensor(l.In)
	sum := float32(0)
	for i := range in.Data {
		in.Data[i] = float32(i + 1)
		sum += float32(i + 1)
	}
	p := Params{W: make([]float32, 9), B: []float32{0}}
	for i := range p.W {
		p.W[i] = 1
	}
	out := convForward(l, p, in)
	if out.Data[4] != sum {
		t.Errorf("center conv output = %v, want %v", out.Data[4], sum)
	}
	// Corner output sees only the 2x2 in-bounds window.
	want := in.Data[0] + in.Data[1] + in.Data[3] + in.Data[4]
	if out.Data[0] != want {
		t.Errorf("corner conv output = %v, want %v", out.Data[0], want)
	}
	// Bias and ReLU.
	p.B[0] = -sum - 1
	out = convForward(l, p, in)
	if out.Data[4] != 0 {
		t.Errorf("ReLU should clamp negative center to 0, got %v", out.Data[4])
	}
	// Leaky variant.
	l.Leaky = true
	out = convForward(l, p, in)
	if math.Abs(float64(out.Data[4]+0.1)) > 1e-5 {
		t.Errorf("leaky output = %v, want -0.1", out.Data[4])
	}
}

func TestMaxPoolForward(t *testing.T) {
	l := Layer{Kind: MaxPool, KSize: 2, Stride: 2, In: Shape{1, 4, 4}, Out: Shape{1, 2, 2}}
	in := NewTensor(l.In)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := maxPoolForward(l, in)
	want := []float32{5, 7, 13, 15}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("maxpool[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
}

func TestStrideMismatchedInputRejected(t *testing.T) {
	n := ResNet18()
	bad := NewTensor(Shape{C: 3, H: 64, W: 64})
	if _, err := n.Forward(bad, InitParams(n, 1)); err == nil {
		t.Error("forward with wrong input shape should fail")
	}
}

// TestTinyNetworkForward runs a small but structurally complete network
// (conv, pool, shortcut, route, upsample, avgpool, connected) end to end
// and checks structural properties of the activations.
func TestTinyNetworkForward(t *testing.T) {
	layers := []Layer{
		conv(4, 3, 1, true),
		{Kind: MaxPool, KSize: 2, Stride: 2},
		conv(4, 3, 1, false),
		{Kind: Shortcut, From: 1},
		{Kind: Upsample, Stride: 2},
		{Kind: Route, Routes: []int{4, 4}},
		{Kind: AvgPool},
		{Kind: Connected, Filters: 5},
	}
	n := build("tiny", Shape{C: 2, H: 8, W: 8}, layers)
	params := InitParams(n, 7)
	in := NewTensor(n.Input)
	for i := range in.Data {
		in.Data[i] = float32(i%13)/13 - 0.4
	}
	outs, err := n.Forward(in, params)
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[len(outs)-1].Shape; got.C != 5 || got.H != 1 || got.W != 1 {
		t.Errorf("final shape %v, want 5x1x1", got)
	}
	// Route duplicated the upsampled tensor: halves must match.
	r := outs[5]
	half := len(r.Data) / 2
	for i := 0; i < half; i++ {
		if r.Data[i] != r.Data[half+i] {
			t.Fatalf("route halves diverge at %d", i)
		}
	}
	// Upsample preserves values: each 2x2 cell is constant.
	u := outs[4]
	if u.Data[0] != u.Data[1] {
		t.Error("upsample should replicate pixels")
	}
	// ReLU layer output must be non-negative.
	for i, v := range outs[2].Data {
		if v < 0 {
			t.Fatalf("ReLU conv output negative at %d: %v", i, v)
		}
	}
	// AvgPool output is the channel mean of its input.
	var sum float32
	hw := outs[5].Shape.H * outs[5].Shape.W
	for j := 0; j < hw; j++ {
		sum += outs[5].Data[j]
	}
	if math.Abs(float64(outs[6].Data[0]-sum/float32(hw))) > 1e-4 {
		t.Errorf("avgpool channel 0 = %v, want %v", outs[6].Data[0], sum/float32(hw))
	}
}

// TestResNet18ForwardTiny runs the real resnet18 graph at a reduced
// input resolution to keep the test fast, checking it executes without
// shape errors and produces finite logits.
func TestResNet18ForwardTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full-graph forward is slow")
	}
	n := ResNet18()
	// Rebuild at 64x64 input to keep the arithmetic small (the network's
	// total stride is 32, so activations stay non-degenerate).
	small := build("resnet18-64", Shape{C: 3, H: 64, W: 64}, n.Layers)
	params := InitParams(small, 3)
	in := NewTensor(small.Input)
	for i := range in.Data {
		in.Data[i] = float32(i%7) / 7
	}
	outs, err := small.Forward(in, params)
	if err != nil {
		t.Fatal(err)
	}
	logits := outs[len(outs)-1]
	if len(logits.Data) != 1000 {
		t.Fatalf("logit count %d, want 1000", len(logits.Data))
	}
	var nonzero int
	for _, v := range logits.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite logit")
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all logits zero")
	}
}
