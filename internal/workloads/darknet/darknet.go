// Package darknet reimplements the parts of Redmon's darknet framework
// the paper benchmarks: a layer-graph network description, shape
// propagation, a real (functional) forward pass for validation, and the
// four network architectures of Table 2 — resnet18, resnet50,
// yolov3-tiny and yolov3.
//
// Tensors are NCHW float32. The forward pass is a straightforward
// reference implementation: the simulation layer never executes it at
// benchmark scale (it lowers layers to kernel descriptions instead), so
// clarity beats speed here.
package darknet

import "fmt"

// Kind enumerates the layer types darknet's cfg files use that the four
// benchmark networks need.
type Kind int

const (
	Conv Kind = iota
	MaxPool
	AvgPool // global average pool
	Shortcut
	Route
	Upsample
	Connected
	Yolo
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case MaxPool:
		return "maxpool"
	case AvgPool:
		return "avgpool"
	case Shortcut:
		return "shortcut"
	case Route:
		return "route"
	case Upsample:
		return "upsample"
	case Connected:
		return "connected"
	case Yolo:
		return "yolo"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Shape is a CHW activation shape.
type Shape struct {
	C, H, W int
}

// Elems returns the element count of the shape.
func (s Shape) Elems() int { return s.C * s.H * s.W }

// Layer is one node of the network graph.
type Layer struct {
	Kind    Kind
	Filters int // Conv: output channels; Connected: outputs
	KSize   int // Conv/MaxPool kernel size
	Stride  int
	Leaky   bool // leaky-ReLU activation (yolo nets); otherwise ReLU/linear
	From    int  // Shortcut: index of the residual source layer
	Routes  []int
	// resolved shapes
	In, Out Shape
}

// Weights returns the layer's parameter count (batchnorm folded).
func (l Layer) Weights() int {
	switch l.Kind {
	case Conv:
		return l.Filters*l.In.C*l.KSize*l.KSize + l.Filters
	case Connected:
		return l.Filters*l.In.Elems() + l.Filters
	}
	return 0
}

// FLOPs returns the layer's multiply-add work for one image (counting an
// FMA as two floating-point operations).
func (l Layer) FLOPs() float64 {
	switch l.Kind {
	case Conv:
		return 2 * float64(l.Out.H*l.Out.W) * float64(l.Filters) * float64(l.In.C*l.KSize*l.KSize)
	case Connected:
		return 2 * float64(l.Filters) * float64(l.In.Elems())
	case MaxPool:
		return float64(l.Out.Elems() * l.KSize * l.KSize)
	case Shortcut, Upsample, Route, AvgPool, Yolo:
		return float64(l.Out.Elems())
	}
	return 0
}

// Network is an ordered layer graph.
type Network struct {
	Name   string
	Input  Shape
	Layers []Layer
}

// build resolves shapes through the graph. It panics on inconsistent
// definitions — network builders are static data, so an error is a bug.
func build(name string, input Shape, layers []Layer) *Network {
	n := &Network{Name: name, Input: input}
	cur := input
	outs := make([]Shape, 0, len(layers))
	for i, l := range layers {
		l.In = cur
		switch l.Kind {
		case Conv:
			if l.Stride == 0 {
				l.Stride = 1
			}
			l.Out = Shape{C: l.Filters, H: cur.H / l.Stride, W: cur.W / l.Stride}
		case MaxPool:
			if l.Stride == 0 {
				l.Stride = l.KSize
			}
			l.Out = Shape{C: cur.C, H: cur.H / l.Stride, W: cur.W / l.Stride}
		case AvgPool:
			l.Out = Shape{C: cur.C, H: 1, W: 1}
		case Shortcut:
			src := outs[l.From]
			if src.Elems() != cur.Elems() {
				panic(fmt.Sprintf("%s: shortcut %d: shape mismatch %v vs %v", name, i, src, cur))
			}
			l.Out = cur
		case Route:
			var c int
			base := outs[l.Routes[0]]
			for _, r := range l.Routes {
				if outs[r].H != base.H || outs[r].W != base.W {
					panic(fmt.Sprintf("%s: route %d: spatial mismatch", name, i))
				}
				c += outs[r].C
			}
			l.Out = Shape{C: c, H: base.H, W: base.W}
			l.In = l.Out // routes only concatenate
		case Upsample:
			if l.Stride == 0 {
				l.Stride = 2
			}
			l.Out = Shape{C: cur.C, H: cur.H * l.Stride, W: cur.W * l.Stride}
		case Connected:
			l.Out = Shape{C: l.Filters, H: 1, W: 1}
		case Yolo:
			l.Out = cur
		}
		outs = append(outs, l.Out)
		cur = l.Out
		n.Layers = append(n.Layers, l)
	}
	return n
}

// Rebuild re-resolves a network's layer list against a different input
// shape (validation shrinks inputs to keep the functional forward pass
// fast).
func Rebuild(n *Network, input Shape) *Network {
	return build(n.Name, input, n.Layers)
}

// TotalWeights returns the parameter count of the network.
func (n *Network) TotalWeights() int {
	total := 0
	for _, l := range n.Layers {
		total += l.Weights()
	}
	return total
}

// TotalFLOPs returns the forward multiply-add work for one image.
func (n *Network) TotalFLOPs() float64 {
	var total float64
	for _, l := range n.Layers {
		total += l.FLOPs()
	}
	return total
}

// MaxActivation returns the largest activation element count any layer
// produces (used to size ping-pong activation buffers).
func (n *Network) MaxActivation() int {
	m := n.Input.Elems()
	for _, l := range n.Layers {
		if e := l.Out.Elems(); e > m {
			m = e
		}
	}
	return m
}
