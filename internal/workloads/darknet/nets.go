package darknet

// conv is a convenience constructor for a conv layer.
func conv(filters, ksize, stride int, leaky bool) Layer {
	return Layer{Kind: Conv, Filters: filters, KSize: ksize, Stride: stride, Leaky: leaky}
}

// ResNet18 builds darknet's resnet18.cfg: a 7x7 stem and four stages of
// basic residual blocks (2-2-2-2), then global average pooling and a
// 1000-way classifier.
func ResNet18() *Network {
	var ls []Layer
	ls = append(ls, conv(64, 7, 2, false))
	ls = append(ls, Layer{Kind: MaxPool, KSize: 2, Stride: 2})
	channels := []int{64, 128, 256, 512}
	for stage, c := range channels {
		for block := 0; block < 2; block++ {
			downsample := stage > 0 && block == 0
			if downsample {
				// Projection to the new resolution/width (the parallel
				// 1x1 branch of the residual block, linearized: the
				// block's convs then run at stride 1).
				ls = append(ls, conv(c, 1, 2, false))
			}
			pre := len(ls) - 1
			ls = append(ls, conv(c, 3, 1, false))
			ls = append(ls, conv(c, 3, 1, false))
			if !downsample {
				ls = append(ls, Layer{Kind: Shortcut, From: pre})
			}
		}
	}
	ls = append(ls, Layer{Kind: AvgPool})
	ls = append(ls, Layer{Kind: Connected, Filters: 1000})
	return build("resnet18", Shape{C: 3, H: 256, W: 256}, ls)
}

// ResNet50 builds darknet's resnet50.cfg: bottleneck residual blocks in
// a 3-4-6-3 arrangement.
func ResNet50() *Network {
	var ls []Layer
	ls = append(ls, conv(64, 7, 2, false))
	ls = append(ls, Layer{Kind: MaxPool, KSize: 2, Stride: 2})
	stages := []struct{ blocks, width int }{{3, 64}, {4, 128}, {6, 256}, {3, 512}}
	for stage, st := range stages {
		for block := 0; block < st.blocks; block++ {
			downsample := stage > 0 && block == 0
			if downsample {
				// Linearized projection branch (stride lives here).
				ls = append(ls, conv(st.width*4, 1, 2, false))
			} else if block == 0 {
				ls = append(ls, conv(st.width*4, 1, 1, false))
			}
			pre := len(ls) - 1
			ls = append(ls, conv(st.width, 1, 1, false))
			ls = append(ls, conv(st.width, 3, 1, false))
			ls = append(ls, conv(st.width*4, 1, 1, false))
			ls = append(ls, Layer{Kind: Shortcut, From: pre})
		}
	}
	ls = append(ls, Layer{Kind: AvgPool})
	ls = append(ls, Layer{Kind: Connected, Filters: 1000})
	return build("resnet50", Shape{C: 3, H: 256, W: 256}, ls)
}

// YoloV3Tiny builds yolov3-tiny.cfg: a small conv/maxpool trunk with two
// detection heads joined by a route+upsample.
func YoloV3Tiny() *Network {
	var ls []Layer
	widths := []int{16, 32, 64, 128, 256}
	for _, w := range widths {
		ls = append(ls, conv(w, 3, 1, true))
		ls = append(ls, Layer{Kind: MaxPool, KSize: 2, Stride: 2})
	}
	ls = append(ls, conv(512, 3, 1, true)) // 10
	ls = append(ls, Layer{Kind: MaxPool, KSize: 2, Stride: 1})
	ls = append(ls, conv(1024, 3, 1, true))
	ls = append(ls, conv(256, 1, 1, true)) // 13: head split point
	headSplit := len(ls) - 1
	ls = append(ls, conv(512, 3, 1, true))
	ls = append(ls, conv(255, 1, 1, false))
	ls = append(ls, Layer{Kind: Yolo})
	ls = append(ls, Layer{Kind: Route, Routes: []int{headSplit}})
	ls = append(ls, conv(128, 1, 1, true))
	ls = append(ls, Layer{Kind: Upsample, Stride: 2})
	ls = append(ls, conv(256, 3, 1, true))
	ls = append(ls, conv(255, 1, 1, false))
	ls = append(ls, Layer{Kind: Yolo})
	return build("yolov3-tiny", Shape{C: 3, H: 416, W: 416}, ls)
}

// YoloV3 builds yolov3.cfg: the Darknet-53 backbone (1-2-8-8-4 residual
// stages) plus three detection heads with routes and upsampling.
func YoloV3() *Network {
	var ls []Layer
	residual := func(width int) {
		pre := len(ls) - 1
		ls = append(ls, conv(width/2, 1, 1, true))
		ls = append(ls, conv(width, 3, 1, true))
		ls = append(ls, Layer{Kind: Shortcut, From: pre})
	}
	ls = append(ls, conv(32, 3, 1, true))
	stageEnds := map[int]int{}
	for i, st := range []struct{ width, blocks int }{
		{64, 1}, {128, 2}, {256, 8}, {512, 8}, {1024, 4},
	} {
		ls = append(ls, conv(st.width, 3, 2, true))
		for b := 0; b < st.blocks; b++ {
			residual(st.width)
		}
		stageEnds[i] = len(ls) - 1
	}
	head := func(width, split int) int {
		ls = append(ls, conv(width/2, 1, 1, true))
		ls = append(ls, conv(width, 3, 1, true))
		ls = append(ls, conv(width/2, 1, 1, true))
		ls = append(ls, conv(width, 3, 1, true))
		ls = append(ls, conv(width/2, 1, 1, true))
		at := len(ls) - 1
		ls = append(ls, conv(width, 3, 1, true))
		ls = append(ls, conv(255, 1, 1, false))
		ls = append(ls, Layer{Kind: Yolo})
		_ = split
		return at
	}
	// Scale 1 (13x13 at 416 input).
	s1 := head(1024, stageEnds[4])
	ls = append(ls, Layer{Kind: Route, Routes: []int{s1}})
	ls = append(ls, conv(256, 1, 1, true))
	ls = append(ls, Layer{Kind: Upsample, Stride: 2})
	ls = append(ls, Layer{Kind: Route, Routes: []int{len(ls) - 1, stageEnds[3]}})
	s2 := head(512, 0)
	ls = append(ls, Layer{Kind: Route, Routes: []int{s2}})
	ls = append(ls, conv(128, 1, 1, true))
	ls = append(ls, Layer{Kind: Upsample, Stride: 2})
	ls = append(ls, Layer{Kind: Route, Routes: []int{len(ls) - 1, stageEnds[2]}})
	head(256, 0)
	return build("yolov3", Shape{C: 3, H: 416, W: 416}, ls)
}
