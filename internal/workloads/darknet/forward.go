package darknet

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a CHW activation with its shape.
type Tensor struct {
	Shape Shape
	Data  []float32
}

// NewTensor allocates a zero tensor.
func NewTensor(s Shape) Tensor {
	return Tensor{Shape: s, Data: make([]float32, s.Elems())}
}

// at reads with zero padding outside the spatial bounds.
func (t Tensor) at(c, y, x int) float32 {
	if y < 0 || x < 0 || y >= t.Shape.H || x >= t.Shape.W {
		return 0
	}
	return t.Data[(c*t.Shape.H+y)*t.Shape.W+x]
}

// Params holds one layer's weights.
type Params struct {
	W []float32 // conv: [F][C][K][K]; connected: [F][inElems]
	B []float32 // per-filter bias
}

// InitParams draws small random weights for every layer of n.
func InitParams(n *Network, seed int64) []Params {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Params, len(n.Layers))
	for i, l := range n.Layers {
		w := l.Weights()
		if w == 0 {
			continue
		}
		nb := l.Filters
		out[i] = Params{W: make([]float32, w-nb), B: make([]float32, nb)}
		scale := float32(math.Sqrt(2 / float64(w/nb)))
		for j := range out[i].W {
			out[i].W[j] = (rng.Float32() - 0.5) * scale
		}
	}
	return out
}

// activate applies the layer's activation.
func activate(v float32, leaky bool) float32 {
	if v >= 0 {
		return v
	}
	if leaky {
		return 0.1 * v
	}
	return 0
}

// convForward computes a padded strided convolution with bias and
// activation.
func convForward(l Layer, p Params, in Tensor) Tensor {
	out := NewTensor(l.Out)
	pad := l.KSize / 2
	for f := 0; f < l.Filters; f++ {
		for oy := 0; oy < l.Out.H; oy++ {
			for ox := 0; ox < l.Out.W; ox++ {
				var acc float32
				for c := 0; c < l.In.C; c++ {
					for ky := 0; ky < l.KSize; ky++ {
						for kx := 0; kx < l.KSize; kx++ {
							iy := oy*l.Stride - pad + ky
							ix := ox*l.Stride - pad + kx
							wIdx := ((f*l.In.C+c)*l.KSize+ky)*l.KSize + kx
							acc += p.W[wIdx] * in.at(c, iy, ix)
						}
					}
				}
				acc += p.B[f]
				out.Data[(f*l.Out.H+oy)*l.Out.W+ox] = activate(acc, l.Leaky)
			}
		}
	}
	return out
}

// maxPoolForward computes strided max pooling.
func maxPoolForward(l Layer, in Tensor) Tensor {
	out := NewTensor(l.Out)
	for c := 0; c < l.Out.C; c++ {
		for oy := 0; oy < l.Out.H; oy++ {
			for ox := 0; ox < l.Out.W; ox++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < l.KSize; ky++ {
					for kx := 0; kx < l.KSize; kx++ {
						v := in.at(c, oy*l.Stride+ky, ox*l.Stride+kx)
						if v > best {
							best = v
						}
					}
				}
				out.Data[(c*l.Out.H+oy)*l.Out.W+ox] = best
			}
		}
	}
	return out
}

// Forward runs the network on input, returning every layer's output (so
// shortcuts and routes can reference earlier activations).
func (n *Network) Forward(input Tensor, params []Params) ([]Tensor, error) {
	if input.Shape != n.Input {
		return nil, fmt.Errorf("darknet: input shape %v, want %v", input.Shape, n.Input)
	}
	outs := make([]Tensor, len(n.Layers))
	cur := input
	for i, l := range n.Layers {
		switch l.Kind {
		case Conv:
			cur = convForward(l, params[i], cur)
		case MaxPool:
			cur = maxPoolForward(l, cur)
		case AvgPool:
			out := NewTensor(l.Out)
			hw := float32(cur.Shape.H * cur.Shape.W)
			for c := 0; c < cur.Shape.C; c++ {
				var sum float32
				for j := 0; j < cur.Shape.H*cur.Shape.W; j++ {
					sum += cur.Data[c*cur.Shape.H*cur.Shape.W+j]
				}
				out.Data[c] = sum / hw
			}
			cur = out
		case Shortcut:
			out := NewTensor(l.Out)
			src := outs[l.From]
			for j := range out.Data {
				out.Data[j] = cur.Data[j] + src.Data[j]
			}
			cur = out
		case Route:
			out := NewTensor(l.Out)
			off := 0
			for _, r := range l.Routes {
				copy(out.Data[off:], outs[r].Data)
				off += len(outs[r].Data)
			}
			cur = out
		case Upsample:
			out := NewTensor(l.Out)
			for c := 0; c < cur.Shape.C; c++ {
				for y := 0; y < l.Out.H; y++ {
					for x := 0; x < l.Out.W; x++ {
						out.Data[(c*l.Out.H+y)*l.Out.W+x] = cur.at(c, y/l.Stride, x/l.Stride)
					}
				}
			}
			cur = out
		case Connected:
			out := NewTensor(l.Out)
			inElems := l.In.Elems()
			for f := 0; f < l.Filters; f++ {
				var acc float32
				for j := 0; j < inElems; j++ {
					acc += params[i].W[f*inElems+j] * cur.Data[j]
				}
				out.Data[f] = acc + params[i].B[f]
			}
			cur = out
		case Yolo:
			cur = Tensor{Shape: l.Out, Data: append([]float32(nil), cur.Data...)}
		default:
			return nil, fmt.Errorf("darknet: layer %d: unsupported kind %v", i, l.Kind)
		}
		outs[i] = cur
	}
	return outs, nil
}
