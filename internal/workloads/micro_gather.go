package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
)

// gatherFraction is the fraction of the table vector_gather actually
// touches. One sixteenth keeps the kernel sparse while still landing a
// few thousand touches in every 2 MiB chunk at the paper's input sizes,
// so page-granularity transfer modes (demand migration, prefetch,
// SM staging, explicit upload) must move the whole table to serve it —
// the amplification that makes in-place zero-copy access win here.
const gatherFraction = 16

// gatherOp is the per-touched-element arithmetic (an embedding-style
// scale-and-accumulate).
func gatherOp(x float32) float32 { return x*1.00097 + 0.013 }

// gatherKernel is the functional reference: out[i] = gatherOp(table[idx[i]]).
func gatherKernel(table []float32, idx []int32, out []float32) {
	for i, j := range idx {
		out[i] = gatherOp(table[j])
	}
}

// gatherBench is a sparse random gather over a class-footprint table —
// the access shape of embedding and graph lookups. Its algorithmic load
// volume is a small fraction of the table, but the touches land in every
// page, which separates the transfer modes sharply: footprint-granular
// modes pay for the whole table, access-granular zero-copy pays only for
// the touched bytes.
type gatherBench struct{}

func newVectorGather() Workload { return gatherBench{} }

func (gatherBench) Name() string   { return "vector_gather" }
func (gatherBench) Domain() string { return "sparse lookup" }

// spec models the gather launch: per touched element one index load, one
// scattered table load and one output store, with random access defeating
// coalescing.
func (gatherBench) spec(n int64) gpu.KernelSpec {
	m := n / gatherFraction
	s := kernels.Stream("vector_gather", m, 2, 1, 2, 10, gpu.Random)
	// The gather's working set is the whole table, not the touched slice;
	// staging tiles cannot cover a random gather, so loads stay resident
	// in the synchronous path.
	s.StagedFraction = 0.1
	return s
}

func (g gatherBench) Run(ctx *cuda.Context, size Size) error {
	n := size.Elems1D(1)
	m := n / gatherFraction
	table, err := ctx.Alloc("table", 4*n)
	if err != nil {
		return err
	}
	out, err := ctx.Alloc("out", 4*m)
	if err != nil {
		return err
	}
	// The host cannot know which entries the device will touch, so the
	// explicit setups stage the whole table (the sparse-access tax the
	// in-place setups avoid).
	if err := ctx.Upload(table); err != nil {
		return err
	}
	if err := ctx.Launch(cuda.Launch{
		Spec:   g.spec(n),
		Reads:  []*cuda.Buffer{table},
		Writes: []*cuda.Buffer{out},
	}); err != nil {
		return err
	}
	ctx.Synchronize()
	if err := ctx.Consume(out); err != nil {
		return err
	}
	if err := ctx.Free(table); err != nil {
		return err
	}
	return ctx.Free(out)
}

func (gatherBench) Validate() error {
	const n = 4096
	const m = n / gatherFraction
	rng := rand.New(rand.NewSource(1))
	table := make([]float32, n)
	for i := range table {
		table[i] = rng.Float32()*2 - 1
	}
	idx := make([]int32, m)
	for i, p := range rng.Perm(n)[:m] {
		idx[i] = int32(p)
	}
	out := make([]float32, m)
	gatherKernel(table, idx, out)
	for i, j := range idx {
		if want := gatherOp(table[j]); math.Abs(float64(out[i]-want)) > 1e-5 {
			return fmt.Errorf("vector_gather: element %d = %v, want %v", i, out[i], want)
		}
	}
	return nil
}
