package workloads

import (
	"fmt"
	"math"
	"sync"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
	"uvmasim/internal/workloads/darknet"
)

// darknetBench adapts one of the four darknet networks (Table 2) to the
// benchmark harness. The measured region is a batched inference: weights
// and an input batch are staged, then each layer launches a kernel
// (convolutions lower to the tiled gemm the paper analyzes for yolov3,
// §4.1.2), with activations ping-ponging between two device buffers.
type darknetBench struct {
	name  string
	build func() *darknet.Network
	once  sync.Once
	net   *darknet.Network // built lazily, cached; read-only once built
}

func newResNet18() Workload   { return &darknetBench{name: "resnet18", build: darknet.ResNet18} }
func newResNet50() Workload   { return &darknetBench{name: "resnet50", build: darknet.ResNet50} }
func newYoloV3Tiny() Workload { return &darknetBench{name: "yolov3-tiny", build: darknet.YoloV3Tiny} }
func newYoloV3() Workload     { return &darknetBench{name: "yolov3", build: darknet.YoloV3} }

func (d *darknetBench) Name() string   { return d.name }
func (d *darknetBench) Domain() string { return "machine learning" }

// network builds the graph once. Workload values are registry singletons
// shared by concurrent harness workers, so the build is synchronized;
// the Network itself is never mutated after construction.
func (d *darknetBench) network() *darknet.Network {
	d.once.Do(func() { d.net = d.build() })
	return d.net
}

// imagesFor scales the inference workload with the input class: darknet
// runs batch-1 detection/classification (as the paper's darknet harness
// does), so larger classes process more images rather than bigger
// tensors.
func imagesFor(size Size) int {
	n := int(size.Footprint() / (512 << 20))
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// layerSpec lowers one layer at the given batch to a kernel description.
func layerSpec(l darknet.Layer, batch int64) gpu.KernelSpec {
	switch l.Kind {
	case darknet.Conv:
		// im2col + tiled gemm: M = filters, K = inC*k^2, N = outHW*batch.
		m := int64(l.Filters)
		k := int64(l.In.C * l.KSize * l.KSize)
		n := int64(l.Out.H*l.Out.W) * batch
		s := kernels.MatMul("conv_gemm", m, n, k, 64)
		// Unique bytes: the layer's input activations plus its weights
		// (the im2col gather's k^2 re-reads live in LoadAccessBytes).
		s.LoadBytes = 4 * (int64(l.In.Elems())*batch + int64(l.Weights()))
		if s.LoadAccessBytes < s.LoadBytes {
			s.LoadAccessBytes = s.LoadBytes
		}
		return s
	case darknet.Connected:
		m := int64(l.Filters)
		k := int64(l.In.Elems())
		s := kernels.MatMul("fc_gemm", m, batch, k, 64)
		s.LoadBytes = 4 * (k*batch + int64(l.Weights()))
		if s.LoadAccessBytes < s.LoadBytes {
			s.LoadAccessBytes = s.LoadBytes
		}
		return s
	default:
		// Pool/shortcut/route/upsample/yolo: streaming element-wise work.
		elems := int64(l.Out.Elems()) * batch
		reads := 1
		if l.Kind == darknet.Shortcut {
			reads = 2
		}
		flops := l.FLOPs() / float64(l.Out.Elems())
		return kernels.Stream(l.Kind.String(), elems, reads, 1, flops, 4, gpu.Sequential)
	}
}

func (d *darknetBench) Run(ctx *cuda.Context, size Size) error {
	net := d.network()
	const batch = 1
	images := imagesFor(size)

	// Per-layer weight buffers (prefetch granularity matches what the
	// darknet UVM port does: one managed allocation per layer).
	weightBufs := make([]*cuda.Buffer, len(net.Layers))
	for i, l := range net.Layers {
		if w := l.Weights(); w > 0 {
			b, err := ctx.Alloc(fmt.Sprintf("%s.w%d", d.name, i), int64(w)*4)
			if err != nil {
				return err
			}
			weightBufs[i] = b
			if err := ctx.Upload(b); err != nil {
				return err
			}
		}
	}
	actBytes := int64(net.MaxActivation()) * 4 * batch
	actA, err := ctx.Alloc(d.name+".actA", actBytes)
	if err != nil {
		return err
	}
	actB, err := ctx.Alloc(d.name+".actB", actBytes)
	if err != nil {
		return err
	}
	in, out := actA, actB
	for img := 0; img < images; img++ {
		// Host-side image decode + letterbox resize (darknet's
		// load_image/resize path) precedes every inference.
		ctx.HostCompute(25e6)
		if err := ctx.Upload(in); err != nil { // the next input image
			return err
		}
		for i, l := range net.Layers {
			spec := layerSpec(l, batch)
			spec.Name = fmt.Sprintf("%s_l%d_%s", d.name, i, spec.Name)
			reads := []*cuda.Buffer{in}
			if weightBufs[i] != nil {
				reads = append(reads, weightBufs[i])
			}
			if err := ctx.Launch(cuda.Launch{
				Spec:   spec,
				Reads:  reads,
				Writes: []*cuda.Buffer{out},
			}); err != nil {
				return err
			}
			in, out = out, in
		}
		if err := ctx.Consume(in); err != nil { // this image's predictions
			return err
		}
	}
	ctx.Synchronize()
	for _, b := range weightBufs {
		if b == nil {
			continue
		}
		if err := ctx.Free(b); err != nil {
			return err
		}
	}
	if err := ctx.Free(actA); err != nil {
		return err
	}
	return ctx.Free(actB)
}

// Validate runs the real network graph (rebuilt at a reduced input
// resolution so the naive conv stays fast) and checks the forward pass
// produces finite, structurally consistent activations.
func (d *darknetBench) Validate() error {
	net := d.network()
	small := darknet.Rebuild(net, reducedInput(net.Input))
	params := darknet.InitParams(small, 21)
	in := darknet.NewTensor(small.Input)
	for i := range in.Data {
		in.Data[i] = float32((i%255))/255 - 0.5
	}
	outs, err := small.Forward(in, params)
	if err != nil {
		return fmt.Errorf("%s: %v", d.name, err)
	}
	nonzero := 0
	for li, o := range outs {
		if len(o.Data) != o.Shape.Elems() {
			return fmt.Errorf("%s: layer %d activation size %d != shape %v",
				d.name, li, len(o.Data), o.Shape)
		}
		for _, v := range o.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("%s: non-finite activation in layer %d", d.name, li)
			}
			if v != 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		return fmt.Errorf("%s: forward pass produced all-zero activations", d.name)
	}
	return nil
}

// reducedInput shrinks the network input to keep the functional forward
// pass affordable. It must stay a multiple of the networks' total stride
// (32) so route/shortcut spatial shapes keep lining up.
func reducedInput(s darknet.Shape) darknet.Shape {
	h := s.H / 4 / 32 * 32
	if h < 64 {
		h = 64
	}
	return darknet.Shape{C: s.C, H: h, W: h}
}
