package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
)

// vectorIters is the number of fused multiply-add iterations each
// element receives — the "element-wise arithmetic operations" of the
// Svedin et al. benchmark the paper builds vector_seq/vector_rand on.
const vectorIters = 20

// vectorOp applies the benchmark's per-element arithmetic.
func vectorOp(x float32) float32 {
	for i := 0; i < vectorIters; i++ {
		x = x*1.00097 + 0.013
	}
	return x
}

// vectorKernel processes elements in the given visit order (identity for
// vector_seq, a permutation for vector_rand), mimicking how the CUDA
// kernel's threads traverse the buffer.
func vectorKernel(data []float32, order []int32) {
	if order == nil {
		for i := range data {
			data[i] = vectorOp(data[i])
		}
		return
	}
	for _, idx := range order {
		data[idx] = vectorOp(data[idx])
	}
}

// vectorBench is Vector-to-Constant with sequential or random access.
type vectorBench struct {
	name   string
	access gpu.Access
}

func newVectorSeq() Workload  { return &vectorBench{name: "vector_seq", access: gpu.Sequential} }
func newVectorRand() Workload { return &vectorBench{name: "vector_rand", access: gpu.Random} }

func (v *vectorBench) Name() string   { return v.name }
func (v *vectorBench) Domain() string { return "linear algebra" }

func (v *vectorBench) spec(n int64) gpu.KernelSpec {
	s := kernels.Stream(v.name, n, 1, 1, 2*vectorIters, 6, v.access)
	if v.access == gpu.Random {
		// The permutation gather adds index loads and defeats
		// coalescing; staging still covers the payload.
		s.IntOps += 4 * float64(n)
		s.LoadBytes += 4 * n // index vector
		s.StagedFraction = 0.85
	}
	return s
}

func (v *vectorBench) Run(ctx *cuda.Context, size Size) error {
	n := size.Elems1D(1)
	buf, err := ctx.Alloc(v.name, 4*n)
	if err != nil {
		return err
	}
	if err := ctx.Upload(buf); err != nil {
		return err
	}
	if err := ctx.Launch(cuda.Launch{
		Spec:   v.spec(n),
		Reads:  []*cuda.Buffer{buf},
		Writes: []*cuda.Buffer{buf},
	}); err != nil {
		return err
	}
	ctx.Synchronize()
	if err := ctx.Consume(buf); err != nil {
		return err
	}
	return ctx.Free(buf)
}

// SensitivityOptions override the vector_seq launch hyperparameters for
// the §5 sensitivity studies (Figures 11-13). Zero fields keep defaults.
type SensitivityOptions struct {
	Blocks           int
	ThreadsPerBlock  int
	SharedPerBlockKB float64
}

// RunVectorSeqSensitivity runs vector_seq with overridden launch
// geometry and shared-memory partition — the paper's
// run_micro_sensitivity / run_micro_shared experiments.
func RunVectorSeqSensitivity(ctx *cuda.Context, size Size, opt SensitivityOptions) error {
	v := vectorBench{name: "vector_seq", access: gpu.Sequential}
	n := size.Elems1D(1)
	buf, err := ctx.Alloc(v.name, 4*n)
	if err != nil {
		return err
	}
	if err := ctx.Upload(buf); err != nil {
		return err
	}
	spec := v.spec(n)
	if opt.Blocks > 0 {
		spec.Blocks = opt.Blocks
	}
	if opt.ThreadsPerBlock > 0 {
		spec.ThreadsPerBlock = opt.ThreadsPerBlock
	}
	if err := ctx.Launch(cuda.Launch{
		Spec:             spec,
		Reads:            []*cuda.Buffer{buf},
		Writes:           []*cuda.Buffer{buf},
		SharedPerBlockKB: opt.SharedPerBlockKB,
	}); err != nil {
		return err
	}
	ctx.Synchronize()
	if err := ctx.Consume(buf); err != nil {
		return err
	}
	return ctx.Free(buf)
}

func (v *vectorBench) Validate() error {
	const n = 4096
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, n)
	want := make([]float32, n)
	for i := range data {
		data[i] = rng.Float32()*2 - 1
		want[i] = vectorOp(data[i])
	}
	var order []int32
	if v.access == gpu.Random {
		for _, p := range rng.Perm(n) {
			order = append(order, int32(p))
		}
	}
	vectorKernel(data, order)
	for i := range data {
		if math.Abs(float64(data[i]-want[i])) > 1e-5 {
			return fmt.Errorf("%s: element %d = %v, want %v", v.name, i, data[i], want[i])
		}
	}
	return nil
}
