package workloads

import (
	"fmt"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
)

// NW is Needleman-Wunsch global sequence alignment (Rodinia): a dynamic
// program over an (n+1)^2 score matrix processed in anti-diagonal block
// waves by two alternating kernels (upper-left and lower-right
// triangles). Two kernels repeatedly touching the same matrix is what
// makes per-kernel prefetching counterproductive for nw (§4.1.2).

const nwGapPenalty = -1

// nwScore fills the DP matrix for sequences a, b using the similarity
// function sim, processing anti-diagonal wavefronts the way the GPU
// kernels do. The matrix is (len(a)+1) x (len(b)+1), row-major.
func nwScore(a, b []byte, sim func(x, y byte) int) []int {
	rows, cols := len(a)+1, len(b)+1
	m := make([]int, rows*cols)
	for i := 0; i < rows; i++ {
		m[i*cols] = i * nwGapPenalty
	}
	for j := 0; j < cols; j++ {
		m[j] = j * nwGapPenalty
	}
	// Wavefront traversal: diagonal d covers cells i+j == d.
	for d := 2; d <= len(a)+len(b); d++ {
		lo := d - len(b)
		if lo < 1 {
			lo = 1
		}
		hi := d - 1
		if hi > len(a) {
			hi = len(a)
		}
		for i := lo; i <= hi; i++ {
			j := d - i
			diag := m[(i-1)*cols+j-1] + sim(a[i-1], b[j-1])
			up := m[(i-1)*cols+j] + nwGapPenalty
			left := m[i*cols+j-1] + nwGapPenalty
			best := diag
			if up > best {
				best = up
			}
			if left > best {
				best = left
			}
			m[i*cols+j] = best
		}
	}
	return m
}

// nwScoreRowMajor is the independent reference: simple row-by-row DP.
func nwScoreRowMajor(a, b []byte, sim func(x, y byte) int) []int {
	rows, cols := len(a)+1, len(b)+1
	m := make([]int, rows*cols)
	for i := 0; i < rows; i++ {
		m[i*cols] = i * nwGapPenalty
	}
	for j := 0; j < cols; j++ {
		m[j] = j * nwGapPenalty
	}
	for i := 1; i < rows; i++ {
		for j := 1; j < cols; j++ {
			best := m[(i-1)*cols+j-1] + sim(a[i-1], b[j-1])
			if v := m[(i-1)*cols+j] + nwGapPenalty; v > best {
				best = v
			}
			if v := m[i*cols+j-1] + nwGapPenalty; v > best {
				best = v
			}
			m[i*cols+j] = best
		}
	}
	return m
}

type nwBench struct{}

func newNW() Workload { return nwBench{} }

func (nwBench) Name() string   { return "nw" }
func (nwBench) Domain() string { return "bioinformatics" }

func (nwBench) Run(ctx *cuda.Context, size Size) error {
	// Score matrix + reference (similarity) matrix share the footprint.
	n := size.Dim2D(2)
	score, err := ctx.Alloc("nw.score", 4*n*n)
	if err != nil {
		return err
	}
	ref, err := ctx.Alloc("nw.ref", 4*n*n)
	if err != nil {
		return err
	}
	for _, b := range []*cuda.Buffer{score, ref} {
		if err := ctx.Upload(b); err != nil {
			return err
		}
	}
	// Two kernels alternate over anti-diagonal block waves. We batch the
	// waves into a fixed number of launches per triangle; each launch
	// touches the whole matrix region (block rows above and below the
	// diagonal), which is exactly why its prefetch calls are redundant.
	const wavesPerTriangle = 12
	cells := float64(n) * float64(n)
	perLaunch := cells / (2 * wavesPerTriangle)
	for _, phase := range []string{"nw_kernel1", "nw_kernel2"} {
		for w := 0; w < wavesPerTriangle; w++ {
			blocks, threads := kernels.Grid(int64(perLaunch) / 16)
			spec := gpu.KernelSpec{
				Name:            phase,
				Blocks:          blocks,
				ThreadsPerBlock: threads,
				LoadBytes:       int64(perLaunch) * 8, // score + reference cells
				LoadAccessBytes: int64(perLaunch) * 24,
				StoreBytes:      int64(perLaunch) * 4,
				Flops:           perLaunch * 2,
				IntOps:          perLaunch * 14, // max/index logic dominates
				CtrlOps:         perLaunch * 2,
				TileBytes:       8 << 10,
				Access:          gpu.Irregular,
				WorkingSetKB:    80,
				StagedFraction:  0.85,
			}
			if err := ctx.Launch(cuda.Launch{
				Spec:   spec,
				Reads:  []*cuda.Buffer{score, ref},
				Writes: []*cuda.Buffer{score},
				// The wavefront sweeps the matrix in address order even
				// though cell-level access is diagonal.
				SequentialDemand: true,
			}); err != nil {
				return err
			}
		}
	}
	ctx.Synchronize()
	if err := ctx.Consume(score); err != nil {
		return err
	}
	if err := ctx.Free(score); err != nil {
		return err
	}
	return ctx.Free(ref)
}

func (nwBench) Validate() error {
	rng := rand.New(rand.NewSource(7))
	bases := []byte("ACGT")
	seq := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = bases[rng.Intn(4)]
		}
		return s
	}
	sim := func(x, y byte) int {
		if x == y {
			return 2
		}
		return -1
	}
	for trial := 0; trial < 5; trial++ {
		a, b := seq(20+rng.Intn(30)), seq(20+rng.Intn(30))
		got := nwScore(a, b, sim)
		want := nwScoreRowMajor(a, b, sim)
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("nw: wavefront DP diverges from reference at cell %d: %d vs %d",
					i, got[i], want[i])
			}
		}
		// Identity alignment scores 2*len.
		id := nwScore(a, a, sim)
		if id[len(id)-1] != 2*len(a) {
			return fmt.Errorf("nw: self-alignment score %d, want %d", id[len(id)-1], 2*len(a))
		}
	}
	return nil
}
