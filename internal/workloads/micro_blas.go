package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/kernels"
)

// --- saxpy: y = a*x + y ------------------------------------------------

// saxpyKernel is the functional kernel (block-strided like the GPU
// version).
func saxpyKernel(a float32, x, y []float32) {
	const stride = 256
	for base := 0; base < len(x); base += stride {
		end := base + stride
		if end > len(x) {
			end = len(x)
		}
		for i := base; i < end; i++ {
			y[i] = a*x[i] + y[i]
		}
	}
}

type saxpyBench struct{}

func newSaxpy() Workload { return saxpyBench{} }

func (saxpyBench) Name() string   { return "saxpy" }
func (saxpyBench) Domain() string { return "linear algebra" }

func (saxpyBench) Run(ctx *cuda.Context, size Size) error {
	n := size.Elems1D(2)
	x, err := ctx.Alloc("saxpy.x", 4*n)
	if err != nil {
		return err
	}
	y, err := ctx.Alloc("saxpy.y", 4*n)
	if err != nil {
		return err
	}
	if err := ctx.Upload(x); err != nil {
		return err
	}
	if err := ctx.Upload(y); err != nil {
		return err
	}
	// Two input streams, one output stream, one FMA per element.
	spec := kernels.Stream("saxpy", n, 2, 1, 2, 3, 0)
	if err := ctx.Launch(cuda.Launch{
		Spec:   spec,
		Reads:  []*cuda.Buffer{x, y},
		Writes: []*cuda.Buffer{y},
	}); err != nil {
		return err
	}
	ctx.Synchronize()
	if err := ctx.Consume(y); err != nil {
		return err
	}
	if err := ctx.Free(x); err != nil {
		return err
	}
	return ctx.Free(y)
}

func (saxpyBench) Validate() error {
	const n = 3000
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, n)
	y := make([]float32, n)
	want := make([]float32, n)
	const a = float32(2.5)
	for i := range x {
		x[i] = rng.Float32()
		y[i] = rng.Float32()
		want[i] = a*x[i] + y[i]
	}
	saxpyKernel(a, x, y)
	for i := range y {
		if y[i] != want[i] {
			return fmt.Errorf("saxpy: y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	return nil
}

// --- gemv: y = A*x ------------------------------------------------------

// gemvKernel computes y = A*x with per-row dot products, A row-major
// m x n.
func gemvKernel(a []float32, x, y []float32, m, n int) {
	for i := 0; i < m; i++ {
		var sum float32
		row := a[i*n : (i+1)*n]
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
}

type gemvBench struct{}

func newGemv() Workload { return gemvBench{} }

func (gemvBench) Name() string   { return "gemv" }
func (gemvBench) Domain() string { return "linear algebra" }

func (gemvBench) Run(ctx *cuda.Context, size Size) error {
	n := size.Dim2D(1) // the matrix dominates the footprint
	a, err := ctx.Alloc("gemv.A", 4*n*n)
	if err != nil {
		return err
	}
	x, err := ctx.Alloc("gemv.x", 4*n)
	if err != nil {
		return err
	}
	y, err := ctx.Alloc("gemv.y", 4*n)
	if err != nil {
		return err
	}
	for _, b := range []*cuda.Buffer{a, x} {
		if err := ctx.Upload(b); err != nil {
			return err
		}
	}
	if err := ctx.Launch(cuda.Launch{
		Spec:   kernels.MatVec("gemv", n, n),
		Reads:  []*cuda.Buffer{a, x},
		Writes: []*cuda.Buffer{y},
	}); err != nil {
		return err
	}
	ctx.Synchronize()
	if err := ctx.Consume(y); err != nil {
		return err
	}
	for _, b := range []*cuda.Buffer{a, x, y} {
		if err := ctx.Free(b); err != nil {
			return err
		}
	}
	return nil
}

func (gemvBench) Validate() error {
	const m, n = 64, 48
	rng := rand.New(rand.NewSource(3))
	a := make([]float32, m*n)
	x := make([]float32, n)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
	}
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	y := make([]float32, m)
	gemvKernel(a, x, y, m, n)
	// Independent reference: accumulate column-wise in float64.
	for i := 0; i < m; i++ {
		var want float64
		for j := 0; j < n; j++ {
			want += float64(a[i*n+j]) * float64(x[j])
		}
		if math.Abs(float64(y[i])-want) > 1e-3 {
			return fmt.Errorf("gemv: y[%d] = %v, want %v", i, y[i], want)
		}
	}
	return nil
}

// --- gemm: C = A*B -------------------------------------------------------

// gemmTiled is the functional kernel: cache-blocked matrix multiply, the
// same blocking structure the GPU kernel uses with shared-memory tiles.
func gemmTiled(a, b, c []float32, n, tile int) {
	for ii := 0; ii < n; ii += tile {
		for kk := 0; kk < n; kk += tile {
			for jj := 0; jj < n; jj += tile {
				iMax := min(ii+tile, n)
				kMax := min(kk+tile, n)
				jMax := min(jj+tile, n)
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						aik := a[i*n+k]
						ci := c[i*n : (i+1)*n]
						bk := b[k*n : (k+1)*n]
						for j := jj; j < jMax; j++ {
							ci[j] += aik * bk[j]
						}
					}
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type gemmBench struct{}

func newGemm() Workload { return gemmBench{} }

func (gemmBench) Name() string   { return "gemm" }
func (gemmBench) Domain() string { return "linear algebra" }

func (gemmBench) Run(ctx *cuda.Context, size Size) error {
	n := size.Dim2D(3) // A, B, C share the footprint
	bufs := make([]*cuda.Buffer, 3)
	for i, name := range []string{"gemm.A", "gemm.B", "gemm.C"} {
		b, err := ctx.Alloc(name, 4*n*n)
		if err != nil {
			return err
		}
		bufs[i] = b
	}
	for _, b := range bufs[:2] {
		if err := ctx.Upload(b); err != nil {
			return err
		}
	}
	if err := ctx.Launch(cuda.Launch{
		Spec:   kernels.MatMul("gemm", n, n, n, 128),
		Reads:  []*cuda.Buffer{bufs[0], bufs[1]},
		Writes: []*cuda.Buffer{bufs[2]},
	}); err != nil {
		return err
	}
	ctx.Synchronize()
	if err := ctx.Consume(bufs[2]); err != nil {
		return err
	}
	for _, b := range bufs {
		if err := ctx.Free(b); err != nil {
			return err
		}
	}
	return nil
}

func (gemmBench) Validate() error {
	const n = 48
	rng := rand.New(rand.NewSource(4))
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
		b[i] = rng.Float32()*2 - 1
	}
	c := make([]float32, n*n)
	gemmTiled(a, b, c, n, 16)
	// Naive ikj-independent reference in float64.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want += float64(a[i*n+k]) * float64(b[k*n+j])
			}
			if math.Abs(float64(c[i*n+j])-want) > 1e-3 {
				return fmt.Errorf("gemm: C[%d,%d] = %v, want %v", i, j, c[i*n+j], want)
			}
		}
	}
	return nil
}
