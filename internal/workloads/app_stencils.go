package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/kernels"
)

// This file holds the two iterative 2D-stencil applications: srad
// (speckle-reducing anisotropic diffusion, Rodinia) and hotspot (thermal
// simulation, Rodinia). Both are regular, prefetch-friendly workloads.

// --- srad ----------------------------------------------------------------

// sradIteration performs one SRAD update on image J (n x n, row-major)
// with diffusion parameter lambda, returning the updated image. It
// mirrors Rodinia's two-kernel structure: first compute directional
// derivatives and the diffusion coefficient, then apply the divergence
// update.
func sradIteration(j []float32, n int, lambda float32) []float32 {
	cN := make([]float32, n*n)
	dN := make([]float32, n*n)
	dS := make([]float32, n*n)
	dW := make([]float32, n*n)
	dE := make([]float32, n*n)

	// Mean/variance of the image drive q0 (speckle scale).
	var sum, sum2 float64
	for _, v := range j {
		sum += float64(v)
		sum2 += float64(v) * float64(v)
	}
	mean := sum / float64(n*n)
	variance := sum2/float64(n*n) - mean*mean
	q0 := float32(variance / (mean * mean))

	at := func(i, k int) float32 {
		// Clamped (replicated) borders, as Rodinia does.
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		return j[i*n+k]
	}
	// Kernel 1: derivatives and coefficient.
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			c := at(i, k)
			dN[i*n+k] = at(i-1, k) - c
			dS[i*n+k] = at(i+1, k) - c
			dW[i*n+k] = at(i, k-1) - c
			dE[i*n+k] = at(i, k+1) - c
			g2 := (dN[i*n+k]*dN[i*n+k] + dS[i*n+k]*dS[i*n+k] +
				dW[i*n+k]*dW[i*n+k] + dE[i*n+k]*dE[i*n+k]) / (c*c + 1e-12)
			l := (dN[i*n+k] + dS[i*n+k] + dW[i*n+k] + dE[i*n+k]) / (c + 1e-12)
			num := 0.5*g2 - (1.0/16.0)*l*l
			den := 1 + 0.25*l
			qsqr := num / (den*den + 1e-12)
			coef := 1 / (1 + (qsqr-q0)/(q0*(1+q0)+1e-12))
			if coef < 0 {
				coef = 0
			}
			if coef > 1 {
				coef = 1
			}
			cN[i*n+k] = coef
		}
	}
	// Kernel 2: divergence update.
	out := make([]float32, n*n)
	cAt := func(i, k int) float32 {
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		return cN[i*n+k]
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			div := cAt(i+1, k)*dS[i*n+k] + cAt(i, k)*dN[i*n+k] +
				cAt(i, k+1)*dE[i*n+k] + cAt(i, k)*dW[i*n+k]
			out[i*n+k] = j[i*n+k] + 0.25*lambda*div
		}
	}
	return out
}

type sradBench struct{}

func newSrad() Workload { return sradBench{} }

func (sradBench) Name() string   { return "srad" }
func (sradBench) Domain() string { return "image processing" }

func (sradBench) Run(ctx *cuda.Context, size Size) error {
	// J, four direction buffers and the coefficient grid: 6 grids.
	n := size.Dim2D(6)
	cells := n * n
	names := []string{"srad.J", "srad.dN", "srad.dS", "srad.dW", "srad.dE", "srad.c"}
	bufs := make([]*cuda.Buffer, len(names))
	for i, name := range names {
		b, err := ctx.Alloc(name, 4*cells)
		if err != nil {
			return err
		}
		bufs[i] = b
	}
	j := bufs[0]
	if err := ctx.Upload(j); err != nil {
		return err
	}
	const iters = 4
	for it := 0; it < iters; it++ {
		k1 := kernels.Stencil("srad_kernel1", cells, 5, 30)
		k1.StoreBytes = 4 * cells * 5 // four derivatives + coefficient
		k1.Flops = float64(cells) * 40
		if err := ctx.Launch(cuda.Launch{
			Spec:   k1,
			Reads:  []*cuda.Buffer{j},
			Writes: bufs[1:],
		}); err != nil {
			return err
		}
		k2 := kernels.Stencil("srad_kernel2", cells, 5, 16)
		k2.LoadBytes = 4 * cells * 5
		k2.LoadAccessBytes = 4 * cells * 7
		k2.Flops = float64(cells) * 10
		if err := ctx.Launch(cuda.Launch{
			Spec:   k2,
			Reads:  bufs[1:],
			Writes: []*cuda.Buffer{j},
		}); err != nil {
			return err
		}
	}
	ctx.Synchronize()
	if err := ctx.Consume(j); err != nil {
		return err
	}
	for _, b := range bufs {
		if err := ctx.Free(b); err != nil {
			return err
		}
	}
	return nil
}

func (sradBench) Validate() error {
	const n = 24
	rng := rand.New(rand.NewSource(9))
	// Speckled image: positive with multiplicative noise.
	img := make([]float32, n*n)
	for i := range img {
		img[i] = 1 + 0.4*rng.Float32()
	}
	variance := func(x []float32) float64 {
		var s, s2 float64
		for _, v := range x {
			s += float64(v)
			s2 += float64(v) * float64(v)
		}
		m := s / float64(len(x))
		return s2/float64(len(x)) - m*m
	}
	v0 := variance(img)
	cur := img
	for it := 0; it < 8; it++ {
		cur = sradIteration(cur, n, 0.5)
		for i, v := range cur {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("srad: non-finite value at %d after iteration %d", i, it)
			}
		}
	}
	// Diffusion must smooth speckle: variance strictly decreases.
	if v1 := variance(cur); v1 >= v0 {
		return fmt.Errorf("srad: variance did not decrease (%v -> %v)", v0, v1)
	}
	// A constant image is a fixed point.
	cons := make([]float32, n*n)
	for i := range cons {
		cons[i] = 2
	}
	out := sradIteration(cons, n, 0.5)
	for i := range out {
		if math.Abs(float64(out[i]-2)) > 1e-4 {
			return fmt.Errorf("srad: constant image not preserved at %d: %v", i, out[i])
		}
	}
	return nil
}

// --- hotspot -------------------------------------------------------------

// hotspotStep advances chip temperature temp (n x n) one time step given
// the per-cell dissipated power, with Rodinia's coefficient structure.
func hotspotStep(temp, power []float32, n int, cap, rx, ry, rz, ambient float32) []float32 {
	out := make([]float32, n*n)
	at := func(g []float32, i, k int) float32 {
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		return g[i*n+k]
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			c := temp[i*n+k]
			delta := (power[i*n+k] +
				(at(temp, i+1, k)+at(temp, i-1, k)-2*c)/ry +
				(at(temp, i, k+1)+at(temp, i, k-1)-2*c)/rx +
				(ambient-c)/rz) / cap
			out[i*n+k] = c + delta
		}
	}
	return out
}

type hotspotBench struct{}

func newHotspot() Workload { return hotspotBench{} }

func (hotspotBench) Name() string   { return "hotspot" }
func (hotspotBench) Domain() string { return "physics simulation" }

func (hotspotBench) Run(ctx *cuda.Context, size Size) error {
	// temperature + power + output grid.
	n := size.Dim2D(3)
	cells := n * n
	temp, err := ctx.Alloc("hotspot.temp", 4*cells)
	if err != nil {
		return err
	}
	power, err := ctx.Alloc("hotspot.power", 4*cells)
	if err != nil {
		return err
	}
	out, err := ctx.Alloc("hotspot.out", 4*cells)
	if err != nil {
		return err
	}
	for _, b := range []*cuda.Buffer{temp, power} {
		if err := ctx.Upload(b); err != nil {
			return err
		}
	}
	const steps = 6
	for s := 0; s < steps; s++ {
		spec := kernels.Stencil("hotspot", cells, 5, 20)
		spec.LoadBytes = 4 * cells * 2 // temperature + power
		spec.LoadAccessBytes = 4 * cells * 2 * 2
		spec.Flops = float64(cells) * 15
		if err := ctx.Launch(cuda.Launch{
			Spec:   spec,
			Reads:  []*cuda.Buffer{temp, power},
			Writes: []*cuda.Buffer{out},
		}); err != nil {
			return err
		}
		temp, out = out, temp // ping-pong
	}
	ctx.Synchronize()
	if err := ctx.Consume(temp); err != nil {
		return err
	}
	for _, b := range []*cuda.Buffer{temp, power, out} {
		if err := ctx.Free(b); err != nil {
			return err
		}
	}
	return nil
}

func (hotspotBench) Validate() error {
	// Coefficients satisfy the explicit scheme's stability condition
	// (2/rx + 2/ry + 1/rz)/cap < 1.
	const n = 20
	const cap, rx, ry, rz, ambient = 8.0, 1.0, 1.0, 4.0, 80.0
	rng := rand.New(rand.NewSource(10))

	// Zero power + uniform ambient temperature is a fixed point.
	temp := make([]float32, n*n)
	power := make([]float32, n*n)
	for i := range temp {
		temp[i] = ambient
	}
	out := hotspotStep(temp, power, n, cap, rx, ry, rz, ambient)
	for i := range out {
		if math.Abs(float64(out[i]-ambient)) > 1e-4 {
			return fmt.Errorf("hotspot: ambient equilibrium broken at %d: %v", i, out[i])
		}
	}

	// A single hot cell must heat its neighbors and cool itself.
	for i := range temp {
		temp[i] = ambient
	}
	mid := (n/2)*n + n/2
	temp[mid] = ambient + 40
	out = hotspotStep(temp, power, n, cap, rx, ry, rz, ambient)
	if out[mid] >= temp[mid] {
		return fmt.Errorf("hotspot: hot cell did not cool (%v -> %v)", temp[mid], out[mid])
	}
	if out[mid+1] <= ambient || out[mid-n] <= ambient {
		return fmt.Errorf("hotspot: heat did not diffuse to neighbors")
	}

	// Powered chip heats up and stays finite over many steps.
	for i := range temp {
		temp[i] = ambient
		power[i] = rng.Float32() * 0.5
	}
	cur := temp
	for s := 0; s < 50; s++ {
		cur = hotspotStep(cur, power, n, cap, rx, ry, rz, ambient)
	}
	var mean float64
	for _, v := range cur {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return fmt.Errorf("hotspot: diverged")
		}
		mean += float64(v)
	}
	mean /= float64(n * n)
	if mean <= ambient {
		return fmt.Errorf("hotspot: powered chip should heat above ambient (mean %v)", mean)
	}
	return nil
}
