package workloads

// init registers the suite in the paper's presentation order (Table 2).
func init() {
	// Microbenchmarks.
	register(newVectorSeq(), true)
	register(newVectorRand(), true)
	register(newSaxpy(), true)
	register(newGemv(), true)
	register(newGemm(), true)
	register(newConv2D(), true)
	register(newConv3D(), true)

	// Real-world applications (Table 2 order).
	register(newLavaMD(), false)
	register(newNW(), false)
	register(newKmeans(), false)
	register(newSrad(), false)
	register(newBackprop(), false)
	register(newPathfinder(), false)
	register(newHotspot(), false)
	register(newLud(), false)
	register(newBayesian(), false)
	register(newKNN(), false)
	register(newResNet18(), false)
	register(newResNet50(), false)
	register(newYoloV3Tiny(), false)
	register(newYoloV3(), false)

	// Extras: selectable by name, outside the Table 2 figure grids.
	registerExtra(newVectorGather())
}
