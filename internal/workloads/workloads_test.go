package workloads

import (
	"testing"

	"uvmasim/internal/cuda"
)

// TestValidateAll runs every workload's functional implementation against
// its reference.
func TestValidateAll(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			if err := w.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunAllSetups executes every workload under every registered setup
// at a small class and checks the breakdown is sane.
func TestRunAllSetups(t *testing.T) {
	for _, w := range All() {
		for _, setup := range cuda.Registered() {
			w, setup := w, setup
			t.Run(w.Name()+"/"+setup.String(), func(t *testing.T) {
				ctx := cuda.NewContext(cuda.DefaultSystemConfig(), setup, 11)
				if err := w.Run(ctx, Medium); err != nil {
					t.Fatal(err)
				}
				if ctx.Live() != 0 {
					t.Errorf("workload leaked %d buffers", ctx.Live())
				}
				b := ctx.Breakdown()
				if b.Total <= 0 || b.Alloc <= 0 || b.Kernel < 0 || b.Memcpy < 0 {
					t.Errorf("degenerate breakdown: %+v", b)
				}
				if b.Kernel == 0 {
					t.Errorf("kernel component should be positive")
				}
				if setup == cuda.Standard && b.Memcpy == 0 {
					t.Errorf("standard setup must show explicit transfer time")
				}
			})
		}
	}
}

// TestRunScalesWithSize checks totals grow with the input class.
func TestRunScalesWithSize(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			run := func(s Size) float64 {
				ctx := cuda.NewContext(cuda.DefaultSystemConfig(), cuda.Standard, 12)
				if err := w.Run(ctx, s); err != nil {
					t.Fatal(err)
				}
				return ctx.Breakdown().Total
			}
			small, large := run(Small), run(Super)
			if large <= small {
				t.Errorf("Super total (%v) should exceed Small total (%v)", large, small)
			}
		})
	}
}

func TestRegistryGroups(t *testing.T) {
	if n := len(Micro()); n != 7 {
		t.Errorf("microbenchmark count = %d, want 7 (Table 2)", n)
	}
	if len(Apps()) > 0 && len(Apps()) != 14 {
		t.Errorf("application count = %d, want 14 once complete (Table 2)", len(Apps()))
	}
	if _, err := ByName("vector_seq"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("ByName should reject unknown workloads")
	}
	if len(Names()) != len(All()) {
		t.Errorf("Names/All size mismatch")
	}
}

func TestSizeTable(t *testing.T) {
	if Large.Footprint() != 512<<20 || Mega.Footprint() != 32<<30 {
		t.Errorf("footprints disagree with Table 3")
	}
	for i := 1; i < len(AllSizes); i++ {
		if AllSizes[i].Footprint() != 8*AllSizes[i-1].Footprint() {
			t.Errorf("footprints should grow 8x per class")
		}
	}
	// Dim helpers fit within the byte budget.
	for _, s := range AllSizes {
		if got := s.Elems1D(2) * 2 * 4; got > s.Footprint() {
			t.Errorf("%v: 1D footprint %d exceeds budget", s, got)
		}
		n := s.Dim2D(3)
		if 3*4*n*n > s.Footprint() {
			t.Errorf("%v: 2D footprint exceeds budget", s)
		}
		if half := n * 2; 3*4*half*half <= s.Footprint() {
			t.Errorf("%v: 2D dim %d not maximal", s, n)
		}
		m := s.Dim3D(2)
		if 2*4*m*m*m > s.Footprint() {
			t.Errorf("%v: 3D footprint exceeds budget", s)
		}
	}
	if _, err := ParseSize("large"); err != nil {
		t.Error(err)
	}
	if _, err := ParseSize("giga"); err == nil {
		t.Error("ParseSize should reject unknown classes")
	}
}
