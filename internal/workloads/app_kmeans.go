package workloads

import (
	"fmt"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
)

// kmeans is Lloyd's clustering (Rodinia): each iteration launches an
// assignment kernel (every point finds its nearest centroid) and the
// host recomputes centroids. The centroid gather plus the
// assignment-driven reduction make it one of the paper's "irregular"
// programs that benefit from Async Memcpy (§1, Takeaway 2).

const (
	kmeansDims  = 16
	kmeansK     = 32
	kmeansIters = 6
)

// kmeansAssign assigns each point (row-major n x d) to the nearest
// centroid (k x d) and returns the labels.
func kmeansAssign(points, centroids []float32, n, d, k int) []int {
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestDist := 0, float32(0)
		p := points[i*d : (i+1)*d]
		for c := 0; c < k; c++ {
			var dist float32
			cc := centroids[c*d : (c+1)*d]
			for j := 0; j < d; j++ {
				diff := p[j] - cc[j]
				dist += diff * diff
			}
			if c == 0 || dist < bestDist {
				best, bestDist = c, dist
			}
		}
		labels[i] = best
	}
	return labels
}

// kmeansUpdate recomputes centroids from labels; empty clusters keep
// their previous position.
func kmeansUpdate(points []float32, labels []int, centroids []float32, n, d, k int) {
	sums := make([]float64, k*d)
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		c := labels[i]
		counts[c]++
		for j := 0; j < d; j++ {
			sums[c*d+j] += float64(points[i*d+j])
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := 0; j < d; j++ {
			centroids[c*d+j] = float32(sums[c*d+j] / float64(counts[c]))
		}
	}
}

// kmeansSeed picks initial centroids with the k-means++ rule: each new
// centroid is sampled proportionally to its squared distance from the
// nearest existing one.
func kmeansSeed(points []float32, n, d, k int, rng *rand.Rand) []float32 {
	centroids := make([]float32, 0, k*d)
	first := rng.Intn(n)
	centroids = append(centroids, points[first*d:(first+1)*d]...)
	dist := make([]float64, n)
	for len(centroids) < k*d {
		var total float64
		c := len(centroids)/d - 1
		for i := 0; i < n; i++ {
			var dd float64
			for j := 0; j < d; j++ {
				diff := float64(points[i*d+j] - centroids[c*d+j])
				dd += diff * diff
			}
			if c == 0 || dd < dist[i] {
				dist[i] = dd
			}
			total += dist[i]
		}
		r := rng.Float64() * total
		pick := n - 1
		for i := 0; i < n; i++ {
			r -= dist[i]
			if r <= 0 {
				pick = i
				break
			}
		}
		centroids = append(centroids, points[pick*d:(pick+1)*d]...)
	}
	return centroids
}

// kmeansInertia is the clustering objective (sum of squared distances to
// the assigned centroid).
func kmeansInertia(points, centroids []float32, labels []int, n, d int) float64 {
	var total float64
	for i := 0; i < n; i++ {
		c := labels[i]
		for j := 0; j < d; j++ {
			diff := float64(points[i*d+j] - centroids[c*d+j])
			total += diff * diff
		}
	}
	return total
}

type kmeansBench struct{}

func newKmeans() Workload { return kmeansBench{} }

func (kmeansBench) Name() string   { return "kmeans" }
func (kmeansBench) Domain() string { return "data mining" }

func (kmeansBench) Run(ctx *cuda.Context, size Size) error {
	// points (n x d float32) + labels (n int32) fill the footprint.
	n := size.Footprint() / (4 * (kmeansDims + 1))
	points, err := ctx.Alloc("kmeans.points", 4*n*kmeansDims)
	if err != nil {
		return err
	}
	labels, err := ctx.Alloc("kmeans.labels", 4*n)
	if err != nil {
		return err
	}
	cents, err := ctx.Alloc("kmeans.centroids", 4*kmeansK*kmeansDims)
	if err != nil {
		return err
	}
	for _, b := range []*cuda.Buffer{points, cents} {
		if err := ctx.Upload(b); err != nil {
			return err
		}
	}
	blocks, threads := kernels.Grid(n)
	spec := gpu.KernelSpec{
		Name:            "kmeans_assign",
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       4 * n * kmeansDims,
		LoadAccessBytes: 4 * n * kmeansDims * 2, // centroid tile re-reads
		StoreBytes:      4 * n,
		Flops:           3 * float64(n) * kmeansDims * kmeansK,
		IntOps:          float64(n) * kmeansK * 4,
		CtrlOps:         float64(n) * kmeansK,
		TileBytes:       16 << 10,
		Access:          gpu.Irregular,
		WorkingSetKB:    float64(4*kmeansK*kmeansDims) / 1024,
		StagedFraction:  0.92,
	}
	// GPU-side centroid update (the CUDA suite's reduction kernel): the
	// host only reads the per-iteration membership-delta counter.
	update := gpu.KernelSpec{
		Name:            "kmeans_update",
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       4*n*kmeansDims + 4*n,
		StoreBytes:      4 * kmeansK * kmeansDims,
		Flops:           float64(n) * kmeansDims,
		IntOps:          float64(n) * 6,
		CtrlOps:         float64(n),
		TileBytes:       16 << 10,
		Access:          gpu.Irregular,
		WorkingSetKB:    float64(4*kmeansK*kmeansDims) / 1024,
		StagedFraction:  0.92,
	}
	for it := 0; it < kmeansIters; it++ {
		if err := ctx.Launch(cuda.Launch{
			Spec:   spec,
			Reads:  []*cuda.Buffer{points, cents},
			Writes: []*cuda.Buffer{labels},
			// Points are scanned linearly; only the centroid gather is
			// irregular, and that working set is tiny.
			SequentialDemand: true,
		}); err != nil {
			return err
		}
		if err := ctx.Launch(cuda.Launch{
			Spec:             update,
			Reads:            []*cuda.Buffer{points, labels},
			Writes:           []*cuda.Buffer{cents},
			SequentialDemand: true,
		}); err != nil {
			return err
		}
		ctx.HostCompute(50e3) // host checks the convergence delta
	}
	ctx.Synchronize()
	// Final results: labels and centroids come back to the host.
	if err := ctx.Consume(labels); err != nil {
		return err
	}
	if err := ctx.Consume(cents); err != nil {
		return err
	}
	for _, b := range []*cuda.Buffer{points, labels, cents} {
		if err := ctx.Free(b); err != nil {
			return err
		}
	}
	return nil
}

func (kmeansBench) Validate() error {
	const n, d, k = 600, 4, 3
	rng := rand.New(rand.NewSource(8))
	// Three well-separated Gaussian blobs.
	trueCenters := [][]float32{{0, 0, 0, 0}, {10, 10, 10, 10}, {-10, 10, -10, 10}}
	points := make([]float32, n*d)
	for i := 0; i < n; i++ {
		c := trueCenters[i%3]
		for j := 0; j < d; j++ {
			points[i*d+j] = c[j] + float32(rng.NormFloat64())*0.5
		}
	}
	centroids := kmeansSeed(points, n, d, k, rng)
	var labels []int
	prev := -1.0
	for it := 0; it < 20; it++ {
		labels = kmeansAssign(points, centroids, n, d, k)
		kmeansUpdate(points, labels, centroids, n, d, k)
		inertia := kmeansInertia(points, centroids, labels, n, d)
		if prev >= 0 && inertia > prev+1e-6 {
			return fmt.Errorf("kmeans: objective increased %v -> %v (Lloyd must be monotone)", prev, inertia)
		}
		prev = inertia
	}
	// Each blob must map to a single cluster.
	for blob := 0; blob < 3; blob++ {
		want := labels[blob]
		for i := blob; i < n; i += 3 {
			if labels[i] != want {
				return fmt.Errorf("kmeans: blob %d split across clusters", blob)
			}
		}
	}
	// Assignment must match a brute-force nearest-centroid check.
	for i := 0; i < n; i++ {
		best, bestDist := -1, 0.0
		for c := 0; c < k; c++ {
			var dist float64
			for j := 0; j < d; j++ {
				diff := float64(points[i*d+j] - centroids[c*d+j])
				dist += diff * diff
			}
			if best < 0 || dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if labels[i] != best {
			return fmt.Errorf("kmeans: point %d assigned to %d, nearest is %d", i, labels[i], best)
		}
	}
	return nil
}
