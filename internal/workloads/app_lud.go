package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
)

// lud (Rodinia) computes an in-place blocked LU decomposition: per
// diagonal step, a diagonal-block factorization, a perimeter update and
// an interior update. The diagonal-block-ordered traversal is the
// paper's canonical irregular access pattern: the driver prefetcher
// cannot track it, while memcpy_async staging of the working blocks
// thrives (Takeaway 2: up to 1.24x over UVM).

// ludBlocked factors a (row-major, n x n, n divisible by bs) matrix in
// place into unit-lower L and upper U, Doolittle style, using the same
// three-phase blocked schedule as the GPU kernel.
func ludBlocked(a []float32, n, bs int) {
	for k0 := 0; k0 < n; k0 += bs {
		kMax := k0 + bs
		if kMax > n {
			kMax = n
		}
		// Phase 1: factor the diagonal block.
		for k := k0; k < kMax; k++ {
			piv := a[k*n+k]
			for i := k + 1; i < kMax; i++ {
				a[i*n+k] /= piv
				for j := k + 1; j < kMax; j++ {
					a[i*n+j] -= a[i*n+k] * a[k*n+j]
				}
			}
		}
		// Phase 2: perimeter — update the block row and block column.
		for k := k0; k < kMax; k++ {
			piv := a[k*n+k]
			// Row panel to the right of the diagonal block.
			for i := k + 1; i < kMax; i++ {
				lik := a[i*n+k]
				for j := kMax; j < n; j++ {
					a[i*n+j] -= lik * a[k*n+j]
				}
			}
			// Column panel below the diagonal block.
			for i := kMax; i < n; i++ {
				a[i*n+k] /= piv
				for j := k + 1; j < kMax; j++ {
					a[i*n+j] -= a[i*n+k] * a[k*n+j]
				}
			}
		}
		// Phase 3: interior trailing update.
		for i := kMax; i < n; i++ {
			for k := k0; k < kMax; k++ {
				lik := a[i*n+k]
				for j := kMax; j < n; j++ {
					a[i*n+j] -= lik * a[k*n+j]
				}
			}
		}
	}
}

// ludReconstruct multiplies the packed L (unit diagonal) and U factors
// back into a dense matrix.
func ludReconstruct(lu []float32, n int) []float64 {
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			kMax := i
			if j < i {
				kMax = j
			}
			for k := 0; k <= kMax; k++ {
				var l float64
				if k == i {
					l = 1
				} else {
					l = float64(lu[i*n+k])
				}
				if k <= j {
					sum += l * float64(lu[k*n+j])
				}
			}
			out[i*n+j] = sum
		}
	}
	return out
}

type ludBench struct{}

func newLud() Workload { return ludBench{} }

func (ludBench) Name() string   { return "lud" }
func (ludBench) Domain() string { return "linear algebra" }

func (ludBench) Run(ctx *cuda.Context, size Size) error {
	n := size.Dim2D(1)
	a, err := ctx.Alloc("lud.A", 4*n*n)
	if err != nil {
		return err
	}
	if err := ctx.Upload(a); err != nil {
		return err
	}
	// Batch the diagonal sweep into a fixed number of launch groups; the
	// trailing submatrix shrinks quadratically per step.
	const steps = 16
	total := float64(n) * float64(n)
	for s := 0; s < steps; s++ {
		frac := float64(steps-s) / steps
		work := total * frac * frac / steps * 2 // trailing update touches
		if work < 1 {
			work = 1
		}
		blocks, threads := kernels.Grid(int64(work) / 8)
		spec := gpu.KernelSpec{
			Name:            "lud_internal",
			Blocks:          blocks,
			ThreadsPerBlock: threads,
			LoadBytes:       int64(work) * 4,
			LoadAccessBytes: int64(work) * 4 * 12, // block panels re-read per step
			StoreBytes:      int64(work) * 4,
			Flops:           work * 2 * 16, // rank-bs update
			IntOps:          work * 10,
			CtrlOps:         work * 1.5,
			TileBytes:       8 << 10,
			Access:          gpu.Irregular,
			WorkingSetKB:    192,
			StagedFraction:  0.9,
		}
		if err := ctx.Launch(cuda.Launch{
			Spec:   spec,
			Reads:  []*cuda.Buffer{a},
			Writes: []*cuda.Buffer{a},
		}); err != nil {
			return err
		}
	}
	ctx.Synchronize()
	if err := ctx.Consume(a); err != nil {
		return err
	}
	return ctx.Free(a)
}

func (ludBench) Validate() error {
	const n, bs = 32, 8
	rng := rand.New(rand.NewSource(13))
	a := make([]float32, n*n)
	orig := make([]float64, n*n)
	// Diagonally dominant matrix: LU without pivoting is stable.
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			v := rng.Float64()*2 - 1
			a[i*n+j] = float32(v)
			orig[i*n+j] = v
			row += math.Abs(v)
		}
		a[i*n+i] = float32(row + 1)
		orig[i*n+i] = row + 1
	}
	ludBlocked(a, n, bs)
	rec := ludReconstruct(a, n)
	for i := range rec {
		if math.Abs(rec[i]-orig[i]) > 1e-3 {
			return fmt.Errorf("lud: L*U diverges from A at %d: %v vs %v", i, rec[i], orig[i])
		}
	}
	// The blocked schedule must agree with an unblocked factorization.
	b := make([]float32, n*n)
	for i := range b {
		b[i] = float32(orig[i])
	}
	ludBlocked(b, n, n) // single block = classic Doolittle
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-3 {
			return fmt.Errorf("lud: blocked result differs from unblocked at %d", i)
		}
	}
	return nil
}
