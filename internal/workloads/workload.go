package workloads

import (
	"fmt"
	"sort"

	"uvmasim/internal/cuda"
	"uvmasim/internal/nearest"
)

// Workload is one benchmark of Table 2.
type Workload interface {
	// Name is the paper's program name (e.g. "vector_seq", "lud").
	Name() string
	// Domain is the application domain listed in Table 2.
	Domain() string
	// Run executes the workload's full measured region — allocation,
	// staging, kernels, result consumption, free — on ctx at the given
	// input class.
	Run(ctx *cuda.Context, size Size) error
	// Validate executes the functional implementation at test scale and
	// checks it against an independent reference.
	Validate() error
}

var registry = map[string]Workload{}
var microNames, appNames, extraNames []string

// register adds w to the suite. micro selects the microbenchmark group.
func register(w Workload, micro bool) {
	if _, dup := registry[w.Name()]; dup {
		panic(fmt.Sprintf("workloads: duplicate registration of %q", w.Name()))
	}
	registry[w.Name()] = w
	if micro {
		microNames = append(microNames, w.Name())
	} else {
		appNames = append(appNames, w.Name())
	}
}

// registerExtra adds a workload reachable through ByName but outside the
// paper's Table 2 groups, so the default figure grids (and their golden
// artifacts) are untouched while named studies can still select it.
func registerExtra(w Workload) {
	if _, dup := registry[w.Name()]; dup {
		panic(fmt.Sprintf("workloads: duplicate registration of %q", w.Name()))
	}
	registry[w.Name()] = w
	extraNames = append(extraNames, w.Name())
}

// ByName returns a registered workload.
func ByName(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q%s",
			name, nearest.Hint(name, Names(), 2))
	}
	return w, nil
}

// Micro returns the 7 microbenchmarks in registration (paper) order.
func Micro() []Workload { return byNames(microNames) }

// Apps returns the 14 real-world applications in registration order.
func Apps() []Workload { return byNames(appNames) }

// Extras returns the workloads outside the paper's Table 2 groups in
// registration order.
func Extras() []Workload { return byNames(extraNames) }

// All returns every workload: micro first, then apps, then extras.
func All() []Workload { return append(append(Micro(), Apps()...), Extras()...) }

// Names returns all registered names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func byNames(names []string) []Workload {
	out := make([]Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}
