// Package workloads implements the paper's benchmark suite: the 7
// microbenchmarks and 14 real-world applications of Table 2, each written
// once against the cuda API so that every registered data-transfer setup
// runs the same code. Every workload has two faces:
//
//   - a functional implementation (pure Go) validated against an
//     independent reference at small scale, from which
//   - an analytic kernel description (gpu.KernelSpec) is derived for the
//     timing runs at the paper's input scales.
package workloads

import (
	"encoding/json"
	"fmt"

	"uvmasim/internal/nearest"
)

// Size is one of the six input-size classes of Table 3.
type Size int

const (
	Tiny Size = iota
	Small
	Medium
	Large
	Super
	Mega
)

// AllSizes lists the classes in growing order.
var AllSizes = []Size{Tiny, Small, Medium, Large, Super, Mega}

// String returns the paper's class name.
func (s Size) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	case Super:
		return "super"
	case Mega:
		return "mega"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// MarshalJSON encodes the size as its class name ("large"), so
// machine-readable figure output stays self-describing.
func (s Size) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a class name back into a Size.
func (s *Size) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	parsed, err := ParseSize(name)
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// ParseSize resolves a class by name.
func ParseSize(name string) (Size, error) {
	names := make([]string, len(AllSizes))
	for i, s := range AllSizes {
		if s.String() == name {
			return s, nil
		}
		names[i] = AllSizes[i].String()
	}
	return 0, fmt.Errorf("workloads: unknown size %q%s", name, nearest.Hint(name, names, 2))
}

// Footprint returns the class's total memory footprint in bytes
// (Table 3's "Mem" row: 1 MB to 32 GB).
func (s Size) Footprint() int64 {
	switch s {
	case Tiny:
		return 1 << 20
	case Small:
		return 8 << 20
	case Medium:
		return 64 << 20
	case Large:
		return 512 << 20
	case Super:
		return 4 << 30
	default:
		return 32 << 30
	}
}

// Elems1D splits the class footprint across `buffers` float32 vectors and
// returns the per-vector element count.
func (s Size) Elems1D(buffers int) int64 {
	if buffers < 1 {
		buffers = 1
	}
	return s.Footprint() / int64(4*buffers)
}

// Dim2D returns the side of a square float32 grid such that `buffers`
// such grids fill the class footprint.
func (s Size) Dim2D(buffers int) int64 {
	if buffers < 1 {
		buffers = 1
	}
	per := s.Footprint() / int64(4*buffers)
	n := int64(1)
	for (n+1)*(n+1) <= per {
		// Grow in powers of two then refine; grids this size are always
		// representable.
		if n*2*(n*2) <= per {
			n *= 2
		} else {
			n++
		}
	}
	return n
}

// Dim3D returns the side of a cubic float32 grid such that `buffers`
// such grids fill the class footprint.
func (s Size) Dim3D(buffers int) int64 {
	if buffers < 1 {
		buffers = 1
	}
	per := s.Footprint() / int64(4*buffers)
	n := int64(1)
	for (n+1)*(n+1)*(n+1) <= per {
		if 8*n*n*n <= per {
			n *= 2
		} else {
			n++
		}
	}
	return n
}
