package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
)

// lavaMD computes particle potentials and forces from pairwise
// interactions between particles in neighboring boxes of a 3D space
// (Rodinia). Each particle carries a position and a charge; the kernel
// visits the home box plus its 26 neighbors.

// lavaParticle is a particle's position and charge.
type lavaParticle struct {
	x, y, z, q float32
}

// lavaForce accumulates the kernel's per-particle output.
type lavaForce struct {
	fx, fy, fz, pot float32
}

// lavaInteract evaluates the benchmark's pairwise term (a screened
// Coulomb-like potential, matching Rodinia's u2*exp form).
func lavaInteract(p, q lavaParticle, alpha float32) lavaForce {
	dx := p.x - q.x
	dy := p.y - q.y
	dz := p.z - q.z
	r2 := dx*dx + dy*dy + dz*dz
	u := float32(math.Exp(float64(-alpha * r2)))
	s := p.q * q.q * u
	return lavaForce{fx: s * dx, fy: s * dy, fz: s * dz, pot: s}
}

// lavaKernel processes each box against its neighborhood. boxes is the
// per-box particle list; neighbors[b] lists box b's neighbor indices
// (including itself).
func lavaKernel(boxes [][]lavaParticle, neighbors [][]int, alpha float32) [][]lavaForce {
	out := make([][]lavaForce, len(boxes))
	for b := range boxes {
		out[b] = make([]lavaForce, len(boxes[b]))
		for pi, p := range boxes[b] {
			var acc lavaForce
			for _, nb := range neighbors[b] {
				for _, q := range boxes[nb] {
					f := lavaInteract(p, q, alpha)
					acc.fx += f.fx
					acc.fy += f.fy
					acc.fz += f.fz
					acc.pot += f.pot
				}
			}
			out[b][pi] = acc
		}
	}
	return out
}

// lavaNeighbors builds the 27-box neighborhoods of a dim^3 box grid.
func lavaNeighbors(dim int) [][]int {
	nb := make([][]int, dim*dim*dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			for k := 0; k < dim; k++ {
				b := (i*dim+j)*dim + k
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							ni, nj, nk := i+di, j+dj, k+dk
							if ni < 0 || nj < 0 || nk < 0 || ni >= dim || nj >= dim || nk >= dim {
								continue
							}
							nb[b] = append(nb[b], (ni*dim+nj)*dim+nk)
						}
					}
				}
			}
		}
	}
	return nb
}

type lavaMDBench struct{}

func newLavaMD() Workload { return lavaMDBench{} }

func (lavaMDBench) Name() string   { return "lavaMD" }
func (lavaMDBench) Domain() string { return "physics simulation" }

func (lavaMDBench) Run(ctx *cuda.Context, size Size) error {
	// Particles: 16 B in (position+charge) + 16 B out (force+potential).
	particles := size.Footprint() / 32
	const perBox = 128
	in, err := ctx.Alloc("lavaMD.particles", 16*particles)
	if err != nil {
		return err
	}
	out, err := ctx.Alloc("lavaMD.forces", 16*particles)
	if err != nil {
		return err
	}
	if err := ctx.Upload(in); err != nil {
		return err
	}
	blocks, threads := kernels.Grid(particles)
	// Each particle interacts with ~27 boxes x perBox particles; the
	// neighbor-box gather makes the access pattern irregular while the
	// per-box particle lists stage well into shared memory.
	pairs := float64(particles) * 27 * perBox
	spec := gpu.KernelSpec{
		Name:            "lavaMD",
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       16 * particles,
		LoadAccessBytes: 16 * particles * 27,
		StoreBytes:      16 * particles,
		Flops:           11 * pairs, // dx,dy,dz, r2, exp approx, scale, accumulate
		IntOps:          float64(particles) * 27 * 6,
		CtrlOps:         float64(particles) * 27,
		TileBytes:       16 << 10,
		Access:          gpu.Irregular,
		WorkingSetKB:    96,
		StagedFraction:  0.9,
	}
	if err := ctx.Launch(cuda.Launch{
		Spec:   spec,
		Reads:  []*cuda.Buffer{in},
		Writes: []*cuda.Buffer{out},
	}); err != nil {
		return err
	}
	ctx.Synchronize()
	if err := ctx.Consume(out); err != nil {
		return err
	}
	if err := ctx.Free(in); err != nil {
		return err
	}
	return ctx.Free(out)
}

func (lavaMDBench) Validate() error {
	const dim, perBox = 3, 8
	const alpha = 0.5
	rng := rand.New(rand.NewSource(6))
	boxes := make([][]lavaParticle, dim*dim*dim)
	for b := range boxes {
		boxes[b] = make([]lavaParticle, perBox)
		for i := range boxes[b] {
			boxes[b][i] = lavaParticle{
				x: rng.Float32(), y: rng.Float32(), z: rng.Float32(),
				q: rng.Float32() - 0.5,
			}
		}
	}
	nb := lavaNeighbors(dim)
	// Interior boxes must have full 27-neighborhoods, corners 8.
	if len(nb[13]) != 27 {
		return fmt.Errorf("lavaMD: center box has %d neighbors, want 27", len(nb[13]))
	}
	if len(nb[0]) != 8 {
		return fmt.Errorf("lavaMD: corner box has %d neighbors, want 8", len(nb[0]))
	}
	got := lavaKernel(boxes, nb, alpha)
	// Reference: flatten to a global pairwise sum restricted to
	// neighborhood membership, computed independently in float64.
	for b := range boxes {
		inNb := map[int]bool{}
		for _, x := range nb[b] {
			inNb[x] = true
		}
		for pi, p := range boxes[b] {
			var want lavaForce
			var pot float64
			for ob := range boxes {
				if !inNb[ob] {
					continue
				}
				for _, q := range boxes[ob] {
					f := lavaInteract(p, q, alpha)
					want.fx += f.fx
					want.fy += f.fy
					want.fz += f.fz
					pot += float64(f.pot)
				}
			}
			g := got[b][pi]
			if math.Abs(float64(g.pot)-pot) > 1e-3 {
				return fmt.Errorf("lavaMD: box %d particle %d potential %v, want %v", b, pi, g.pot, pot)
			}
			if math.Abs(float64(g.fx-want.fx)) > 1e-3 {
				return fmt.Errorf("lavaMD: box %d particle %d fx %v, want %v", b, pi, g.fx, want.fx)
			}
		}
	}
	return nil
}
