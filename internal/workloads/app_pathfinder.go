package workloads

import (
	"fmt"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
)

// pathfinder (Rodinia) finds the cheapest bottom-to-top path through a
// 2D cost grid with dynamic programming: each row update reads the
// previous row's best costs and the current row's weights. The GPU
// version processes several rows per launch (the "pyramid" height).

// pathfinderDP computes the final DP row for a grid of rows x cols
// weights (row-major), moving straight or diagonally between rows.
func pathfinderDP(grid []int32, rows, cols int) []int32 {
	cur := make([]int32, cols)
	next := make([]int32, cols)
	copy(cur, grid[:cols])
	for r := 1; r < rows; r++ {
		for c := 0; c < cols; c++ {
			best := cur[c]
			if c > 0 && cur[c-1] < best {
				best = cur[c-1]
			}
			if c < cols-1 && cur[c+1] < best {
				best = cur[c+1]
			}
			next[c] = grid[r*cols+c] + best
		}
		cur, next = next, cur
	}
	return append([]int32(nil), cur...)
}

// pathfinderGreedyBound returns the cost of the straight-down path from
// column c — an upper bound any DP result must not exceed.
func pathfinderGreedyBound(grid []int32, rows, cols, c int) int32 {
	var total int32
	for r := 0; r < rows; r++ {
		total += grid[r*cols+c]
	}
	return total
}

type pathfinderBench struct{}

func newPathfinder() Workload { return pathfinderBench{} }

func (pathfinderBench) Name() string   { return "pathfinder" }
func (pathfinderBench) Domain() string { return "grid traversal" }

func (pathfinderBench) Run(ctx *cuda.Context, size Size) error {
	const rows = 128
	cols := size.Footprint() / (4 * rows)
	grid, err := ctx.Alloc("pathfinder.grid", 4*rows*cols)
	if err != nil {
		return err
	}
	result, err := ctx.Alloc("pathfinder.result", 4*cols)
	if err != nil {
		return err
	}
	if err := ctx.Upload(grid); err != nil {
		return err
	}
	// The pyramid processes pyramidHeight rows per kernel launch.
	const pyramidHeight = 16
	launches := rows / pyramidHeight
	blocks, threads := kernels.Grid(cols)
	perLaunch := cols * pyramidHeight
	spec := gpu.KernelSpec{
		Name:            "pathfinder",
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       4 * perLaunch,
		LoadAccessBytes: 4 * perLaunch * 3, // three-way min reads
		StoreBytes:      4 * cols,
		Flops:           float64(perLaunch),
		IntOps:          float64(perLaunch) * 8, // comparisons and halo logic
		CtrlOps:         float64(perLaunch) * 2,
		TileBytes:       8 << 10,
		Access:          gpu.Sequential,
		WorkingSetKB:    24,
	}
	for l := 0; l < launches; l++ {
		if err := ctx.Launch(cuda.Launch{
			Spec:   spec,
			Reads:  []*cuda.Buffer{grid},
			Writes: []*cuda.Buffer{result},
		}); err != nil {
			return err
		}
	}
	ctx.Synchronize()
	if err := ctx.Consume(result); err != nil {
		return err
	}
	if err := ctx.Free(grid); err != nil {
		return err
	}
	return ctx.Free(result)
}

func (pathfinderBench) Validate() error {
	rng := rand.New(rand.NewSource(12))
	const rows, cols = 30, 50
	grid := make([]int32, rows*cols)
	for i := range grid {
		grid[i] = int32(rng.Intn(10))
	}
	got := pathfinderDP(grid, rows, cols)

	// Reference: explicit shortest-path search over the DAG (per-cell
	// memoized recursion written independently of the row-sweep).
	memo := make([]int32, rows*cols)
	seen := make([]bool, rows*cols)
	var solve func(r, c int) int32
	solve = func(r, c int) int32 {
		if r == 0 {
			return grid[c]
		}
		idx := r*cols + c
		if seen[idx] {
			return memo[idx]
		}
		best := solve(r-1, c)
		if c > 0 {
			if v := solve(r-1, c-1); v < best {
				best = v
			}
		}
		if c < cols-1 {
			if v := solve(r-1, c+1); v < best {
				best = v
			}
		}
		seen[idx] = true
		memo[idx] = grid[idx] + best
		return memo[idx]
	}
	for c := 0; c < cols; c++ {
		want := solve(rows-1, c)
		if got[c] != want {
			return fmt.Errorf("pathfinder: column %d cost %d, want %d", c, got[c], want)
		}
		if bound := pathfinderGreedyBound(grid, rows, cols, c); got[c] > bound {
			return fmt.Errorf("pathfinder: DP cost %d exceeds straight-path bound %d", got[c], bound)
		}
	}
	return nil
}
