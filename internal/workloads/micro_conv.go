package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/kernels"
)

// conv2dCoeffs is the fixed 3x3 filter Polybench's 2DCONV applies.
var conv2dCoeffs = [3][3]float32{
	{0.2, 0.5, -0.8},
	{-0.3, 0.6, -0.9},
	{0.4, 0.7, 0.1},
}

// conv2dKernel computes the interior convolution of in (n x n) into out,
// walking row tiles the way the GPU kernel walks thread blocks. Border
// cells are left untouched, as in Polybench.
func conv2dKernel(in, out []float32, n int) {
	const rowTile = 64
	for base := 1; base < n-1; base += rowTile {
		rMax := base + rowTile
		if rMax > n-1 {
			rMax = n - 1
		}
		for i := base; i < rMax; i++ {
			for j := 1; j < n-1; j++ {
				var acc float32
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						acc += conv2dCoeffs[di+1][dj+1] * in[(i+di)*n+j+dj]
					}
				}
				out[i*n+j] = acc
			}
		}
	}
}

// conv3dKernel computes a 27-point convolution of a cubic grid with
// separable weights, interior only.
func conv3dKernel(in, out []float32, n int) {
	w := func(d int) float32 { return [3]float32{0.25, 0.5, 0.25}[d+1] }
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			for k := 1; k < n-1; k++ {
				var acc float32
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							acc += w(di) * w(dj) * w(dk) * in[((i+di)*n+j+dj)*n+k+dk]
						}
					}
				}
				out[(i*n+j)*n+k] = acc
			}
		}
	}
}

// convBench covers 2DCONV and 3DCONV.
type convBench struct {
	name string
	dims int
}

func newConv2D() Workload { return &convBench{name: "2DCONV", dims: 2} }
func newConv3D() Workload { return &convBench{name: "3DCONV", dims: 3} }

func (c *convBench) Name() string   { return c.name }
func (c *convBench) Domain() string { return "image processing" }

func (c *convBench) Run(ctx *cuda.Context, size Size) error {
	var cells int64
	var points int
	var intPerCell float64
	if c.dims == 2 {
		n := size.Dim2D(2)
		cells = n * n
		points = 9
		// Polybench's unoptimized kernel does per-tap index arithmetic
		// and bounds checks, making the kernel compute-intense (§4.1.1).
		intPerCell = 60
	} else {
		n := size.Dim3D(2)
		cells = n * n * n
		points = 27
		intPerCell = 120
	}
	in, err := ctx.Alloc(c.name+".in", 4*cells)
	if err != nil {
		return err
	}
	out, err := ctx.Alloc(c.name+".out", 4*cells)
	if err != nil {
		return err
	}
	if err := ctx.Upload(in); err != nil {
		return err
	}
	spec := kernels.Stencil(c.name, cells, points, intPerCell)
	if c.dims == 3 {
		// 3D halos are a larger fraction of a shrunken tile.
		spec.AsyncComputePenalty = 2.2
		spec.AsyncLoadInflation = 1.25
	}
	if err := ctx.Launch(cuda.Launch{
		Spec:   spec,
		Reads:  []*cuda.Buffer{in},
		Writes: []*cuda.Buffer{out},
	}); err != nil {
		return err
	}
	ctx.Synchronize()
	if err := ctx.Consume(out); err != nil {
		return err
	}
	if err := ctx.Free(in); err != nil {
		return err
	}
	return ctx.Free(out)
}

func (c *convBench) Validate() error {
	rng := rand.New(rand.NewSource(5))
	if c.dims == 2 {
		const n = 40
		in := make([]float32, n*n)
		for i := range in {
			in[i] = rng.Float32()*2 - 1
		}
		out := make([]float32, n*n)
		conv2dKernel(in, out, n)
		// Reference: direct evaluation per cell in float64.
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				var want float64
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						want += float64(conv2dCoeffs[di+1][dj+1]) * float64(in[(i+di)*n+j+dj])
					}
				}
				if math.Abs(float64(out[i*n+j])-want) > 1e-4 {
					return fmt.Errorf("2DCONV: out[%d,%d] = %v, want %v", i, j, out[i*n+j], want)
				}
			}
		}
		// Borders untouched.
		if out[0] != 0 || out[n*n-1] != 0 {
			return fmt.Errorf("2DCONV: border cells must stay zero")
		}
		return nil
	}
	const n = 12
	in := make([]float32, n*n*n)
	for i := range in {
		in[i] = rng.Float32()
	}
	out := make([]float32, n*n*n)
	conv3dKernel(in, out, n)
	// Reference property: separable kernel with weights summing to 1 per
	// axis means the interior output is a weighted average — bounded by
	// the input range, and exact on a constant field.
	cons := make([]float32, n*n*n)
	for i := range cons {
		cons[i] = 3.5
	}
	cout := make([]float32, n*n*n)
	conv3dKernel(cons, cout, n)
	mid := ((n/2)*n + n/2) * n
	if math.Abs(float64(cout[mid+n/2])-3.5) > 1e-4 {
		return fmt.Errorf("3DCONV: constant field not preserved: %v", cout[mid+n/2])
	}
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			for k := 1; k < n-1; k++ {
				v := float64(out[(i*n+j)*n+k])
				if v < -0.001 || v > 1.001 {
					return fmt.Errorf("3DCONV: out of range at (%d,%d,%d): %v", i, j, k, v)
				}
			}
		}
	}
	return nil
}
