package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
)

// This file holds the two UVMBench applications: bayesian (Bayesian
// network structure scoring over a binary dataset) and knn (k-nearest
// neighbors). Both scatter reads across large tables, giving them the
// random-access profile of Table 2.

// --- bayesian ------------------------------------------------------------

const bayesVars = 32

// bayesLogScore computes the K2-style family score of `child` with the
// given parent set over binary data (rows x vars, row-major, 0/1): the
// log-probability of the data under a uniform Dirichlet prior.
func bayesLogScore(data []uint8, rows, vars, child int, parents []int) float64 {
	if len(parents) > 16 {
		panic("bayesian: parent set too large")
	}
	counts := map[[2]int]int{} // (parent configuration, child value) -> count
	totals := map[int]int{}    // parent configuration -> count
	for r := 0; r < rows; r++ {
		cfg := 0
		for bi, p := range parents {
			if data[r*vars+p] == 1 {
				cfg |= 1 << bi
			}
		}
		v := int(data[r*vars+child])
		counts[[2]int{cfg, v}]++
		totals[cfg]++
	}
	// log P(D|G) = sum_cfg [ log( 1! / (N_cfg+1)! ) + sum_v log(N_cfg_v!) ]
	// using the K2 metric with binary child (r_i = 2).
	lgamma := func(n int) float64 {
		v, _ := math.Lgamma(float64(n))
		return v
	}
	var score float64
	for cfg, n := range totals {
		score += lgamma(2) - lgamma(n+2)
		for v := 0; v < 2; v++ {
			score += lgamma(counts[[2]int{cfg, v}] + 1)
		}
	}
	return score
}

type bayesianBench struct{}

func newBayesian() Workload { return bayesianBench{} }

func (bayesianBench) Name() string   { return "BN" }
func (bayesianBench) Domain() string { return "machine learning" }

func (bayesianBench) Run(ctx *cuda.Context, size Size) error {
	rows := size.Footprint() / bayesVars // one byte per cell
	data, err := ctx.Alloc("BN.data", rows*bayesVars)
	if err != nil {
		return err
	}
	scores, err := ctx.Alloc("BN.scores", 8*bayesVars*bayesVars)
	if err != nil {
		return err
	}
	if err := ctx.Upload(data); err != nil {
		return err
	}
	// One scoring kernel per candidate child variable; each scans the
	// dataset gathering parent-configuration histograms (random access
	// into shared histograms, scattered column reads).
	cells := rows * bayesVars
	blocks, threads := kernels.Grid(rows)
	spec := gpu.KernelSpec{
		Name:            "bayes_score",
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       cells / bayesVars * 4, // child + parent columns
		LoadAccessBytes: cells / bayesVars * 4 * 3,
		StoreBytes:      8 * bayesVars,
		Flops:           float64(rows) * 8,
		IntOps:          float64(rows) * 24, // bit packing + histogram updates
		CtrlOps:         float64(rows) * 4,
		TileBytes:       8 << 10,
		Access:          gpu.Random,
		WorkingSetKB:    128,
		StagedFraction:  0.7,
	}
	for v := 0; v < bayesVars/4; v++ { // batched candidate groups
		if err := ctx.Launch(cuda.Launch{
			Spec:   spec,
			Reads:  []*cuda.Buffer{data},
			Writes: []*cuda.Buffer{scores},
		}); err != nil {
			return err
		}
	}
	ctx.Synchronize()
	if err := ctx.Consume(scores); err != nil {
		return err
	}
	if err := ctx.Free(data); err != nil {
		return err
	}
	return ctx.Free(scores)
}

func (bayesianBench) Validate() error {
	rng := rand.New(rand.NewSource(14))
	const rows, vars = 2000, 6
	data := make([]uint8, rows*vars)
	// Variable 1 strongly depends on variable 0; variable 2 is noise.
	for r := 0; r < rows; r++ {
		v0 := uint8(rng.Intn(2))
		data[r*vars+0] = v0
		if rng.Float64() < 0.92 {
			data[r*vars+1] = v0
		} else {
			data[r*vars+1] = 1 - v0
		}
		for c := 2; c < vars; c++ {
			data[r*vars+c] = uint8(rng.Intn(2))
		}
	}
	withParent := bayesLogScore(data, rows, vars, 1, []int{0})
	noParent := bayesLogScore(data, rows, vars, 1, nil)
	wrongParent := bayesLogScore(data, rows, vars, 1, []int{2})
	if withParent <= noParent {
		return fmt.Errorf("bayesian: true parent scored %v, no-parent %v; dependency not detected",
			withParent, noParent)
	}
	if withParent <= wrongParent {
		return fmt.Errorf("bayesian: true parent (%v) must beat a noise parent (%v)",
			withParent, wrongParent)
	}
	// Score must be a log-probability: negative and finite.
	if withParent >= 0 || math.IsInf(withParent, 0) || math.IsNaN(withParent) {
		return fmt.Errorf("bayesian: invalid log score %v", withParent)
	}
	return nil
}

// --- knn -----------------------------------------------------------------

const (
	knnDims = 8
	knnK    = 10
)

// knnSearch returns the indices of the k nearest points (n x d,
// row-major) to the query, by full distance computation and selection —
// the same two-kernel structure as the benchmark.
func knnSearch(points []float32, n, d int, query []float32, k int) []int {
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < d; j++ {
			diff := float64(points[i*d+j] - query[j])
			acc += diff * diff
		}
		dist[i] = acc
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Selection kernel equivalent: partial selection of the k smallest.
	for sel := 0; sel < k; sel++ {
		best := sel
		for i := sel + 1; i < n; i++ {
			if dist[idx[i]] < dist[idx[best]] {
				best = i
			}
		}
		idx[sel], idx[best] = idx[best], idx[sel]
	}
	return idx[:k]
}

type knnBench struct{}

func newKNN() Workload { return knnBench{} }

func (knnBench) Name() string   { return "knn" }
func (knnBench) Domain() string { return "data mining" }

func (knnBench) Run(ctx *cuda.Context, size Size) error {
	n := size.Footprint() / (4 * (knnDims + 1)) // points + distance array
	points, err := ctx.Alloc("knn.points", 4*n*knnDims)
	if err != nil {
		return err
	}
	dist, err := ctx.Alloc("knn.dist", 4*n)
	if err != nil {
		return err
	}
	if err := ctx.Upload(points); err != nil {
		return err
	}
	// Kernel 1: distance computation — a clean streaming pass.
	distSpec := kernels.Stream("knn_distance", n, knnDims, 1, 3*knnDims, 4, gpu.Sequential)
	if err := ctx.Launch(cuda.Launch{
		Spec:   distSpec,
		Reads:  []*cuda.Buffer{points},
		Writes: []*cuda.Buffer{dist},
	}); err != nil {
		return err
	}
	// Kernel 2: k-selection over the distance array — scattered
	// reductions.
	blocks, threads := kernels.Grid(n / 32)
	sel := gpu.KernelSpec{
		Name:            "knn_select",
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       4 * n,
		LoadAccessBytes: 4 * n * 2,
		StoreBytes:      4 * knnK * int64(blocks),
		Flops:           float64(n),
		IntOps:          float64(n) * 6,
		CtrlOps:         float64(n) * 2,
		TileBytes:       8 << 10,
		Access:          gpu.Random,
		WorkingSetKB:    64,
		StagedFraction:  0.8,
	}
	if err := ctx.Launch(cuda.Launch{
		Spec:   sel,
		Reads:  []*cuda.Buffer{dist},
		Writes: []*cuda.Buffer{dist},
	}); err != nil {
		return err
	}
	ctx.Synchronize()
	if err := ctx.Consume(dist); err != nil {
		return err
	}
	if err := ctx.Free(points); err != nil {
		return err
	}
	return ctx.Free(dist)
}

func (knnBench) Validate() error {
	rng := rand.New(rand.NewSource(15))
	const n, d, k = 500, 3, 7
	points := make([]float32, n*d)
	for i := range points {
		points[i] = rng.Float32() * 10
	}
	query := []float32{5, 5, 5}
	got := knnSearch(points, n, d, query, k)
	if len(got) != k {
		return fmt.Errorf("knn: returned %d neighbors, want %d", len(got), k)
	}
	// Reference: full sort by distance.
	type pd struct {
		i int
		d float64
	}
	all := make([]pd, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < d; j++ {
			diff := float64(points[i*d+j] - query[j])
			acc += diff * diff
		}
		all[i] = pd{i, acc}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
	wantSet := map[int]bool{}
	maxDist := all[k-1].d
	for _, p := range all[:k] {
		wantSet[p.i] = true
	}
	for _, idx := range got {
		// Accept ties at the k-th distance.
		var acc float64
		for j := 0; j < d; j++ {
			diff := float64(points[idx*d+j] - query[j])
			acc += diff * diff
		}
		if !wantSet[idx] && acc > maxDist+1e-12 {
			return fmt.Errorf("knn: neighbor %d (dist %v) not among the %d nearest (max %v)",
				idx, acc, k, maxDist)
		}
	}
	return nil
}
