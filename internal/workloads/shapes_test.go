package workloads

import (
	"testing"

	"uvmasim/internal/cuda"
)

// roi measures the region of interest (total minus fixed overhead) of
// one run.
func roi(t *testing.T, w Workload, setup cuda.Setup, size Size, seed int64) float64 {
	t.Helper()
	ctx := cuda.NewContext(cuda.DefaultSystemConfig(), setup, seed)
	if err := w.Run(ctx, size); err != nil {
		t.Fatal(err)
	}
	b := ctx.Breakdown()
	return b.Total - b.Overhead
}

// TestTakeaway2Shapes encodes the paper's central guideline per workload
// class: regular memory-bound workloads prefer UVM with prefetch over
// async alone, while irregular workloads prefer async over UVM
// prefetching (Takeaway 2).
func TestTakeaway2Shapes(t *testing.T) {
	regular := []string{"vector_seq", "saxpy", "backprop"}
	irregular := []string{"lud", "kmeans", "BN"}

	for _, name := range regular {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pf := roi(t, w, cuda.UVMPrefetch, Large, 4)
		asy := roi(t, w, cuda.Async, Large, 4)
		if pf >= asy {
			t.Errorf("%s (regular): uvm_prefetch (%.1f ms) should beat async (%.1f ms)",
				name, pf/1e6, asy/1e6)
		}
	}
	for _, name := range irregular {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pf := roi(t, w, cuda.UVMPrefetch, Large, 4)
		asy := roi(t, w, cuda.Async, Large, 4)
		if asy >= pf {
			t.Errorf("%s (irregular): async (%.1f ms) should beat uvm_prefetch (%.1f ms)",
				name, asy/1e6, pf/1e6)
		}
	}
}

// TestCombinationNeverMuchWorseThanPrefetch: §4.1.2 — the combination
// beats or ties uvm_prefetch everywhere except compute-bound gemm-style
// workloads (yolov3), where the regression stays small.
func TestCombinationVsPrefetch(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			pf := roi(t, w, cuda.UVMPrefetch, Medium, 6)
			combo := roi(t, w, cuda.UVMPrefetchAsync, Medium, 6)
			if combo > pf*1.15 {
				t.Errorf("combination (%.2f ms) regresses >15%% vs uvm_prefetch (%.2f ms)",
					combo/1e6, pf/1e6)
			}
		})
	}
}

// TestDomainsDeclared keeps Table 2's metadata intact.
func TestDomainsDeclared(t *testing.T) {
	for _, w := range All() {
		if w.Domain() == "" {
			t.Errorf("%s: empty domain", w.Name())
		}
	}
}
