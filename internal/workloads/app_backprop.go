package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
)

// backprop trains one step of a 2-layer perceptron (Rodinia): a forward
// kernel propagates a huge input layer to a small hidden layer, and a
// backward kernel adjusts the input->hidden weights. The weight matrix
// dominates memory and is touched with a regular strided pattern.

const backpropHidden = 16

// bpForward computes the hidden activations: h = sigmoid(W^T x), where W
// is (in+1) x hidden with row 0 holding the bias.
func bpForward(w, input []float32, in, hidden int) []float32 {
	h := make([]float32, hidden)
	for j := 0; j < hidden; j++ {
		sum := w[j] // bias row
		for i := 1; i <= in; i++ {
			sum += w[i*hidden+j] * input[i-1]
		}
		h[j] = float32(1 / (1 + math.Exp(-float64(sum))))
	}
	return h
}

// bpAdjust applies the gradient step to the weights in place:
// w[i][j] += eta*delta[j]*x[i] + momentum*oldw[i][j].
func bpAdjust(w, oldw, input, delta []float32, in, hidden int, eta, momentum float32) {
	for j := 0; j < hidden; j++ {
		dw := eta*delta[j] + momentum*oldw[j]
		w[j] += dw
		oldw[j] = dw
	}
	for i := 1; i <= in; i++ {
		x := input[i-1]
		for j := 0; j < hidden; j++ {
			idx := i*hidden + j
			dw := eta*delta[j]*x + momentum*oldw[idx]
			w[idx] += dw
			oldw[idx] = dw
		}
	}
}

type backpropBench struct{}

func newBackprop() Workload { return backpropBench{} }

func (backpropBench) Name() string   { return "backprop" }
func (backpropBench) Domain() string { return "machine learning" }

func (backpropBench) Run(ctx *cuda.Context, size Size) error {
	// Two weight matrices (current + momentum) dominate: (in+1) x hidden.
	in := size.Footprint() / (4 * 2 * backpropHidden)
	wRows := in + 1
	w, err := ctx.Alloc("backprop.w", 4*wRows*backpropHidden)
	if err != nil {
		return err
	}
	oldw, err := ctx.Alloc("backprop.oldw", 4*wRows*backpropHidden)
	if err != nil {
		return err
	}
	x, err := ctx.Alloc("backprop.input", 4*in)
	if err != nil {
		return err
	}
	for _, b := range []*cuda.Buffer{w, oldw, x} {
		if err := ctx.Upload(b); err != nil {
			return err
		}
	}
	// Forward: one pass over W with a reduction into 16 activations.
	fwd := kernels.MatVec("backprop_forward", int64(backpropHidden), in)
	fwd.LoadBytes = 4 * wRows * backpropHidden
	fwd.Access = gpu.Strided
	blocks, threads := kernels.Grid(in)
	fwd.Blocks, fwd.ThreadsPerBlock = blocks, threads
	if err := ctx.Launch(cuda.Launch{
		Spec:   fwd,
		Reads:  []*cuda.Buffer{w, x},
		Writes: []*cuda.Buffer{w}, // partial sums staged in W's tail block
	}); err != nil {
		return err
	}
	// Backward: read+write both weight matrices.
	bwd := gpu.KernelSpec{
		Name:            "backprop_adjust",
		Blocks:          blocks,
		ThreadsPerBlock: threads,
		LoadBytes:       4 * wRows * backpropHidden * 2,
		StoreBytes:      4 * wRows * backpropHidden * 2,
		Flops:           float64(wRows*backpropHidden) * 4,
		IntOps:          float64(wRows*backpropHidden) * 2,
		CtrlOps:         float64(wRows),
		TileBytes:       16 << 10,
		Access:          gpu.Strided,
		WorkingSetKB:    16,
	}
	if err := ctx.Launch(cuda.Launch{
		Spec:   bwd,
		Reads:  []*cuda.Buffer{w, oldw, x},
		Writes: []*cuda.Buffer{w, oldw},
	}); err != nil {
		return err
	}
	ctx.Synchronize()
	if err := ctx.Consume(w); err != nil {
		return err
	}
	for _, b := range []*cuda.Buffer{w, oldw, x} {
		if err := ctx.Free(b); err != nil {
			return err
		}
	}
	return nil
}

func (backpropBench) Validate() error {
	const in, hidden = 64, 8
	rng := rand.New(rand.NewSource(11))
	w := make([]float32, (in+1)*hidden)
	oldw := make([]float32, (in+1)*hidden)
	input := make([]float32, in)
	for i := range w {
		w[i] = (rng.Float32() - 0.5) / float32(in)
	}
	for i := range input {
		input[i] = rng.Float32()
	}
	h := bpForward(w, input, in, hidden)
	for j, v := range h {
		if v <= 0 || v >= 1 {
			return fmt.Errorf("backprop: activation %d = %v outside sigmoid range", j, v)
		}
	}
	// Independent check of one activation in float64.
	var sum float64
	j := 3
	sum = float64(w[j])
	for i := 1; i <= in; i++ {
		sum += float64(w[i*hidden+j]) * float64(input[i-1])
	}
	want := 1 / (1 + math.Exp(-sum))
	if math.Abs(float64(h[j])-want) > 1e-5 {
		return fmt.Errorf("backprop: h[%d] = %v, want %v", j, h[j], want)
	}

	// Training against a fixed target must reduce the loss.
	target := make([]float32, hidden)
	for i := range target {
		target[i] = rng.Float32()
	}
	loss := func() float64 {
		h := bpForward(w, input, in, hidden)
		var l float64
		for i := range h {
			d := float64(h[i] - target[i])
			l += d * d
		}
		return l
	}
	l0 := loss()
	for step := 0; step < 30; step++ {
		h := bpForward(w, input, in, hidden)
		delta := make([]float32, hidden)
		for i := range delta {
			delta[i] = (target[i] - h[i]) * h[i] * (1 - h[i]) // sigmoid grad
		}
		bpAdjust(w, oldw, input, delta, in, hidden, 0.3, 0.3)
	}
	if l1 := loss(); l1 >= l0 {
		return fmt.Errorf("backprop: loss did not decrease (%v -> %v)", l0, l1)
	}
	return nil
}
