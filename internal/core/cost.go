package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"uvmasim/internal/cuda"
	"uvmasim/internal/store"
	"uvmasim/internal/workloads"
)

// This file implements cost-aware cell scheduling. The executor drains a
// study's cells in whatever order the dispatch hands them out; with
// submission order, a straggler (a Mega cell, an oversubscribed sweep
// point) dispatched last stretches the makespan by nearly its whole
// cost. Every study therefore asks lptOrder for a longest-processing-
// time-first dispatch order: cells are claimed most-expensive-first, so
// the stragglers start immediately and the cheap cells pack the tail.
//
// Costs come from two tiers. A static model (staticCellSeconds)
// estimates a cell's wall time from what dominates the simulation —
// per-chunk fault/migration work for managed setups, per-byte copy work
// for explicit ones, eviction churn above capacity for oversubscribed
// footprints. It is a pure function of the cell identity, which is what
// lets shard artifacts embed deterministic per-shard cost estimates.
// The second tier refines scheduling within a process: every simulated
// cell's measured wall time is recorded in a costModel shared by the
// Runner family, and a later study scheduling the same cell shape uses
// the observation instead of the estimate. Ordering affects only the
// makespan — results land in index slots and the singleflight cache
// counts per-key — so both tiers are free to be approximate.

// Static cost-model constants, calibrated against measured vector_seq
// iteration times on the development machine (managed Mega ~660µs/iter
// at 16384 chunks, managed Large ~7µs at 256, explicit setups ~1-2µs
// at every size). Only ranks and rough proportions matter: LPT needs
// an ordering, and the shard estimates need to track real cost, not
// predict it.
const (
	// costIterBase is the fixed per-iteration cost: context reset, host
	// randomization, kernel launch bookkeeping.
	costIterBase = 1e-6
	// costPerChunk is the per-2MiB-chunk cost of the managed fault /
	// migration path per data pass.
	costPerChunk = 0.03e-6
	// costPerCopiedGiB is the explicit-memcpy path's cost per GiB moved
	// (whole pipelined copies simulate in a handful of events, so the
	// explicit path is nearly flat in the footprint).
	costPerCopiedGiB = 0.5e-6
	// costEvictFactor multiplies chunk traffic once a footprint exceeds
	// managed capacity: every pass faults, migrates and writes back.
	costEvictFactor = 3.0
)

// staticCellSeconds estimates one cell's simulation wall seconds from
// its identity alone. kind is the cell-cache kind: a workload name, a
// "sweep:<fig>:<param>" id, an "oversub:<ratio>:<passes>" point, or a
// "multigpu:<workload>:<topology>:<gpus>:<policy>:<jobs>:<schedule>"
// grid point.
func staticCellSeconds(cfg cuda.SystemConfig, kind string, setup cuda.Setup, size workloads.Size, iters int) float64 {
	if iters < 1 {
		iters = 1
	}
	chunkBytes := cfg.UVM.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = 2 << 20
	}
	if wname, gpus, jobs, ok := parseMultiGPUKind(kind); ok {
		// A multigpu cell measures its workload once (one ordinary cell
		// at the runner's iteration count) and replays the schedule as a
		// handful of DES events per job and GPU.
		return staticCellSeconds(cfg, wname, setup, size, iters) +
			float64(jobs*gpus)*1e-7
	}
	if ratio, passes, ok := parseOversubKind(kind); ok {
		capacity := float64(cfg.GPU.HBMCapacity) * cfg.ManagedCapacityFraction
		chunks := ratio * capacity / float64(chunkBytes)
		perPass := chunks * costPerChunk
		if ratio > 1 {
			perPass *= costEvictFactor
		}
		// An oversub cell is a single run regardless of the runner's
		// iteration count (see oversubCell).
		return costIterBase + float64(passes)*perPass
	}
	footprint := float64(size.Footprint())
	var perIter float64
	switch {
	case setup.ZeroCopy():
		// Zero-copy never faults or migrates: the simulation prices each
		// access over the link in one kernel event, so like the explicit
		// path it is nearly flat in the footprint.
		perIter = costIterBase + footprint/float64(1<<30)*costPerCopiedGiB
	case setup.SMCopy():
		// SM staging walks chunks like the fault path but without the
		// per-fault replay machinery, so per-chunk work is much cheaper.
		perIter = costIterBase + footprint/float64(chunkBytes)*costPerChunk*0.3
	case setup.Managed():
		perIter = costIterBase + footprint/float64(chunkBytes)*costPerChunk
	default:
		perIter = costIterBase + footprint/float64(1<<30)*costPerCopiedGiB
	}
	return float64(iters) * perIter
}

// parseMultiGPUKind decodes the
// "multigpu:<workload>:<topology>:<gpus>:<policy>:<jobs>:<schedule>"
// cell kind into the fields the cost model prices.
func parseMultiGPUKind(kind string) (workload string, gpus, jobs int, ok bool) {
	rest, found := strings.CutPrefix(kind, "multigpu:")
	if !found {
		return "", 0, 0, false
	}
	parts := strings.Split(rest, ":")
	if len(parts) != 6 {
		return "", 0, 0, false
	}
	gpus, err := strconv.Atoi(parts[2])
	if err != nil {
		return "", 0, 0, false
	}
	jobs, err = strconv.Atoi(parts[4])
	if err != nil {
		return "", 0, 0, false
	}
	return parts[0], gpus, jobs, true
}

// parseOversubKind decodes the "oversub:<ratio>:<passes>" cell kind.
func parseOversubKind(kind string) (ratio float64, passes int, ok bool) {
	rest, found := strings.CutPrefix(kind, "oversub:")
	if !found {
		return 0, 0, false
	}
	rs, ps, found := strings.Cut(rest, ":")
	if !found {
		return 0, 0, false
	}
	ratio, err := strconv.ParseFloat(rs, 64)
	if err != nil {
		return 0, 0, false
	}
	passes, err = strconv.Atoi(ps)
	if err != nil {
		return 0, 0, false
	}
	return ratio, passes, true
}

// ErrUnknownCell reports a captured cell document whose setup or size
// name is not resolvable in this process — typically an artifact written
// by a build with extra registered setups, or a future schema.
var ErrUnknownCell = errors.New("core: unknown cell identity")

// EstimateCellSeconds is the static cost-model estimate for one
// captured cell document, used by shard producers to embed a
// deterministic per-shard cost estimate in the artifact. A setup or
// size name that does not resolve in this process's registry returns a
// generic standard/Large estimate alongside an error wrapping
// ErrUnknownCell: the estimate stays usable — estimates steer
// scheduling and reporting, never results — but the caller decides
// whether an unknown identity is worth surfacing instead of the old
// silent fallback.
func EstimateCellSeconds(cfg cuda.SystemConfig, doc store.CellDoc) (float64, error) {
	var unknown error
	setup, err := cuda.ParseSetup(doc.Key.Setup)
	if err != nil {
		setup = cuda.Standard
		unknown = fmt.Errorf("%w: setup %q", ErrUnknownCell, doc.Key.Setup)
	}
	size, err := workloads.ParseSize(doc.Key.Size)
	if err != nil {
		size = workloads.Large
		if unknown == nil {
			unknown = fmt.Errorf("%w: size %q", ErrUnknownCell, doc.Key.Size)
		}
	}
	return staticCellSeconds(cfg, doc.Key.Kind, setup, size, doc.Key.Iters), unknown
}

// costKey identifies one cell shape in the observed-cost map. Iteration
// count is part of the shape: the counter studies run the same cells at
// one iteration, thirty times cheaper.
type costKey struct {
	kind  string
	setup cuda.Setup
	size  workloads.Size
	iters int
}

// costModel records measured per-cell wall seconds. It is shared by
// pointer across a Runner family, like the executor and the cell cache,
// so observations made by one study steer the scheduling of the next.
type costModel struct {
	mu       sync.RWMutex
	observed map[costKey]float64
}

func newCostModel() *costModel {
	return &costModel{observed: make(map[costKey]float64)}
}

// observe records a measured cell time, smoothing repeat observations
// (EWMA, half weight on the newest) so one descheduled outlier does not
// dominate.
func (m *costModel) observe(kind string, setup cuda.Setup, size workloads.Size, iters int, secs float64) {
	if m == nil || secs <= 0 {
		return
	}
	k := costKey{kind, setup, size, iters}
	m.mu.Lock()
	if old, ok := m.observed[k]; ok {
		secs = 0.5*old + 0.5*secs
	}
	m.observed[k] = secs
	m.mu.Unlock()
}

// lookup returns the recorded observation for a cell shape.
func (m *costModel) lookup(kind string, setup cuda.Setup, size workloads.Size, iters int) (float64, bool) {
	if m == nil {
		return 0, false
	}
	m.mu.RLock()
	s, ok := m.observed[costKey{kind, setup, size, iters}]
	m.mu.RUnlock()
	return s, ok
}

// cellCost returns the scheduling cost of one cell at the runner's
// iteration count: a recorded observation when one exists, the static
// estimate otherwise.
func (r *Runner) cellCost(kind string, setup cuda.Setup, size workloads.Size) float64 {
	if s, ok := r.costs.lookup(kind, setup, size, r.iters()); ok {
		return s
	}
	return staticCellSeconds(r.Config, kind, setup, size, r.iters())
}

// lptOrder builds a longest-processing-time-first dispatch order over n
// cells for forEachOrdered: indices sorted by descending cost, original
// order on ties (the stable sort keeps the schedule deterministic for a
// given cost vector). Returns nil — identity order — when ordering
// cannot help: one or two cells, or a serial executor.
func (r *Runner) lptOrder(n int, cost func(i int) float64) []int {
	if n <= 2 || r.parallelism() <= 1 {
		return nil
	}
	order := make([]int, n)
	costs := make([]float64, n)
	for i := range order {
		order[i] = i
		costs[i] = cost(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return costs[order[a]] > costs[order[b]]
	})
	return order
}
