package core

import (
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/metrics"
	"uvmasim/internal/store"
	"uvmasim/internal/workloads"
)

// TestInstrumentMetricsMirrorsCounters: the registry series attached by
// InstrumentMetrics must agree exactly with the runner's own accessors,
// on both the plain and the store-backed cache path, and the simulation
// instruments must cover exactly the cells that actually simulated.
func TestInstrumentMetricsMirrorsCounters(t *testing.T) {
	check := func(t *testing.T, r *Runner, reg *metrics.Registry) {
		t.Helper()
		w := mustWorkloads(t, "gemm")[0]
		if _, err := r.Measure(w, cuda.UVMPrefetch, workloads.Large); err != nil {
			t.Fatal(err)
		}
		// Second measurement of the same cell: a memory hit.
		if _, err := r.Measure(w, cuda.UVMPrefetch, workloads.Large); err != nil {
			t.Fatal(err)
		}
		pairs := map[string][2]uint64{
			"uvmbench_cell_cache_hits_total":   {reg.Counter("uvmbench_cell_cache_hits_total", "").Value(), r.CacheHits()},
			"uvmbench_cell_cache_misses_total": {reg.Counter("uvmbench_cell_cache_misses_total", "").Value(), r.CacheMisses()},
			"uvmbench_store_hits_total":        {reg.Counter("uvmbench_store_hits_total", "").Value(), r.StoreHits()},
			"uvmbench_store_misses_total":      {reg.Counter("uvmbench_store_misses_total", "").Value(), r.StoreMisses()},
		}
		for name, p := range pairs {
			if p[0] != p[1] {
				t.Errorf("%s = %d, runner accessor = %d", name, p[0], p[1])
			}
		}
		if r.CacheHits() == 0 || r.CacheMisses() == 0 {
			t.Errorf("expected both hits (%d) and misses (%d)", r.CacheHits(), r.CacheMisses())
		}
		simulated := reg.Counter("uvmbench_cells_simulated_total", "").Value()
		wantSim := r.CacheMisses() - r.StoreHits()
		if simulated != wantSim {
			t.Errorf("cells simulated = %d, want %d (memory misses minus store hits)", simulated, wantSim)
		}
		h := reg.Histogram("uvmbench_cell_seconds", "", nil)
		if h.Count() != simulated {
			t.Errorf("cell_seconds count = %d, want %d (one sample per simulated cell)", h.Count(), simulated)
		}
		if g := reg.Gauge("uvmbench_cells_inflight", "").Value(); g != 0 {
			t.Errorf("cells in flight after runs = %v, want 0", g)
		}
	}

	t.Run("plain", func(t *testing.T) {
		reg := metrics.New()
		r := testRunner(2)
		r.InstrumentMetrics(reg)
		check(t, r, reg)
	})
	t.Run("store", func(t *testing.T) {
		dir, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.New()
		r := storeRunner(dir)
		r.InstrumentMetrics(reg)
		check(t, r, reg)
		if h := reg.Counter("uvmbench_store_hits_total", "").Value(); h != 0 {
			t.Fatalf("cold store run reported %d store hits", h)
		}

		// A second process against the same store: every miss is a store
		// hit, and nothing simulates.
		reg2 := metrics.New()
		warm := storeRunner(dir)
		warm.InstrumentMetrics(reg2)
		if _, err := warm.Measure(mustWorkloads(t, "gemm")[0], cuda.UVMPrefetch, workloads.Large); err != nil {
			t.Fatal(err)
		}
		if hits := reg2.Counter("uvmbench_store_hits_total", "").Value(); hits != warm.CacheMisses() {
			t.Errorf("warm store hits = %d, want %d", hits, warm.CacheMisses())
		}
		if sim := reg2.Counter("uvmbench_cells_simulated_total", "").Value(); sim != 0 {
			t.Errorf("warm run simulated %d cells, want 0", sim)
		}
	})
}

// TestInstrumentMetricsNilSafe: a nil registry (or an uninstrumented
// runner) must behave exactly as before.
func TestInstrumentMetricsNilSafe(t *testing.T) {
	r := testRunner(2)
	r.InstrumentMetrics(nil)
	if _, err := r.Measure(mustWorkloads(t, "gemm")[0], cuda.UVMPrefetch, workloads.Large); err != nil {
		t.Fatal(err)
	}
	if r.CacheMisses() == 0 {
		t.Error("uninstrumented runner should still count misses")
	}
}
