package core

import (
	"strings"
	"testing"

	"uvmasim/internal/cuda"
)

func TestOversubscriptionSweep(t *testing.T) {
	r := testRunner(1)
	study, err := r.Oversubscription(cuda.UVMPrefetch, []float64{0.5, 0.9, 1.3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Points) != 3 {
		t.Fatalf("points = %d", len(study.Points))
	}
	under, fit, over := study.Points[0], study.Points[1], study.Points[2]
	// Within capacity: no eviction at all.
	if under.EvictedBytes != 0 || fit.EvictedBytes != 0 {
		t.Errorf("eviction below capacity: %v / %v bytes", under.EvictedBytes, fit.EvictedBytes)
	}
	// Past capacity: eviction churn appears and throughput collapses.
	if over.EvictedBytes <= 0 {
		t.Errorf("oversubscribed sweep should evict")
	}
	if over.BytesPerNs >= fit.BytesPerNs*0.8 {
		t.Errorf("oversubscription should cost throughput: %.2f vs %.2f GB/s",
			over.BytesPerNs, fit.BytesPerNs)
	}
	// Second pass over an in-capacity footprint is fault-free; the
	// oversubscribed one keeps faulting.
	if over.PageFaults <= fit.PageFaults {
		t.Errorf("oversubscribed run should fault more: %v vs %v", over.PageFaults, fit.PageFaults)
	}
	if !strings.Contains(study.Render(), "Oversubscription") {
		t.Error("render incomplete")
	}
}

func TestOversubscriptionRequiresUVM(t *testing.T) {
	r := testRunner(1)
	if _, err := r.Oversubscription(cuda.Standard, []float64{0.5}, 1); err == nil {
		t.Error("standard setup should be rejected")
	}
}
