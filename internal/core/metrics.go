package core

import (
	"time"

	"uvmasim/internal/cuda"
	"uvmasim/internal/metrics"
	"uvmasim/internal/workloads"
)

// This file threads the process-wide metrics registry (internal/metrics)
// through the experiment harness: the cell cache's two tiers, the
// parallel executor's simulation traffic, and — since the intra-cell
// fan-out — the iteration plane. Instruments live on the shared
// cellCache — the same place as the existing atomic hit/miss counters —
// so a whole Runner family (value copies sharing one cache) reports into
// one set of series. All hooks are nil-safe, and every per-iteration
// operation is an alloc-free atomic update, so the zero-alloc steady
// state of the iteration loop survives instrumentation (enforced by
// alloc_test.go).

// cellInstruments is the set of executor/cache metric hooks. The zero
// value (all nil) is the disabled state.
type cellInstruments struct {
	memHits     *metrics.Counter
	memMisses   *metrics.Counter
	storeHits   *metrics.Counter
	storeMisses *metrics.Counter
	simulated   *metrics.Counter
	inFlight    *metrics.Gauge
	cellSeconds *metrics.Histogram
	// Iteration plane: how many iterations are simulating right now
	// across all worker contexts, and how long each one took. Observed
	// inside cellLoop with plain atomics — no allocation, no lock.
	itersInFlight *metrics.Gauge
	iterSeconds   *metrics.Histogram
}

// noInstruments is the shared disabled instrument set for runners
// without a cell cache (zero-value Runners in tests).
var noInstruments cellInstruments

// iterSecondsBuckets resolves single iterations, which run one to three
// orders of magnitude faster than whole 30-iteration cells
// (DefSecondsBuckets starts at 500µs — too coarse for a 40µs
// iteration).
var iterSecondsBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// timedCompute executes one cell simulation under the executor
// instruments (in-flight gauge, wall-time histogram, simulated-cells
// counter) and feeds the measured wall time to the cost model and the
// family-wide simulated-seconds accumulator. The instruments are
// nil-safe no-ops when unregistered; the timing itself always runs,
// because the cost model's LPT scheduling wants real observations even
// in uninstrumented batch runs.
func (r *Runner) timedCompute(kind string, setup cuda.Setup, size workloads.Size, compute func() (Result, error)) (Result, error) {
	inst := &noInstruments
	if r.cache != nil {
		inst = &r.cache.inst
	}
	inst.inFlight.Add(1)
	start := time.Now()
	res, err := compute()
	secs := time.Since(start).Seconds()
	inst.inFlight.Add(-1)
	inst.cellSeconds.Observe(secs)
	inst.simulated.Inc()
	if r.cache != nil {
		r.cache.addSimSeconds(secs)
	}
	if err == nil && r.costs != nil {
		r.costs.observe(kind, setup, size, r.iters(), secs)
	}
	return res, err
}

// InstrumentMetrics registers the harness's cache and executor series
// with reg and attaches them to the runner's shared cell cache, so every
// study on this Runner family reports cache traffic, store traffic,
// per-cell simulation wall time and per-iteration wall time. Call it
// once, before running studies (the hooks are read concurrently by
// executor workers afterwards). A nil registry, or a cache-disabled path
// (Cache=false, TraceHook), stays unobserved. Counter values mirror
// CacheHits/CacheMisses/StoreHits/StoreMisses; the histograms and gauges
// cover only actually simulated cells — store hits resolve inside the
// singleflight slot without touching them, which is what makes the
// warm-hit vs cold-simulation split visible on a /metrics dashboard.
func (r *Runner) InstrumentMetrics(reg *metrics.Registry) {
	if reg == nil || r.cache == nil {
		return
	}
	r.cache.inst = cellInstruments{
		memHits: reg.Counter("uvmbench_cell_cache_hits_total",
			"Cell lookups served by the in-memory cell cache."),
		memMisses: reg.Counter("uvmbench_cell_cache_misses_total",
			"Cell lookups that missed the in-memory cell cache."),
		storeHits: reg.Counter("uvmbench_store_hits_total",
			"In-memory misses served by the persistent cell store."),
		storeMisses: reg.Counter("uvmbench_store_misses_total",
			"In-memory misses that also missed the persistent store and simulated."),
		simulated: reg.Counter("uvmbench_cells_simulated_total",
			"Measurement cells actually simulated (not replayed from any cache tier)."),
		inFlight: reg.Gauge("uvmbench_cells_inflight",
			"Measurement cells currently simulating on the parallel executor."),
		cellSeconds: reg.Histogram("uvmbench_cell_seconds",
			"Wall time of one simulated measurement cell (all iterations).",
			metrics.DefSecondsBuckets),
		itersInFlight: reg.Gauge("uvmbench_iterations_inflight",
			"Cell iterations currently simulating across all worker contexts."),
		iterSeconds: reg.Histogram("uvmbench_iteration_seconds",
			"Wall time of one simulated cell iteration.",
			iterSecondsBuckets),
	}
}
