package core

import (
	"time"

	"uvmasim/internal/metrics"
)

// This file threads the process-wide metrics registry (internal/metrics)
// through the experiment harness: the cell cache's two tiers and the
// parallel executor's simulation traffic. Instruments live on the shared
// cellCache — the same place as the existing atomic hit/miss counters —
// so a whole Runner family (value copies sharing one cache) reports into
// one set of series. All hooks are nil-safe: an uninstrumented runner
// pays a nil check per cell, and nothing per iteration (instrumentation
// is at cell granularity, outside the alloc-free iteration loop).

// cellInstruments is the set of executor/cache metric hooks. The zero
// value (all nil) is the disabled state.
type cellInstruments struct {
	memHits     *metrics.Counter
	memMisses   *metrics.Counter
	storeHits   *metrics.Counter
	storeMisses *metrics.Counter
	simulated   *metrics.Counter
	inFlight    *metrics.Gauge
	cellSeconds *metrics.Histogram
}

// run executes one cell simulation under the executor instruments:
// in-flight gauge up/down, wall-time histogram sample, simulated-cells
// counter. Uninstrumented, it is the identity wrapper.
func (in *cellInstruments) run(compute func() (Result, error)) (Result, error) {
	if in.cellSeconds == nil {
		return compute()
	}
	in.inFlight.Add(1)
	start := time.Now()
	res, err := compute()
	in.cellSeconds.Observe(time.Since(start).Seconds())
	in.inFlight.Add(-1)
	in.simulated.Inc()
	return res, err
}

// InstrumentMetrics registers the harness's cache and executor series
// with reg and attaches them to the runner's shared cell cache, so every
// study on this Runner family reports cache traffic, store traffic and
// per-cell simulation wall time. Call it once, before running studies
// (the hooks are read concurrently by executor workers afterwards). A
// nil registry, or a cache-disabled path (Cache=false, TraceHook), stays
// unobserved. Counter values mirror CacheHits/CacheMisses/StoreHits/
// StoreMisses; the histogram and gauge cover only actually simulated
// cells — store hits resolve inside the singleflight slot without
// touching them, which is what makes the warm-hit vs cold-simulation
// split visible on a /metrics dashboard.
func (r *Runner) InstrumentMetrics(reg *metrics.Registry) {
	if reg == nil || r.cache == nil {
		return
	}
	r.cache.inst = cellInstruments{
		memHits: reg.Counter("uvmbench_cell_cache_hits_total",
			"Cell lookups served by the in-memory cell cache."),
		memMisses: reg.Counter("uvmbench_cell_cache_misses_total",
			"Cell lookups that missed the in-memory cell cache."),
		storeHits: reg.Counter("uvmbench_store_hits_total",
			"In-memory misses served by the persistent cell store."),
		storeMisses: reg.Counter("uvmbench_store_misses_total",
			"In-memory misses that also missed the persistent store and simulated."),
		simulated: reg.Counter("uvmbench_cells_simulated_total",
			"Measurement cells actually simulated (not replayed from any cache tier)."),
		inFlight: reg.Gauge("uvmbench_cells_inflight",
			"Measurement cells currently simulating on the parallel executor."),
		cellSeconds: reg.Histogram("uvmbench_cell_seconds",
			"Wall time of one simulated measurement cell (all iterations).",
			metrics.DefSecondsBuckets),
	}
}
