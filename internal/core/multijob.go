package core

import (
	"fmt"

	"uvmasim/internal/cuda"
	"uvmasim/internal/stats"
	"uvmasim/internal/workloads"
)

// MultiJobResult is the §6 / Figure 14 analysis: batch processing of
// independent jobs with and without the proposed inter-job data-transfer
// model, in which job i+1's allocation (cudaMallocManaged) and job i's
// deallocation (cudaFree) run on the otherwise idle CPU while the GPU
// executes kernels.
type MultiJobResult struct {
	Workload string
	Setup    cuda.Setup
	Jobs     int

	// Per-job stage times (mean of the measured runs).
	Alloc    float64
	Transfer float64
	Kernel   float64

	// SerialTotal chains jobs end to end (today's model, Figure 14 top).
	SerialTotal float64
	// PipelinedTotal overlaps CPU allocation work with GPU execution of
	// the neighboring jobs (Figure 14 bottom).
	PipelinedTotal float64
	// Improvement is 1 - pipelined/serial.
	Improvement float64

	// Shares of the serial per-job time, the quantities §6.1 reports
	// (allocation 37.66%, kernel 37.79% under uvm_prefetch_async).
	AllocShare  float64
	KernelShare float64
	// Occupancy is the measured time-average SM occupancy.
	Occupancy float64
}

// MultiJob measures workload w once under setup and projects a batch of
// the given number of identical jobs through both schedules.
func (r *Runner) MultiJob(name string, setup cuda.Setup, size workloads.Size, jobs int) (*MultiJobResult, error) {
	if jobs < 1 {
		return nil, fmt.Errorf("core: job count must be positive, got %d", jobs)
	}
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	res, err := r.Measure(w, setup, size)
	if err != nil {
		return nil, err
	}
	mb := res.MeanBreakdown()

	out := &MultiJobResult{
		Workload: name,
		Setup:    setup,
		Jobs:     jobs,
		Alloc:    mb.Alloc,
		Transfer: mb.Memcpy,
		Kernel:   mb.Kernel,
	}
	perJob := mb.Alloc + mb.Memcpy + mb.Kernel
	out.AllocShare = mb.Alloc / perJob
	out.KernelShare = mb.Kernel / perJob
	out.Occupancy = res.Counters.Occupancy()

	// Serial (current) model: every job runs its full pipeline alone.
	out.SerialTotal = float64(jobs) * perJob

	// Pipelined model: the CPU-side allocation/free of neighbouring jobs
	// hides behind the GPU phase (transfer+kernel). The first job's
	// allocation and the last job's free remain exposed; each steady-
	// state job costs max(GPU phase, CPU phase).
	gpuPhase := mb.Memcpy + mb.Kernel
	cpuPhase := mb.Alloc
	steady := gpuPhase
	if cpuPhase > steady {
		steady = cpuPhase
	}
	out.PipelinedTotal = mb.Alloc + float64(jobs)*steady
	out.Improvement = 1 - out.PipelinedTotal/out.SerialTotal
	return out, nil
}

// PipelineStats aggregates the §6.1 quantities over a set of workloads:
// the share of time spent on data transfer and allocation, and the mean
// occupancy, before (standard) and after (uvm_prefetch_async).
type PipelineStats struct {
	Setup         cuda.Setup
	TransferShare float64
	AllocShare    float64
	KernelShare   float64
	Occupancy     float64
}

// PipelineShares measures the given workloads under one setup at a size
// and averages the component shares of the region of interest.
func (r *Runner) PipelineShares(ws []workloads.Workload, setup cuda.Setup, size workloads.Size) (PipelineStats, error) {
	results := make([]Result, len(ws))
	err := r.forEach(len(ws), func(i int) error {
		res, err := r.Measure(ws[i], setup, size)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return PipelineStats{}, err
	}
	var tr, al, ke, occ []float64
	for _, res := range results {
		mb := res.MeanBreakdown()
		roi := mb.Alloc + mb.Memcpy + mb.Kernel
		if roi <= 0 {
			continue
		}
		tr = append(tr, mb.Memcpy/roi)
		al = append(al, mb.Alloc/roi)
		ke = append(ke, mb.Kernel/roi)
		occ = append(occ, res.Counters.Occupancy())
	}
	return PipelineStats{
		Setup:         setup,
		TransferShare: stats.Mean(tr),
		AllocShare:    stats.Mean(al),
		KernelShare:   stats.Mean(ke),
		Occupancy:     stats.Mean(occ),
	}, nil
}
