package core

import (
	"fmt"

	"uvmasim/internal/cuda"
	"uvmasim/internal/stats"
	"uvmasim/internal/trace"
	"uvmasim/internal/workloads"
)

// --- Figures 4 & 5: run-to-run distributions across input sizes ----------

// DistCell is one (workload, setup, size) distribution.
type DistCell struct {
	Workload string
	Setup    cuda.Setup
	Size     workloads.Size
	Summary  stats.Summary
	CV       float64 // std/mean, the Figure 5 quantity
}

// DistributionStudy holds the Figure 4/5 measurement grid.
type DistributionStudy struct {
	Sizes     []workloads.Size
	Workloads []string
	Setups    []cuda.Setup // the study's setup list, in presentation order
	Cells     []DistCell
}

// Distributions measures every (workload, setup, size) combination of
// the runner's setup list. The cells fan out across the executor; the
// study keeps them in the fixed workload-major, size, setup order.
func (r *Runner) Distributions(ws []workloads.Workload, sizes []workloads.Size) (*DistributionStudy, error) {
	setups := r.setups()
	study := &DistributionStudy{Sizes: sizes, Setups: setups}
	for _, w := range ws {
		study.Workloads = append(study.Workloads, w.Name())
	}
	nSetups := len(setups)
	cells := make([]DistCell, len(ws)*len(sizes)*nSetups)
	at := func(i int) (workloads.Workload, workloads.Size, cuda.Setup) {
		return ws[i/(len(sizes)*nSetups)], sizes[(i/nSetups)%len(sizes)], setups[i%nSetups]
	}
	order := r.lptOrder(len(cells), func(i int) float64 {
		w, size, setup := at(i)
		return r.cellCost(w.Name(), setup, size)
	})
	err := r.forEachOrdered(len(cells), order, func(i int) error {
		w, size, setup := at(i)
		res, err := r.Measure(w, setup, size)
		if err != nil {
			return err
		}
		totals := res.Totals()
		cells[i] = DistCell{
			Workload: w.Name(),
			Setup:    setup,
			Size:     size,
			Summary:  stats.Summarize(totals),
			CV:       stats.CoefVar(totals),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	study.Cells = cells
	return study, nil
}

// CV returns the mean coefficient of variation for a workload at a size,
// averaged across the study's setups (Figure 5 plots this).
func (d *DistributionStudy) CV(workload string, size workloads.Size) float64 {
	var cvs []float64
	for _, c := range d.Cells {
		if c.Workload == workload && c.Size == size {
			cvs = append(cvs, c.CV)
		}
	}
	return stats.Mean(cvs)
}

// GeoMeanCV returns the geometric mean of per-workload CVs at a size
// (the paper's Geo-mean bar in Figure 5).
func (d *DistributionStudy) GeoMeanCV(size workloads.Size) float64 {
	var cvs []float64
	for _, w := range d.Workloads {
		cvs = append(cvs, d.CV(w, size))
	}
	return stats.GeoMean(cvs)
}

// --- Figure 6: per-run breakdown instability at Mega ---------------------

// Fig6 holds the per-run breakdowns of vector_seq at the Mega input.
type Fig6 struct {
	Runs []cuda.Breakdown
}

// Fig6 measures vector_seq at Mega under the standard setup, exposing
// the host-DRAM chip-boundary memcpy variance (Takeaway 1).
func (r *Runner) Fig6() (*Fig6, error) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		return nil, err
	}
	res, err := r.Measure(w, cuda.Standard, workloads.Mega)
	if err != nil {
		return nil, err
	}
	return &Fig6{Runs: res.Breakdowns}, nil
}

// MemcpyCV returns std/mean of the memcpy component across runs.
func (f *Fig6) MemcpyCV() float64 {
	vals := make([]float64, len(f.Runs))
	for i, b := range f.Runs {
		vals[i] = b.Memcpy
	}
	return stats.CoefVar(vals)
}

// KernelCV returns std/mean of the kernel component across runs.
func (f *Fig6) KernelCV() float64 {
	vals := make([]float64, len(f.Runs))
	for i, b := range f.Runs {
		vals[i] = b.Kernel
	}
	return stats.CoefVar(vals)
}

// --- Figures 7 & 8: multi-setup breakdown comparison ----------------------

// BreakdownRow is one workload's mean breakdown under each setup of the
// study's list (BreakdownStudy.Setups order). Baseline is the list
// position improvement math normalizes against.
type BreakdownRow struct {
	Workload string
	BySetup  []cuda.Breakdown
	Baseline int
}

// Normalized returns component times normalized to the baseline setup's
// total (the standard setup whenever the study includes it).
func (row BreakdownRow) Normalized(setup int) (kernel, memcpy, alloc, total float64) {
	base := row.BySetup[row.Baseline].Total - row.BySetup[row.Baseline].Overhead
	if base <= 0 {
		return 0, 0, 0, 0
	}
	b := row.BySetup[setup]
	return b.Kernel / base, b.Memcpy / base, b.Alloc / base, (b.Total - b.Overhead) / base
}

// BreakdownStudy is the Figure 7/8 grid at one input size.
type BreakdownStudy struct {
	Size     workloads.Size
	Setups   []cuda.Setup // the study's setup list, in presentation order
	Baseline int          // position in Setups improvement math normalizes against
	Rows     []BreakdownRow
}

// BreakdownComparison measures the mean breakdown of each workload at
// the given size under every setup in the runner's study list, fanning
// every (workload, setup) cell across the executor.
func (r *Runner) BreakdownComparison(ws []workloads.Workload, size workloads.Size) (*BreakdownStudy, error) {
	setups := r.setups()
	nSetups := len(setups)
	grid := make([]cuda.Breakdown, len(ws)*nSetups)
	order := r.lptOrder(len(grid), func(i int) float64 {
		return r.cellCost(ws[i/nSetups].Name(), setups[i%nSetups], size)
	})
	err := r.forEachOrdered(len(grid), order, func(i int) error {
		res, err := r.Measure(ws[i/nSetups], setups[i%nSetups], size)
		if err != nil {
			return err
		}
		grid[i] = res.MeanBreakdown()
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := cuda.BaselineIndex(setups)
	study := &BreakdownStudy{
		Size:     size,
		Setups:   setups,
		Baseline: base,
		Rows:     make([]BreakdownRow, len(ws)),
	}
	for wi, w := range ws {
		study.Rows[wi] = BreakdownRow{
			Workload: w.Name(),
			BySetup:  grid[wi*nSetups : (wi+1)*nSetups],
			Baseline: base,
		}
	}
	return study, nil
}

// setupIndex returns the study-list position of a setup, or -1.
func setupIndex(setups []cuda.Setup, setup cuda.Setup) int {
	for i, s := range setups {
		if s == setup {
			return i
		}
	}
	return -1
}

// GeoMeanImprovement returns the geometric-mean relative total-time
// improvement of the given setup over the study's baseline across the
// study's workloads (positive = faster), the §4.1 headline statistic.
// The fixed process overhead is excluded, as the paper's
// region-of-interest measurement does. A setup outside the study's
// list reports zero.
func (s *BreakdownStudy) GeoMeanImprovement(setup cuda.Setup) float64 {
	si := setupIndex(s.Setups, setup)
	if si < 0 {
		return 0
	}
	var ratios []float64
	for _, row := range s.Rows {
		std := row.BySetup[s.Baseline].Total - row.BySetup[s.Baseline].Overhead
		cur := row.BySetup[si].Total - row.BySetup[si].Overhead
		if std > 0 && cur > 0 {
			ratios = append(ratios, cur/std)
		}
	}
	return 1 - stats.GeoMean(ratios)
}

// ComponentSavings returns the mean relative reduction of one breakdown
// component (e.g. memcpy) under a setup versus the study's baseline.
func (s *BreakdownStudy) ComponentSavings(setup cuda.Setup, component func(cuda.Breakdown) float64) float64 {
	si := setupIndex(s.Setups, setup)
	if si < 0 {
		return 0
	}
	var ratios []float64
	for _, row := range s.Rows {
		std := component(row.BySetup[s.Baseline])
		cur := component(row.BySetup[si])
		if std > 0 {
			ratios = append(ratios, cur/std)
		}
	}
	return 1 - stats.Mean(ratios)
}

// Row returns the row for a workload.
func (s *BreakdownStudy) Row(workload string) (BreakdownRow, error) {
	for _, row := range s.Rows {
		if row.Workload == workload {
			return row, nil
		}
	}
	return BreakdownRow{}, fmt.Errorf("core: workload %q not in study", workload)
}

// --- Figures 9 & 10: instruction mix and cache miss rates ----------------

// CounterRow holds the profiled counters of one workload under one setup.
type CounterRow struct {
	Workload string
	Setup    cuda.Setup

	CtrlInst      float64
	IntInst       float64
	MemInst       float64
	FPInst        float64
	LoadMissRate  float64
	StoreMissRate float64
}

// CounterStudy is the Figure 9/10 data (gemm, lud, yolov3 in the paper).
type CounterStudy struct {
	Size workloads.Size
	Rows []CounterRow
}

// CounterComparison profiles the named workloads under every setup.
// Counter collection needs a single run per cell (values are
// deterministic per seed), matching the paper's separate profiling pass.
func (r *Runner) CounterComparison(names []string, size workloads.Size) (*CounterStudy, error) {
	ws := make([]workloads.Workload, len(names))
	for i, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	// The copy shares the executor and cell cache with r, so a repeated
	// counter study (fig9 then fig10) is fully deduplicated.
	single := *r
	single.Iterations = 1
	setups := r.setups()
	nSetups := len(setups)
	rows := make([]CounterRow, len(ws)*nSetups)
	order := single.lptOrder(len(rows), func(i int) float64 {
		return single.cellCost(names[i/nSetups], setups[i%nSetups], size)
	})
	err := single.forEachOrdered(len(rows), order, func(i int) error {
		name := names[i/nSetups]
		setup := setups[i%nSetups]
		res, err := single.Measure(ws[i/nSetups], setup, size)
		if err != nil {
			return err
		}
		rows[i] = CounterRow{
			Workload:      name,
			Setup:         setup,
			CtrlInst:      res.Counters.Inst.Ctrl,
			IntInst:       res.Counters.Inst.Int,
			MemInst:       res.Counters.Inst.Mem,
			FPInst:        res.Counters.Inst.FP,
			LoadMissRate:  res.Counters.L1.LoadMissRate(),
			StoreMissRate: res.Counters.L1.StoreMissRate(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &CounterStudy{Size: size, Rows: rows}, nil
}

// Row returns the counters for (workload, setup).
func (s *CounterStudy) Row(workload string, setup cuda.Setup) (CounterRow, error) {
	for _, row := range s.Rows {
		if row.Workload == workload && row.Setup == setup {
			return row, nil
		}
	}
	return CounterRow{}, fmt.Errorf("core: no counter row for %s/%s", workload, setup)
}

// --- Figures 11-13: sensitivity sweeps ------------------------------------

// SweepPoint is one x-axis value of a sensitivity sweep with the mean
// breakdowns per study setup.
type SweepPoint struct {
	Param   float64
	BySetup []cuda.Breakdown
}

// Sweep is a Figure 11/12/13 dataset.
type Sweep struct {
	Name      string
	ParamName string
	Size      workloads.Size
	Setups    []cuda.Setup // the study's setup list, in presentation order
	Baseline  int          // position in Setups normalization uses
	Points    []SweepPoint
}

// sweep runs vector_seq sensitivity measurements over params, using opt
// to translate a parameter value into launch options. Every
// (param, setup) cell fans out across the executor and is memoized in
// the cell cache under a key that includes the swept parameter.
func (r *Runner) sweep(name, paramName string, size workloads.Size, params []float64,
	opt func(p float64) workloads.SensitivityOptions) (*Sweep, error) {
	setups := r.setups()
	nSetups := len(setups)
	grid := make([]cuda.Breakdown, len(params)*nSetups)
	order := r.lptOrder(len(grid), func(i int) float64 {
		p := params[i/nSetups]
		setup := setups[i%nSetups]
		return r.cellCost(fmt.Sprintf("sweep:%s:%g", name, p), setup, size)
	})
	err := r.forEachOrdered(len(grid), order, func(i int) error {
		p := params[i/nSetups]
		setup := setups[i%nSetups]
		kind := fmt.Sprintf("sweep:%s:%g", name, p)
		res, err := r.cached(kind, setup, size, func() (Result, error) {
			return r.sweepCell(name, setup, size, p, opt(p))
		})
		if err != nil {
			return err
		}
		grid[i] = res.MeanBreakdown()
		return nil
	})
	if err != nil {
		return nil, err
	}
	sw := &Sweep{
		Name:      name,
		ParamName: paramName,
		Size:      size,
		Setups:    setups,
		Baseline:  cuda.BaselineIndex(setups),
		Points:    make([]SweepPoint, len(params)),
	}
	for pi, p := range params {
		sw.Points[pi] = SweepPoint{Param: p, BySetup: grid[pi*nSetups : (pi+1)*nSetups]}
	}
	return sw, nil
}

// sweepCell measures the repeated iterations of one sensitivity cell,
// each from its own derived seed, through the same deterministic
// iteration fan-out as measureCell. Sweep results carry no counters
// (final is nil), keeping the stored artifacts identical to the
// pre-fan-out format.
func (r *Runner) sweepCell(name string, setup cuda.Setup, size workloads.Size,
	p float64, opts workloads.SensitivityOptions) (Result, error) {
	res := Result{Setup: setup, Size: size, Breakdowns: make([]cuda.Breakdown, r.iters())}
	seed := func(i int) int64 { return r.seedFor(name, setup, size, i) + int64(p*17) }
	var hook func(i int) *trace.Tracer
	if r.TraceHook != nil {
		hook = func(i int) *trace.Tracer { return r.TraceHook(name, setup, size, i) }
	}
	err := r.cellLoop(setup, seed, hook, func(ctx *cuda.Context, i int) error {
		return workloads.RunVectorSeqSensitivity(ctx, size, opts)
	}, res.Breakdowns, nil)
	return res, err
}

// SweepBlocks is Figure 11: vary the number of blocks with 256 threads.
func (r *Runner) SweepBlocks(size workloads.Size, blocks []int) (*Sweep, error) {
	params := make([]float64, len(blocks))
	for i, b := range blocks {
		params[i] = float64(b)
	}
	return r.sweep("fig11-blocks", "#blocks", size, params, func(p float64) workloads.SensitivityOptions {
		return workloads.SensitivityOptions{Blocks: int(p), ThreadsPerBlock: 256}
	})
}

// SweepThreads is Figure 12: vary threads per block with 64 blocks.
func (r *Runner) SweepThreads(size workloads.Size, threads []int) (*Sweep, error) {
	params := make([]float64, len(threads))
	for i, t := range threads {
		params[i] = float64(t)
	}
	return r.sweep("fig12-threads", "#threads", size, params, func(p float64) workloads.SensitivityOptions {
		return workloads.SensitivityOptions{Blocks: 64, ThreadsPerBlock: int(p)}
	})
}

// SweepShared is Figure 13: vary the shared-memory allocation per block.
// The grid is pinned to one block per SM so the per-block allocation maps
// one-to-one onto the SM's L1/shared partition.
func (r *Runner) SweepShared(size workloads.Size, kbs []float64) (*Sweep, error) {
	return r.sweep("fig13-shared", "sharedKB", size, kbs, func(p float64) workloads.SensitivityOptions {
		return workloads.SensitivityOptions{Blocks: 108, ThreadsPerBlock: 256, SharedPerBlockKB: p}
	})
}

// Point returns the sweep point measured at the given parameter value
// (e.g. sw.Point(128) for the 128-thread launch), so callers never index
// Points by hard-coded position.
func (s *Sweep) Point(value float64) (SweepPoint, error) {
	for _, p := range s.Points {
		if p.Param == value {
			return p, nil
		}
	}
	return SweepPoint{}, fmt.Errorf("core: sweep %s has no point at %s=%v", s.Name, s.ParamName, value)
}

// Normalized returns a point's total for a setup normalized to the
// study's baseline setup at the sweep's first point, overhead excluded.
func (s *Sweep) Normalized(pointIdx, setup int) float64 {
	return s.NormalizedPoint(s.Points[pointIdx], setup)
}

// NormalizedPoint is Normalized for a point obtained via Point (or by
// ranging over Points) rather than a positional index.
func (s *Sweep) NormalizedPoint(p SweepPoint, setup int) float64 {
	base := s.Points[0].BySetup[s.Baseline].Total - s.Points[0].BySetup[s.Baseline].Overhead
	if base <= 0 {
		return 0
	}
	b := p.BySetup[setup]
	return (b.Total - b.Overhead) / base
}
