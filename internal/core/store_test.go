package core

import (
	"os"
	"path/filepath"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/sched"
	"uvmasim/internal/store"
	"uvmasim/internal/topo"
	"uvmasim/internal/workloads"
)

// storeRunner returns a low-iteration runner backed by the given store.
func storeRunner(s CellStore) *Runner {
	r := testRunner(2)
	r.Store = s
	return r
}

// renderSuite runs a mixed study set — a breakdown grid, a counter
// study, an oversubscription sweep and a multi-GPU schedule grid — and
// returns the concatenated rendered output. It covers every cell shape
// the store must round-trip.
func renderSuite(t *testing.T, r *Runner) string {
	t.Helper()
	study, err := r.BreakdownComparison(workloads.Micro()[:3], workloads.Large)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := r.CounterComparison([]string{"gemm", "lud"}, workloads.Large)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := r.Oversubscription(cuda.UVMPrefetch, []float64{0.5, 1.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := r.MultiGPU("vector_seq", cuda.UVMPrefetchAsync, workloads.Large,
		3, []int{1, 2}, []topo.Kind{topo.PCIeSwitch, topo.NVLink}, sched.LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	return study.Render("Figure 7") + cs.RenderFig9() + ov.Render() + mg.Render()
}

// TestStoreWarmRerun is the tentpole's core guarantee: a second process
// (modelled as a fresh Runner with an empty in-memory cache) backed by
// the same store renders byte-identical output without simulating.
func TestStoreWarmRerun(t *testing.T) {
	dir, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	cold := storeRunner(dir)
	want := renderSuite(t, cold)
	if cold.StoreHits() != 0 {
		t.Errorf("cold run should not hit the store, got %d hits", cold.StoreHits())
	}
	if cold.StoreMisses() != cold.CacheMisses() {
		t.Errorf("every memory miss should consult the store: %d store misses vs %d cache misses",
			cold.StoreMisses(), cold.CacheMisses())
	}
	if dir.Len() == 0 {
		t.Fatal("cold run should populate the store")
	}

	warm := storeRunner(dir)
	got := renderSuite(t, warm)
	if got != want {
		t.Errorf("warm rerun diverges from cold run:\n%s\nvs\n%s", got, want)
	}
	if warm.StoreMisses() != 0 {
		t.Errorf("warm rerun simulated %d cells, want 0", warm.StoreMisses())
	}
	if warm.StoreHits() != warm.CacheMisses() {
		t.Errorf("warm rerun: %d store hits vs %d memory misses", warm.StoreHits(), warm.CacheMisses())
	}
}

// TestStoreCorruptionRecomputes: damaging a stored entry degrades to
// recomputation with identical output, never a wrong figure.
func TestStoreCorruptionRecomputes(t *testing.T) {
	dir, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := renderSuite(t, storeRunner(dir))

	// Corrupt every entry: truncated JSON on disk.
	root := filepath.Dir(dir.Path(store.Key{}))
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		p := filepath.Join(root, e.Name())
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, b[:len(b)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r := storeRunner(dir)
	if got := renderSuite(t, r); got != want {
		t.Errorf("post-corruption rerun diverges:\n%s\nvs\n%s", got, want)
	}
	if r.StoreHits() != 0 {
		t.Errorf("corrupted entries served %d hits", r.StoreHits())
	}
	if r.StoreMisses() != r.CacheMisses() {
		t.Errorf("corrupted entries should all miss: %d misses vs %d cache misses",
			r.StoreMisses(), r.CacheMisses())
	}
	// And the recompute healed the store.
	warm := storeRunner(dir)
	if got := renderSuite(t, warm); got != want {
		t.Error("healed store diverges")
	}
	if warm.StoreMisses() != 0 {
		t.Errorf("healed store still simulated %d cells", warm.StoreMisses())
	}
}

// TestShardPartitionCoversKeyspace: for several shard counts, the cells
// captured by the n shard runners form a disjoint, complete partition of
// the unsharded capture set — the property `uvmbench merge` relies on.
func TestShardPartitionCoversKeyspace(t *testing.T) {
	full := testRunner(2)
	full.Capture = store.NewMem()
	renderSuite(t, full)
	want := map[store.Key]bool{}
	for _, doc := range full.Capture.Docs() {
		want[doc.Key] = true
	}
	if len(want) == 0 {
		t.Fatal("capture recorded no cells")
	}

	for _, n := range []int{2, 3, 5} {
		got := map[store.Key]int{}
		for i := 1; i <= n; i++ {
			r := testRunner(2)
			r.ShardIndex, r.ShardCount = i, n
			r.Capture = store.NewMem()
			renderSuite(t, r)
			for _, doc := range r.Capture.Docs() {
				got[doc.Key]++
			}
		}
		if len(got) != len(want) {
			t.Errorf("n=%d: shards captured %d unique cells, want %d", n, len(got), len(want))
		}
		for key, count := range got {
			if count != 1 {
				t.Errorf("n=%d: cell %v owned by %d shards", n, key, count)
			}
			if !want[key] {
				t.Errorf("n=%d: cell %v not in unsharded capture", n, key)
			}
		}
	}
}

// TestCaptureRecordsMemoryHits: warm shard reruns must still emit full
// artifacts, so Capture sees cells served from the in-memory cache too.
func TestCaptureRecordsMemoryHits(t *testing.T) {
	r := testRunner(2)
	r.Capture = store.NewMem()
	w := mustWorkloads(t, "vector_seq")[0]
	if _, err := r.Measure(w, cuda.Standard, workloads.Small); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Measure(w, cuda.Standard, workloads.Small); err != nil {
		t.Fatal(err)
	}
	if r.CacheHits() != 1 {
		t.Fatalf("second Measure should hit the memory cache, hits=%d", r.CacheHits())
	}
	if r.Capture.Len() != 1 {
		t.Errorf("capture holds %d cells, want 1", r.Capture.Len())
	}
}
