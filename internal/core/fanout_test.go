package core

import (
	"reflect"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/workloads"
)

// Determinism tests for the intra-cell iteration fan-out: splitting a
// cell's iterations across worker contexts must leave every observable
// output — per-iteration breakdowns, the final-iteration counters
// snapshot, whole figure documents — byte-identical to the serial loop.

// TestFanoutCountersMatchSerial pins the Result.Counters contract: the
// counters snapshot comes from the final iteration, whether that
// iteration ran on the caller's context (serial) or on the last block's
// worker context (fan-out). Every setup is checked because each drives
// a different counter mix (fault counts, prefetch traffic, memcpy
// bytes).
func TestFanoutCountersMatchSerial(t *testing.T) {
	w, err := workloads.ByName("vector_rand")
	if err != nil {
		t.Fatal(err)
	}
	serial := testRunner(6)
	serial.Parallelism = 1
	for _, setup := range cuda.Registered() {
		setup := setup
		t.Run(setup.String(), func(t *testing.T) {
			want, err := serial.measureCell(w, setup, workloads.Large)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []struct {
				name       string
				par, itpar int
			}{
				{"itpar", 1, 4},
				{"par+itpar", 4, 4},
				{"itpar>iters", 1, 16},
			} {
				fan := testRunner(6)
				fan.Parallelism = par.par
				fan.IterParallelism = par.itpar
				got, err := fan.measureCell(w, setup, workloads.Large)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Counters, want.Counters) {
					t.Errorf("%s: fan-out counters differ from serial final-iteration counters", par.name)
				}
				if !reflect.DeepEqual(got.Breakdowns, want.Breakdowns) {
					t.Errorf("%s: fan-out breakdowns differ from serial", par.name)
				}
			}
		})
	}
}

// TestFanoutFigureDeterminism runs a whole study — cell-level fan-out,
// iteration-level fan-out, and LPT scheduling all active — and requires
// the document to match the fully serial run exactly.
func TestFanoutFigureDeterminism(t *testing.T) {
	ws := mustWorkloads(t, "vector_seq", "gemm")
	serial := testRunner(4)
	serial.Parallelism = 1
	serial.IterParallelism = 1
	want, err := serial.BreakdownComparison(ws, workloads.Large)
	if err != nil {
		t.Fatal(err)
	}
	for _, itpar := range []int{0, 2, 8} {
		fan := testRunner(4)
		fan.Parallelism = 4
		fan.IterParallelism = itpar
		got, err := fan.BreakdownComparison(ws, workloads.Large)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("itpar=%d: parallel study differs from serial", itpar)
		}
	}
}

// TestFanoutSweepDeterminism covers the sensitivity-sweep cell path
// (shared-seed derivation, no counters) under fan-out.
func TestFanoutSweepDeterminism(t *testing.T) {
	serial := testRunner(3)
	serial.Parallelism = 1
	want, err := serial.SweepBlocks(workloads.Small, []int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	fan := testRunner(3)
	fan.Parallelism = 4
	fan.IterParallelism = 2
	got, err := fan.SweepBlocks(workloads.Small, []int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("fan-out sweep differs from serial")
	}
}

// TestLptOrderIsPermutation checks the scheduling order is a valid,
// deterministic permutation: every index exactly once, most expensive
// first, ties kept in submission order.
func TestLptOrderIsPermutation(t *testing.T) {
	r := testRunner(3)
	r.Parallelism = 4
	costs := []float64{1, 5, 3, 5, 2, 0.5, 9}
	order := r.lptOrder(len(costs), func(i int) float64 { return costs[i] })
	if want := []int{6, 1, 3, 2, 4, 0, 5}; !reflect.DeepEqual(order, want) {
		t.Errorf("lptOrder = %v, want %v", order, want)
	}
	r.Parallelism = 1
	if got := r.lptOrder(len(costs), func(i int) float64 { return costs[i] }); got != nil {
		t.Errorf("serial executor should skip ordering, got %v", got)
	}
}

// TestStaticCostModelRanks sanity-checks the static cost model's ranks:
// bigger footprints cost more, managed setups cost more per byte than
// explicit copies, oversubscribed cells cost more than in-capacity ones.
func TestStaticCostModelRanks(t *testing.T) {
	cfg := cuda.DefaultSystemConfig()
	small := staticCellSeconds(cfg, "vector_seq", cuda.UVM, workloads.Small, 30)
	large := staticCellSeconds(cfg, "vector_seq", cuda.UVM, workloads.Large, 30)
	if small >= large {
		t.Errorf("Small (%g) should cost less than Large (%g)", small, large)
	}
	std := staticCellSeconds(cfg, "vector_seq", cuda.Standard, workloads.Super, 30)
	uvm := staticCellSeconds(cfg, "vector_seq", cuda.UVM, workloads.Super, 30)
	if std >= uvm {
		t.Errorf("explicit Super (%g) should cost less than managed Super (%g)", std, uvm)
	}
	under := staticCellSeconds(cfg, "oversub:0.5:4", cuda.UVM, workloads.Tiny, 30)
	over := staticCellSeconds(cfg, "oversub:1.5:4", cuda.UVM, workloads.Tiny, 30)
	if under >= over {
		t.Errorf("in-capacity oversub point (%g) should cost less than evicting one (%g)", under, over)
	}
	if _, _, ok := parseOversubKind("sweep:fig11-blocks:8"); ok {
		t.Error("sweep kind misparsed as oversub")
	}
	if _, _, ok := parseOversubKind("oversub:x:4"); ok {
		t.Error("malformed oversub kind accepted")
	}
}

// TestObservedCostRefinesStatic: a measured cell reshapes the next
// study's schedule through the shared cost model.
func TestObservedCostRefinesStatic(t *testing.T) {
	r := testRunner(2)
	r.Parallelism = 2
	w := mustWorkloads(t, "vector_seq")[0]
	if _, err := r.Measure(w, cuda.UVM, workloads.Small); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.costs.lookup("vector_seq", cuda.UVM, workloads.Small, 2); !ok {
		t.Error("measured cell not recorded in the cost model")
	}
	if _, ok := r.costs.lookup("vector_seq", cuda.UVM, workloads.Large, 2); ok {
		t.Error("unmeasured cell unexpectedly present in the cost model")
	}
	// Cache hits replay without simulating; the recorded cost must not
	// be polluted by near-zero cache-hit timings.
	before, _ := r.costs.lookup("vector_seq", cuda.UVM, workloads.Small, 2)
	if _, err := r.Measure(w, cuda.UVM, workloads.Small); err != nil {
		t.Fatal(err)
	}
	after, _ := r.costs.lookup("vector_seq", cuda.UVM, workloads.Small, 2)
	if before != after {
		t.Errorf("cache-hit replay changed the observed cost: %g -> %g", before, after)
	}
}
