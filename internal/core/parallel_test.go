package core

import (
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/sched"
	"uvmasim/internal/topo"
	"uvmasim/internal/workloads"
)

// TestParallelDeterminism is the executor's core guarantee: the rendered
// output of a study is byte-identical between the legacy serial path and
// a wide worker pool. It exercises the full micro suite at Large (the
// Figure 7 grid) plus a sensitivity sweep and a distribution study. CI
// runs this under -race, which also makes it the harness's data-race
// canary.
func TestParallelDeterminism(t *testing.T) {
	type renderFn func(r *Runner) (string, error)
	cases := map[string]renderFn{
		"breakdown": func(r *Runner) (string, error) {
			study, err := r.BreakdownComparison(workloads.Micro(), workloads.Large)
			if err != nil {
				return "", err
			}
			return study.Render("Figure 7"), nil
		},
		"distributions": func(r *Runner) (string, error) {
			study, err := r.Distributions(workloads.Micro()[:3], []workloads.Size{workloads.Small, workloads.Large})
			if err != nil {
				return "", err
			}
			return study.RenderFig4() + study.RenderFig5(), nil
		},
		"sweep": func(r *Runner) (string, error) {
			sw, err := r.SweepThreads(workloads.Large, []int{1024, 256, 64})
			if err != nil {
				return "", err
			}
			return sw.Render("Figure 12"), nil
		},
		"counters": func(r *Runner) (string, error) {
			study, err := r.CounterComparison([]string{"gemm", "lud"}, workloads.Large)
			if err != nil {
				return "", err
			}
			return study.RenderFig9() + study.RenderFig10(), nil
		},
		"oversub": func(r *Runner) (string, error) {
			study, err := r.Oversubscription(cuda.UVMPrefetch, []float64{0.5, 1.1}, 2)
			if err != nil {
				return "", err
			}
			return study.Render(), nil
		},
		"multigpu": func(r *Runner) (string, error) {
			study, err := r.MultiGPU("vector_seq", cuda.UVMPrefetchAsync, workloads.Large,
				4, []int{1, 2}, []topo.Kind{topo.PCIeSwitch, topo.NVLink}, sched.LeastLoaded)
			if err != nil {
				return "", err
			}
			return study.Render(), nil
		},
	}
	for name, render := range cases {
		t.Run(name, func(t *testing.T) {
			serial := testRunner(3)
			serial.Parallelism = 1
			wide := testRunner(3)
			wide.Parallelism = 8

			want, err := render(serial)
			if err != nil {
				t.Fatal(err)
			}
			got, err := render(wide)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("parallel output diverges from serial\nserial:\n%s\nparallel:\n%s", want, got)
			}
		})
	}
}

// TestCacheTransparency: enabling the cell cache must not change a
// study's rendered output, even when studies repeat cells.
func TestCacheTransparency(t *testing.T) {
	ws := mustWorkloads(t, "vector_seq", "saxpy")
	render := func(r *Runner) string {
		study, err := r.BreakdownComparison(ws, workloads.Large)
		if err != nil {
			t.Fatal(err)
		}
		return study.Render("Figure 7")
	}
	cached := testRunner(2)
	uncached := testRunner(2)
	uncached.Cache = false
	first := render(cached)
	if got := render(cached); got != first {
		t.Error("second cached run diverges from first")
	}
	if cached.CacheHits() == 0 {
		t.Error("repeated study should hit the cell cache")
	}
	if got := render(uncached); got != first {
		t.Error("uncached run diverges from cached run")
	}
	if uncached.CacheHits() != 0 || uncached.CacheMisses() != 0 {
		t.Error("disabled cache should record no traffic")
	}
}

// TestCacheDedupesCounterStudy pins the fig9/fig10 fix: the second
// CounterComparison over the same cells must be served entirely from the
// cell cache instead of re-simulating the counter study.
func TestCacheDedupesCounterStudy(t *testing.T) {
	r := testRunner(2)
	names := []string{"gemm", "lud", "yolov3"}
	first, err := r.CounterComparison(names, workloads.Large)
	if err != nil {
		t.Fatal(err)
	}
	misses := r.CacheMisses()
	if misses == 0 {
		t.Fatal("first counter study should populate the cache")
	}
	if hits := r.CacheHits(); hits != 0 {
		t.Fatalf("first counter study should not hit the cache, got %d hits", hits)
	}
	second, err := r.CounterComparison(names, workloads.Large)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CacheMisses(); got != misses {
		t.Errorf("second counter study re-simulated %d cells", got-misses)
	}
	if got, want := r.CacheHits(), uint64(len(first.Rows)); got != want {
		t.Errorf("second counter study cache hits = %d, want %d", got, want)
	}
	if got, want := second.RenderFig9(), first.RenderFig9(); got != want {
		t.Errorf("cached counter study diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestCacheKeyedOnRunnerState: changing the seed, iteration count, or
// system config must miss the cache rather than replay stale cells.
func TestCacheKeyedOnRunnerState(t *testing.T) {
	r := testRunner(2)
	w := mustWorkloads(t, "vector_seq")[0]
	base, err := r.Measure(w, cuda.Standard, workloads.Small)
	if err != nil {
		t.Fatal(err)
	}
	r.BaseSeed = 99
	reseeded, err := r.Measure(w, cuda.Standard, workloads.Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHits() != 0 {
		t.Error("seed change should not hit the cache")
	}
	if base.Breakdowns[0].Total == reseeded.Breakdowns[0].Total {
		t.Error("different seeds should draw different noise")
	}
	r.Config.PCIe.BandwidthGBs *= 2
	if _, err := r.Measure(w, cuda.Standard, workloads.Small); err != nil {
		t.Fatal(err)
	}
	if r.CacheHits() != 0 {
		t.Error("config change should not hit the cache")
	}
	if got, want := r.CacheMisses(), uint64(3); got != want {
		t.Errorf("cache misses = %d, want %d", got, want)
	}
}

// TestSweepPoint covers the positional-index replacement used by the
// thread-sweep benchmark and tests.
func TestSweepPoint(t *testing.T) {
	r := testRunner(1)
	sw, err := r.SweepThreads(workloads.Small, []int{256, 64, 32})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sw.Point(64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Param != 64 || len(p.BySetup) == 0 {
		t.Errorf("Point(64) returned %+v", p)
	}
	if _, err := sw.Point(999); err == nil {
		t.Error("Point should reject unmeasured parameter values")
	}
}
