package core

import (
	"fmt"

	"uvmasim/internal/cuda"
	"uvmasim/internal/gpu"
	"uvmasim/internal/kernels"
	"uvmasim/internal/workloads"
)

// Oversubscription extends the paper's study in the direction its
// related-work section points (Shao et al., "Oversubscribing GPU Unified
// Virtual Memory"): UVM lets a working set exceed device memory, at the
// cost of eviction churn once the footprint passes capacity. The
// experiment streams a vector workload whose footprint is a multiple of
// the device's managed capacity and records throughput and eviction
// traffic per oversubscription ratio.
type OversubPoint struct {
	Ratio        float64 // footprint / managed capacity
	Footprint    int64
	Total        float64 // wall total, ns
	BytesPerNs   float64 // effective processing throughput
	EvictedBytes float64
	PageFaults   float64
}

// OversubStudy is the sweep result.
type OversubStudy struct {
	Setup  cuda.Setup
	Points []OversubPoint
}

// DefaultOversubRatios is the footprint/capacity grid the uvmbench
// `oversub` subcommand sweeps. It brackets the capacity cliff densely
// (0.9–1.2 in 0.05 steps) and extends to 2x so the eviction-bound tail
// is visible; the O(1) evictor makes the dense grid cheap to run.
var DefaultOversubRatios = []float64{
	0.25, 0.5, 0.75, 0.9, 0.95, 1.0, 1.05, 1.1, 1.15, 1.2, 1.3, 1.4, 1.5, 1.75, 2.0,
}

// Oversubscription sweeps footprint ratios (e.g. 0.5, 0.9, 1.2, 1.5) of
// the managed capacity under the given UVM setup, running `passes`
// sequential sweeps over the data so that ratios above 1.0 must evict.
func (r *Runner) Oversubscription(setup cuda.Setup, ratios []float64, passes int) (*OversubStudy, error) {
	if !setup.Managed() {
		return nil, fmt.Errorf("core: oversubscription requires a UVM setup, got %v", setup)
	}
	if passes < 1 {
		passes = 1
	}
	study := &OversubStudy{Setup: setup, Points: make([]OversubPoint, len(ratios))}
	capacity := int64(float64(r.Config.GPU.HBMCapacity) * r.Config.ManagedCapacityFraction)
	order := r.lptOrder(len(ratios), func(i int) float64 {
		return r.cellCost(fmt.Sprintf("oversub:%g:%d", ratios[i], passes), setup, workloads.Tiny)
	})
	err := r.forEachOrdered(len(ratios), order, func(i int) error {
		ratio := ratios[i]
		footprint := int64(ratio * float64(capacity))
		// Each point is one cacheable cell: %g round-trips the ratio
		// exactly, the footprint follows from ratio and the profile
		// (which keys the cache via its fingerprint), so equal kinds
		// mean equal cells across runs, shards and machines.
		res, err := r.cached(fmt.Sprintf("oversub:%g:%d", ratio, passes), setup, workloads.Tiny,
			func() (Result, error) { return r.oversubCell(setup, footprint, passes) })
		if err != nil {
			return err
		}
		b := res.Breakdowns[0]
		roi := b.Total - b.Overhead
		study.Points[i] = OversubPoint{
			Ratio:        ratio,
			Footprint:    footprint,
			Total:        b.Total,
			BytesPerNs:   float64(footprint*int64(passes)) / roi,
			EvictedBytes: res.Counters.UVM.EvictedBytes,
			PageFaults:   res.Counters.UVM.PageFaults,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return study, nil
}

// oversubCell simulates one oversubscription point: `passes` streaming
// sweeps over a single buffer of the given footprint. The Result carries
// exactly one Breakdown (the run's) plus the final counters, which is
// all the study derives its point from.
func (r *Runner) oversubCell(setup cuda.Setup, footprint int64, passes int) (Result, error) {
	ctx := r.acquireCtx(setup, r.BaseSeed)
	defer r.releaseCtx(ctx)
	buf, err := ctx.Alloc("oversub", footprint)
	if err != nil {
		return Result{}, err
	}
	n := footprint / 4
	spec := kernels.Stream("oversub_pass", n, 1, 1, 8, 4, gpu.Sequential)
	for p := 0; p < passes; p++ {
		if err := ctx.Launch(cuda.Launch{
			Spec:   spec,
			Reads:  []*cuda.Buffer{buf},
			Writes: []*cuda.Buffer{buf},
		}); err != nil {
			return Result{}, err
		}
	}
	ctx.Synchronize()
	if err := ctx.Free(buf); err != nil {
		return Result{}, err
	}
	return Result{
		Workload:   "oversub",
		Setup:      setup,
		Size:       workloads.Tiny,
		Breakdowns: []cuda.Breakdown{ctx.Breakdown()},
		Counters:   *ctx.Counters(),
	}, nil
}

// Render prints the oversubscription sweep.
func (s *OversubStudy) Render() string {
	out := fmt.Sprintf("Oversubscription sweep (%s): throughput vs footprint/capacity\n", s.Setup)
	out += fmt.Sprintf("%-8s %12s %14s %14s %12s\n",
		"ratio", "footprint GB", "GB/s effective", "evicted GB", "faults")
	for _, p := range s.Points {
		out += fmt.Sprintf("%-8.2f %12.1f %14.2f %14.2f %12.0f\n",
			p.Ratio, float64(p.Footprint)/float64(1<<30),
			p.BytesPerNs, p.EvictedBytes/float64(1<<30), p.PageFaults)
	}
	return out
}
