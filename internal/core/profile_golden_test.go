package core

import (
	"strings"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/workloads"
)

// Golden guard for the profile refactor: running on the default profile
// (explicitly, through NewRunnerFor) must reproduce the same committed
// goldens the implicit-config code produced, byte for byte. Together
// with profile.TestDefaultMatchesPaperTestbed this proves the profile
// layer is a pure re-plumbing of the paper's testbed.

func TestGoldenDefaultProfileOversub(t *testing.T) {
	r := NewRunnerFor(profile.Default())
	study, err := r.Oversubscription(cuda.UVMPrefetch, []float64{0.25, 0.5, 0.75, 0.9, 1.1, 1.3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_oversub_default.txt", study.Render())
	js, err := RenderJSON(study.Doc())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_oversub_default.json", js)
}

func TestGoldenDefaultProfileOversubDense(t *testing.T) {
	if testing.Short() {
		t.Skip("dense grid sweep in -short mode")
	}
	r := NewRunnerFor(profile.Default())
	study, err := r.Oversubscription(cuda.UVMPrefetch, DefaultOversubRatios, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_oversub_dense.txt", study.Render())
	js, err := RenderJSON(study.Doc())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_oversub_dense.json", js)
}

func TestGoldenDefaultProfileFig12(t *testing.T) {
	r := NewRunnerFor(profile.Default())
	r.Iterations = 2
	sw, err := r.SweepThreads(workloads.Large, []int{1024, 512, 256, 128, 64, 32})
	if err != nil {
		t.Fatal(err)
	}
	sweepGolden(t, sw, "Figure 12", "fig12", "golden_fig12")
}

func TestGoldenDefaultProfileFig13(t *testing.T) {
	r := NewRunnerFor(profile.Default())
	r.Iterations = 2
	sw, err := r.SweepShared(workloads.Large, []float64{2, 4, 8, 16, 32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	sweepGolden(t, sw, "Figure 13", "fig13", "golden_fig13")
}

// TestCacheKeysSeparateProfiles is the cross-profile cache-collision
// test: one runner measuring the same cell under two different system
// configs must compute twice (two distinct fingerprinted keys) and get
// two different answers — a collision would silently report one
// machine's numbers for the other.
func TestCacheKeysSeparateProfiles(t *testing.T) {
	v100, err := profile.Lookup("v100-16g-pcie3")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner()
	r.Iterations = 3
	a, err := r.Measure(w, cuda.Standard, workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}

	sub := *r
	sub.Config = v100.Config
	b, err := sub.Measure(w, cuda.Standard, workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}

	if hits, misses := r.CacheHits(), r.CacheMisses(); hits != 0 || misses != 2 {
		t.Fatalf("want 0 hits / 2 misses across profiles, got %d / %d", hits, misses)
	}
	if a.Breakdowns[0].Total == b.Breakdowns[0].Total {
		t.Fatal("A100 and V100 produced identical totals; cache likely collided")
	}

	// Re-measuring either profile must now hit.
	if _, err := r.Measure(w, cuda.Standard, workloads.Tiny); err != nil {
		t.Fatal(err)
	}
	if hits := r.CacheHits(); hits != 1 {
		t.Fatalf("same-profile re-measure should hit the cache, got %d hits", hits)
	}
}

// TestCompareProfilesDeterministic checks the cross-profile study is
// par-invariant and covers every requested machine in request order.
func TestCompareProfilesDeterministic(t *testing.T) {
	ps := profile.Builtins()

	run := func(par int) string {
		r := NewRunner()
		r.Iterations = 3
		r.Parallelism = par
		study, err := r.CompareProfiles(ps, "vector_seq", workloads.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		return study.Render()
	}
	serial, parallel := run(1), run(8)
	if serial != parallel {
		t.Fatalf("compare-profiles output differs between -par 1 and -par 8:\n%s\n---\n%s", serial, parallel)
	}
	for _, p := range ps {
		if !strings.Contains(serial, p.Name) {
			t.Errorf("study output lacks profile %s", p.Name)
		}
	}
}

func TestCompareProfilesRejectsInvalid(t *testing.T) {
	bad := profile.Default()
	bad.Config.PCIe.BandwidthGBs = -1
	r := NewRunner()
	r.Iterations = 1
	if _, err := r.CompareProfiles([]profile.Profile{bad}, "vector_seq", workloads.Tiny); err == nil {
		t.Fatal("CompareProfiles accepted an invalid profile")
	}
	if _, err := r.CompareProfiles(nil, "vector_seq", workloads.Tiny); err == nil {
		t.Fatal("CompareProfiles accepted an empty profile list")
	}
	if _, err := r.CompareProfiles(profile.Builtins(), "no_such_workload", workloads.Tiny); err == nil {
		t.Fatal("CompareProfiles accepted an unknown workload")
	}
}
