package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/trace"
	"uvmasim/internal/workloads"
)

// TestTraceRunMatchesMeasure pins the tracer's observer property at the
// harness level: a traced run reports exactly the breakdown the
// untraced Measure computes for the same cell's first iteration, and
// actually records a timeline.
func TestTraceRunMatchesMeasure(t *testing.T) {
	r := testRunner(2)
	w := mustWorkloads(t, "vector_seq")[0]
	for _, setup := range []cuda.Setup{cuda.Standard, cuda.UVMPrefetchAsync} {
		res, err := r.Measure(w, setup, workloads.Small)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := r.TraceRun("vector_seq", setup, workloads.Small)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Breakdown != res.Breakdowns[0] {
			t.Errorf("%s: traced breakdown %+v != untraced first iteration %+v",
				setup, tr.Breakdown, res.Breakdowns[0])
		}
		if tr.Tracer.Len() == 0 {
			t.Errorf("%s: trace recorded no events", setup)
		}
		if !tr.Tracer.SpansMonotonic() {
			t.Errorf("%s: non-monotonic spans", setup)
		}
	}
}

// TestTraceHookBypassesCache checks that a runner with a hook installed
// never serves (or populates) cell-cache entries: the hook must fire for
// every iteration even when the cell was measured before.
func TestTraceHookBypassesCache(t *testing.T) {
	r := testRunner(2)
	w := mustWorkloads(t, "vector_seq")[0]
	if _, err := r.Measure(w, cuda.Standard, workloads.Small); err != nil {
		t.Fatal(err)
	}
	calls := 0
	r.TraceHook = func(name string, setup cuda.Setup, size workloads.Size, iter int) *trace.Tracer {
		calls++
		return nil
	}
	if _, err := r.Measure(w, cuda.Standard, workloads.Small); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("hook fired %d times, want one per iteration (2)", calls)
	}
	// With the hook removed the warm cache serves the cell again.
	r.TraceHook = nil
	misses := r.CacheMisses()
	if _, err := r.Measure(w, cuda.Standard, workloads.Small); err != nil {
		t.Fatal(err)
	}
	if r.CacheMisses() != misses {
		t.Error("untraced re-measure after hook removal missed the cache")
	}
}

// TestTraceSetupsDeterministicAcrossParallelism records the same
// timeline set serially and with a wide pool; the Chrome exports must be
// byte-identical (each cell binds its own tracer).
func TestTraceSetupsDeterministicAcrossParallelism(t *testing.T) {
	exports := make([][]byte, 2)
	for i, par := range []int{1, 8} {
		r := testRunner(1)
		r.Parallelism = par
		results, err := r.TraceAllSetups("vector_seq", workloads.Small)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, res := range results {
			if err := res.Tracer.WriteChromeTrace(&buf); err != nil {
				t.Fatal(err)
			}
		}
		exports[i] = append([]byte(nil), buf.Bytes()...)
	}
	if !bytes.Equal(exports[0], exports[1]) {
		t.Error("trace exports differ between Parallelism 1 and 8")
	}
}

// TestFigureDocsMarshal checks the JSON face of the studies: every doc
// must serialize to one valid JSON value carrying the figure name and
// paper-named enums.
func TestFigureDocsMarshal(t *testing.T) {
	r := testRunner(2)
	f, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	study, err := r.BreakdownComparison(mustWorkloads(t, "vector_seq"), workloads.Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []FigureDoc{Table3Doc(), f.Doc(), study.Doc("fig8")} {
		s, err := RenderJSON(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid([]byte(s)) {
			t.Fatalf("doc %s is not valid JSON", doc.Figure)
		}
	}
	s, err := RenderJSON(study.Doc("fig8"))
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Figure string `json:"figure"`
		Data   struct {
			Size   string   `json:"size"`
			Setups []string `json:"setups"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(s), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Data.Size != "small" {
		t.Errorf("size marshals as %q, want paper name", parsed.Data.Size)
	}
	if len(parsed.Data.Setups) != 5 || parsed.Data.Setups[4] != "uvm_prefetch_async" {
		t.Errorf("setups marshal as %v, want paper names", parsed.Data.Setups)
	}
}
