package core

import (
	"fmt"

	"uvmasim/internal/cuda"
	"uvmasim/internal/trace"
	"uvmasim/internal/workloads"
)

// TraceResult pairs one traced simulated run with the breakdown it
// produced. Because a tracer only observes, Breakdown is bit-identical
// to what an untraced Measure of the same cell reports for its first
// iteration.
type TraceResult struct {
	Workload  string
	Setup     cuda.Setup
	Size      workloads.Size
	Tracer    *trace.Tracer
	Breakdown cuda.Breakdown
}

// TraceRun executes a single iteration of the named workload under
// setup at size with a fresh tracer bound and returns the recorded
// timeline. The run goes through the same machinery as Measure — same
// per-cell seed derivation, same context construction — so the timeline
// is deterministic per (config, seed) and the traced breakdown matches
// the untraced one exactly.
func (r *Runner) TraceRun(name string, setup cuda.Setup, size workloads.Size) (*TraceResult, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	tr := trace.New()
	// The copy shares the executor with r but records exactly one
	// iteration, binding the tracer to it via the hook (which also
	// bypasses the cell cache).
	single := *r
	single.Iterations = 1
	single.TraceHook = func(_ string, _ cuda.Setup, _ workloads.Size, iter int) *trace.Tracer {
		if iter == 0 {
			return tr
		}
		return nil
	}
	res, err := single.Measure(w, setup, size)
	if err != nil {
		return nil, err
	}
	if len(res.Breakdowns) == 0 {
		return nil, fmt.Errorf("core: trace run of %s/%s/%s produced no iterations", name, setup, size)
	}
	return &TraceResult{
		Workload:  name,
		Setup:     setup,
		Size:      size,
		Tracer:    tr,
		Breakdown: res.Breakdowns[0],
	}, nil
}

// TraceSetups records one timeline of the named workload per requested
// setup, returned in the given order. Each cell binds its own tracer,
// so the runs fan out across the executor like any other study and the
// result is identical at any Parallelism.
func (r *Runner) TraceSetups(name string, size workloads.Size, setups []cuda.Setup) ([]*TraceResult, error) {
	out := make([]*TraceResult, len(setups))
	err := r.forEach(len(out), func(i int) error {
		res, err := r.TraceRun(name, setups[i], size)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TraceAllSetups is TraceSetups over the runner's study list (the
// paper's five setups unless Runner.Setups narrows or extends it).
func (r *Runner) TraceAllSetups(name string, size workloads.Size) ([]*TraceResult, error) {
	return r.TraceSetups(name, size, r.setups())
}
