package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/workloads"
)

// This file implements the parallel experiment executor and the
// cross-figure cell cache.
//
// Parallelism model: every measurement cell — one (workload, setup,
// size, iteration) simulated run — is independent of every other cell.
// Seeds are derived per cell (see seedFor), workloads draw their input
// data from fixed-seed local generators, and each cuda.Context owns all
// of its mutable simulation state. The executor therefore fans cells out
// across a worker pool and writes each cell's result into a
// pre-allocated slot indexed by the cell's serial position, so every
// study assembles (and renders) its results in exactly the order the
// legacy serial loops produced. Rendered output is byte-identical at any
// Parallelism.
//
// Concurrency is bounded by a token pool shared across nested fan-outs:
// a fan-out worker holds one token for its lifetime, and inner fan-outs
// (a study fans out cells; each cell fans out iterations) spawn extra
// workers only while spare tokens exist, otherwise running inline on the
// calling goroutine. The caller always participates, so the scheme
// cannot deadlock and the total number of busy goroutines stays at
// Parallelism.

// executor is the shared worker-token pool of one Runner (and of every
// Runner copy derived from it).
type executor struct {
	once   sync.Once
	tokens chan struct{}
}

// acquire takes a worker token if one is free. The pool is sized to
// par-1 tokens on first use (the calling goroutine is the par-th
// worker); later Parallelism changes on the same Runner do not resize
// it.
func (e *executor) acquire(par int) bool {
	e.once.Do(func() {
		n := par - 1
		if n < 0 {
			n = 0
		}
		e.tokens = make(chan struct{}, n)
		for i := 0; i < n; i++ {
			e.tokens <- struct{}{}
		}
	})
	select {
	case <-e.tokens:
		return true
	default:
		return false
	}
}

func (e *executor) release() { e.tokens <- struct{}{} }

// contextPool recycles warmed-up cuda.Contexts across measurement cells.
// It is shared (by pointer) between a Runner and its copies, like the
// executor and the cell cache, so every study on the same Runner family
// draws from one set of contexts. Contexts are handed out exclusively
// (a cell resets and uses one context for all its iterations) and parked
// LIFO, which keeps the hottest arenas in use.
type contextPool struct {
	mu   sync.Mutex
	free []*cuda.Context
}

// get pops a parked context, or returns nil when the pool is empty.
func (p *contextPool) get() *cuda.Context {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		return c
	}
	return nil
}

// put parks a context for reuse.
func (p *contextPool) put(c *cuda.Context) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, c)
}

// parallelism resolves the effective worker count: Parallelism if set,
// otherwise GOMAXPROCS.
func (r *Runner) parallelism() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0..n-1), fanning the calls across the worker pool.
// Each fn(i) must write its result only to slot i of a caller-owned
// destination, which keeps the merge deterministic regardless of
// completion order. The returned error is the lowest-index failure,
// matching what the serial loop would have reported.
func (r *Runner) forEach(n int, fn func(i int) error) error {
	return r.forEachOrdered(n, nil, fn)
}

// forEachOrdered is forEach with an explicit dispatch order: workers
// claim items as order[0], order[1], ..., while every result still
// lands in its own index slot, so a cost-descending order (see
// lptOrder) shortens the makespan without touching the deterministic
// serial-order merge or the lowest-index error semantics. A nil order
// means identity. The inline fast path deliberately ignores the order:
// with a single worker the makespan equals the total either way, and
// index order preserves the legacy first-error behavior and the
// alloc-free guarantee.
//
// The fan-out machinery (error slice, atomic cursor, goroutines) is paid
// only after at least one spare worker token is actually acquired: with
// an effective parallelism of 1, on a zero-value Runner, or in a nested
// fan-out whose pool is already saturated, the loop runs inline on the
// calling goroutine and allocates nothing.
func (r *Runner) forEachOrdered(n int, order []int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	par := r.parallelism()
	if par > n {
		par = n
	}
	if par <= 1 || r.exec == nil || !r.exec.acquire(r.parallelism()) {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	// One token is held: the fan-out has at least one helper worker.
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	work := func() {
		for {
			j := int(next.Add(1))
			if j >= n {
				return
			}
			i := j
			if order != nil {
				i = order[j]
			}
			errs[i] = fn(i)
		}
	}
	var wg sync.WaitGroup
	spawn := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer r.exec.release()
			work()
		}()
	}
	spawn()
	for w := 2; w < par && r.exec.acquire(r.parallelism()); w++ {
		spawn()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cellKey identifies one unique measurement cell across figures. Two
// cells with equal keys produce bit-identical Results (the simulation is
// a pure function of the key), which is what makes the cache safe for
// byte-identical rendering. The system model enters the key as its
// profile fingerprint — a digest of every SystemConfig field — so cells
// measured under different hardware profiles can never collide, even
// when one Runner (or the cross-profile study) runs several machines
// against the same shared cache.
type cellKey struct {
	kind  string // workload name, or a sweep cell id including the swept parameter
	setup cuda.Setup
	size  workloads.Size
	iters int
	seed  int64
	fp    string // profile.Fingerprint of the runner's SystemConfig
}

// cellEntry is a singleflight slot: the first goroutine to claim the key
// computes, every later one (even concurrent ones) waits and shares the
// stored result.
type cellEntry struct {
	once sync.Once
	res  Result
	err  error
}

// cellCache memoizes measurement cells across studies and figures. It is
// shared (by pointer) between a Runner and its copies, so e.g. the
// single-iteration runner CounterComparison derives still populates the
// same cache.
type cellCache struct {
	mu     sync.Mutex
	m      map[cellKey]*cellEntry
	hits   atomic.Uint64
	misses atomic.Uint64
	// Store-tier traffic: of the in-memory misses, how many were served
	// from the persistent store vs actually simulated. Kept here (not on
	// the Runner) because Runners are value-copied by derived studies and
	// the whole family shares one cache.
	storeHits   atomic.Uint64
	storeMisses atomic.Uint64
	// simSecondsBits accumulates the wall seconds actually spent
	// simulating cells (float64 bits, CAS-added), across the whole
	// Runner family. Shard artifacts embed it as the shard's actual
	// cell-seconds, which is what makes shard imbalance observable.
	simSecondsBits atomic.Uint64
	// inst holds the optional metric hooks attached by
	// Runner.InstrumentMetrics. The zero value disables them; see
	// metrics.go.
	inst cellInstruments
}

// addSimSeconds accumulates simulated wall time lock-free.
func (c *cellCache) addSimSeconds(s float64) {
	for {
		old := c.simSecondsBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + s)
		if c.simSecondsBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func newCellCache() *cellCache {
	return &cellCache{m: make(map[cellKey]*cellEntry)}
}

// do returns the cached result for key, computing it at most once.
func (c *cellCache) do(key cellKey, compute func() (Result, error)) (Result, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cellEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		c.inst.memHits.Inc()
	} else {
		c.misses.Add(1)
		c.inst.memMisses.Inc()
	}
	e.once.Do(func() { e.res, e.err = compute() })
	return e.res, e.err
}

// cached routes a cell computation through the cell cache (when enabled).
// Cached Results are shared between callers and must be treated as
// read-only, which every consumer in this package does.
func (r *Runner) cached(kind string, setup cuda.Setup, size workloads.Size, compute func() (Result, error)) (Result, error) {
	// A traced run must actually simulate: a cache hit would return a
	// Result computed without the hook's tracer attached (and a traced
	// miss would poison the cache for untraced callers with an entry
	// whose timeline side effects already fired).
	if !r.Cache || r.cache == nil || r.TraceHook != nil {
		return compute()
	}
	key := cellKey{
		kind:  kind,
		setup: setup,
		size:  size,
		iters: r.iters(),
		seed:  r.BaseSeed,
		fp:    profile.Fingerprint(r.Config),
	}
	// Shard filter: a runner that does not own this cell returns a zero
	// placeholder without simulating (and without touching cache
	// statistics). Placeholder Results keep every study's bookkeeping
	// shape-correct; their rendered output is discarded in shard mode.
	if r.ShardCount > 1 {
		idx := r.ShardIndex
		if idx < 1 {
			idx = 1
		}
		if storeKeyOf(key).Hash()%uint64(r.ShardCount) != uint64(idx-1) {
			return Result{
				Workload:   kind,
				Setup:      setup,
				Size:       size,
				Breakdowns: make([]cuda.Breakdown, r.iters()),
			}, nil
		}
	}
	if r.Store == nil && r.Capture == nil {
		return r.cache.do(key, func() (Result, error) {
			return r.timedCompute(kind, setup, size, compute)
		})
	}
	skey := storeKeyOf(key)
	res, err := r.cache.do(key, func() (Result, error) {
		if r.Store != nil {
			if doc, ok := r.Store.Get(skey); ok {
				r.cache.storeHits.Add(1)
				r.cache.inst.storeHits.Inc()
				return resultFromDoc(key, doc), nil
			}
			r.cache.storeMisses.Add(1)
			r.cache.inst.storeMisses.Inc()
		}
		res, err := r.timedCompute(kind, setup, size, compute)
		if err == nil && r.Store != nil {
			// Best-effort write-back: a failed Put costs a future
			// recompute, never a wrong result.
			_ = r.Store.Put(skey, docFromResult(skey, res))
		}
		return res, err
	})
	if err == nil && r.Capture != nil {
		_ = r.Capture.Put(skey, docFromResult(skey, res))
	}
	return res, err
}

// CacheHits reports how many cell computations were satisfied from the
// cell cache (e.g. the shared fig9/fig10 counter study, or the repeated
// micro suite of fig7 at Super and the §4.1.1 summary).
func (r *Runner) CacheHits() uint64 {
	if r.cache == nil {
		return 0
	}
	return r.cache.hits.Load()
}

// CacheMisses reports how many cell computations missed the in-memory
// cache (and so consulted the persistent store, when one is attached,
// before simulating).
func (r *Runner) CacheMisses() uint64 {
	if r.cache == nil {
		return 0
	}
	return r.cache.misses.Load()
}

// StoreHits reports how many in-memory misses were served from the
// persistent cell store instead of the simulator.
func (r *Runner) StoreHits() uint64 {
	if r.cache == nil {
		return 0
	}
	return r.cache.storeHits.Load()
}

// StoreMisses reports how many in-memory misses also missed the
// persistent store and actually ran the simulator. With no store
// attached this stays 0 (every memory miss simulates directly).
func (r *Runner) StoreMisses() uint64 {
	if r.cache == nil {
		return 0
	}
	return r.cache.storeMisses.Load()
}

// SimulatedSeconds reports the wall seconds this Runner family has
// spent actually simulating cells (cache and store hits excluded). It
// is a measurement, not a pure function of the cell grid — shard
// artifacts record it as the shard's actual cost next to the
// deterministic cost-model estimate.
func (r *Runner) SimulatedSeconds() float64 {
	if r.cache == nil {
		return 0
	}
	return math.Float64frombits(r.cache.simSecondsBits.Load())
}
