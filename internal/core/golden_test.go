package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/workloads"
)

// -update regenerates every golden file from the current code. Only use
// it to capture goldens BEFORE a refactor whose output must stay
// byte-identical; regenerating afterwards would defeat the pin.
var updateGoldens = flag.Bool("update", false, "rewrite golden files from current output")

// Golden byte-identity tests for the O(1) eviction refactor. Every
// golden file under testdata/ was captured from the pre-refactor code
// (the full-scan evictor, now retained as uvm.SetReferenceEviction's
// reference path), so a byte-for-byte match here proves the indexed
// bookkeeping changed no simulated timing, counter, or rendered digit:
//
//   golden_oversub_default — the oversub sweep on the old default ratio
//     grid {0.25 .. 1.3}, pinning the refactor itself;
//   golden_oversub_dense   — the old engine run on the new
//     DefaultOversubRatios grid, pinning the denser default separately
//     from the data-structure change;
//   golden_fig12/fig13     — sweeps whose workloads evict under UVM
//     pressure, covering the demand/prefetch/writeback paths.

func readGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	if *updateGoldens {
		if err := os.WriteFile(filepath.Join("testdata", name), []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want := readGolden(t, name)
	if got == want {
		return
	}
	// Locate the first divergent byte for a usable failure message.
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := i - 60
	if lo < 0 {
		lo = 0
	}
	hiG, hiW := i+60, i+60
	if hiG > len(got) {
		hiG = len(got)
	}
	if hiW > len(want) {
		hiW = len(want)
	}
	t.Errorf("%s: output diverges from pre-refactor golden at byte %d\n got: %q\nwant: %q",
		name, i, got[lo:hiG], want[lo:hiW])
}

func oversubGolden(t *testing.T, ratios []float64, base string) {
	t.Helper()
	r := NewRunner()
	study, err := r.Oversubscription(cuda.UVMPrefetch, ratios, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, base+".txt", study.Render())
	js, err := RenderJSON(study.Doc())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, base+".json", js)
}

func TestGoldenOversubOldGrid(t *testing.T) {
	oversubGolden(t, []float64{0.25, 0.5, 0.75, 0.9, 1.1, 1.3}, "golden_oversub_default")
}

func TestGoldenOversubDenseGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("dense grid sweep in -short mode")
	}
	oversubGolden(t, DefaultOversubRatios, "golden_oversub_dense")
}

func sweepGolden(t *testing.T, sw *Sweep, figure, tag, base string) {
	t.Helper()
	checkGolden(t, base+".txt", sw.Render(figure))
	js, err := RenderJSON(sw.Doc(tag))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, base+".json", js)
}

// TestGoldenFig7 pins the headline micro five-setup comparison
// (Large + Super, the uvmbench fig7 artifact) byte-for-byte against
// output captured before the GC-free hot-loop rewrite (arena-recycled
// contexts, index-linked LRU, batched DemandRange).
func TestGoldenFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("two-size micro grid in -short mode")
	}
	r := NewRunner()
	r.Iterations = 2
	var text strings.Builder
	var studies []*BreakdownStudy
	for _, size := range []workloads.Size{workloads.Large, workloads.Super} {
		study, err := r.BreakdownComparison(workloads.Micro(), size)
		if err != nil {
			t.Fatal(err)
		}
		studies = append(studies, study)
		text.WriteString(study.Render("Figure 7"))
		text.WriteString("\n")
	}
	checkGolden(t, "golden_fig7.txt", text.String())
	js, err := RenderJSON(Fig7Doc(studies))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_fig7.json", js)
}

// TestGoldenFig8 pins the application five-setup comparison (Super, the
// uvmbench fig8 artifact) the same way.
func TestGoldenFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("application grid in -short mode")
	}
	r := NewRunner()
	r.Iterations = 2
	study, err := r.BreakdownComparison(workloads.Apps(), workloads.Super)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_fig8.txt", study.Render("Figure 8"))
	js, err := RenderJSON(study.Doc("fig8"))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_fig8.json", js)
}

func TestGoldenFig12(t *testing.T) {
	r := NewRunner()
	r.Iterations = 2
	sw, err := r.SweepThreads(workloads.Large, []int{1024, 512, 256, 128, 64, 32})
	if err != nil {
		t.Fatal(err)
	}
	sweepGolden(t, sw, "Figure 12", "fig12", "golden_fig12")
}

func TestGoldenFig13(t *testing.T) {
	r := NewRunner()
	r.Iterations = 2
	sw, err := r.SweepShared(workloads.Large, []float64{2, 4, 8, 16, 32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	sweepGolden(t, sw, "Figure 13", "fig13", "golden_fig13")
}
