package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/store"
	"uvmasim/internal/workloads"
)

// syntheticSetup registers (once per process) a sixth managed setup the
// paper never named, so the property tests below can prove the harness
// is setup-count-agnostic rather than hard-wired to len==5.
func syntheticSetup(t *testing.T) cuda.Setup {
	t.Helper()
	s, err := cuda.Register(cuda.Desc{Name: "synthetic_core_test", Managed: true, SMCopy: true})
	if err != nil {
		if !strings.Contains(err.Error(), "already registered") {
			t.Fatal(err)
		}
		s, err = cuda.ParseSetup("synthetic_core_test")
		if err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestStudiesHandleSixSetups runs a breakdown study, its renderer, its
// JSON document and the cross-profile comparison with a six-setup study
// list (the paper's five plus a synthetic registration) and checks every
// consumer follows the study's own list: N columns, standard still the
// baseline, no panics anywhere.
func TestStudiesHandleSixSetups(t *testing.T) {
	syn := syntheticSetup(t)
	r := testRunner(2)
	r.Setups = append(cuda.PaperSetups(), syn)

	study, err := r.BreakdownComparison(mustWorkloads(t, "vector_seq"), workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Setups) != 6 || study.Baseline != 0 {
		t.Fatalf("study setups = %v baseline = %d", study.Setups, study.Baseline)
	}
	for _, row := range study.Rows {
		if len(row.BySetup) != 6 {
			t.Fatalf("row %s has %d breakdowns, want 6", row.Workload, len(row.BySetup))
		}
	}
	text := study.Render("six-setup study")
	if !strings.Contains(text, "synthetic_core_test") {
		t.Errorf("render misses the sixth setup:\n%s", text)
	}
	if imp := study.GeoMeanImprovement(syn); imp == 0 {
		t.Errorf("sixth setup improvement should be computed, got 0")
	}

	doc := study.Doc("fig7")
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "synthetic_core_test") {
		t.Errorf("JSON doc misses the sixth setup")
	}

	ps, err := r.CompareProfiles([]profile.Profile{profile.Default()}, "vector_seq", workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Setups) != 6 || ps.Baseline != 0 {
		t.Fatalf("profile study setups = %v baseline = %d", ps.Setups, ps.Baseline)
	}
	for _, row := range ps.Rows {
		if len(row.BySetup) != 6 {
			t.Fatalf("profile row has %d breakdowns, want 6", len(row.BySetup))
		}
		if _, imp := row.Best(); imp < 0 {
			t.Errorf("best-vs-baseline improvement negative: %v", imp)
		}
	}
	if !strings.Contains(ps.Render(), "synthetic_core_test") {
		t.Errorf("profile render misses the sixth setup")
	}
}

// TestSubsetBaselineFollowsRegistry: a study list without the standard
// setup normalizes against its first setup; with standard anywhere in
// the list, standard is the baseline.
func TestSubsetBaselineFollowsRegistry(t *testing.T) {
	r := testRunner(1)
	r.Setups = []cuda.Setup{cuda.UVM, cuda.UVMZeroCopy}
	study, err := r.BreakdownComparison(mustWorkloads(t, "saxpy"), workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if study.Baseline != 0 || len(study.Setups) != 2 {
		t.Fatalf("uvm-first subset baseline = %d setups = %v", study.Baseline, study.Setups)
	}

	r2 := testRunner(1)
	r2.Setups = []cuda.Setup{cuda.UVM, cuda.Standard, cuda.UVMSMCopy}
	study2, err := r2.BreakdownComparison(mustWorkloads(t, "saxpy"), workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if study2.Baseline != 1 {
		t.Fatalf("standard-at-1 subset baseline = %d", study2.Baseline)
	}
	// Improvement math normalizes against the baseline position, so the
	// baseline's own normalized total is exactly 1.
	_, _, _, total := study2.Rows[0].Normalized(1)
	if total != 1 {
		t.Errorf("baseline normalized total = %v, want 1", total)
	}
}

// TestEstimateCellSecondsUnknownCell: an artifact whose setup or size
// name does not resolve in this process yields a usable generic
// estimate AND a typed error — never the old silent standard fallback.
func TestEstimateCellSecondsUnknownCell(t *testing.T) {
	cfg := cuda.DefaultSystemConfig()
	doc := store.CellDoc{}
	doc.Key.Kind = "vector_seq"
	doc.Key.Setup = "warp_speed"
	doc.Key.Size = "large"
	doc.Key.Iters = 3
	sec, err := EstimateCellSeconds(cfg, doc)
	if !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("err = %v, want ErrUnknownCell", err)
	}
	if !strings.Contains(err.Error(), "warp_speed") {
		t.Errorf("error should name the unknown setup: %v", err)
	}
	if sec <= 0 {
		t.Errorf("estimate should stay usable, got %v", sec)
	}

	doc.Key.Setup = "uvm_zerocopy"
	if _, err := EstimateCellSeconds(cfg, doc); err != nil {
		t.Errorf("known identity should not error: %v", err)
	}
	doc.Key.Size = "giga"
	if _, err := EstimateCellSeconds(cfg, doc); !errors.Is(err, ErrUnknownCell) {
		t.Errorf("unknown size should error: %v", err)
	}
}
