package core

import (
	"strings"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/workloads"
)

// testRunner keeps iteration counts small; the statistics do not need 30
// repetitions to expose the shapes under test.
func testRunner(iters int) *Runner {
	r := NewRunner()
	r.Iterations = iters
	return r
}

func mustWorkloads(t *testing.T, names ...string) []workloads.Workload {
	t.Helper()
	out := make([]workloads.Workload, len(names))
	for i, n := range names {
		w, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = w
	}
	return out
}

// Takeaway 1 (Figures 4-6): Large and Super are stable; Mega's memcpy
// component is the unstable one.
func TestSizeStability(t *testing.T) {
	r := testRunner(10)
	ws := mustWorkloads(t, "vector_seq")
	study, err := r.Distributions(ws, []workloads.Size{workloads.Large, workloads.Super, workloads.Mega})
	if err != nil {
		t.Fatal(err)
	}
	cvLarge := study.CV("vector_seq", workloads.Large)
	cvMega := study.CV("vector_seq", workloads.Mega)
	if cvMega <= cvLarge {
		t.Errorf("Mega cv (%v) should exceed Large cv (%v) — Takeaway 1", cvMega, cvLarge)
	}
	if study.GeoMeanCV(workloads.Mega) <= 0 {
		t.Errorf("geo-mean cv should be positive")
	}

	fig6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6.Runs) != 10 {
		t.Fatalf("Fig6 runs = %d", len(fig6.Runs))
	}
	if fig6.MemcpyCV() <= fig6.KernelCV() {
		t.Errorf("memcpy cv (%v) should exceed kernel cv (%v) at Mega — Figure 6",
			fig6.MemcpyCV(), fig6.KernelCV())
	}
	if !strings.Contains(fig6.Render(), "memcpy cv") {
		t.Error("Fig6 render incomplete")
	}
}

// §4.1.1 (Figure 7): on the microbenchmarks, async ~ standard overall;
// plain uvm loses; uvm_prefetch and the combination win.
func TestMicroSetupOrdering(t *testing.T) {
	r := testRunner(3)
	ws := mustWorkloads(t, "vector_seq", "vector_rand", "saxpy", "gemv", "gemm", "2DCONV", "3DCONV")
	study, err := r.BreakdownComparison(ws, workloads.Large)
	if err != nil {
		t.Fatal(err)
	}
	asyncImp := study.GeoMeanImprovement(cuda.Async)
	uvmImp := study.GeoMeanImprovement(cuda.UVM)
	pfImp := study.GeoMeanImprovement(cuda.UVMPrefetch)
	comboImp := study.GeoMeanImprovement(cuda.UVMPrefetchAsync)
	t.Logf("micro Large improvements: async=%+.2f%% uvm=%+.2f%% uvm_prefetch=%+.2f%% combo=%+.2f%%",
		100*asyncImp, 100*uvmImp, 100*pfImp, 100*comboImp)

	if asyncImp < -0.10 || asyncImp > 0.25 {
		t.Errorf("async overall effect should be modest (paper: 0.27%%), got %+.2f%%", 100*asyncImp)
	}
	if uvmImp >= pfImp {
		t.Errorf("uvm (%+.2f%%) should trail uvm_prefetch (%+.2f%%)", 100*uvmImp, 100*pfImp)
	}
	if pfImp <= 0 {
		t.Errorf("uvm_prefetch should improve over standard, got %+.2f%%", 100*pfImp)
	}
	if comboImp <= 0 {
		t.Errorf("uvm_prefetch_async should improve over standard, got %+.2f%%", 100*comboImp)
	}
	// Transfer-time savings from UVM (paper: ~31-45%).
	mem := func(b cuda.Breakdown) float64 { return b.Memcpy }
	if sav := study.ComponentSavings(cuda.UVMPrefetch, mem); sav < 0.15 {
		t.Errorf("uvm_prefetch memcpy savings = %+.2f%%, want >15%%", 100*sav)
	}

	// Per-workload kernel-time shapes of §4.1.1: async cuts the
	// streaming kernel but inflates the compute-intense ones.
	vec, err := study.Row("vector_seq")
	if err != nil {
		t.Fatal(err)
	}
	if vec.BySetup[1].Kernel >= vec.BySetup[0].Kernel {
		t.Errorf("vector_seq async kernel (%v) should beat standard (%v); paper: -41.78%%",
			vec.BySetup[1].Kernel, vec.BySetup[0].Kernel)
	}
	for _, name := range []string{"gemm", "2DCONV", "3DCONV"} {
		row, err := study.Row(name)
		if err != nil {
			t.Fatal(err)
		}
		if row.BySetup[1].Kernel <= row.BySetup[0].Kernel {
			t.Errorf("%s async kernel (%v) should exceed standard (%v)",
				name, row.BySetup[1].Kernel, row.BySetup[0].Kernel)
		}
	}
}

// §4.1.2 (Figure 8) per-workload exceptions the paper highlights.
func TestAppExceptions(t *testing.T) {
	r := testRunner(3)

	// lud: async beats uvm_prefetch; the combination keeps the async
	// speedup rather than losing it to UVM overhead.
	lud, err := r.BreakdownComparison(mustWorkloads(t, "lud"), workloads.Super)
	if err != nil {
		t.Fatal(err)
	}
	ludAsync := lud.GeoMeanImprovement(cuda.Async)
	ludPf := lud.GeoMeanImprovement(cuda.UVMPrefetch)
	t.Logf("lud: async=%+.2f%% uvm_prefetch=%+.2f%%", 100*ludAsync, 100*ludPf)
	if ludAsync <= ludPf {
		t.Errorf("lud should prefer async (%+.2f%%) over uvm_prefetch (%+.2f%%) — Takeaway 2",
			100*ludAsync, 100*ludPf)
	}

	// nw: prefetching hurts relative to plain uvm (two kernels on the
	// same data).
	nw, err := r.BreakdownComparison(mustWorkloads(t, "nw"), workloads.Super)
	if err != nil {
		t.Fatal(err)
	}
	nwUVM := nw.GeoMeanImprovement(cuda.UVM)
	nwPf := nw.GeoMeanImprovement(cuda.UVMPrefetch)
	t.Logf("nw: uvm=%+.2f%% uvm_prefetch=%+.2f%%", 100*nwUVM, 100*nwPf)
	if nwPf >= nwUVM+0.01 {
		t.Errorf("nw prefetch (%+.2f%%) should not beat plain uvm (%+.2f%%)", 100*nwPf, 100*nwUVM)
	}

	// yolov3: the combination must not beat uvm_prefetch (the gemm
	// kernel's async control overhead, §4.1.2), and kernel time is a
	// small share of the total.
	yolo, err := r.BreakdownComparison(mustWorkloads(t, "yolov3"), workloads.Super)
	if err != nil {
		t.Fatal(err)
	}
	yoloPf := yolo.GeoMeanImprovement(cuda.UVMPrefetch)
	yoloCombo := yolo.GeoMeanImprovement(cuda.UVMPrefetchAsync)
	t.Logf("yolov3: uvm_prefetch=%+.2f%% combo=%+.2f%%", 100*yoloPf, 100*yoloCombo)
	if yoloCombo > yoloPf {
		t.Errorf("yolov3 combination (%+.2f%%) should not beat uvm_prefetch (%+.2f%%)",
			100*yoloCombo, 100*yoloPf)
	}
	row, err := yolo.Row("yolov3")
	if err != nil {
		t.Fatal(err)
	}
	std := row.BySetup[0]
	kernelShare := std.Kernel / std.Total
	if kernelShare > 0.5 {
		t.Errorf("yolov3 should not be kernel-bound (share of total %.2f; paper: 5.81%%)", kernelShare)
	}
}

// Figures 9 & 10: async inflates control instructions on gemm and
// yolov3; async cuts lud's L1 miss rates; UVM leaves the mix alone.
func TestCounterStudies(t *testing.T) {
	r := testRunner(1)
	study, err := r.CounterComparison([]string{"gemm", "lud", "yolov3"}, workloads.Large)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"gemm", "yolov3"} {
		std, _ := study.Row(wl, cuda.Standard)
		pfa, _ := study.Row(wl, cuda.UVMPrefetchAsync)
		uvm, _ := study.Row(wl, cuda.UVM)
		if pfa.CtrlInst <= std.CtrlInst*1.1 {
			t.Errorf("%s: async control instructions should rise >10%% (got %.2e vs %.2e)",
				wl, pfa.CtrlInst, std.CtrlInst)
		}
		if uvm.CtrlInst != std.CtrlInst {
			t.Errorf("%s: uvm should not change the instruction mix", wl)
		}
	}
	ludStd, _ := study.Row("lud", cuda.Standard)
	ludAsync, _ := study.Row("lud", cuda.Async)
	if ludAsync.LoadMissRate >= ludStd.LoadMissRate {
		t.Errorf("lud async load miss rate (%v) should drop below standard (%v)",
			ludAsync.LoadMissRate, ludStd.LoadMissRate)
	}
	if ludAsync.StoreMissRate >= ludStd.StoreMissRate*0.7 {
		t.Errorf("lud async store miss rate should drop strongly (%v vs %v)",
			ludAsync.StoreMissRate, ludStd.StoreMissRate)
	}
	if !strings.Contains(study.RenderFig9(), "gemm") || !strings.Contains(study.RenderFig10(), "lud") {
		t.Error("counter renders incomplete")
	}
}

// Figure 11: block count barely matters.
func TestSweepBlocks(t *testing.T) {
	r := testRunner(2)
	sw, err := r.SweepBlocks(workloads.Large, []int{4096, 1024, 256, 64, 16})
	if err != nil {
		t.Fatal(err)
	}
	for pi := range sw.Points {
		for si := range sw.Setups {
			v := sw.Normalized(pi, si)
			if v <= 0 {
				t.Fatalf("degenerate sweep value at point %d setup %d", pi, si)
			}
		}
		// Standard setup stays within ~15% across block counts.
		if v := sw.Normalized(pi, 0); v < 0.85 || v > 1.3 {
			t.Errorf("standard at %v blocks deviates: %.3f (Takeaway 4: stable)",
				sw.Points[pi].Param, v)
		}
	}
}

// Figure 12: threads per block matter a lot; async recovers the loss.
func TestSweepThreads(t *testing.T) {
	r := testRunner(2)
	sw, err := r.SweepThreads(workloads.Large, []int{1024, 512, 256, 128, 64, 32})
	if err != nil {
		t.Fatal(err)
	}
	kernelAt := func(threads float64, si int) float64 {
		p, err := sw.Point(threads)
		if err != nil {
			t.Fatal(err)
		}
		return p.BySetup[si].Kernel
	}
	k32, k128 := kernelAt(32, 0), kernelAt(128, 0)
	if k32 < 2*k128 {
		t.Errorf("standard kernel at 32 threads (%v) should be >=2x 128 threads (%v) — paper: 3.95x",
			k32, k128)
	}
	// Async advantage over standard grows as threads shrink.
	advAt := func(threads float64) float64 {
		return kernelAt(threads, 0) / kernelAt(threads, 1)
	}
	if advAt(32) <= advAt(1024) {
		t.Errorf("async kernel advantage at 32 threads (%.2fx) should exceed 1024 threads (%.2fx)",
			advAt(32), advAt(1024))
	}
}

// Figure 13: shared-memory partition sensitivity (Takeaway 5).
func TestSweepShared(t *testing.T) {
	r := testRunner(2)
	sw, err := r.SweepShared(workloads.Large, []float64{2, 4, 8, 16, 32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	kernel := func(sharedKB float64, si int) float64 {
		p, err := sw.Point(sharedKB)
		if err != nil {
			t.Fatal(err)
		}
		return p.BySetup[si].Kernel
	}
	const asyncIdx, comboIdx = 1, 4
	// Tiny shared partition starves the async pipeline.
	if kernel(2, asyncIdx) <= kernel(32, asyncIdx) {
		t.Errorf("async kernel at 2KB shared (%v) should exceed 32KB (%v)",
			kernel(2, asyncIdx), kernel(32, asyncIdx))
	}
	// Huge shared partition (tiny L1) hurts the UVM+prefetch+async combo.
	if kernel(128, comboIdx) <= kernel(32, comboIdx) {
		t.Errorf("combo kernel at 128KB shared (%v) should exceed 32KB (%v)",
			kernel(128, comboIdx), kernel(32, comboIdx))
	}
}

// §6 / Figure 14: the inter-job pipeline hides allocation time.
func TestMultiJob(t *testing.T) {
	r := testRunner(2)
	res, err := r.MultiJob("vector_seq", cuda.UVMPrefetchAsync, workloads.Super, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Improvement <= 0.05 {
		t.Errorf("pipelined batch should improve >5%% (paper estimates >30%%), got %.2f%%",
			100*res.Improvement)
	}
	if res.PipelinedTotal >= res.SerialTotal {
		t.Errorf("pipelined total must beat serial")
	}
	if res.AllocShare <= 0.05 {
		t.Errorf("allocation share should be significant under the combo setup, got %.3f", res.AllocShare)
	}
	if _, err := r.MultiJob("vector_seq", cuda.Standard, workloads.Super, 0); err == nil {
		t.Error("zero jobs should error")
	}
	if !strings.Contains(res.Render(), "improvement") {
		t.Error("multijob render incomplete")
	}
}

// §6.1: UVM+prefetch+async must cut the transfer share of the region of
// interest and raise measured occupancy versus standard.
func TestPipelineShares(t *testing.T) {
	r := testRunner(2)
	ws := mustWorkloads(t, "vector_seq", "saxpy", "kmeans")
	std, err := r.PipelineShares(ws, cuda.Standard, workloads.Super)
	if err != nil {
		t.Fatal(err)
	}
	combo, err := r.PipelineShares(ws, cuda.UVMPrefetchAsync, workloads.Super)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("standard: transfer %.1f%% alloc %.1f%%; combo: transfer %.1f%% alloc %.1f%%",
		100*std.TransferShare, 100*std.AllocShare, 100*combo.TransferShare, 100*combo.AllocShare)
	if combo.TransferShare >= std.TransferShare {
		t.Errorf("combo transfer share (%v) should drop below standard (%v) — §6.1",
			combo.TransferShare, std.TransferShare)
	}
	if combo.AllocShare <= std.AllocShare {
		t.Errorf("combo allocation share (%v) should rise above standard (%v) — §6.1",
			combo.AllocShare, std.AllocShare)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	if !strings.Contains(RenderTable3(), "mega") {
		t.Error("Table 3 render incomplete")
	}
	r := testRunner(2)
	ws := mustWorkloads(t, "vector_seq", "saxpy")
	study, err := r.Distributions(ws, []workloads.Size{workloads.Small})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(study.RenderFig4(), "saxpy") || !strings.Contains(study.RenderFig5(), "geo-mean") {
		t.Error("distribution renders incomplete")
	}
	bd, err := r.BreakdownComparison(ws, workloads.Small)
	if err != nil {
		t.Fatal(err)
	}
	out := bd.Render("Figure 7")
	if !strings.Contains(out, "geo-mean improvement") || !strings.Contains(out, "uvm_prefetch_async") {
		t.Error("breakdown render incomplete")
	}
	sw, err := r.SweepBlocks(workloads.Small, []int{64, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sw.Render("Figure 11"), "#blocks") {
		t.Error("sweep render incomplete")
	}
	if _, err := bd.Row("nonexistent"); err == nil {
		t.Error("Row should reject unknown workloads")
	}
}
