package core

import (
	"encoding/json"

	"uvmasim/internal/cuda"
	"uvmasim/internal/stats"
	"uvmasim/internal/workloads"
)

// This file is the machine-readable face of the figure renderers: every
// study can package itself as a FigureDoc, which RenderJSON serializes
// with encoding/json. Struct fields marshal in declaration order and
// setups/sizes marshal as their paper names (see cuda.Setup.MarshalJSON),
// so the output is deterministic: byte-identical for identical study
// values, hence byte-identical at any executor Parallelism.

// FigureDoc is the envelope of one artifact: the figure's name and its
// data payload.
type FigureDoc struct {
	Figure string `json:"figure"`
	Data   any    `json:"data"`
}

// RenderJSON serializes a FigureDoc as indented JSON with a trailing
// newline, the form the -json CLI mode prints.
func RenderJSON(doc FigureDoc) (string, error) {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// breakdownJSON mirrors cuda.Breakdown with stable snake_case keys and
// explicit ns units.
type breakdownJSON struct {
	AllocNs    float64 `json:"alloc_ns"`
	MemcpyNs   float64 `json:"memcpy_ns"`
	KernelNs   float64 `json:"kernel_ns"`
	OverheadNs float64 `json:"overhead_ns"`
	TotalNs    float64 `json:"total_ns"`
}

func toBreakdownJSON(b cuda.Breakdown) breakdownJSON {
	return breakdownJSON{
		AllocNs:    b.Alloc,
		MemcpyNs:   b.Memcpy,
		KernelNs:   b.Kernel,
		OverheadNs: b.Overhead,
		TotalNs:    b.Total,
	}
}

func toBreakdownsJSON(bs []cuda.Breakdown) []breakdownJSON {
	out := make([]breakdownJSON, len(bs))
	for i, b := range bs {
		out[i] = toBreakdownJSON(b)
	}
	return out
}

// summaryJSON mirrors stats.Summary.
type summaryJSON struct {
	N        int     `json:"n"`
	MeanNs   float64 `json:"mean_ns"`
	StdNs    float64 `json:"std_ns"`
	MinNs    float64 `json:"min_ns"`
	MaxNs    float64 `json:"max_ns"`
	MedianNs float64 `json:"median_ns"`
	CI95Ns   float64 `json:"ci95_ns"`
}

func toSummaryJSON(s stats.Summary) summaryJSON {
	return summaryJSON{
		N:        s.N,
		MeanNs:   s.Mean,
		StdNs:    s.Std,
		MinNs:    s.Min,
		MaxNs:    s.Max,
		MedianNs: s.Median,
		CI95Ns:   s.CI95,
	}
}

// Table3Doc packages the input-size parameter table.
func Table3Doc() FigureDoc {
	type row struct {
		Class          workloads.Size `json:"class"`
		FootprintBytes int64          `json:"footprint_bytes"`
		Elems1D        int64          `json:"elems_1d"`
		Dim2D          int64          `json:"dim_2d"`
		Dim3D          int64          `json:"dim_3d"`
	}
	rows := make([]row, len(workloads.AllSizes))
	for i, s := range workloads.AllSizes {
		rows[i] = row{
			Class:          s,
			FootprintBytes: s.Footprint(),
			Elems1D:        s.Elems1D(1),
			Dim2D:          s.Dim2D(1),
			Dim3D:          s.Dim3D(1),
		}
	}
	return FigureDoc{Figure: "table3", Data: rows}
}

// Fig4Doc packages the per-cell execution-time distributions.
func (d *DistributionStudy) Fig4Doc() FigureDoc {
	type cell struct {
		Workload string         `json:"workload"`
		Setup    cuda.Setup     `json:"setup"`
		Size     workloads.Size `json:"size"`
		Summary  summaryJSON    `json:"summary"`
		CV       float64        `json:"cv"`
	}
	cells := make([]cell, len(d.Cells))
	for i, c := range d.Cells {
		cells[i] = cell{
			Workload: c.Workload,
			Setup:    c.Setup,
			Size:     c.Size,
			Summary:  toSummaryJSON(c.Summary),
			CV:       c.CV,
		}
	}
	return FigureDoc{Figure: "fig4", Data: cells}
}

// Fig5Doc packages the std/mean table with the geomean row, matching
// the text renderer's workload × size grid.
func (d *DistributionStudy) Fig5Doc() FigureDoc {
	type row struct {
		Workload string    `json:"workload"`
		CVs      []float64 `json:"cv_by_size"`
	}
	rows := make([]row, len(d.Workloads))
	for i, w := range d.Workloads {
		cvs := make([]float64, len(d.Sizes))
		for j, size := range d.Sizes {
			cvs[j] = d.CV(w, size)
		}
		rows[i] = row{Workload: w, CVs: cvs}
	}
	geo := make([]float64, len(d.Sizes))
	for j, size := range d.Sizes {
		geo[j] = d.GeoMeanCV(size)
	}
	return FigureDoc{Figure: "fig5", Data: struct {
		Sizes   []workloads.Size `json:"sizes"`
		Rows    []row            `json:"rows"`
		GeoMean []float64        `json:"geomean_by_size"`
	}{d.Sizes, rows, geo}}
}

// Doc packages the Figure 6 per-run breakdowns.
func (f *Fig6) Doc() FigureDoc {
	return FigureDoc{Figure: "fig6", Data: struct {
		Runs     []breakdownJSON `json:"runs"`
		MemcpyCV float64         `json:"memcpy_cv"`
		KernelCV float64         `json:"kernel_cv"`
	}{toBreakdownsJSON(f.Runs), f.MemcpyCV(), f.KernelCV()}}
}

// breakdownStudyData is the payload of one BreakdownStudy (fig7 wraps
// two of them, one per input size).
type breakdownStudyData struct {
	Size   workloads.Size     `json:"size"`
	Setups []cuda.Setup       `json:"setups"`
	Rows   []breakdownRowJSON `json:"rows"`
	// Per-setup aggregates versus the study baseline, in Setups order
	// with the baseline position omitted.
	Improvements []improvementJSON `json:"vs_standard"`
}

type breakdownRowJSON struct {
	Workload string          `json:"workload"`
	BySetup  []breakdownJSON `json:"by_setup"`
	// NormalizedTotal is (total-overhead)/(standard total-overhead) per
	// setup, the quantity the figures plot.
	NormalizedTotal []float64 `json:"normalized_total"`
}

type improvementJSON struct {
	Setup              cuda.Setup `json:"setup"`
	GeoMeanImprovement float64    `json:"geomean_improvement"`
	MeanMemcpySavings  float64    `json:"mean_memcpy_savings"`
}

// data packages one study as a breakdownStudyData payload.
func (s *BreakdownStudy) data() breakdownStudyData {
	rows := make([]breakdownRowJSON, len(s.Rows))
	for i, row := range s.Rows {
		norm := make([]float64, len(row.BySetup))
		for si := range row.BySetup {
			_, _, _, norm[si] = row.Normalized(si)
		}
		rows[i] = breakdownRowJSON{
			Workload:        row.Workload,
			BySetup:         toBreakdownsJSON(row.BySetup),
			NormalizedTotal: norm,
		}
	}
	imps := make([]improvementJSON, 0, len(s.Setups))
	for i, setup := range s.Setups {
		if i == s.Baseline {
			continue
		}
		imps = append(imps, improvementJSON{
			Setup:              setup,
			GeoMeanImprovement: s.GeoMeanImprovement(setup),
			MeanMemcpySavings: s.ComponentSavings(setup,
				func(x cuda.Breakdown) float64 { return x.Memcpy }),
		})
	}
	return breakdownStudyData{
		Size:         s.Size,
		Setups:       s.Setups,
		Rows:         rows,
		Improvements: imps,
	}
}

// Doc packages the study under the given figure name ("fig8", "micro",
// "apps").
func (s *BreakdownStudy) Doc(figure string) FigureDoc {
	return FigureDoc{Figure: figure, Data: s.data()}
}

// Fig7Doc wraps several per-size breakdown studies into the one fig7
// document, so `-json fig7` still prints a single JSON value.
func Fig7Doc(studies []*BreakdownStudy) FigureDoc {
	data := make([]breakdownStudyData, len(studies))
	for i, s := range studies {
		data[i] = s.data()
	}
	return FigureDoc{Figure: "fig7", Data: data}
}

// Doc packages the counter study under the given figure name ("fig9" or
// "fig10"); both views carry the full counter rows.
func (s *CounterStudy) Doc(figure string) FigureDoc {
	type row struct {
		Workload      string     `json:"workload"`
		Setup         cuda.Setup `json:"setup"`
		CtrlInst      float64    `json:"ctrl_inst"`
		IntInst       float64    `json:"int_inst"`
		MemInst       float64    `json:"mem_inst"`
		FPInst        float64    `json:"fp_inst"`
		LoadMissRate  float64    `json:"load_miss_rate"`
		StoreMissRate float64    `json:"store_miss_rate"`
	}
	rows := make([]row, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = row{
			Workload:      r.Workload,
			Setup:         r.Setup,
			CtrlInst:      r.CtrlInst,
			IntInst:       r.IntInst,
			MemInst:       r.MemInst,
			FPInst:        r.FPInst,
			LoadMissRate:  r.LoadMissRate,
			StoreMissRate: r.StoreMissRate,
		}
	}
	return FigureDoc{Figure: figure, Data: struct {
		Size workloads.Size `json:"size"`
		Rows []row          `json:"rows"`
	}{s.Size, rows}}
}

// Doc packages a sensitivity sweep under the given figure name
// ("fig11".."fig13").
func (s *Sweep) Doc(figure string) FigureDoc {
	type point struct {
		Param   float64         `json:"param"`
		BySetup []breakdownJSON `json:"by_setup"`
		// NormalizedTotal is per-setup (total-overhead) normalized to
		// standard at the sweep's first point.
		NormalizedTotal []float64 `json:"normalized_total"`
	}
	points := make([]point, len(s.Points))
	for i, p := range s.Points {
		norm := make([]float64, len(p.BySetup))
		for si := range p.BySetup {
			norm[si] = s.NormalizedPoint(p, si)
		}
		points[i] = point{Param: p.Param, BySetup: toBreakdownsJSON(p.BySetup), NormalizedTotal: norm}
	}
	return FigureDoc{Figure: figure, Data: struct {
		Name      string         `json:"name"`
		ParamName string         `json:"param_name"`
		Size      workloads.Size `json:"size"`
		Setups    []cuda.Setup   `json:"setups"`
		Points    []point        `json:"points"`
	}{s.Name, s.ParamName, s.Size, s.Setups, points}}
}

// Doc packages the Figure 14 pipeline-model estimate.
func (m *MultiJobResult) Doc() FigureDoc {
	return FigureDoc{Figure: "fig14", Data: struct {
		Workload         string     `json:"workload"`
		Setup            cuda.Setup `json:"setup"`
		Jobs             int        `json:"jobs"`
		AllocNs          float64    `json:"alloc_ns"`
		TransferNs       float64    `json:"transfer_ns"`
		KernelNs         float64    `json:"kernel_ns"`
		SerialTotalNs    float64    `json:"serial_total_ns"`
		PipelinedTotalNs float64    `json:"pipelined_total_ns"`
		Improvement      float64    `json:"improvement"`
		AllocShare       float64    `json:"alloc_share"`
		KernelShare      float64    `json:"kernel_share"`
		Occupancy        float64    `json:"occupancy"`
	}{m.Workload, m.Setup, m.Jobs, m.Alloc, m.Transfer, m.Kernel,
		m.SerialTotal, m.PipelinedTotal, m.Improvement,
		m.AllocShare, m.KernelShare, m.Occupancy}}
}

// Doc packages the multi-GPU contention grid next to its analytic
// reference.
func (s *MultiGPUStudy) Doc() FigureDoc {
	type schedule struct {
		MakespanNs           float64 `json:"makespan_ns"`
		ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
		Fairness             float64 `json:"fairness"`
		TransferStretch      float64 `json:"transfer_stretch"`
	}
	toSchedule := func(m MultiGPUSchedule) schedule {
		return schedule{m.Makespan, m.ThroughputJobsPerSec, m.Fairness, m.TransferStretch}
	}
	type point struct {
		Topology    string   `json:"topology"`
		GPUs        int      `json:"gpus"`
		Serial      schedule `json:"serial"`
		Pipelined   schedule `json:"pipelined"`
		Improvement float64  `json:"improvement"`
	}
	points := make([]point, len(s.Points))
	for i, p := range s.Points {
		points[i] = point{p.Topology, p.GPUs, toSchedule(p.Serial), toSchedule(p.Pipelined), p.Improvement}
	}
	return FigureDoc{Figure: "multigpu", Data: struct {
		Workload string         `json:"workload"`
		Setup    cuda.Setup     `json:"setup"`
		Size     workloads.Size `json:"size"`
		Jobs     int            `json:"jobs"`
		Policy   string         `json:"policy"`
		Analytic any            `json:"analytic"`
		Points   []point        `json:"points"`
	}{s.Workload, s.Setup, s.Size, s.Jobs, s.Policy, s.Analytic.Doc().Data, points}}
}

// Doc packages the oversubscription sweep.
func (s *OversubStudy) Doc() FigureDoc {
	type point struct {
		Ratio        float64 `json:"ratio"`
		Footprint    int64   `json:"footprint_bytes"`
		TotalNs      float64 `json:"total_ns"`
		BytesPerNs   float64 `json:"bytes_per_ns"`
		EvictedBytes float64 `json:"evicted_bytes"`
		PageFaults   float64 `json:"page_faults"`
	}
	points := make([]point, len(s.Points))
	for i, p := range s.Points {
		points[i] = point{p.Ratio, p.Footprint, p.Total, p.BytesPerNs, p.EvictedBytes, p.PageFaults}
	}
	return FigureDoc{Figure: "oversub", Data: struct {
		Setup  cuda.Setup `json:"setup"`
		Points []point    `json:"points"`
	}{s.Setup, points}}
}
