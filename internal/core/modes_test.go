package core

import (
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/workloads"
)

// measureOne is a helper for the transfer-mode semantics tests below.
func measureOne(t *testing.T, r *Runner, name string, setup cuda.Setup, size workloads.Size) Result {
	t.Helper()
	res, err := r.Measure(mustWorkloads(t, name)[0], setup, size)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestZeroCopySemantics: zero-copy accesses host memory in place, so a
// run must show NO fault migration, NO evictions, NO explicit memcpy
// component — all transfer cost rides the kernel over the link, visible
// as H2D/D2H byte counters.
func TestZeroCopySemantics(t *testing.T) {
	r := testRunner(2)
	res := measureOne(t, r, "vector_seq", cuda.UVMZeroCopy, workloads.Medium)
	c := res.Counters
	if c.UVM.MigratedBytes != 0 || c.UVM.PageFaults != 0 {
		t.Errorf("zero-copy migrated %v bytes over %v faults, want 0",
			c.UVM.MigratedBytes, c.UVM.PageFaults)
	}
	if c.UVM.Evictions != 0 || c.UVM.EvictedBytes != 0 {
		t.Errorf("zero-copy evicted %v chunks, want 0 (no residency, no pressure)", c.UVM.Evictions)
	}
	if c.H2DBytes == 0 || c.D2HBytes == 0 {
		t.Errorf("zero-copy link counters H2D=%v D2H=%v, want > 0", c.H2DBytes, c.D2HBytes)
	}
	b := res.MeanBreakdown()
	if b.Memcpy != 0 {
		t.Errorf("zero-copy memcpy component = %v, want 0", b.Memcpy)
	}
	if b.Kernel <= 0 {
		t.Errorf("zero-copy kernel component = %v, want > 0", b.Kernel)
	}
}

// TestSMCopySemantics: SM-copy stages inputs with SM-driven bulk copies
// instead of fault migration — residency is created (H2D bytes equal to
// the staged footprint) without page faults, and the staging cost lands
// in the kernel component, not memcpy.
func TestSMCopySemantics(t *testing.T) {
	r := testRunner(2)
	res := measureOne(t, r, "vector_seq", cuda.UVMSMCopy, workloads.Medium)
	c := res.Counters
	if c.UVM.MigratedBytes != 0 || c.UVM.PageFaults != 0 {
		t.Errorf("sm-copy migrated %v bytes over %v faults, want 0 (SM staging replaces the fault path)",
			c.UVM.MigratedBytes, c.UVM.PageFaults)
	}
	if c.H2DBytes == 0 {
		t.Errorf("sm-copy staged 0 bytes, want the input footprint")
	}
	// SM staging creates residency like migration does, so it must
	// match plain uvm's migrated volume on a single-pass kernel.
	uvm := measureOne(t, r, "vector_seq", cuda.UVM, workloads.Medium)
	if c.H2DBytes != uvm.Counters.UVM.MigratedBytes {
		t.Errorf("sm-copy staged %v bytes, uvm migrated %v — staging should cover the same footprint",
			c.H2DBytes, uvm.Counters.UVM.MigratedBytes)
	}
	kb := res.MeanBreakdown()
	ub := uvm.MeanBreakdown()
	if kb.Kernel <= ub.Kernel {
		t.Errorf("sm-copy kernel %v should exceed uvm kernel %v (staging consumes kernel-side bandwidth)",
			kb.Kernel, ub.Kernel)
	}
	if kb.Memcpy >= ub.Memcpy {
		t.Errorf("sm-copy memcpy %v should undercut uvm's fault-path %v", kb.Memcpy, ub.Memcpy)
	}
}

// TestZeroCopyCrossover reproduces the EXPERIMENTS.md crossover in
// miniature: on a sparse random gather, access-granular zero-copy beats
// fault-driven migration (which must move the whole table to serve
// scattered touches); on dense-reuse gemm, migration amortizes the
// transfer across reuse and zero-copy pays the link on every access.
func TestZeroCopyCrossover(t *testing.T) {
	r := testRunner(2)
	roi := func(name string, setup cuda.Setup) float64 {
		b := measureOne(t, r, name, setup, workloads.Medium).MeanBreakdown()
		return b.Total - b.Overhead
	}
	if zc, uvm := roi("vector_gather", cuda.UVMZeroCopy), roi("vector_gather", cuda.UVM); zc >= uvm {
		t.Errorf("sparse gather: zero-copy ROI %v should beat migration %v", zc, uvm)
	}
	if zc, uvm := roi("gemm", cuda.UVMZeroCopy), roi("gemm", cuda.UVM); zc <= uvm {
		t.Errorf("dense gemm: zero-copy ROI %v should lose to migration %v", zc, uvm)
	}
	// The counter face of the same crossover: on the gather, zero-copy
	// moves only touched bytes while migration moves the footprint.
	zcH2D := measureOne(t, r, "vector_gather", cuda.UVMZeroCopy, workloads.Medium).Counters.H2DBytes
	migrated := measureOne(t, r, "vector_gather", cuda.UVM, workloads.Medium).Counters.UVM.MigratedBytes
	if zcH2D >= migrated {
		t.Errorf("gather: zero-copy moved %v bytes, migration %v — amplification missing", zcH2D, migrated)
	}
}
