// Package core is the paper's experiment harness: it runs the benchmark
// suite under the five data-transfer setups, repeats each measurement
// with fresh noise draws (the paper's 30 iterations), aggregates
// execution-time breakdowns and hardware counters, and produces the data
// behind every table and figure of the evaluation (Table 3, Figures
// 4-13) plus the §6 inter-job pipeline model (Figure 14).
package core

import (
	"fmt"

	"uvmasim/internal/counters"
	"uvmasim/internal/cuda"
	"uvmasim/internal/stats"
	"uvmasim/internal/workloads"
)

// DefaultIterations is the paper's repetition count per configuration.
const DefaultIterations = 30

// Runner executes measured workload runs.
type Runner struct {
	Config     cuda.SystemConfig
	Iterations int
	BaseSeed   int64
}

// NewRunner returns a Runner with the paper's defaults.
func NewRunner() *Runner {
	return &Runner{
		Config:     cuda.DefaultSystemConfig(),
		Iterations: DefaultIterations,
		BaseSeed:   1,
	}
}

// Result holds the repeated measurements of one (workload, setup, size)
// cell.
type Result struct {
	Workload string
	Setup    cuda.Setup
	Size     workloads.Size

	Breakdowns []cuda.Breakdown
	// Counters from the final iteration (counter values are
	// deterministic given the seed; the paper likewise profiles counters
	// in dedicated runs).
	Counters counters.Set
}

// Totals returns the per-iteration wall totals.
func (r Result) Totals() []float64 {
	out := make([]float64, len(r.Breakdowns))
	for i, b := range r.Breakdowns {
		out[i] = b.Total
	}
	return out
}

// MeanBreakdown averages the component breakdown across iterations.
func (r Result) MeanBreakdown() cuda.Breakdown {
	var m cuda.Breakdown
	n := float64(len(r.Breakdowns))
	if n == 0 {
		return m
	}
	for _, b := range r.Breakdowns {
		m.Alloc += b.Alloc
		m.Memcpy += b.Memcpy
		m.Kernel += b.Kernel
		m.Overhead += b.Overhead
		m.Total += b.Total
	}
	m.Alloc /= n
	m.Memcpy /= n
	m.Kernel /= n
	m.Overhead /= n
	m.Total /= n
	return m
}

// Summary summarizes the wall totals.
func (r Result) Summary() stats.Summary { return stats.Summarize(r.Totals()) }

// seedFor derives a deterministic seed per cell and iteration.
func (r *Runner) seedFor(name string, setup cuda.Setup, size workloads.Size, iter int) int64 {
	h := int64(1469598103934665603)
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	// Setups share the iteration's noise draw (same "machine state"), as
	// when the paper interleaves its per-setup runs.
	_ = setup
	return r.BaseSeed + h%100000 + int64(size)*1000003 + int64(iter)*7919
}

// Measure runs workload w under setup at size for the configured number
// of iterations.
func (r *Runner) Measure(w workloads.Workload, setup cuda.Setup, size workloads.Size) (Result, error) {
	res := Result{Workload: w.Name(), Setup: setup, Size: size}
	iters := r.Iterations
	if iters < 1 {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		ctx := cuda.NewContext(r.Config, setup, r.seedFor(w.Name(), setup, size, i))
		if err := w.Run(ctx, size); err != nil {
			return res, fmt.Errorf("core: %s/%s/%s iteration %d: %w",
				w.Name(), setup, size, i, err)
		}
		res.Breakdowns = append(res.Breakdowns, ctx.Breakdown())
		if i == iters-1 {
			res.Counters = *ctx.Counters()
		}
	}
	return res, nil
}

// MeasureAllSetups measures one workload at one size under all five
// setups, in the paper's order.
func (r *Runner) MeasureAllSetups(w workloads.Workload, size workloads.Size) ([]Result, error) {
	out := make([]Result, 0, len(cuda.AllSetups))
	for _, s := range cuda.AllSetups {
		res, err := r.Measure(w, s, size)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
