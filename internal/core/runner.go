// Package core is the paper's experiment harness: it runs the benchmark
// suite under the five data-transfer setups, repeats each measurement
// with fresh noise draws (the paper's 30 iterations), aggregates
// execution-time breakdowns and hardware counters, and produces the data
// behind every table and figure of the evaluation (Table 3, Figures
// 4-13) plus the §6 inter-job pipeline model (Figure 14).
//
// Studies execute on a parallel cell executor (see executor.go) and
// memoize unique cells in a cross-figure cache. Both rely on one
// invariant that must be preserved when adding experiments: every
// stochastic draw of a cell is derived from that cell's own seed
// (seedFor), never from shared mutable state such as a study-wide RNG or
// a previous cell's context. Per-cell seeds are what make cells
// embarrassingly parallel, the merge order-independent, and a cell's
// Result a pure function of its cache key.
package core

import (
	"fmt"

	"uvmasim/internal/counters"
	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/stats"
	"uvmasim/internal/store"
	"uvmasim/internal/trace"
	"uvmasim/internal/workloads"
)

// DefaultIterations is the paper's repetition count per configuration.
const DefaultIterations = 30

// Runner executes measured workload runs.
type Runner struct {
	Config     cuda.SystemConfig
	Iterations int
	BaseSeed   int64

	// Parallelism is the worker count of the cell executor. Zero or
	// negative means GOMAXPROCS; 1 forces the legacy serial path. The
	// worker-token pool is sized on first use, so set it before running
	// studies.
	Parallelism int
	// Cache enables the cross-figure cell cache: identical
	// (workload, setup, size, iterations, seed, config) cells are
	// computed once and shared. Disable it to force every study to
	// re-simulate (benchmarks measuring harness cost do).
	Cache bool

	// Store, when non-nil, is the persistent cell store layered under
	// the in-memory cell cache: an in-memory miss consults the store
	// before simulating, and every freshly simulated cell is written
	// back. Store lookups happen inside the singleflight slot, so
	// concurrent callers of one cell trigger at most one disk read (or
	// one simulate+write). Requires Cache.
	Store CellStore
	// Capture, when non-nil, records every cell that flows through the
	// cache — in-memory hits included — as portable cell documents; the
	// -shard CLI mode drains it into the shard artifact. Requires Cache.
	Capture *store.Mem
	// ShardIndex/ShardCount (1-based index) restrict the runner to the
	// cells whose key hash lands in this shard: non-owned cells
	// short-circuit to a zero placeholder Result without simulating.
	// Rendered output is meaningless under sharding — only the Capture
	// artifact is (`uvmbench merge` reassembles real output from it).
	// ShardCount <= 1 disables partitioning. Requires Cache.
	ShardIndex, ShardCount int

	// TraceHook, when non-nil, is consulted once per simulated iteration
	// of every measurement cell; a non-nil return value is attached to
	// that iteration's cuda.Context before the workload runs. Because
	// each cell binds its own tracer, tracing composes with the parallel
	// executor. A non-nil hook bypasses the cell cache (a cached Result
	// carries no timeline), and attaching a tracer never changes
	// simulated timing, so traced breakdowns equal untraced ones.
	TraceHook func(workload string, setup cuda.Setup, size workloads.Size, iter int) *trace.Tracer

	exec  *executor
	cache *cellCache
	pool  *contextPool
}

// NewRunner returns a Runner with the paper's defaults: the default
// hardware profile (the paper's A100-40GB testbed), parallel execution
// across all cores and the cell cache enabled.
func NewRunner() *Runner {
	return NewRunnerFor(profile.Default())
}

// NewRunnerFor returns a Runner measuring on the given hardware
// profile. Results from different profiles never collide in the cell
// cache: every cache key carries the profile's fingerprint.
func NewRunnerFor(p profile.Profile) *Runner {
	return &Runner{
		Config:     p.Config,
		Iterations: DefaultIterations,
		BaseSeed:   1,
		Cache:      true,
		exec:       &executor{},
		cache:      newCellCache(),
		pool:       &contextPool{},
	}
}

// acquireCtx returns a simulation context initialized to (Config, setup,
// seed): a recycled one from the shared pool when available (reset, so
// its arenas are warm but its observable state matches a fresh context
// bit for bit), a new one otherwise. Pair with releaseCtx. A zero-value
// Runner has no pool and always builds fresh contexts.
func (r *Runner) acquireCtx(setup cuda.Setup, seed int64) *cuda.Context {
	if r.pool != nil {
		if ctx := r.pool.get(); ctx != nil {
			ctx.Reset(r.Config, setup, seed)
			return ctx
		}
	}
	return cuda.NewContext(r.Config, setup, seed)
}

// releaseCtx parks the context for reuse by a later cell.
func (r *Runner) releaseCtx(ctx *cuda.Context) {
	if r.pool != nil {
		r.pool.put(ctx)
	}
}

// iters returns the effective iteration count.
func (r *Runner) iters() int {
	if r.Iterations < 1 {
		return 1
	}
	return r.Iterations
}

// Result holds the repeated measurements of one (workload, setup, size)
// cell. Results returned by Runner methods may be shared with the cell
// cache and must be treated as read-only.
type Result struct {
	Workload string
	Setup    cuda.Setup
	Size     workloads.Size

	Breakdowns []cuda.Breakdown
	// Counters from the final iteration (counter values are
	// deterministic given the seed; the paper likewise profiles counters
	// in dedicated runs).
	Counters counters.Set
}

// Totals returns the per-iteration wall totals.
func (r Result) Totals() []float64 {
	out := make([]float64, len(r.Breakdowns))
	for i, b := range r.Breakdowns {
		out[i] = b.Total
	}
	return out
}

// MeanBreakdown averages the component breakdown across iterations.
func (r Result) MeanBreakdown() cuda.Breakdown {
	var m cuda.Breakdown
	n := float64(len(r.Breakdowns))
	if n == 0 {
		return m
	}
	for _, b := range r.Breakdowns {
		m.Alloc += b.Alloc
		m.Memcpy += b.Memcpy
		m.Kernel += b.Kernel
		m.Overhead += b.Overhead
		m.Total += b.Total
	}
	m.Alloc /= n
	m.Memcpy /= n
	m.Kernel /= n
	m.Overhead /= n
	m.Total /= n
	return m
}

// Summary summarizes the wall totals.
func (r Result) Summary() stats.Summary { return stats.Summarize(r.Totals()) }

// seedFor derives a deterministic seed per cell and iteration. Every
// stochastic draw of a cell must trace back to this seed (see the
// package comment): drawing from shared mutable state instead would
// couple cells and break both parallel determinism and the cell cache.
func (r *Runner) seedFor(name string, setup cuda.Setup, size workloads.Size, iter int) int64 {
	h := int64(1469598103934665603)
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	// Setups share the iteration's noise draw (same "machine state"), as
	// when the paper interleaves its per-setup runs.
	_ = setup
	return r.BaseSeed + h%100000 + int64(size)*1000003 + int64(iter)*7919
}

// Measure runs workload w under setup at size for the configured number
// of iterations, fanning iterations across the executor and memoizing
// the cell in the cross-figure cache.
func (r *Runner) Measure(w workloads.Workload, setup cuda.Setup, size workloads.Size) (Result, error) {
	return r.cached(w.Name(), setup, size, func() (Result, error) {
		return r.measureCell(w, setup, size)
	})
}

// measureCell simulates every iteration of one cell on one pooled
// context, resetting it between iterations (per-iteration seeds make
// each reset run identical to a fresh context). Cells — not iterations —
// are the unit of executor parallelism, so the context is exclusively
// this cell's for the whole loop and a warmed-up iteration allocates
// nothing.
func (r *Runner) measureCell(w workloads.Workload, setup cuda.Setup, size workloads.Size) (Result, error) {
	iters := r.iters()
	res := Result{
		Workload:   w.Name(),
		Setup:      setup,
		Size:       size,
		Breakdowns: make([]cuda.Breakdown, iters),
	}
	ctx := r.acquireCtx(setup, r.seedFor(w.Name(), setup, size, 0))
	defer r.releaseCtx(ctx)
	for i := 0; i < iters; i++ {
		if i > 0 {
			ctx.Reset(r.Config, setup, r.seedFor(w.Name(), setup, size, i))
		}
		if r.TraceHook != nil {
			if tr := r.TraceHook(w.Name(), setup, size, i); tr != nil {
				ctx.SetTracer(tr)
			}
		}
		if err := w.Run(ctx, size); err != nil {
			return Result{Workload: w.Name(), Setup: setup, Size: size},
				fmt.Errorf("core: %s/%s/%s iteration %d: %w", w.Name(), setup, size, i, err)
		}
		res.Breakdowns[i] = ctx.Breakdown()
		if i == iters-1 {
			res.Counters = *ctx.Counters()
		}
	}
	return res, nil
}

// MeasureAllSetups measures one workload at one size under all five
// setups, returned in the paper's order.
func (r *Runner) MeasureAllSetups(w workloads.Workload, size workloads.Size) ([]Result, error) {
	out := make([]Result, len(cuda.AllSetups))
	err := r.forEach(len(out), func(i int) error {
		res, err := r.Measure(w, cuda.AllSetups[i], size)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
