// Package core is the paper's experiment harness: it runs the benchmark
// suite under the registered data-transfer setups (the paper's five by
// default; see cuda.Register and Runner.Setups), repeats each measurement
// with fresh noise draws (the paper's 30 iterations), aggregates
// execution-time breakdowns and hardware counters, and produces the data
// behind every table and figure of the evaluation (Table 3, Figures
// 4-13) plus the §6 inter-job pipeline model (Figure 14).
//
// Studies execute on a parallel cell executor (see executor.go) and
// memoize unique cells in a cross-figure cache. Both rely on one
// invariant that must be preserved when adding experiments: every
// stochastic draw of a cell is derived from that cell's own seed
// (seedFor), never from shared mutable state such as a study-wide RNG or
// a previous cell's context. Per-cell seeds are what make cells
// embarrassingly parallel, the merge order-independent, and a cell's
// Result a pure function of its cache key.
package core

import (
	"fmt"
	"time"

	"uvmasim/internal/counters"
	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/stats"
	"uvmasim/internal/store"
	"uvmasim/internal/trace"
	"uvmasim/internal/workloads"
)

// DefaultIterations is the paper's repetition count per configuration.
const DefaultIterations = 30

// Runner executes measured workload runs.
type Runner struct {
	Config     cuda.SystemConfig
	Iterations int
	BaseSeed   int64

	// Setups is the ordered setup list every multi-setup study iterates
	// (figures, sweeps, counters, compare-profiles, trace-all). Nil
	// means the paper's five-setup presentation (cuda.PaperSetups), so
	// default output is byte-identical to the closed-enum harness.
	// Studies record the list they ran under; improvement statistics
	// normalize against the list's baseline setup (cuda.BaselineIndex).
	Setups []cuda.Setup

	// Parallelism is the worker count of the cell executor. Zero or
	// negative means GOMAXPROCS; 1 forces the legacy serial path. The
	// worker-token pool is sized on first use, so set it before running
	// studies.
	Parallelism int
	// IterParallelism is the intra-cell fan-out width: a cell's
	// iterations are split into up to this many contiguous blocks, each
	// simulated on its own pooled context, with per-iteration
	// Breakdowns written into their index slots (see cellLoop). Zero or
	// negative means the executor's width. The fan-out draws from the
	// same worker-token pool as the cell executor, so total concurrency
	// never exceeds Parallelism; output is byte-identical at any
	// (Parallelism, IterParallelism) combination because every
	// iteration keeps its own seed and slot.
	IterParallelism int
	// Cache enables the cross-figure cell cache: identical
	// (workload, setup, size, iterations, seed, config) cells are
	// computed once and shared. Disable it to force every study to
	// re-simulate (benchmarks measuring harness cost do).
	Cache bool

	// Store, when non-nil, is the persistent cell store layered under
	// the in-memory cell cache: an in-memory miss consults the store
	// before simulating, and every freshly simulated cell is written
	// back. Store lookups happen inside the singleflight slot, so
	// concurrent callers of one cell trigger at most one disk read (or
	// one simulate+write). Requires Cache.
	Store CellStore
	// Capture, when non-nil, records every cell that flows through the
	// cache — in-memory hits included — as portable cell documents; the
	// -shard CLI mode drains it into the shard artifact. Requires Cache.
	Capture *store.Mem
	// ShardIndex/ShardCount (1-based index) restrict the runner to the
	// cells whose key hash lands in this shard: non-owned cells
	// short-circuit to a zero placeholder Result without simulating.
	// Rendered output is meaningless under sharding — only the Capture
	// artifact is (`uvmbench merge` reassembles real output from it).
	// ShardCount <= 1 disables partitioning. Requires Cache.
	ShardIndex, ShardCount int

	// TraceHook, when non-nil, is consulted once per simulated iteration
	// of every measurement cell; a non-nil return value is attached to
	// that iteration's cuda.Context before the workload runs. Because
	// each cell binds its own tracer, tracing composes with the parallel
	// executor. A non-nil hook bypasses the cell cache (a cached Result
	// carries no timeline), and attaching a tracer never changes
	// simulated timing, so traced breakdowns equal untraced ones. With
	// IterParallelism > 1 the hook may be called from concurrent
	// iteration blocks, so it must be safe for concurrent use (the
	// package's own hooks are: they key on the iteration index).
	TraceHook func(workload string, setup cuda.Setup, size workloads.Size, iter int) *trace.Tracer

	exec  *executor
	cache *cellCache
	pool  *contextPool
	costs *costModel
}

// NewRunner returns a Runner with the paper's defaults: the default
// hardware profile (the paper's A100-40GB testbed), parallel execution
// across all cores and the cell cache enabled.
func NewRunner() *Runner {
	return NewRunnerFor(profile.Default())
}

// NewRunnerFor returns a Runner measuring on the given hardware
// profile. Results from different profiles never collide in the cell
// cache: every cache key carries the profile's fingerprint.
func NewRunnerFor(p profile.Profile) *Runner {
	return &Runner{
		Config:     p.Config,
		Iterations: DefaultIterations,
		BaseSeed:   1,
		Cache:      true,
		exec:       &executor{},
		cache:      newCellCache(),
		pool:       &contextPool{},
		costs:      newCostModel(),
	}
}

// acquireCtx returns a simulation context initialized to (Config, setup,
// seed): a recycled one from the shared pool when available (reset, so
// its arenas are warm but its observable state matches a fresh context
// bit for bit), a new one otherwise. Pair with releaseCtx. A zero-value
// Runner has no pool and always builds fresh contexts.
func (r *Runner) acquireCtx(setup cuda.Setup, seed int64) *cuda.Context {
	if r.pool != nil {
		if ctx := r.pool.get(); ctx != nil {
			ctx.Reset(r.Config, setup, seed)
			return ctx
		}
	}
	return cuda.NewContext(r.Config, setup, seed)
}

// releaseCtx parks the context for reuse by a later cell.
func (r *Runner) releaseCtx(ctx *cuda.Context) {
	if r.pool != nil {
		r.pool.put(ctx)
	}
}

// setups returns the effective study setup list: Runner.Setups when
// set, the paper's five-setup presentation otherwise.
func (r *Runner) setups() []cuda.Setup {
	if len(r.Setups) > 0 {
		return r.Setups
	}
	return cuda.PaperSetups()
}

// iters returns the effective iteration count.
func (r *Runner) iters() int {
	if r.Iterations < 1 {
		return 1
	}
	return r.Iterations
}

// Result holds the repeated measurements of one (workload, setup, size)
// cell. Results returned by Runner methods may be shared with the cell
// cache and must be treated as read-only.
type Result struct {
	Workload string
	Setup    cuda.Setup
	Size     workloads.Size

	Breakdowns []cuda.Breakdown
	// Counters is the hardware-counter snapshot of the cell's FINAL
	// iteration (index Iterations-1), not an aggregate across
	// iterations. Counter values are deterministic given that
	// iteration's seed — the paper likewise profiles counters in
	// dedicated runs — and the contract holds on every execution path:
	// the serial loop snapshots after its last iteration, and the
	// intra-cell fan-out (IterParallelism > 1) assigns the snapshot
	// from whichever block owns the final iteration, so fan-out and
	// serial runs report identical counters (pinned by
	// TestFanoutCountersMatchSerial).
	Counters counters.Set
}

// Totals returns the per-iteration wall totals.
func (r Result) Totals() []float64 {
	out := make([]float64, len(r.Breakdowns))
	for i, b := range r.Breakdowns {
		out[i] = b.Total
	}
	return out
}

// MeanBreakdown averages the component breakdown across iterations.
func (r Result) MeanBreakdown() cuda.Breakdown {
	var m cuda.Breakdown
	n := float64(len(r.Breakdowns))
	if n == 0 {
		return m
	}
	for _, b := range r.Breakdowns {
		m.Alloc += b.Alloc
		m.Memcpy += b.Memcpy
		m.Kernel += b.Kernel
		m.Overhead += b.Overhead
		m.Total += b.Total
	}
	m.Alloc /= n
	m.Memcpy /= n
	m.Kernel /= n
	m.Overhead /= n
	m.Total /= n
	return m
}

// Summary summarizes the wall totals.
func (r Result) Summary() stats.Summary { return stats.Summarize(r.Totals()) }

// seedFor derives a deterministic seed per cell and iteration. Every
// stochastic draw of a cell must trace back to this seed (see the
// package comment): drawing from shared mutable state instead would
// couple cells and break both parallel determinism and the cell cache.
func (r *Runner) seedFor(name string, setup cuda.Setup, size workloads.Size, iter int) int64 {
	h := int64(1469598103934665603)
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	// Setups share the iteration's noise draw (same "machine state"), as
	// when the paper interleaves its per-setup runs.
	_ = setup
	return r.BaseSeed + h%100000 + int64(size)*1000003 + int64(iter)*7919
}

// Measure runs workload w under setup at size for the configured number
// of iterations, fanning iterations across the executor and memoizing
// the cell in the cross-figure cache.
func (r *Runner) Measure(w workloads.Workload, setup cuda.Setup, size workloads.Size) (Result, error) {
	return r.cached(w.Name(), setup, size, func() (Result, error) {
		return r.measureCell(w, setup, size)
	})
}

// iterPar resolves the effective intra-cell fan-out width:
// IterParallelism if set, otherwise the executor's width.
func (r *Runner) iterPar() int {
	if r.IterParallelism > 0 {
		return r.IterParallelism
	}
	return r.parallelism()
}

// cellLoop simulates the iterations of one cell — len(out) of them —
// and is the single implementation under measureCell and sweepCell.
// Iterations are split into up to iterPar() contiguous blocks; each
// block acquires its own pooled context, seeds it per iteration with
// seed(i) (a Reset run is pinned bit-identical to a fresh context, so
// block boundaries are invisible in the results), and writes each
// Breakdown into its index slot. Blocks fan out through the shared
// worker-token pool — the same budget the cell executor draws from —
// so a saturated pool degrades to running the blocks inline, and a cold
// single-cell request gets the executor's full width. The block owning
// the final iteration snapshots the context's counters into final (when
// non-nil), which keeps Result.Counters' final-iteration contract exact
// at any fan-out. The per-iteration body allocates nothing; hook (may
// be nil) is the TraceHook binding and must tolerate concurrent calls.
// The returned error is the lowest-indexed failing block's first error.
func (r *Runner) cellLoop(setup cuda.Setup, seed func(i int) int64, hook func(i int) *trace.Tracer,
	run func(ctx *cuda.Context, i int) error, out []cuda.Breakdown, final *counters.Set) error {
	iters := len(out)
	inst := &noInstruments
	if r.cache != nil {
		inst = &r.cache.inst
	}
	block := func(lo, hi int) error {
		ctx := r.acquireCtx(setup, seed(lo))
		defer r.releaseCtx(ctx)
		for i := lo; i < hi; i++ {
			if i > lo {
				ctx.Reset(r.Config, setup, seed(i))
			}
			if hook != nil {
				if tr := hook(i); tr != nil {
					ctx.SetTracer(tr)
				}
			}
			if inst.iterSeconds != nil {
				inst.itersInFlight.Add(1)
				start := time.Now()
				err := run(ctx, i)
				inst.iterSeconds.Observe(time.Since(start).Seconds())
				inst.itersInFlight.Add(-1)
				if err != nil {
					return err
				}
			} else if err := run(ctx, i); err != nil {
				return err
			}
			out[i] = ctx.Breakdown()
			if final != nil && i == iters-1 {
				*final = *ctx.Counters()
			}
		}
		return nil
	}
	k := r.iterPar()
	if k > iters {
		k = iters
	}
	if k <= 1 {
		return block(0, iters)
	}
	return r.forEach(k, func(b int) error {
		return block(b*iters/k, (b+1)*iters/k)
	})
}

// measureCell simulates every iteration of one cell, fanning contiguous
// iteration blocks across pooled contexts (cellLoop). Per-iteration
// seeds make every block's reset runs identical to fresh contexts, so
// the cell's Result is byte-identical at any fan-out width, and a
// warmed-up iteration allocates nothing.
func (r *Runner) measureCell(w workloads.Workload, setup cuda.Setup, size workloads.Size) (Result, error) {
	iters := r.iters()
	name := w.Name()
	res := Result{
		Workload:   name,
		Setup:      setup,
		Size:       size,
		Breakdowns: make([]cuda.Breakdown, iters),
	}
	var hook func(i int) *trace.Tracer
	if r.TraceHook != nil {
		hook = func(i int) *trace.Tracer { return r.TraceHook(name, setup, size, i) }
	}
	err := r.cellLoop(setup,
		func(i int) int64 { return r.seedFor(name, setup, size, i) },
		hook,
		func(ctx *cuda.Context, i int) error {
			if err := w.Run(ctx, size); err != nil {
				return fmt.Errorf("core: %s/%s/%s iteration %d: %w", name, setup, size, i, err)
			}
			return nil
		},
		res.Breakdowns, &res.Counters)
	if err != nil {
		return Result{Workload: name, Setup: setup, Size: size}, err
	}
	return res, nil
}

// MeasureAllSetups measures one workload at one size under every setup
// in the runner's study list (the paper's five by default), returned in
// that order. Managed setups cost several times their explicit-copy
// peers, so the dispatch is cost-ordered.
func (r *Runner) MeasureAllSetups(w workloads.Workload, size workloads.Size) ([]Result, error) {
	setups := r.setups()
	out := make([]Result, len(setups))
	order := r.lptOrder(len(out), func(i int) float64 {
		return r.cellCost(w.Name(), setups[i], size)
	})
	err := r.forEachOrdered(len(out), order, func(i int) error {
		res, err := r.Measure(w, setups[i], size)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
