package core

import (
	"reflect"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/sched"
	"uvmasim/internal/topo"
	"uvmasim/internal/workloads"
)

// relClose reports whether got is within rel of want, relatively.
func relClose(got, want, rel float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	scale := want
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return diff <= rel*scale
}

// TestMultiGPUOracleMatchesAnalytic is the differential-oracle contract
// (the reason MultiJob stays in the tree): on one GPU with no fabric
// contention, the measured DES schedule must reproduce the frozen §6
// closed forms exactly — serial J*(a+t+k), pipelined a + J*max(t+k, a).
// Any drift between the scheduler and the analytic model is a bug in
// one of them.
func TestMultiGPUOracleMatchesAnalytic(t *testing.T) {
	r := testRunner(3)
	const jobs = 5
	study, err := r.MultiGPU("vector_seq", cuda.UVMPrefetchAsync, workloads.Super,
		jobs, []int{1}, []topo.Kind{topo.PCIeSwitch}, sched.LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	an := study.Analytic
	// The Figure 14 point lives in the GPU-bound regime: the GPU phase
	// must dominate the allocation, or the analytic pipelined total
	// degenerates to the CPU-bound branch and the comparison means
	// something else.
	if an.Transfer+an.Kernel < an.Alloc {
		t.Fatalf("GPU phase %v below alloc %v: not the GPU-bound regime the oracle pins",
			an.Transfer+an.Kernel, an.Alloc)
	}
	if len(study.Points) != 1 {
		t.Fatalf("got %d grid points, want 1", len(study.Points))
	}
	p := study.Points[0]
	const rel = 1e-9
	if !relClose(p.Serial.Makespan, an.SerialTotal, rel) {
		t.Errorf("1-GPU serial makespan %v, analytic %v", p.Serial.Makespan, an.SerialTotal)
	}
	if !relClose(p.Pipelined.Makespan, an.PipelinedTotal, rel) {
		t.Errorf("1-GPU pipelined makespan %v, analytic %v", p.Pipelined.Makespan, an.PipelinedTotal)
	}
	if !relClose(p.Improvement, an.Improvement, 1e-6) {
		t.Errorf("1-GPU improvement %v, analytic %v", p.Improvement, an.Improvement)
	}
	if p.Improvement <= 0 {
		t.Errorf("pipelining should improve the GPU-bound batch, got %v", p.Improvement)
	}
	// One GPU serializes the transfers, so the fabric never contends.
	if !relClose(p.Serial.TransferStretch, 1, rel) || !relClose(p.Pipelined.TransferStretch, 1, rel) {
		t.Errorf("uncontended stretch = %v / %v, want 1",
			p.Serial.TransferStretch, p.Pipelined.TransferStretch)
	}
}

// TestMultiGPUContentionErodesGain pins the study's headline result: on
// a shared PCIe-switch uplink, adding GPUs stretches transfers and
// erodes the pipeline gain, while point-to-point NVLink keeps transfers
// at solo speed and retains most of it.
func TestMultiGPUContentionErodesGain(t *testing.T) {
	r := testRunner(2)
	study, err := r.MultiGPU("vector_seq", cuda.UVMPrefetchAsync, workloads.Super,
		6, []int{1, 4}, []topo.Kind{topo.PCIeSwitch, topo.NVLink}, sched.LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	byPoint := map[string]MultiGPUPoint{}
	for _, p := range study.Points {
		byPoint[p.Topology+string(rune('0'+p.GPUs))] = p
	}
	sw1, sw4 := byPoint["pcie-switch1"], byPoint["pcie-switch4"]
	nv4 := byPoint["nvlink4"]
	if sw4.Improvement >= sw1.Improvement {
		t.Errorf("switch contention should erode the gain: 4-GPU %v vs 1-GPU %v",
			sw4.Improvement, sw1.Improvement)
	}
	if sw4.Pipelined.TransferStretch <= 1.1 {
		t.Errorf("4 GPUs on one uplink should stretch transfers, got %v",
			sw4.Pipelined.TransferStretch)
	}
	if !relClose(nv4.Pipelined.TransferStretch, 1, 1e-9) {
		t.Errorf("nvlink transfers should run at solo speed, stretch %v",
			nv4.Pipelined.TransferStretch)
	}
	if nv4.Improvement <= sw4.Improvement {
		t.Errorf("nvlink should retain more gain than the switch: %v vs %v",
			nv4.Improvement, sw4.Improvement)
	}
	// More GPUs never hurt the batch makespan under least-loaded.
	if sw4.Pipelined.Makespan > sw1.Pipelined.Makespan {
		t.Errorf("4-GPU makespan %v above 1-GPU %v", sw4.Pipelined.Makespan, sw1.Pipelined.Makespan)
	}
}

// TestMultiGPUValidation covers the grid-argument errors.
func TestMultiGPUValidation(t *testing.T) {
	r := testRunner(1)
	kinds := []topo.Kind{topo.PCIeSwitch}
	if _, err := r.MultiGPU("vector_seq", cuda.UVM, workloads.Small, 0, []int{1}, kinds, sched.FirstFit); err == nil {
		t.Error("zero jobs accepted")
	}
	if _, err := r.MultiGPU("vector_seq", cuda.UVM, workloads.Small, 2, nil, kinds, sched.FirstFit); err == nil {
		t.Error("empty GPU list accepted")
	}
	if _, err := r.MultiGPU("vector_seq", cuda.UVM, workloads.Small, 2, []int{0}, kinds, sched.FirstFit); err == nil {
		t.Error("zero GPU count accepted")
	}
	if _, err := r.MultiGPU("vector_seq", cuda.UVM, workloads.Small, 2, []int{1}, nil, sched.FirstFit); err == nil {
		t.Error("empty topology list accepted")
	}
	if _, err := r.MultiGPU("no_such_workload", cuda.UVM, workloads.Small, 2, []int{1}, kinds, sched.FirstFit); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestMultiGPUDecodePlaceholder: a shard placeholder (fewer breakdowns
// than jobs+gpus) must decode to zeros, never index out of range.
func TestMultiGPUDecodePlaceholder(t *testing.T) {
	res := Result{Breakdowns: make([]cuda.Breakdown, 2)}
	if agg := decodeMultiGPUCell(res, 3, 2, 100); agg != (MultiGPUSchedule{}) {
		t.Errorf("placeholder decoded to %+v, want zeros", agg)
	}
}

// TestMultiGPUFanoutDeterminism: the study must be identical — field for
// field — between the serial executor and any cell/iteration fan-out
// combination, the property behind `-par`/`-itpar` never changing bytes.
func TestMultiGPUFanoutDeterminism(t *testing.T) {
	run := func(par, itpar int) *MultiGPUStudy {
		r := testRunner(3)
		r.Parallelism = par
		r.IterParallelism = itpar
		study, err := r.MultiGPU("vector_seq", cuda.UVMPrefetchAsync, workloads.Large,
			4, []int{1, 2}, []topo.Kind{topo.PCIeSwitch, topo.NVLink}, sched.LeastLoaded)
		if err != nil {
			t.Fatal(err)
		}
		return study
	}
	want := run(1, 1)
	for _, c := range []struct{ par, itpar int }{{8, 1}, {1, 4}, {4, 4}} {
		if got := run(c.par, c.itpar); !reflect.DeepEqual(got, want) {
			t.Errorf("par=%d itpar=%d: study differs from serial", c.par, c.itpar)
		}
	}
}

// TestMultiGPUCostKindRoundTrip: the cell kind the study emits must be
// parsed by the cost model's decoder, so multigpu cells are priced by
// their workload measurement rather than the generic fallback.
func TestMultiGPUCostKindRoundTrip(t *testing.T) {
	kind := "multigpu:vector_seq:pcie-switch:4:least-loaded:8:pipelined"
	wname, gpus, jobs, ok := parseMultiGPUKind(kind)
	if !ok || wname != "vector_seq" || gpus != 4 || jobs != 8 {
		t.Fatalf("parseMultiGPUKind(%q) = %q,%d,%d,%v", kind, wname, gpus, jobs, ok)
	}
	if _, _, _, ok := parseMultiGPUKind("oversub:1.5:4"); ok {
		t.Error("oversub kind misparsed as multigpu")
	}
	if _, _, _, ok := parseMultiGPUKind("multigpu:x:y"); ok {
		t.Error("malformed multigpu kind accepted")
	}
	cfg := cuda.DefaultSystemConfig()
	base := staticCellSeconds(cfg, "vector_seq", cuda.UVMPrefetchAsync, workloads.Super, 30)
	mg := staticCellSeconds(cfg, kind, cuda.UVMPrefetchAsync, workloads.Super, 30)
	if mg <= base {
		t.Errorf("multigpu cell (%g) should price above its inner measurement (%g)", mg, base)
	}
}
