package core

import (
	"fmt"
	"strings"

	"uvmasim/internal/cuda"
	"uvmasim/internal/workloads"
)

// ms formats nanoseconds as milliseconds.
func ms(ns float64) string { return fmt.Sprintf("%9.2f", ns/1e6) }

// RenderTable3 prints the input-size parameter table.
func RenderTable3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: parameter configurations\n")
	fmt.Fprintf(&b, "%-8s %10s %12s %10s %8s\n", "class", "mem", "1D elems", "2D dim", "3D dim")
	for _, s := range workloads.AllSizes {
		fmt.Fprintf(&b, "%-8s %9dM %12d %9dsq %7dcu\n",
			s, s.Footprint()>>20, s.Elems1D(1), s.Dim2D(1), s.Dim3D(1))
	}
	return b.String()
}

// RenderFig4 prints the execution-time distributions per input size.
func (d *DistributionStudy) RenderFig4() string {
	var b strings.Builder
	for _, size := range d.Sizes {
		fmt.Fprintf(&b, "Figure 4 (%s): execution time, mean±ci95 ms over runs\n", size)
		fmt.Fprintf(&b, "%-12s", "workload")
		for _, s := range d.Setups {
			fmt.Fprintf(&b, " %22s", s)
		}
		fmt.Fprintln(&b)
		for _, w := range d.Workloads {
			fmt.Fprintf(&b, "%-12s", w)
			for _, setup := range d.Setups {
				for _, c := range d.Cells {
					if c.Workload == w && c.Size == size && c.Setup == setup {
						fmt.Fprintf(&b, " %12.1f ±%7.1f", c.Summary.Mean/1e6, c.Summary.CI95/1e6)
					}
				}
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderFig5 prints std/mean per workload and size plus the geomean row.
func (d *DistributionStudy) RenderFig5() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: std/mean of run-to-run totals\n")
	fmt.Fprintf(&b, "%-12s", "workload")
	for _, size := range d.Sizes {
		fmt.Fprintf(&b, " %8s", size)
	}
	fmt.Fprintln(&b)
	for _, w := range d.Workloads {
		fmt.Fprintf(&b, "%-12s", w)
		for _, size := range d.Sizes {
			fmt.Fprintf(&b, " %8.4f", d.CV(w, size))
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-12s", "geo-mean")
	for _, size := range d.Sizes {
		fmt.Fprintf(&b, " %8.4f", d.GeoMeanCV(size))
	}
	fmt.Fprintln(&b)
	return b.String()
}

// Render prints the Figure 6 per-run breakdown table.
func (f *Fig6) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: vector_seq Mega, per-run breakdown (ms)\n")
	fmt.Fprintf(&b, "%-5s %9s %9s %9s %9s\n", "run", "kernel", "alloc", "memcpy", "total")
	for i, run := range f.Runs {
		fmt.Fprintf(&b, "%-5d %s %s %s %s\n", i, ms(run.Kernel), ms(run.Alloc), ms(run.Memcpy), ms(run.Total))
	}
	fmt.Fprintf(&b, "memcpy cv=%.3f kernel cv=%.3f\n", f.MemcpyCV(), f.KernelCV())
	return b.String()
}

// Render prints a Figure 7/8 style normalized stacked-breakdown table.
func (s *BreakdownStudy) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s input): components normalized to standard total (overhead excluded)\n", title, s.Size)
	fmt.Fprintf(&b, "%-12s %-20s %8s %8s %8s %8s\n", "workload", "setup", "kernel", "memcpy", "alloc", "total")
	for _, row := range s.Rows {
		for i, setup := range s.Setups {
			k, m, a, t := row.Normalized(i)
			name := ""
			if i == 0 {
				name = row.Workload
			}
			fmt.Fprintf(&b, "%-12s %-20s %8.3f %8.3f %8.3f %8.3f\n", name, setup, k, m, a, t)
		}
	}
	fmt.Fprintf(&b, "\ngeo-mean improvement over standard:")
	for i, setup := range s.Setups {
		if i == s.Baseline {
			continue
		}
		fmt.Fprintf(&b, "  %s %+.2f%%", setup, 100*s.GeoMeanImprovement(setup))
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "mean memcpy savings over standard: ")
	for i, setup := range s.Setups {
		if i == s.Baseline {
			continue
		}
		fmt.Fprintf(&b, "  %s %+.2f%%", setup, 100*s.ComponentSavings(setup, func(x cuda.Breakdown) float64 { return x.Memcpy }))
	}
	fmt.Fprintln(&b)
	return b.String()
}

// RenderFig9 prints the instruction-mix comparison.
func (s *CounterStudy) RenderFig9() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: instruction mix (%s input)\n", s.Size)
	fmt.Fprintf(&b, "%-10s %-20s %14s %14s\n", "workload", "setup", "control inst", "integer inst")
	for _, row := range s.Rows {
		fmt.Fprintf(&b, "%-10s %-20s %14.3e %14.3e\n", row.Workload, row.Setup, row.CtrlInst, row.IntInst)
	}
	return b.String()
}

// RenderFig10 prints the cache miss-rate comparison.
func (s *CounterStudy) RenderFig10() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: unified-L1 miss rates (%s input)\n", s.Size)
	fmt.Fprintf(&b, "%-10s %-20s %10s %10s\n", "workload", "setup", "load miss", "store miss")
	for _, row := range s.Rows {
		fmt.Fprintf(&b, "%-10s %-20s %10.3f %10.3f\n", row.Workload, row.Setup, row.LoadMissRate, row.StoreMissRate)
	}
	return b.String()
}

// Render prints a sensitivity sweep (Figures 11-13).
func (s *Sweep) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s input, vector_seq): totals normalized to standard@%v\n",
		title, s.Size, s.Points[0].Param)
	fmt.Fprintf(&b, "%-10s", s.ParamName)
	for _, setup := range s.Setups {
		fmt.Fprintf(&b, " %19s", setup)
	}
	fmt.Fprintln(&b)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-10v", p.Param)
		for si := range s.Setups {
			fmt.Fprintf(&b, " %19.3f", s.NormalizedPoint(p, si))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Render prints the Figure 14 / §6 multi-job pipeline estimate.
func (m *MultiJobResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14 / §6: inter-job pipeline model (%s, %s, %d jobs)\n",
		m.Workload, m.Setup, m.Jobs)
	fmt.Fprintf(&b, "per-job stages (ms): alloc %s  transfer %s  kernel %s\n",
		ms(m.Alloc), ms(m.Transfer), ms(m.Kernel))
	fmt.Fprintf(&b, "allocation share %.2f%%  kernel share %.2f%%  occupancy %.2f%%\n",
		100*m.AllocShare, 100*m.KernelShare, 100*m.Occupancy)
	fmt.Fprintf(&b, "serial batch    %s ms\n", ms(m.SerialTotal))
	fmt.Fprintf(&b, "pipelined batch %s ms\n", ms(m.PipelinedTotal))
	fmt.Fprintf(&b, "improvement     %.2f%%\n", 100*m.Improvement)
	return b.String()
}
