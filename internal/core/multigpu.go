package core

import (
	"fmt"
	"strings"

	"uvmasim/internal/cuda"
	"uvmasim/internal/sched"
	"uvmasim/internal/sim"
	"uvmasim/internal/topo"
	"uvmasim/internal/workloads"
)

// MultiGPUStudy measures the Figure 14 pipeline headroom under real
// contention: the analytic §6 projection assumes one job owns one GPU
// and an uncontended link, while a batch spread over N GPUs shares the
// transfer fabric. The study replays the measured single-GPU stage
// durations through the concurrent-job scheduler (internal/sched) on
// each (topology, GPU count) grid point, running both the serial and
// the pipelined schedule, and reports how much of the projected
// improvement survives.
type MultiGPUStudy struct {
	Workload string
	Setup    cuda.Setup
	Size     workloads.Size
	Jobs     int
	Policy   string

	// Analytic is the 1-GPU no-contention §6 projection the grid is
	// judged against (the frozen Figure 14 oracle).
	Analytic *MultiJobResult

	Points []MultiGPUPoint
}

// MultiGPUSchedule is one schedule's realized aggregates at a grid
// point, decoded from the cell's per-job and per-GPU breakdowns.
type MultiGPUSchedule struct {
	Makespan             float64
	ThroughputJobsPerSec float64
	// Fairness is Jain's index over per-job finish times (identical
	// jobs, so equal to the index over slowdowns).
	Fairness float64
	// TransferStretch is the mean realized/solo transfer-time ratio:
	// 1.0 means the fabric never contended.
	TransferStretch float64
}

// MultiGPUPoint is one (topology, GPU count) grid point.
type MultiGPUPoint struct {
	Topology string
	GPUs     int

	Serial    MultiGPUSchedule
	Pipelined MultiGPUSchedule
	// Improvement is 1 - pipelined/serial makespan: the measured
	// counterpart of MultiJobResult.Improvement at this grid point.
	Improvement float64
}

// MultiGPU runs the grid study: workload `name` measured once under
// setup/size, then a batch of `jobs` identical jobs scheduled on every
// (topology, gpus) combination under `policy`, serial and pipelined.
// Each (grid point, schedule) pair is one cacheable cell.
func (r *Runner) MultiGPU(name string, setup cuda.Setup, size workloads.Size, jobs int, gpuCounts []int, topologies []topo.Kind, policy sched.Policy) (*MultiGPUStudy, error) {
	if jobs < 1 {
		return nil, fmt.Errorf("core: job count must be positive, got %d", jobs)
	}
	if len(gpuCounts) == 0 || len(topologies) == 0 {
		return nil, fmt.Errorf("core: multigpu grid needs at least one GPU count and one topology")
	}
	for _, g := range gpuCounts {
		if g < 1 {
			return nil, fmt.Errorf("core: GPU count must be positive, got %d", g)
		}
	}
	analytic, err := r.MultiJob(name, setup, size, jobs)
	if err != nil {
		return nil, err
	}
	study := &MultiGPUStudy{
		Workload: name,
		Setup:    setup,
		Size:     size,
		Jobs:     jobs,
		Policy:   policy.String(),
		Analytic: analytic,
		Points:   make([]MultiGPUPoint, 0, len(topologies)*len(gpuCounts)),
	}
	type cellRef struct {
		point     int
		kind      topo.Kind
		gpus      int
		pipelined bool
	}
	var cells []cellRef
	for _, k := range topologies {
		for _, g := range gpuCounts {
			p := len(study.Points)
			study.Points = append(study.Points, MultiGPUPoint{Topology: string(k), GPUs: g})
			cells = append(cells,
				cellRef{point: p, kind: k, gpus: g, pipelined: false},
				cellRef{point: p, kind: k, gpus: g, pipelined: true})
		}
	}
	kindOf := func(c cellRef) string {
		schedName := "serial"
		if c.pipelined {
			schedName = "pipelined"
		}
		// %s round-trips every field exactly, so equal kinds mean equal
		// cells across runs, shards and machines (the profile enters the
		// key via its fingerprint).
		return fmt.Sprintf("multigpu:%s:%s:%d:%s:%d:%s", name, c.kind, c.gpus, policy, jobs, schedName)
	}
	order := r.lptOrder(len(cells), func(i int) float64 {
		return r.cellCost(kindOf(cells[i]), setup, size)
	})
	err = r.forEachOrdered(len(cells), order, func(i int) error {
		c := cells[i]
		res, err := r.cached(kindOf(c), setup, size, func() (Result, error) {
			return r.multiGPUCell(name, setup, size, jobs, c.kind, c.gpus, policy, c.pipelined)
		})
		if err != nil {
			return err
		}
		agg := decodeMultiGPUCell(res, jobs, c.gpus, analytic.Transfer)
		if c.pipelined {
			study.Points[c.point].Pipelined = agg
		} else {
			study.Points[c.point].Serial = agg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range study.Points {
		p := &study.Points[i]
		if p.Serial.Makespan > 0 {
			p.Improvement = 1 - p.Pipelined.Makespan/p.Serial.Makespan
		}
	}
	return study, nil
}

// multiGPUJobs builds the batch the scheduler runs: `jobs` identical
// jobs arriving at time zero with the measured mean stage durations.
// The flow volume is chosen so a solo transfer reproduces the measured
// duration exactly (rate = min(footprint/t, device link), bytes = rate*t);
// only fabric contention can stretch it.
func multiGPUJobs(mb cuda.Breakdown, size workloads.Size, link float64, jobs int) []sched.Job {
	var bytes float64
	if mb.Memcpy > 0 {
		rate := float64(size.Footprint()) / mb.Memcpy
		if rate > link {
			rate = link
		}
		bytes = rate * mb.Memcpy
	}
	out := make([]sched.Job, jobs)
	for i := range out {
		out[i] = sched.Job{
			ID:         i,
			AllocNs:    mb.Alloc,
			TransferNs: mb.Memcpy,
			KernelNs:   mb.Kernel,
			Bytes:      bytes,
		}
	}
	return out
}

// multiGPUCell simulates one (topology, gpus, schedule) grid point. The
// Result encodes the realized schedule as jobs+gpus breakdowns: entries
// 0..jobs-1 are per-job spans (Alloc/Memcpy/Kernel = realized stage
// durations, Overhead = queueing wait, Total = finish time) and entries
// jobs..jobs+gpus-1 are per-GPU busy times (Total = the device's last
// finish). Everything the study and its renderers report is derived
// from these, so a cell stays a pure function of its cache key.
func (r *Runner) multiGPUCell(name string, setup cuda.Setup, size workloads.Size, jobs int, kind topo.Kind, gpus int, policy sched.Policy, pipelined bool) (Result, error) {
	// The stage durations come from the ordinary workload measurement
	// cell, computed on an unsharded copy of the runner: this cell
	// already passed the shard filter, so its inputs must not
	// short-circuit to a shard placeholder. Capture and tracing stay
	// off — the inner measurement is an input here, not an artifact.
	inner := *r
	inner.ShardIndex, inner.ShardCount = 0, 0
	inner.Capture = nil
	inner.TraceHook = nil
	w, err := workloads.ByName(name)
	if err != nil {
		return Result{}, err
	}
	res, err := inner.Measure(w, setup, size)
	if err != nil {
		return Result{}, err
	}
	st, err := runMultiGPUSchedule(r.Config, res.MeanBreakdown(), size, jobs, kind, gpus, policy, pipelined)
	if err != nil {
		return Result{}, err
	}
	bds := make([]cuda.Breakdown, 0, jobs+gpus)
	for i := range st.Jobs {
		js := &st.Jobs[i]
		bds = append(bds, cuda.Breakdown{
			Alloc:    js.AllocEnd - js.AllocStart,
			Memcpy:   js.TransferEnd - js.TransferStart,
			Kernel:   js.KernelEnd - js.KernelStart,
			Overhead: js.Wait,
			Total:    js.Finish,
		})
	}
	for g := range st.GPUs {
		gs := &st.GPUs[g]
		bds = append(bds, cuda.Breakdown{
			Alloc:  gs.AllocBusy,
			Memcpy: gs.TransferBusy,
			Kernel: gs.KernelBusy,
			Total:  gs.LastFinish,
		})
	}
	return Result{
		Workload:   "multigpu",
		Setup:      setup,
		Size:       size,
		Breakdowns: bds,
	}, nil
}

// runMultiGPUSchedule builds the topology and runs one schedule on a
// fresh engine. Shared by the cell compute and the trace export.
func runMultiGPUSchedule(cfg cuda.SystemConfig, mb cuda.Breakdown, size workloads.Size, jobs int, kind topo.Kind, gpus int, policy sched.Policy, pipelined bool) (*sched.Stats, error) {
	eng := sim.New()
	tp, err := topo.New(eng, cfg, kind, gpus)
	if err != nil {
		return nil, err
	}
	batch := multiGPUJobs(mb, size, cfg.PCIe.BytesPerNs(), jobs)
	return sched.Run(eng, tp, batch, sched.Options{Policy: policy, Pipelined: pipelined})
}

// MultiGPUTrace re-runs one grid point's schedule and returns its
// realized Stats, for Chrome-trace export (sched.Stats.WriteChromeTrace).
// The schedule is a cheap deterministic replay of the cell, so tracing
// never perturbs or bypasses the cell cache.
func (r *Runner) MultiGPUTrace(name string, setup cuda.Setup, size workloads.Size, jobs int, kind topo.Kind, gpus int, policy sched.Policy, pipelined bool) (*sched.Stats, error) {
	inner := *r
	inner.ShardIndex, inner.ShardCount = 0, 0
	inner.Capture = nil
	inner.TraceHook = nil
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	res, err := inner.Measure(w, setup, size)
	if err != nil {
		return nil, err
	}
	return runMultiGPUSchedule(r.Config, res.MeanBreakdown(), size, jobs, kind, gpus, policy, pipelined)
}

// decodeMultiGPUCell reconstructs one schedule's aggregates from the
// cell encoding. soloTransfer is the uncontended transfer duration (the
// analytic row's), the stretch baseline. Shard placeholders (too few
// breakdowns) decode to zeros: rendered output is only meaningful
// unsharded, matching the harness-wide sharding contract.
func decodeMultiGPUCell(res Result, jobs, gpus int, soloTransfer float64) MultiGPUSchedule {
	var out MultiGPUSchedule
	if len(res.Breakdowns) < jobs+gpus {
		return out
	}
	var finishSum, finishSq, stretchSum float64
	for _, b := range res.Breakdowns[:jobs] {
		if b.Total > out.Makespan {
			out.Makespan = b.Total
		}
		finishSum += b.Total
		finishSq += b.Total * b.Total
		if soloTransfer > 0 {
			stretchSum += b.Memcpy / soloTransfer
		}
	}
	if out.Makespan > 0 {
		out.ThroughputJobsPerSec = float64(jobs) / out.Makespan * 1e9
	}
	if finishSq > 0 {
		out.Fairness = finishSum * finishSum / (float64(jobs) * finishSq)
	}
	if soloTransfer > 0 {
		out.TransferStretch = stretchSum / float64(jobs)
	} else {
		out.TransferStretch = 1
	}
	return out
}

// Render prints the grid next to the analytic projection.
func (s *MultiGPUStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-GPU batch schedule (%s, %s, %s, %d jobs, %s placement)\n",
		s.Workload, s.Setup, s.Size, s.Jobs, s.Policy)
	fmt.Fprintf(&b, "analytic 1-GPU projection: serial %s ms, pipelined %s ms, improvement %5.1f%%\n",
		ms(s.Analytic.SerialTotal), ms(s.Analytic.PipelinedTotal), 100*s.Analytic.Improvement)
	fmt.Fprintf(&b, "%-12s %5s %12s %12s %8s %9s %9s\n",
		"topology", "gpus", "serial ms", "pipeline ms", "gain", "stretch", "fairness")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-12s %5d %12s %12s %7.1f%% %9.2f %9.3f\n",
			p.Topology, p.GPUs,
			ms(p.Serial.Makespan), ms(p.Pipelined.Makespan),
			100*p.Improvement, p.Pipelined.TransferStretch, p.Pipelined.Fairness)
	}
	return b.String()
}
