package core

import (
	"fmt"

	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/workloads"
)

// This file implements the cross-profile comparison experiment: the same
// workload x setup grid measured once per hardware profile and merged
// into a single document, so one command answers "which transfer mode
// wins on which machine". Every (profile, setup) cell runs on the shared
// parallel executor; the per-profile cache keys (fingerprints) keep the
// cells from colliding in the cell cache.

// ProfileRow is one profile's mean breakdown per study setup.
type ProfileRow struct {
	Profile     string
	Fingerprint string
	Setups      []cuda.Setup     // the study's setup list, in presentation order
	Baseline    int              // position in Setups normalization uses
	BySetup     []cuda.Breakdown // Setups order
}

// Best returns the winning setup — the lowest region-of-interest time
// (total minus fixed process overhead) — and its improvement over the
// baseline setup (positive = faster than the baseline).
func (row ProfileRow) Best() (cuda.Setup, float64) {
	best, bestROI := cuda.Standard, 0.0
	for i, b := range row.BySetup {
		roi := b.Total - b.Overhead
		if i == 0 || roi < bestROI {
			best, bestROI = row.Setups[i], roi
		}
	}
	std := row.BySetup[row.Baseline].Total - row.BySetup[row.Baseline].Overhead
	if std <= 0 {
		return best, 0
	}
	return best, 1 - bestROI/std
}

// Normalized returns the setup's ROI time normalized to this profile's
// own baseline setup (each machine is its own baseline, as when papers
// compare transfer modes within a testbed).
func (row ProfileRow) Normalized(setup int) float64 {
	std := row.BySetup[row.Baseline].Total - row.BySetup[row.Baseline].Overhead
	if std <= 0 {
		return 0
	}
	b := row.BySetup[setup]
	return (b.Total - b.Overhead) / std
}

// ProfileStudy is the cross-profile comparison result.
type ProfileStudy struct {
	Workload string
	Size     workloads.Size
	Setups   []cuda.Setup // the study's setup list, in presentation order
	Baseline int          // position in Setups normalization uses
	Rows     []ProfileRow // one per requested profile, in request order
}

// CompareProfiles measures one workload at one size under every setup in
// the runner's study list on each of the given hardware profiles. Cells
// fan out across the executor and land in (profile, setup) order, so the
// merged study is deterministic at any Parallelism; the runner's own
// Config is left untouched.
func (r *Runner) CompareProfiles(ps []profile.Profile, name string, size workloads.Size) (*ProfileStudy, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("core: no profiles to compare")
	}
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: profile %q: %w", p.Name, err)
		}
	}
	setups := r.setups()
	nSetups := len(setups)
	base := cuda.BaselineIndex(setups)
	grid := make([]cuda.Breakdown, len(ps)*nSetups)
	order := r.lptOrder(len(grid), func(i int) float64 {
		// Static cost only: the cells run under each profile's own
		// config, not the runner's, so observed costs keyed to r.Config
		// would mislead here.
		p := ps[i/nSetups]
		return staticCellSeconds(p.Config, name, setups[i%nSetups], size, r.iters())
	})
	err = r.forEachOrdered(len(grid), order, func(i int) error {
		p := ps[i/nSetups]
		setup := setups[i%nSetups]
		// The copy shares the executor and cell cache with r; its
		// fingerprinted cache keys keep this profile's cells separate.
		sub := *r
		sub.Config = p.Config
		res, err := sub.Measure(w, setup, size)
		if err != nil {
			return fmt.Errorf("core: profile %q: %w", p.Name, err)
		}
		grid[i] = res.MeanBreakdown()
		return nil
	})
	if err != nil {
		return nil, err
	}
	study := &ProfileStudy{
		Workload: name,
		Size:     size,
		Setups:   setups,
		Baseline: base,
		Rows:     make([]ProfileRow, len(ps)),
	}
	for pi, p := range ps {
		study.Rows[pi] = ProfileRow{
			Profile:     p.Name,
			Fingerprint: p.Fingerprint(),
			Setups:      setups,
			Baseline:    base,
			BySetup:     grid[pi*nSetups : (pi+1)*nSetups],
		}
	}
	return study, nil
}

// Render prints the cross-profile comparison: per-profile ROI times by
// setup, each profile's winning setup, and its gain over the baseline.
func (s *ProfileStudy) Render() string {
	out := fmt.Sprintf("Cross-profile comparison: %s (%s input), ROI ms by setup\n", s.Workload, s.Size)
	out += fmt.Sprintf("%-18s", "profile")
	for _, setup := range s.Setups {
		out += fmt.Sprintf(" %18s", setup)
	}
	out += fmt.Sprintf(" %20s\n", "best")
	for _, row := range s.Rows {
		out += fmt.Sprintf("%-18s", row.Profile)
		for _, b := range row.BySetup {
			out += fmt.Sprintf(" %18.2f", (b.Total-b.Overhead)/1e6)
		}
		best, gain := row.Best()
		out += fmt.Sprintf(" %20s\n", fmt.Sprintf("%s (%+.1f%%)", best, 100*gain))
	}
	return out
}

// Doc packages the study as the machine-readable compare-profiles
// document.
func (s *ProfileStudy) Doc() FigureDoc {
	type row struct {
		Profile         string          `json:"profile"`
		Fingerprint     string          `json:"fingerprint"`
		BySetup         []breakdownJSON `json:"by_setup"`
		NormalizedTotal []float64       `json:"normalized_total"`
		BestSetup       cuda.Setup      `json:"best_setup"`
		BestImprovement float64         `json:"best_improvement"`
	}
	rows := make([]row, len(s.Rows))
	for i, r := range s.Rows {
		norm := make([]float64, len(r.BySetup))
		for si := range r.BySetup {
			norm[si] = r.Normalized(si)
		}
		best, gain := r.Best()
		rows[i] = row{
			Profile:         r.Profile,
			Fingerprint:     r.Fingerprint,
			BySetup:         toBreakdownsJSON(r.BySetup),
			NormalizedTotal: norm,
			BestSetup:       best,
			BestImprovement: gain,
		}
	}
	return FigureDoc{Figure: "compare_profiles", Data: struct {
		Workload string         `json:"workload"`
		Size     workloads.Size `json:"size"`
		Setups   []cuda.Setup   `json:"setups"`
		Rows     []row          `json:"rows"`
	}{s.Workload, s.Size, s.Setups, rows}}
}
