package core

import (
	"uvmasim/internal/counters"
	"uvmasim/internal/cuda"
	"uvmasim/internal/store"
)

// This file is the bridge between the harness's in-memory cell cache and
// the persistent content-addressed store (internal/store): it flattens
// the typed cellKey into the store's self-describing string key and
// converts Results to and from cell documents. Both conversions are
// exact — every payload field is a float64 carried verbatim — so a
// replayed cell renders byte-identically to a simulated one.

// CellStore is the persistence interface a Runner accepts in its Store
// field (an alias of store.Store, re-exported so cmd code can depend on
// core alone for the common case).
type CellStore = store.Store

// storeKeyOf flattens a cellKey into the store's address form. Enums
// become their canonical names (cuda.ParseSetup / workloads.ParseSize
// round-trip them), so a store key is meaningful outside this process.
func storeKeyOf(key cellKey) store.Key {
	return store.Key{
		Kind:      key.kind,
		Setup:     key.setup.String(),
		Size:      key.size.String(),
		Iters:     key.iters,
		Seed:      key.seed,
		ProfileFP: key.fp,
	}
}

// docFromResult converts a measured Result into its cell document.
func docFromResult(skey store.Key, res Result) store.CellDoc {
	doc := store.CellDoc{
		Schema:     store.SchemaVersion,
		Key:        skey,
		Workload:   res.Workload,
		Breakdowns: make([]store.Breakdown, len(res.Breakdowns)),
	}
	for i, b := range res.Breakdowns {
		doc.Breakdowns[i] = store.Breakdown{
			AllocNs:    b.Alloc,
			MemcpyNs:   b.Memcpy,
			KernelNs:   b.Kernel,
			OverheadNs: b.Overhead,
			TotalNs:    b.Total,
		}
	}
	c := res.Counters
	integral, busy := c.OccupancyState()
	doc.Counters = store.Counters{
		MemInst:  c.Inst.Mem,
		FPInst:   c.Inst.FP,
		IntInst:  c.Inst.Int,
		CtrlInst: c.Inst.Ctrl,

		L1LoadAccesses:  c.L1.LoadAccesses,
		L1LoadMisses:    c.L1.LoadMisses,
		L1StoreAccesses: c.L1.StoreAccesses,
		L1StoreMisses:   c.L1.StoreMisses,

		PageFaults:     c.UVM.PageFaults,
		FaultBatches:   c.UVM.FaultBatches,
		MigratedBytes:  c.UVM.MigratedBytes,
		PrefetchBytes:  c.UVM.PrefetchBytes,
		WritebackBytes: c.UVM.WritebackBytes,
		EvictedBytes:   c.UVM.EvictedBytes,
		Evictions:      c.UVM.Evictions,

		H2DBytes: c.H2DBytes,
		D2HBytes: c.D2HBytes,

		OccupancyIntegral: integral,
		KernelBusyNs:      busy,
	}
	return doc
}

// resultFromDoc rebuilds the Result a stored cell document was captured
// from. The typed setup and size come from the in-process cellKey (they
// already matched the document's address for it to be served).
func resultFromDoc(key cellKey, doc store.CellDoc) Result {
	res := Result{
		Workload:   doc.Workload,
		Setup:      key.setup,
		Size:       key.size,
		Breakdowns: make([]cuda.Breakdown, len(doc.Breakdowns)),
	}
	for i, b := range doc.Breakdowns {
		res.Breakdowns[i] = cuda.Breakdown{
			Alloc:    b.AllocNs,
			Memcpy:   b.MemcpyNs,
			Kernel:   b.KernelNs,
			Overhead: b.OverheadNs,
			Total:    b.TotalNs,
		}
	}
	d := doc.Counters
	var c counters.Set
	c.Inst = counters.InstMix{Mem: d.MemInst, FP: d.FPInst, Int: d.IntInst, Ctrl: d.CtrlInst}
	c.L1 = counters.L1Stats{
		LoadAccesses:  d.L1LoadAccesses,
		LoadMisses:    d.L1LoadMisses,
		StoreAccesses: d.L1StoreAccesses,
		StoreMisses:   d.L1StoreMisses,
	}
	c.UVM = counters.UVMStats{
		PageFaults:     d.PageFaults,
		FaultBatches:   d.FaultBatches,
		MigratedBytes:  d.MigratedBytes,
		PrefetchBytes:  d.PrefetchBytes,
		WritebackBytes: d.WritebackBytes,
		EvictedBytes:   d.EvictedBytes,
		Evictions:      d.Evictions,
	}
	c.H2DBytes = d.H2DBytes
	c.D2HBytes = d.D2HBytes
	c.SetOccupancyState(d.OccupancyIntegral, d.KernelBusyNs)
	res.Counters = c
	return res
}
