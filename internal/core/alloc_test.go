package core

import (
	"runtime"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/metrics"
	"uvmasim/internal/workloads"
)

// Alloc-ceiling regression tests for the GC-free hot loop: once a cell's
// context has warmed up its arenas (node arena, region free list, Buffer
// pool, host/device allocator storage, dirty queues, demand scratch), a
// simulated iteration must not allocate at all. The assertions encode
// that as iteration-count independence — the per-call allocation count
// of measureCell is the same fixed constant (the Breakdowns slice and
// its kin) at 2 and at 12 iterations — plus absolute ceilings on both
// the steady-state constant and the one-time warm-up.

const (
	// steadyCeiling bounds measureCell's fixed per-call overhead (slices
	// sized by iteration count are one allocation regardless of length).
	steadyCeiling = 8
	// warmCeiling bounds the first-ever cell of a fresh runner: context
	// construction, arena growth to the workload's footprint, and the
	// result slices. Measured ~1.1e4 for vector_seq/Large; the bound
	// leaves headroom without letting an accidental per-chunk or
	// per-iteration allocation (~1e5 and up) slip through.
	warmCeiling = 40000
)

func allocTestRunner() *Runner {
	r := NewRunner()
	r.Parallelism = 1
	r.Cache = false
	return r
}

func TestMeasureCellSteadyStateAllocFree(t *testing.T) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		t.Fatal(err)
	}
	for _, setup := range cuda.AllSetups {
		setup := setup
		t.Run(setup.String(), func(t *testing.T) {
			r := allocTestRunner()
			perCall := func(iters int) float64 {
				r.Iterations = iters
				return testing.AllocsPerRun(3, func() {
					if _, err := r.measureCell(w, setup, workloads.Large); err != nil {
						t.Fatal(err)
					}
				})
			}
			// Warm both iteration counts before comparing (AllocsPerRun
			// itself runs one extra warm-up call).
			perCall(12)
			few := perCall(2)
			many := perCall(12)
			if few != many {
				t.Errorf("allocations grow with iteration count: %.1f per call at 2 iters, %.1f at 12"+
					" — the iteration loop is no longer alloc-free", few, many)
			}
			if many > steadyCeiling {
				t.Errorf("steady-state measureCell allocates %.1f per call, ceiling %d", many, steadyCeiling)
			}
		})
	}
}

func TestMeasureCellWarmupAllocCeiling(t *testing.T) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		t.Fatal(err)
	}
	for _, setup := range cuda.AllSetups {
		setup := setup
		t.Run(setup.String(), func(t *testing.T) {
			r := allocTestRunner()
			r.Iterations = 2
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			if _, err := r.measureCell(w, setup, workloads.Large); err != nil {
				t.Fatal(err)
			}
			runtime.ReadMemStats(&after)
			warm := after.Mallocs - before.Mallocs
			if warm > warmCeiling {
				t.Errorf("cold-start measureCell allocated %d times, ceiling %d", warm, warmCeiling)
			}
		})
	}
}

// TestInstrumentedCellAllocIterationIndependent: with the metrics
// registry attached (the serve configuration), per-cell allocation cost
// through the cached() path must stay independent of the iteration
// count — the instruments observe whole cells, never iterations, so the
// alloc-free hot loop survives instrumentation.
func TestInstrumentedCellAllocIterationIndependent(t *testing.T) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	r.Parallelism = 1
	r.InstrumentMetrics(metrics.New())
	seed := int64(1000)
	perCell := func(iters int) float64 {
		r.Iterations = iters
		return testing.AllocsPerRun(3, func() {
			// A fresh seed per call: every Measure is a distinct cell, so
			// each simulates (warm contexts, cold cache slot).
			seed++
			r.BaseSeed = seed
			if _, err := r.Measure(w, cuda.UVMPrefetchAsync, workloads.Large); err != nil {
				t.Fatal(err)
			}
		})
	}
	perCell(12)
	few := perCell(2)
	many := perCell(12)
	// Tolerate map-growth jitter between samples, nothing more: a
	// per-iteration metric op would add ~10 allocations here.
	if many > few+2 {
		t.Errorf("instrumented cell allocations grow with iteration count: %.1f at 2 iters, %.1f at 12", few, many)
	}
	if many > steadyCeiling+32 {
		t.Errorf("instrumented cell allocates %.1f per call, ceiling %d", many, steadyCeiling+32)
	}
}
