package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/metrics"
	"uvmasim/internal/workloads"
)

// Alloc-ceiling regression tests for the GC-free hot loop: once a cell's
// context has warmed up its arenas (node arena, region free list, Buffer
// pool, host/device allocator storage, dirty queues, demand scratch), a
// simulated iteration must not allocate at all. The assertions encode
// that as iteration-count independence — the per-call allocation count
// of measureCell is the same fixed constant (the Breakdowns slice and
// its kin) at 2 and at 12 iterations — plus absolute ceilings on both
// the steady-state constant and the one-time warm-up.

const (
	// steadyCeiling bounds measureCell's fixed per-call overhead (slices
	// sized by iteration count are one allocation regardless of length).
	steadyCeiling = 8
	// warmCeiling bounds the first-ever cell of a fresh runner: context
	// construction, arena growth to the workload's footprint, and the
	// result slices. Measured ~1.1e4 for vector_seq/Large; the bound
	// leaves headroom without letting an accidental per-chunk or
	// per-iteration allocation (~1e5 and up) slip through.
	warmCeiling = 40000
)

func allocTestRunner() *Runner {
	r := NewRunner()
	r.Parallelism = 1
	r.Cache = false
	return r
}

func TestMeasureCellSteadyStateAllocFree(t *testing.T) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		t.Fatal(err)
	}
	for _, setup := range cuda.Registered() {
		setup := setup
		t.Run(setup.String(), func(t *testing.T) {
			r := allocTestRunner()
			perCall := func(iters int) float64 {
				r.Iterations = iters
				return testing.AllocsPerRun(3, func() {
					if _, err := r.measureCell(w, setup, workloads.Large); err != nil {
						t.Fatal(err)
					}
				})
			}
			// Warm both iteration counts before comparing (AllocsPerRun
			// itself runs one extra warm-up call).
			perCall(12)
			few := perCall(2)
			many := perCall(12)
			if few != many {
				t.Errorf("allocations grow with iteration count: %.1f per call at 2 iters, %.1f at 12"+
					" — the iteration loop is no longer alloc-free", few, many)
			}
			if many > steadyCeiling {
				t.Errorf("steady-state measureCell allocates %.1f per call, ceiling %d", many, steadyCeiling)
			}
		})
	}
}

func TestMeasureCellWarmupAllocCeiling(t *testing.T) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		t.Fatal(err)
	}
	for _, setup := range cuda.Registered() {
		setup := setup
		t.Run(setup.String(), func(t *testing.T) {
			r := allocTestRunner()
			r.Iterations = 2
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			if _, err := r.measureCell(w, setup, workloads.Large); err != nil {
				t.Fatal(err)
			}
			runtime.ReadMemStats(&after)
			warm := after.Mallocs - before.Mallocs
			if warm > warmCeiling {
				t.Errorf("cold-start measureCell allocated %d times, ceiling %d", warm, warmCeiling)
			}
		})
	}
}

// TestInstrumentedCellAllocIterationIndependent: with the metrics
// registry attached (the serve configuration), per-cell allocation cost
// through the cached() path must stay independent of the iteration
// count — the instruments observe iterations with plain atomics, never
// allocating, so the alloc-free hot loop survives instrumentation.
func TestInstrumentedCellAllocIterationIndependent(t *testing.T) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	r.Parallelism = 1
	r.InstrumentMetrics(metrics.New())
	// The comparison below is tight (+2 allocations of slack). Allocation
	// counts are process-global, so background GC work landing inside the
	// longer 12-iteration samples — much more likely under -race, which
	// slows the simulation an order of magnitude — would bias them up.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	n := 0
	perCell := func(iters int) float64 {
		r.Iterations = iters
		return testing.AllocsPerRun(3, func() {
			// A fresh cache kind per call: every cell simulates (warm
			// contexts and reseed cache, cold cell-cache slot). Varying
			// the kind rather than the seed keeps the per-seed generator
			// cache warm, so only the cell-level bookkeeping is measured.
			n++
			kind := fmt.Sprintf("alloc-test-%d", n)
			_, err := r.cached(kind, cuda.UVMPrefetchAsync, workloads.Large, func() (Result, error) {
				return r.measureCell(w, cuda.UVMPrefetchAsync, workloads.Large)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	// Every call grows the cell-cache and cost-model maps by one entry,
	// so a map rehash can land inside any one sample and spike its
	// average. The minimum of a few trials sheds those spikes — a real
	// per-iteration allocation inflates every trial, not just one.
	minCell := func(iters int) float64 {
		best := perCell(iters)
		for i := 0; i < 2; i++ {
			if v := perCell(iters); v < best {
				best = v
			}
		}
		return best
	}
	minCell(32)
	few := minCell(2)
	many := minCell(32)
	// The wide 2→32 spread separates signal from runtime noise: a real
	// per-iteration metric allocation adds ≥30 here, while the residual
	// jitter that survives min-of-trials (incremental map evacuation in
	// the growing cell-cache/cost-model maps, sudog churn when the race
	// detector makes lock handoffs block) measures ≤5.
	if many > few+10 {
		t.Errorf("instrumented cell allocations grow with iteration count: %.1f at 2 iters, %.1f at 32", few, many)
	}
	if many > steadyCeiling+32 {
		t.Errorf("instrumented cell allocates %.1f per call, ceiling %d", many, steadyCeiling+32)
	}
}

// TestFanoutCellSteadyStateAllocFree: with intra-cell fan-out active,
// the per-iteration loop inside each block must stay alloc-free. The
// fan-out itself costs a fixed per-block overhead (goroutine spawn,
// block closure), so the per-call constant is higher than the serial
// path's — but it must not scale with the iteration count.
func TestFanoutCellSteadyStateAllocFree(t *testing.T) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		t.Fatal(err)
	}
	r := allocTestRunner()
	r.Parallelism = 2
	r.IterParallelism = 2
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	perCall := func(iters int) float64 {
		r.Iterations = iters
		return testing.AllocsPerRun(5, func() {
			if _, err := r.measureCell(w, cuda.UVMPrefetchAsync, workloads.Large); err != nil {
				t.Fatal(err)
			}
		})
	}
	minCall := func(iters int) float64 {
		best := perCall(iters)
		for i := 0; i < 2; i++ {
			if v := perCall(iters); v < best {
				best = v
			}
		}
		return best
	}
	minCall(32)
	few := minCall(4)
	many := minCall(32)
	// Goroutine scheduling makes the per-call constant noisy — a parked
	// worker's wake-up or a lock handoff forced to block (frequent under
	// -race on a loaded machine) can allocate scheduler bookkeeping. The
	// wide 4→32 spread keeps the check sharp anyway: a real
	// per-iteration allocation adds ≥28 here, the observed scheduler
	// jitter ≤10.
	if many > few+12 {
		t.Errorf("fan-out cell allocations grow with iteration count: %.1f per call at 4 iters, %.1f at 32", few, many)
	}
	if many > steadyCeiling+24 {
		t.Errorf("steady-state fan-out measureCell allocates %.1f per call, ceiling %d", many, steadyCeiling+24)
	}
}
