package core

import (
	"errors"
	"testing"

	"uvmasim/internal/workloads"
)

// TestForEachInlineFastPath pins the saturated-pool contract: when no
// spare worker token can be acquired — effective parallelism 1, a
// zero-value Runner, or a nested fan-out whose pool is drained — forEach
// runs inline on the calling goroutine, visits every index in order, and
// reports the lowest-index error exactly like the legacy serial loop.
func TestForEachInlineFastPath(t *testing.T) {
	t.Run("parallelism1", func(t *testing.T) {
		r := testRunner(1)
		r.Parallelism = 1
		var got []int
		if err := r.forEach(5, func(i int) error {
			got = append(got, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("inline path visited %v, want in-order 0..4", got)
			}
		}
	})

	t.Run("zeroValueRunner", func(t *testing.T) {
		var r Runner
		r.Parallelism = 4
		n := 0
		if err := r.forEach(3, func(i int) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("ran %d of 3 calls", n)
		}
	})

	t.Run("drainedPool", func(t *testing.T) {
		r := testRunner(1)
		r.Parallelism = 4
		// Drain every spare token: the next fan-out cannot spawn helpers
		// and must fall back to the inline loop. The append below is
		// unsynchronized on purpose — the race detector turns any
		// accidental parallel execution into a test failure.
		for r.exec.acquire(r.parallelism()) {
		}
		var got []int
		if err := r.forEach(6, func(i int) error {
			got = append(got, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("drained-pool fan-out visited %v, want in-order 0..5", got)
			}
		}
	})

	t.Run("firstError", func(t *testing.T) {
		r := testRunner(1)
		r.Parallelism = 1
		boom := errors.New("boom")
		calls := 0
		err := r.forEach(5, func(i int) error {
			calls++
			if i >= 2 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got err %v, want boom", err)
		}
		if calls != 3 {
			t.Fatalf("inline path made %d calls, want 3 (stop at first error)", calls)
		}
	})
}

// TestForEachInlineAllocFree: the fast path must not pay for the fan-out
// machinery (error slice, atomic cursor, goroutines) it does not use.
func TestForEachInlineAllocFree(t *testing.T) {
	r := testRunner(1)
	r.Parallelism = 1
	fn := func(i int) error { return nil }
	if allocs := testing.AllocsPerRun(100, func() {
		if err := r.forEach(8, fn); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("inline forEach allocates %.1f per call, want 0", allocs)
	}
}

// TestForEachSaturatedDeterminism: a study running entirely on the
// drained-pool inline path renders byte-identically to the serial and
// wide-pool paths (TestParallelDeterminism covers those two).
func TestForEachSaturatedDeterminism(t *testing.T) {
	render := func(r *Runner) string {
		study, err := r.BreakdownComparison(workloads.Micro()[:4], workloads.Large)
		if err != nil {
			t.Fatal(err)
		}
		return study.Render("Figure 7")
	}
	serial := testRunner(3)
	serial.Parallelism = 1
	want := render(serial)

	drained := testRunner(3)
	drained.Parallelism = 8
	for drained.exec.acquire(drained.parallelism()) {
	}
	if got := render(drained); got != want {
		t.Errorf("drained-pool output diverges from serial\nserial:\n%s\ndrained:\n%s", want, got)
	}
}
