package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"uvmasim/internal/core"
	"uvmasim/internal/metrics"
	"uvmasim/internal/profile"
	"uvmasim/internal/store"
)

// Config configures a Server. The zero value is usable: default
// machine, no persistent store, one admission slot per core, logs to
// stderr, a fresh private metrics registry.
type Config struct {
	// Store is the persistent cell store shared by every request's
	// runner (nil = in-memory cell cache only). StoreDir is its
	// directory, probed for writability by /healthz ("" = no probe).
	Store    core.CellStore
	StoreDir string
	// MaxInFlight is the admission budget in worker slots, not
	// requests: each admitted experiment claims as many slots as its
	// executor width (clamped to the budget, so one maximal request
	// always fits), and requests that would overdraw the budget get
	// 429 + Retry-After immediately instead of queueing behind the
	// executor (<=0 = GOMAXPROCS). With Parallelism 1 this degrades to
	// the old requests count; with wide executors it keeps the total
	// worker count — not merely the request count — bounded.
	MaxInFlight int
	// Parallelism is each runner's executor width (the CLI's -par).
	Parallelism int
	// IterParallelism is each runner's intra-cell iteration fan-out
	// (the CLI's -itpar); requests may override it per spec.
	IterParallelism int
	// Registry receives every metric the server and the instrumented
	// harness layers expose (nil = a private registry).
	Registry *metrics.Registry
	// Log receives one structured line per request (nil = stderr).
	Log *log.Logger
	// DefaultProfile is the machine used by specs that name none
	// (zero = the built-in default).
	DefaultProfile profile.Profile
}

// Server is the uvmbench experiment service. Runners are shared across
// requests per hardware profile, so warm traffic is served from the
// in-memory cell cache (and the persistent store across restarts) — the
// metrics plane exists to make that fast-path/cold-path split visible.
type Server struct {
	cfg      Config
	def      profile.Profile
	reg      *metrics.Registry
	log      *log.Logger
	slots    slotPool
	handler  http.Handler
	draining atomic.Bool
	reqSeq   atomic.Uint64
	start    time.Time

	mu      sync.Mutex
	runners map[string]*core.Runner

	reqSeconds    *metrics.Histogram
	httpInflight  *metrics.Gauge
	expInflight   *metrics.Gauge
	slotsUsed     *metrics.Gauge
	rejected      *metrics.Counter
	goroutines    *metrics.Gauge
	uptimeSeconds *metrics.Gauge
}

// slotPool is the weighted admission budget: capacity and usage are
// counted in executor worker slots, so admission throttles the actual
// simulation concurrency rather than a request count that ignores how
// wide each request's executor fans out.
type slotPool struct {
	mu       sync.Mutex
	capacity int
	used     int
}

// tryAcquire claims weight slots. The weight is clamped to the pool's
// capacity so a request wider than the whole budget can still run —
// alone — rather than deadlocking behind an unsatisfiable demand.
// Returns the granted weight for the matching release.
func (p *slotPool) tryAcquire(weight int) (int, bool) {
	weight = max(1, min(weight, p.capacity))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.used+weight > p.capacity {
		return 0, false
	}
	p.used += weight
	return weight, true
}

func (p *slotPool) release(weight int) {
	p.mu.Lock()
	p.used -= weight
	p.mu.Unlock()
}

// New builds a Server from cfg and registers its serving-plane metrics.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, def: cfg.DefaultProfile, reg: cfg.Registry, log: cfg.Log}
	if s.def.Name == "" {
		s.def = profile.Default()
	}
	if s.reg == nil {
		s.reg = metrics.New()
	}
	if s.log == nil {
		s.log = log.New(os.Stderr, "", 0)
	}
	n := cfg.MaxInFlight
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.slots.capacity = n
	s.runners = make(map[string]*core.Runner)
	s.start = time.Now()

	s.reqSeconds = s.reg.Histogram("uvmbench_request_seconds",
		"Wall time of one /v1/experiments request.", metrics.DefSecondsBuckets)
	s.httpInflight = s.reg.Gauge("uvmbench_requests_inflight",
		"HTTP requests currently being served.")
	s.expInflight = s.reg.Gauge("uvmbench_experiments_inflight",
		"Experiment requests currently holding an admission slot.")
	s.slotsUsed = s.reg.Gauge("uvmbench_admission_slots_used",
		"Worker slots currently claimed by admitted experiment requests.")
	s.rejected = s.reg.Counter("uvmbench_admission_rejections_total",
		"Experiment requests rejected with 429 because the worker-slot budget was exhausted.")
	s.goroutines = s.reg.Gauge("uvmbench_process_goroutines",
		"Goroutines at scrape time.")
	s.uptimeSeconds = s.reg.Gauge("uvmbench_process_uptime_seconds",
		"Seconds since the server started, at scrape time.")

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/experiments", s.handleExperiments)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.handler = s.instrument(mux)
	return s
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the server's root handler (logging and metrics
// middleware included), for tests and embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// runnerFor returns the shared base runner for one hardware profile,
// creating and instrumenting it on first use. All requests on the same
// machine share one runner family — one cell cache, one executor — so
// repeated specs are memory hits and concurrent duplicates singleflight.
func (s *Server) runnerFor(p profile.Profile) *core.Runner {
	fp := p.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[fp]; ok {
		return r
	}
	r := core.NewRunnerFor(p)
	r.Parallelism = s.cfg.Parallelism
	r.IterParallelism = s.cfg.IterParallelism
	r.Store = s.cfg.Store
	r.InstrumentMetrics(s.reg)
	s.runners[fp] = r
	return r
}

// statusWriter captures the status code and byte count for the request
// log and the per-code response counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// instrument wraps the mux with the observability middleware: request
// IDs, one structured log line per request, in-flight gauge, per-code
// response counters, and the experiment-request latency histogram.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("%06x", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		s.httpInflight.Add(1)
		start := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		s.httpInflight.Add(-1)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if r.URL.Path == "/v1/experiments" {
			s.reqSeconds.Observe(dur.Seconds())
		}
		s.reg.Counter(fmt.Sprintf(`uvmbench_http_responses_total{code="%d"}`, sw.status),
			"HTTP responses by status code.").Inc()
		s.log.Printf("ts=%s id=%s method=%s path=%s status=%d dur_ms=%.3f bytes=%d",
			start.UTC().Format(time.RFC3339Nano), id, r.Method, r.URL.Path,
			sw.status, float64(dur.Microseconds())/1000, sw.bytes)
	})
}

// httpError writes a one-line JSON error document.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{%q: %q}\n", "error", msg)
}

// handleExperiments serves POST /v1/experiments: decode and validate
// the spec, admit or 429, run the figures, and reply with the same
// bytes the CLI's -json mode prints for that spec.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "use POST with a JSON experiment spec")
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Admission weight is the request's executor width: intra-cell
	// fan-out shares the same token pool, so itpar adds no workers.
	width := s.cfg.Parallelism
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	granted, ok := s.slots.tryAcquire(width)
	if !ok {
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "worker-slot budget exhausted; retry shortly")
		return
	}
	s.expInflight.Add(1)
	s.slotsUsed.Add(float64(granted))
	defer func() {
		s.slots.release(granted)
		s.expInflight.Add(-1)
		s.slotsUsed.Add(-float64(granted))
	}()

	req, err := ParseSpec(http.MaxBytesReader(w, r.Body, 1<<20), s.def)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	base := s.runnerFor(req.Profile)
	// Value copy: per-request iterations, seed and iteration fan-out,
	// shared executor, cell cache and context pool. The cell key
	// includes iters, seed and the profile fingerprint, so mixed
	// request shapes cannot collide.
	rr := *base
	rr.Iterations = req.Iters
	rr.BaseSeed = req.Seed
	rr.Setups = req.Setups
	if req.ItPar > 0 {
		rr.IterParallelism = req.ItPar
	}

	// Encode into a pooled buffer: a json.Encoder with the CLI's indent
	// writes the same bytes core.RenderJSON would (MarshalIndent plus a
	// trailing newline per document) without the per-figure []byte →
	// string → builder copies, and the buffer's backing array is reused
	// across requests. Nothing reaches the ResponseWriter until every
	// figure succeeded, so errors still get a clean error document.
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyBufPool.Put(buf)
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	for _, fig := range req.Figures {
		_, doc, err := Figure(&rr, fig, req.Opt)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if err := enc.Encode(doc); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// bodyBufPool recycles response-body buffers across experiment
// requests; a figure-all document is a few hundred KiB, well worth not
// re-growing from scratch on every cold request.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// handleMetrics serves the Prometheus text exposition, refreshing the
// scrape-time process gauges first.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.goroutines.Set(float64(runtime.NumGoroutine()))
	s.uptimeSeconds.Set(time.Since(s.start).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Printf("ts=%s metrics write failed: %v", time.Now().UTC().Format(time.RFC3339Nano), err)
	}
}

// handleHealthz reports readiness: not draining, and (when a store is
// configured) the store directory still opens and probes writable.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.cfg.StoreDir != "" {
		if _, err := store.Open(s.cfg.StoreDir); err != nil {
			httpError(w, http.StatusServiceUnavailable, fmt.Sprintf("store probe: %v", err))
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ListenAndServe binds addr and serves until ctx is cancelled, then
// drains gracefully: readiness flips to 503, in-flight requests finish,
// and the listener closes.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.log.Printf("uvmbench serve: listening on http://%s", ln.Addr())
	return s.Serve(ctx, ln)
}

// Serve serves on ln until ctx is cancelled (graceful drain) or the
// listener fails.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.handler, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.log.Printf("uvmbench serve: draining")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := srv.Shutdown(sctx)
	<-errc // Serve has returned http.ErrServerClosed
	return err
}
