package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"uvmasim/internal/core"
	"uvmasim/internal/cuda"
	"uvmasim/internal/nearest"
	"uvmasim/internal/profile"
	"uvmasim/internal/sched"
	"uvmasim/internal/topo"
	"uvmasim/internal/workloads"
)

// Spec is the POST /v1/experiments request body. Every field is
// optional; the zero spec means "figure all on the default machine with
// the CLI's defaults", and each default mirrors the corresponding CLI
// flag exactly so a spec and a flag set that say the same thing produce
// the same bytes.
type Spec struct {
	// Figure names one artifact; Figures names several (run in order,
	// documents concatenated exactly like CLI `-json f1,f2`). They
	// combine; "all" expands to the CLI's all-list.
	Figure  string   `json:"figure,omitempty"`
	Figures []string `json:"figures,omitempty"`
	// Profile is a built-in machine name ("" = the server's default).
	// Unlike the CLI flag it cannot name a file: requests must not read
	// the server's filesystem.
	Profile string `json:"profile,omitempty"`
	// Profiles is the compare-profiles machine set (empty = all
	// built-ins), again built-in names only.
	Profiles []string `json:"profiles,omitempty"`
	Workload string   `json:"workload,omitempty"` // compare-profiles workload (default gemm)
	// Setups is the study's setup subset by registered name, exactly the
	// CLI -setups list (empty = the paper's five). Unknown names fail
	// with a nearest-name hint before anything simulates.
	Setups []string `json:"setups,omitempty"`
	Size   string   `json:"size,omitempty"` // size-class override (default per figure)
	Iters    int      `json:"iters,omitempty"`    // iterations per configuration (default 30)
	Seed     *int64   `json:"seed,omitempty"`     // base random seed (default 1)
	Jobs     int      `json:"jobs,omitempty"`     // fig14 batch size (default 8)
	// ItPar overrides the server's intra-cell iteration fan-out for this
	// request (0 = the server's -itpar setting). Like -par it cannot
	// change any response byte — it only trades latency for width.
	ItPar int `json:"itpar,omitempty"`
	// GPUs, Topology and Policy configure the multigpu grid, mirroring
	// the -gpus/-topology/-policy CLI flags (defaults "1,2,4",
	// "pcie-switch,nvlink", "least-loaded").
	GPUs     []int    `json:"gpus,omitempty"`
	Topology []string `json:"topology,omitempty"`
	Policy   string   `json:"policy,omitempty"`
}

// specFields lists the accepted JSON keys, for typo suggestions.
var specFields = []string{
	"figure", "figures", "profile", "profiles", "workload", "setups",
	"size", "iters", "seed", "jobs", "itpar", "gpus", "topology", "policy",
}

// ParseSpec decodes and validates a request body. Unknown fields and
// unknown names fail with the CLI's nearest-suggestion diagnostics, so
// a curl typo gets the same help a shell typo does.
func ParseSpec(r io.Reader, defaultProfile profile.Profile) (*Request, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		const unknown = `json: unknown field "`
		if msg := err.Error(); strings.HasPrefix(msg, unknown) {
			name := strings.TrimSuffix(strings.TrimPrefix(msg, unknown), `"`)
			return nil, fmt.Errorf("unknown spec field %q%s", name, nearest.Hint(name, specFields, 2))
		}
		return nil, fmt.Errorf("bad spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("bad spec: trailing data after the JSON object")
	}
	return s.resolve(defaultProfile)
}

// Request is a validated, defaulted spec, ready to run.
type Request struct {
	Figures []string // expanded, validated figure list
	Profile profile.Profile
	Iters   int
	Seed    int64
	ItPar   int          // intra-cell fan-out override (0 = server setting)
	Setups  []cuda.Setup // resolved study subset (nil = paper five)
	Opt     FigureOptions
}

// resolve applies the CLI flag defaults and validates every name
// upfront — a typo must fail in microseconds, not after a figure
// simulates.
func (s *Spec) resolve(defaultProfile profile.Profile) (*Request, error) {
	figures := make([]string, 0, len(s.Figures)+1)
	if s.Figure != "" {
		figures = append(figures, s.Figure)
	}
	figures = append(figures, s.Figures...)
	if len(figures) == 0 {
		return nil, fmt.Errorf("spec names no figures (try \"figure\": \"fig7\", or \"all\")")
	}
	expanded := make([]string, 0, len(figures))
	for _, f := range figures {
		if f == "all" {
			expanded = append(expanded, AllFigures...)
			continue
		}
		if !IsFigure(f) {
			cands := append([]string{"all"}, FigureNames...)
			return nil, fmt.Errorf("unknown figure %q%s", f, nearest.Hint(f, cands, 2))
		}
		expanded = append(expanded, f)
	}

	req := &Request{
		Figures: expanded,
		Profile: defaultProfile,
		Iters:   core.DefaultIterations,
		Seed:    1,
		Opt: FigureOptions{
			Size:     s.Size,
			Jobs:     8,
			Workload: "gemm",
		},
	}
	if s.Iters < 0 {
		return nil, fmt.Errorf("iters must be >= 0, got %d", s.Iters)
	}
	if s.Iters > 0 {
		req.Iters = s.Iters
	}
	if s.Seed != nil {
		req.Seed = *s.Seed
	}
	if s.Jobs < 0 {
		return nil, fmt.Errorf("jobs must be >= 0, got %d", s.Jobs)
	}
	if s.ItPar < 0 {
		return nil, fmt.Errorf("itpar must be >= 0, got %d", s.ItPar)
	}
	req.ItPar = s.ItPar
	if s.Jobs > 0 {
		req.Opt.Jobs = s.Jobs
	}
	if s.Workload != "" {
		if _, err := workloads.ByName(s.Workload); err != nil {
			return nil, err
		}
		req.Opt.Workload = s.Workload
	}
	if len(s.GPUs) > 0 {
		parts := make([]string, len(s.GPUs))
		for i, g := range s.GPUs {
			if g < 1 {
				return nil, fmt.Errorf("gpus entries must be positive device counts, got %d", g)
			}
			parts[i] = strconv.Itoa(g)
		}
		req.Opt.GPUs = strings.Join(parts, ",")
	}
	if len(s.Topology) > 0 {
		csv := strings.Join(s.Topology, ",")
		if _, err := topo.ParseKindList(csv); err != nil {
			return nil, err
		}
		req.Opt.Topology = csv
	}
	if s.Policy != "" {
		if _, err := sched.ParsePolicy(s.Policy); err != nil {
			return nil, err
		}
		req.Opt.Policy = s.Policy
	}
	if len(s.Setups) > 0 {
		setups, err := cuda.ParseSetupList(strings.Join(s.Setups, ","))
		if err != nil {
			return nil, err
		}
		req.Setups = setups
	}
	if s.Size != "" {
		if _, err := workloads.ParseSize(s.Size); err != nil {
			return nil, err
		}
	}
	if s.Profile != "" {
		p, err := profile.Lookup(s.Profile)
		if err != nil {
			return nil, err
		}
		req.Profile = p
	}
	if len(s.Profiles) > 0 {
		ps := make([]profile.Profile, 0, len(s.Profiles))
		for _, name := range s.Profiles {
			p, err := profile.Lookup(name)
			if err != nil {
				return nil, err
			}
			ps = append(ps, p)
		}
		req.Opt.Profiles = ps
	}
	return req, nil
}
