package serve

import (
	"net/http"
	"strings"
	"testing"
)

// TestSpecSetupsSubset: the spec's "setups" field narrows the study to
// the named registered setups — the extension modes run through the
// service, excluded setups stay out of the response — and bad names are
// rejected upfront with a nearest-name hint.
func TestSpecSetupsSubset(t *testing.T) {
	s := New(quietConfig())
	h := s.Handler()

	w := post(h, `{"figure":"fig7","iters":1,"size":"tiny","setups":["standard","uvm_zerocopy","uvm_smcopy"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	body := w.Body.String()
	for _, want := range []string{"uvm_zerocopy", "uvm_smcopy"} {
		if !strings.Contains(body, want) {
			t.Errorf("response lacks subset setup %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "uvm_prefetch_async") {
		t.Errorf("excluded setup leaked into the response:\n%s", body)
	}

	cases := []struct{ name, body, wantErr string }{
		{"typo", `{"figure":"fig7","setups":["uvm_zercopy"]}`, "uvm_zerocopy"},
		{"duplicate", `{"figure":"fig7","setups":["uvm","uvm"]}`, "listed twice"},
		{"empty", `{"figure":"fig7","setups":[" "]}`, "names no setups"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := post(h, c.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", w.Code, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), c.wantErr) {
				t.Errorf("error %q should contain %q", w.Body.String(), c.wantErr)
			}
		})
	}
}

// TestSpecSetupsDefault: without "setups" the service runs the paper's
// five-setup presentation — extension modes never appear in default
// responses (the byte-identity guarantee for existing clients).
func TestSpecSetupsDefault(t *testing.T) {
	s := New(quietConfig())
	h := s.Handler()
	w := post(h, `{"figure":"fig7","iters":1,"size":"tiny"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if body := w.Body.String(); strings.Contains(body, "uvm_zerocopy") || strings.Contains(body, "uvm_smcopy") {
		t.Errorf("extension modes leaked into the default response:\n%s", body)
	}
}
