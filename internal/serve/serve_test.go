package serve

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"uvmasim/internal/core"
	"uvmasim/internal/profile"
	"uvmasim/internal/store"
)

// post sends one experiment spec through the full handler stack.
func post(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/experiments", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// quietConfig silences request logs in tests that don't assert on them.
func quietConfig() Config {
	return Config{Log: log.New(bytes.NewBuffer(nil), "", 0)}
}

// cliJSON renders the byte-exact CLI -json output for a figure list at
// the given iterations — the oracle every POST response must match.
func cliJSON(t *testing.T, iters int, figures ...string) string {
	t.Helper()
	r := core.NewRunnerFor(profile.Default())
	r.Iterations = iters
	var out strings.Builder
	for _, fig := range figures {
		_, doc, err := Figure(r, fig, FigureOptions{Jobs: 8, Workload: "gemm"})
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.RenderJSON(doc)
		if err != nil {
			t.Fatal(err)
		}
		out.WriteString(s)
	}
	return out.String()
}

// promLine matches one sample line of the Prometheus text format.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)

// parseProm validates text against the exposition grammar and returns
// the samples.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line does not parse as Prometheus text format: %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(strings.TrimPrefix(line[i+1:], "+"), 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestExperimentsByteIdentity is the wire-format acceptance criterion:
// POST responses match CLI -json output byte for byte, cold and warm,
// for single- and multi-figure specs.
func TestExperimentsByteIdentity(t *testing.T) {
	s := New(quietConfig())
	h := s.Handler()

	want := cliJSON(t, 2, "fig6")
	cold := post(h, `{"figure":"fig6","iters":2}`)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold POST status %d: %s", cold.Code, cold.Body.String())
	}
	if got := cold.Body.String(); got != want {
		t.Errorf("cold response diverges from CLI -json output:\n%s\nvs\n%s", got, want)
	}
	warm := post(h, `{"figure":"fig6","iters":2}`)
	if got := warm.Body.String(); got != want {
		t.Errorf("warm response diverges from the cold one:\n%s\nvs\n%s", got, want)
	}
	if ct := cold.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if id := cold.Header().Get("X-Request-ID"); id == "" {
		t.Error("response should carry a request ID")
	}

	multi := post(h, `{"figures":["table3","fig6"],"iters":2}`)
	if got, want := multi.Body.String(), cliJSON(t, 2, "table3", "fig6"); got != want {
		t.Errorf("multi-figure response diverges from concatenated CLI docs")
	}
}

// TestStoreWarmRestart models a server restart on a warm cell store: the
// second process serves identical bytes from store hits, and the
// store-hit counter on /metrics advances.
func TestStoreWarmRestart(t *testing.T) {
	dirPath := t.TempDir()
	open := func() *store.Dir {
		d, err := store.Open(dirPath)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cfg := quietConfig()
	cfg.Store = open()
	cfg.StoreDir = dirPath
	s1 := New(cfg)
	first := post(s1.Handler(), `{"figure":"fig6","iters":2}`)
	if first.Code != http.StatusOK {
		t.Fatalf("first POST status %d: %s", first.Code, first.Body.String())
	}

	cfg2 := quietConfig()
	cfg2.Store = open()
	cfg2.StoreDir = dirPath
	s2 := New(cfg2)
	second := post(s2.Handler(), `{"figure":"fig6","iters":2}`)
	if second.Body.String() != first.Body.String() {
		t.Error("restarted server's response diverges from the first process's")
	}
	samples := parseProm(t, get(s2.Handler(), "/metrics").Body.String())
	if samples["uvmbench_store_hits_total"] == 0 {
		t.Error("warm restart should report store hits on /metrics")
	}
	if sim := samples["uvmbench_cells_simulated_total"]; sim != 0 {
		t.Errorf("warm restart simulated %v cells, want 0", sim)
	}
}

func TestSpecValidation(t *testing.T) {
	s := New(quietConfig())
	h := s.Handler()
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown field", `{"figur":"fig6"}`, `did you mean`},
		{"unknown figure", `{"figure":"fig99"}`, "unknown figure"},
		{"no figures", `{}`, "spec names no figures"},
		{"negative iters", `{"figure":"table3","iters":-1}`, "iters must be >= 0"},
		{"negative jobs", `{"figure":"table3","jobs":-1}`, "jobs must be >= 0"},
		{"bad workload", `{"figure":"compare-profiles","workload":"nope"}`, "nope"},
		{"bad size", `{"figure":"table3","size":"giga"}`, "giga"},
		{"bad profile", `{"figure":"table3","profile":"a100"}`, "a100"},
		{"bad syntax", `{`, "bad spec"},
		{"trailing data", `{"figure":"table3"} extra`, "trailing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := post(h, c.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", w.Code, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), c.wantErr) {
				t.Errorf("error %q should contain %q", w.Body.String(), c.wantErr)
			}
		})
	}
	if w := get(h, "/v1/experiments"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", w.Code)
	}
}

// TestSpecDefaultsMirrorCLI pins the defaulting table to the CLI flag
// defaults: iters 30, seed 1, jobs 8, workload gemm, default machine.
func TestSpecDefaultsMirrorCLI(t *testing.T) {
	req, err := ParseSpec(strings.NewReader(`{"figure":"all"}`), profile.Default())
	if err != nil {
		t.Fatal(err)
	}
	if req.Iters != core.DefaultIterations || req.Seed != 1 ||
		req.Opt.Jobs != 8 || req.Opt.Workload != "gemm" {
		t.Errorf("defaults = iters %d seed %d jobs %d workload %q",
			req.Iters, req.Seed, req.Opt.Jobs, req.Opt.Workload)
	}
	if req.Profile.Name != profile.Default().Name {
		t.Errorf("default profile = %q", req.Profile.Name)
	}
	if len(req.Figures) != len(AllFigures) {
		t.Errorf("all expands to %d figures, want %d", len(req.Figures), len(AllFigures))
	}
	seed := int64(7)
	req, err = ParseSpec(strings.NewReader(`{"figure":"fig8","iters":3,"seed":7,"jobs":2,"size":"small"}`), profile.Default())
	if err != nil {
		t.Fatal(err)
	}
	if req.Iters != 3 || req.Seed != seed || req.Opt.Jobs != 2 || req.Opt.Size != "small" {
		t.Errorf("overrides = %+v", req)
	}
}

// TestAdmissionControl: with the worker-slot budget exhausted, a POST
// is rejected immediately with 429 + Retry-After and counted.
func TestAdmissionControl(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxInFlight = 1
	cfg.Parallelism = 1
	s := New(cfg)
	held, ok := s.slots.tryAcquire(1) // occupy the whole budget
	if !ok {
		t.Fatal("fresh pool refused a within-budget claim")
	}
	w := post(s.Handler(), `{"figure":"table3"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 should carry Retry-After")
	}
	s.slots.release(held)
	samples := parseProm(t, get(s.Handler(), "/metrics").Body.String())
	if samples["uvmbench_admission_rejections_total"] != 1 {
		t.Errorf("rejections counter = %v, want 1", samples["uvmbench_admission_rejections_total"])
	}
	if w := post(s.Handler(), `{"figure":"table3"}`); w.Code != http.StatusOK {
		t.Errorf("freed slot should admit, got %d", w.Code)
	}
}

// TestAdmissionWeights: admission budgets worker slots, so a wide
// executor claims its full width, a second wide request bounces off the
// remainder, and a request wider than the whole budget is clamped
// rather than starved.
func TestAdmissionWeights(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxInFlight = 4
	cfg.Parallelism = 4
	s := New(cfg)
	held, ok := s.slots.tryAcquire(4)
	if !ok || held != 4 {
		t.Fatalf("tryAcquire(4) = %d, %v; want the full width", held, ok)
	}
	if w := post(s.Handler(), `{"figure":"table3"}`); w.Code != http.StatusTooManyRequests {
		t.Errorf("budget-exhausted POST = %d, want 429", w.Code)
	}
	s.slots.release(held)
	if w := post(s.Handler(), `{"figure":"table3"}`); w.Code != http.StatusOK {
		t.Errorf("freed budget should admit, got %d", w.Code)
	}

	// An executor wider than the budget still admits — alone.
	wide := quietConfig()
	wide.MaxInFlight = 2
	wide.Parallelism = 8
	ws := New(wide)
	granted, ok := ws.slots.tryAcquire(8)
	if !ok || granted != 2 {
		t.Fatalf("over-wide claim granted %d, %v; want clamp to budget 2", granted, ok)
	}
	if _, ok := ws.slots.tryAcquire(1); ok {
		t.Error("clamped claim should still exhaust the budget")
	}
	ws.slots.release(granted)
	if ws.slots.used != 0 {
		t.Errorf("pool leaks slots: used = %d after release", ws.slots.used)
	}
}

func TestHealthz(t *testing.T) {
	s := New(quietConfig())
	if w := get(s.Handler(), "/healthz"); w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Errorf("healthz = %d %q", w.Code, w.Body.String())
	}

	// Store probe failure: point StoreDir at a regular file. (A chmod'd
	// read-only directory does not fail under root, a plain file always
	// does.)
	filePath := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(filePath, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := quietConfig()
	cfg.StoreDir = filePath
	broken := New(cfg)
	if w := get(broken.Handler(), "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("broken store probe = %d, want 503", w.Code)
	}

	s.draining.Store(true)
	if w := get(s.Handler(), "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", w.Code)
	}
	if w := post(s.Handler(), `{"figure":"table3"}`); w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining POST = %d, want 503", w.Code)
	}
}

func TestPprofExposed(t *testing.T) {
	s := New(quietConfig())
	if w := get(s.Handler(), "/debug/pprof/cmdline"); w.Code != http.StatusOK {
		t.Errorf("pprof cmdline = %d, want 200", w.Code)
	}
}

// TestRequestLog pins the structured one-line log format.
func TestRequestLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	s := New(Config{Log: log.New(lockedWriter{&mu, &buf}, "", 0)})
	req := httptest.NewRequest(http.MethodPost, "/v1/experiments", strings.NewReader(`{"figure":"table3"}`))
	req.Header.Set("X-Request-ID", "req-42")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	mu.Lock()
	line := strings.TrimSpace(buf.String())
	mu.Unlock()
	for _, want := range []string{"ts=", "id=req-42", "method=POST",
		"path=/v1/experiments", "status=200", "dur_ms=", "bytes="} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}
	if w.Header().Get("X-Request-ID") != "req-42" {
		t.Error("caller-supplied request ID should be echoed")
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestMetricsUnderLoad is the satellite concurrency test: scrape
// /metrics while experiment requests run (race-enabled in CI), assert
// every scrape parses, counters are monotonic, and the request
// histogram's final count equals the number of experiment requests.
func TestMetricsUnderLoad(t *testing.T) {
	const workers, perWorker = 4, 6
	// Admission is budgeted in worker slots (width × concurrent
	// requests); pin width 1 and a budget covering every worker so this
	// test exercises metrics consistency, never rejection — admission
	// behavior has its own tests (TestAdmissionControl,
	// TestAdmissionWeights).
	cfg := quietConfig()
	cfg.Parallelism = 1
	cfg.MaxInFlight = workers
	s := New(cfg)
	h := s.Handler()

	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	go func() {
		defer close(scrapeErr)
		last := make(map[string]float64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			w := get(h, "/metrics")
			if w.Code != http.StatusOK {
				scrapeErr <- fmt.Errorf("scrape status %d", w.Code)
				return
			}
			samples := parseProm(t, w.Body.String())
			for _, name := range []string{
				"uvmbench_request_seconds_count",
				`uvmbench_http_responses_total{code="200"}`,
				"uvmbench_cell_cache_hits_total",
				"uvmbench_cell_cache_misses_total",
			} {
				if samples[name] < last[name] {
					scrapeErr <- fmt.Errorf("%s went backwards: %v -> %v", name, last[name], samples[name])
					return
				}
				last[name] = samples[name]
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if r := post(h, `{"figure":"table3"}`); r.Code != http.StatusOK {
					t.Errorf("POST status %d", r.Code)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-scrapeErr; err != nil {
		t.Fatal(err)
	}

	samples := parseProm(t, get(h, "/metrics").Body.String())
	total := float64(workers * perWorker)
	if got := samples["uvmbench_request_seconds_count"]; got != total {
		t.Errorf("request histogram count = %v, want %v", got, total)
	}
	if got := samples[`uvmbench_request_seconds_bucket{le="+Inf"}`]; got != total {
		t.Errorf("+Inf bucket = %v, want %v", got, total)
	}
	if got := samples[`uvmbench_http_responses_total{code="200"}`]; got < total {
		t.Errorf("200 responses = %v, want >= %v", got, total)
	}
	// The scrape observes itself mid-flight: exactly one request (the
	// scrape) is in flight when the gauge is rendered.
	if got := samples["uvmbench_requests_inflight"]; got != 1 {
		t.Errorf("requests in flight at scrape time = %v, want 1 (the scrape itself)", got)
	}
}

// TestGracefulDrain: cancelling the serve context finishes in-flight
// requests and returns cleanly.
func TestGracefulDrain(t *testing.T) {
	s := New(quietConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not drain within 10s")
	}
	if !s.draining.Load() {
		t.Error("server should be marked draining after shutdown")
	}
}
