// Package serve turns the experiment harness into a long-running
// HTTP/JSON service with a first-class observability plane: figure
// computation over POST /v1/experiments (byte-identical to the CLI's
// -json output for the same spec), Prometheus metrics over /metrics,
// readiness over /healthz, and pprof over /debug/pprof/.
//
// The figure dispatch in this file is the single source of truth shared
// by cmd/uvmbench and the server: both call Figure, so the wire format
// cannot drift from the CLI artifact — the byte-identity acceptance
// criterion is structural, not tested-into-existence.
package serve

import (
	"fmt"
	"strconv"
	"strings"

	"uvmasim/internal/core"
	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/sched"
	"uvmasim/internal/topo"
	"uvmasim/internal/workloads"
)

// FigureOptions carries the per-invocation knobs a figure consumes,
// mirroring the CLI flags. Values are passed through literally (the CLI
// flag defaults — jobs 8, workload gemm — are applied by the flag
// parser or by Spec normalization, not here), so CLI and server agree
// byte-for-byte on what any given option set produces.
type FigureOptions struct {
	Size        string            // -size override ("" = the figure's default class)
	Jobs        int               // fig14/multigpu pipeline batch size
	Workload    string            // compare-profiles workload
	ProfilesCSV string            // -profiles list for compare-profiles ("" = all built-ins)
	Profiles    []profile.Profile // pre-resolved compare-profiles set (overrides ProfilesCSV)
	GPUs        string            // multigpu -gpus device-count list ("" = "1,2,4")
	Topology    string            // multigpu -topology list ("" = "pcie-switch,nvlink")
	Policy      string            // multigpu -policy placement ("" = "least-loaded")
}

// Multi-GPU defaults, applied by Figure when the corresponding option is
// empty so CLI, server and merge agree byte-for-byte.
const (
	DefaultGPUs     = "1,2,4"
	DefaultTopology = "pcie-switch,nvlink"
	DefaultPolicy   = "least-loaded"
)

func (o FigureOptions) sizeOr(def workloads.Size) (workloads.Size, error) {
	if o.Size == "" {
		return def, nil
	}
	return workloads.ParseSize(o.Size)
}

// FigureNames lists every subcommand Figure handles — the artifact
// surface both the CLI dispatch and POST /v1/experiments serve.
var FigureNames = []string{
	"table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13", "fig14", "micro", "apps", "oversub",
	"multigpu", "compare-profiles",
}

// AllFigures is the expansion of the `all` pseudo-figure, in the order
// the CLI's `all` subcommand runs them.
var AllFigures = []string{
	"table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13", "fig14", "oversub", "multigpu",
}

// IsFigure reports whether cmd is one of FigureNames.
func IsFigure(cmd string) bool {
	for _, f := range FigureNames {
		if f == cmd {
			return true
		}
	}
	return false
}

// Figure computes one figure artifact on r, returning both renderings:
// a thunk for the text table (including any advisory note lines the CLI
// prints in text mode) and the JSON document. The text is lazy because
// only the CLI's text mode wants it — the JSON server and `-json` runs
// would otherwise pay the table formatting for every request and throw
// it away. The thunk is pure over the computed study, so calling it
// never simulates.
func Figure(r *core.Runner, cmd string, opt FigureOptions) (func() string, core.FigureDoc, error) {
	switch cmd {
	case "table3":
		return core.RenderTable3, core.Table3Doc(), nil

	case "fig4", "fig5":
		sizes := FeasibleSizes(r.Config)
		if len(sizes) == 0 {
			return nil, core.FigureDoc{}, fmt.Errorf("%s: no size class fits the active profile's memory", cmd)
		}
		note := ""
		if len(sizes) < len(workloads.AllSizes) {
			note = fmt.Sprintf("note: %d of %d size classes fit this profile's memory; larger classes dropped\n",
				len(sizes), len(workloads.AllSizes))
		}
		study, err := r.Distributions(workloads.Micro(), sizes)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		if cmd == "fig4" {
			return func() string { return note + study.RenderFig4() }, study.Fig4Doc(), nil
		}
		return func() string { return note + study.RenderFig5() }, study.Fig5Doc(), nil

	case "fig6":
		// Figure 6 is defined at the mega class (32 GB): on machines whose
		// memory cannot host it, report the skip instead of failing.
		if !r.Config.FitsFootprint(workloads.Mega.Footprint()) {
			note := "fig6 skipped: the mega class (32 GB) does not fit the active profile's memory\n"
			return func() string { return note }, core.FigureDoc{Figure: "fig6", Data: struct {
				Skipped string `json:"skipped"`
			}{"mega footprint exceeds profile memory"}}, nil
		}
		f, err := r.Fig6()
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return f.Render, f.Doc(), nil

	case "fig7":
		var studies []*core.BreakdownStudy
		for _, size := range []workloads.Size{workloads.Large, workloads.Super} {
			study, err := r.BreakdownComparison(workloads.Micro(), size)
			if err != nil {
				return nil, core.FigureDoc{}, err
			}
			studies = append(studies, study)
		}
		text := func() string {
			var b strings.Builder
			for _, study := range studies {
				b.WriteString(study.Render("Figure 7"))
				b.WriteString("\n")
			}
			return b.String()
		}
		return text, core.Fig7Doc(studies), nil

	case "fig8":
		size, err := opt.sizeOr(workloads.Super)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		study, err := r.BreakdownComparison(workloads.Apps(), size)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return func() string { return study.Render("Figure 8") }, study.Doc("fig8"), nil

	case "fig9", "fig10":
		size, err := opt.sizeOr(workloads.Super)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		study, err := r.CounterComparison([]string{"gemm", "lud", "yolov3"}, size)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		if cmd == "fig9" {
			return study.RenderFig9, study.Doc("fig9"), nil
		}
		return study.RenderFig10, study.Doc("fig10"), nil

	case "fig11":
		size, err := opt.sizeOr(workloads.Large)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		sw, err := r.SweepBlocks(size, []int{4096, 2048, 1024, 512, 256, 128, 64, 32, 16})
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return func() string { return sw.Render("Figure 11") }, sw.Doc("fig11"), nil

	case "fig12":
		size, err := opt.sizeOr(workloads.Large)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		sw, err := r.SweepThreads(size, []int{1024, 512, 256, 128, 64, 32})
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return func() string { return sw.Render("Figure 12") }, sw.Doc("fig12"), nil

	case "fig13":
		size, err := opt.sizeOr(workloads.Large)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		sw, err := r.SweepShared(size, []float64{2, 4, 8, 16, 32, 64, 128})
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return func() string { return sw.Render("Figure 13") }, sw.Doc("fig13"), nil

	case "fig14":
		size, err := opt.sizeOr(workloads.Super)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		res, err := r.MultiJob("vector_seq", cuda.UVMPrefetchAsync, size, opt.Jobs)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return res.Render, res.Doc(), nil

	case "micro":
		size, err := opt.sizeOr(workloads.Super)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		study, err := r.BreakdownComparison(workloads.Micro(), size)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return func() string { return study.Render("Microbenchmarks (§4.1.1)") }, study.Doc("micro"), nil

	case "apps":
		size, err := opt.sizeOr(workloads.Super)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		study, err := r.BreakdownComparison(workloads.Apps(), size)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return func() string { return study.Render("Real-world applications (§4.1.2)") }, study.Doc("apps"), nil

	case "oversub":
		// Extension experiment: UVM oversubscription (see §2.1's cited
		// related work). Two passes over footprints around capacity, on a
		// grid dense around the cliff (cheap now that eviction is O(1)).
		study, err := r.Oversubscription(cuda.UVMPrefetch, core.DefaultOversubRatios, 2)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return study.Render, study.Doc(), nil

	case "multigpu":
		// Tentpole experiment: the Figure 14 pipeline headroom under real
		// multi-tenant contention. Same workload/setup as fig14, scheduled
		// over a (topology x GPU count) grid.
		size, err := opt.sizeOr(workloads.Super)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		gpus, topos, policy, err := ResolveMultiGPU(opt)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		study, err := r.MultiGPU("vector_seq", cuda.UVMPrefetchAsync, size, opt.Jobs, gpus, topos, policy)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return study.Render, study.Doc(), nil

	case "compare-profiles":
		size, err := opt.sizeOr(workloads.Large)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		ps := opt.Profiles
		if ps == nil {
			ps, err = ResolveProfiles(opt.ProfilesCSV)
			if err != nil {
				return nil, core.FigureDoc{}, err
			}
		}
		study, err := r.CompareProfiles(ps, opt.Workload, size)
		if err != nil {
			return nil, core.FigureDoc{}, err
		}
		return study.Render, study.Doc(), nil
	}
	return nil, core.FigureDoc{}, fmt.Errorf("unknown figure %q", cmd)
}

// ResolveMultiGPU normalizes the multigpu grid options: empty values
// take the package defaults, lists parse with validation and nearest
// hints. Shared by Figure and the CLI trace path.
func ResolveMultiGPU(opt FigureOptions) ([]int, []topo.Kind, sched.Policy, error) {
	gpusCSV := opt.GPUs
	if gpusCSV == "" {
		gpusCSV = DefaultGPUs
	}
	var gpus []int
	for _, part := range strings.Split(gpusCSV, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, nil, 0, fmt.Errorf("-gpus entry %q is not a positive device count", part)
		}
		gpus = append(gpus, n)
	}
	if len(gpus) == 0 {
		return nil, nil, 0, fmt.Errorf("-gpus names no device counts")
	}
	topoCSV := opt.Topology
	if topoCSV == "" {
		topoCSV = DefaultTopology
	}
	topos, err := topo.ParseKindList(topoCSV)
	if err != nil {
		return nil, nil, 0, err
	}
	policyName := opt.Policy
	if policyName == "" {
		policyName = DefaultPolicy
	}
	policy, err := sched.ParsePolicy(policyName)
	if err != nil {
		return nil, nil, 0, err
	}
	return gpus, topos, policy, nil
}

// FeasibleSizes filters the paper's size classes to those the active
// profile's device and host memory can host under every setup. On the
// default A100-40GB profile this is all six classes.
func FeasibleSizes(cfg cuda.SystemConfig) []workloads.Size {
	var out []workloads.Size
	for _, s := range workloads.AllSizes {
		if cfg.FitsFootprint(s.Footprint()) {
			out = append(out, s)
		}
	}
	return out
}

// ResolveProfiles parses a -profiles list (built-in names or profile
// JSON files) into validated profiles; an empty list means every
// built-in machine.
func ResolveProfiles(list string) ([]profile.Profile, error) {
	if strings.TrimSpace(list) == "" {
		return profile.Builtins(), nil
	}
	var ps []profile.Profile
	for _, arg := range strings.Split(list, ",") {
		arg = strings.TrimSpace(arg)
		if arg == "" {
			continue
		}
		p, err := profile.Resolve(arg)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("-profiles names no profiles")
	}
	return ps, nil
}
