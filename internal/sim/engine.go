// Package sim implements the small discrete-event simulation engine that
// drives the CPU-GPU system model: an event queue ordered by virtual time,
// FIFO bandwidth links with busy-interval accounting, and helpers for
// measuring spans of activity.
//
// Virtual time is measured in nanoseconds and represented as float64 so
// cost models can produce fractional durations without rounding artifacts.
// Event delivery is deterministic: events at equal timestamps fire in the
// order they were scheduled.
package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, insertion sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; create one with New.
type Engine struct {
	now      float64
	seq      uint64
	pq       eventHeap
	executed uint64
}

// New returns an Engine with the clock at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() float64 { return e.now }

// Executed reports how many events have fired so far, which tests use to
// bound simulation work.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it indicates a broken cost model rather than a recoverable
// condition.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) {
	e.At(e.now+d, fn)
}

// Step executes the earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until the queue drains and returns the final clock.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (if it is ahead of the last event). Events scheduled beyond t stay
// queued.
func (e *Engine) RunUntil(t float64) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
