// Package sim implements the small discrete-event simulation engine that
// drives the CPU-GPU system model: an event queue ordered by virtual time,
// FIFO bandwidth links with busy-interval accounting, and helpers for
// measuring spans of activity.
//
// Virtual time is measured in nanoseconds and represented as float64 so
// cost models can produce fractional durations without rounding artifacts.
// Event delivery is deterministic: events at equal timestamps fire in the
// order they were scheduled.
package sim

import (
	"fmt"

	"uvmasim/internal/trace"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap of events ordered by (time, insertion
// sequence). The sift operations are implemented directly on the slice
// rather than through container/heap, whose interface{}-based Push/Pop
// would box every event into a fresh allocation on the scheduling hot
// path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends e and restores the heap order, reusing the backing array.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the earliest event, keeping the backing array.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the callback for GC
	s = s[:n]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && s.less(right, left) {
			min = right
		}
		if !s.less(min, i) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; create one with New.
type Engine struct {
	now      float64
	seq      uint64
	pq       eventHeap
	executed uint64
	tracer   *trace.Tracer
}

// New returns an Engine with the clock at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() float64 { return e.now }

// SetTracer attaches an observability tracer to the engine. Every model
// holding the engine (links, the PCIe bus, the UVM manager, the CUDA
// context) reads it through Tracer, so attaching here enables tracing
// for the whole simulated system. A nil tracer (the default) disables
// recording; the event loop itself never touches the tracer, so the
// disabled fast path costs nothing.
func (e *Engine) SetTracer(tr *trace.Tracer) { e.tracer = tr }

// Tracer returns the attached tracer, or nil when tracing is disabled.
// All trace.Tracer methods are nil-receiver-safe, so callers may record
// through the returned pointer unconditionally.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Executed reports how many events have fired so far, which tests use to
// bound simulation work.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it indicates a broken cost model rather than a recoverable
// condition.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.pq.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) {
	e.At(e.now+d, fn)
}

// Step executes the earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pq.pop()
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Reset returns the engine to time zero for a fresh run, dropping any
// pending events while keeping the event heap's backing array so
// back-to-back simulations do not regrow it.
func (e *Engine) Reset() {
	for i := range e.pq {
		e.pq[i] = event{}
	}
	e.pq = e.pq[:0]
	e.now = 0
	e.seq = 0
	e.executed = 0
}

// Run executes events until the queue drains and returns the final clock.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (if it is ahead of the last event). Events scheduled beyond t stay
// queued.
func (e *Engine) RunUntil(t float64) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
