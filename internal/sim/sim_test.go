package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 0) })
	e.At(10, func() { order = append(order, 2) }) // same time: FIFO
	e.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 10 {
		t.Errorf("final clock = %v, want 10", e.Now())
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := New()
	var times []float64
	e.After(3, func() {
		times = append(times, e.Now())
		e.After(4, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 3 || times[1] != 7 {
		t.Errorf("times = %v, want [3 7]", times)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.At(5, func() { fired++ })
	e.At(15, func() { fired++ })
	e.RunUntil(10)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 || e.Now() != 15 {
		t.Errorf("after Run: fired=%d now=%v", fired, e.Now())
	}
}

// Property: events fire in non-decreasing timestamp order no matter the
// insertion order.
func TestQuickEventOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []float64
		for _, r := range raw {
			at := float64(r)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalSetMergeAndTotal(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(10, 20) // adjacent: merges
	s.Add(30, 40)
	s.Add(35, 50) // overlapping: merges
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2: %v", s.Count(), s.Intervals())
	}
	if got := s.Total(); got != 40 {
		t.Errorf("total = %v, want 40", got)
	}
	s.Add(60, 60) // zero length ignored
	if s.Count() != 2 {
		t.Errorf("zero-length interval should be ignored")
	}
}

// TestIntervalSetOutOfOrderPanics pins the FIFO ordering contract: adds
// whose start precedes the previous interval's start indicate a broken
// cost model and must panic instead of silently widening the previous
// interval.
func TestIntervalSetOutOfOrderPanics(t *testing.T) {
	var s IntervalSet
	s.Add(10, 20)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order Add should panic")
			}
		}()
		s.Add(5, 8)
	}()
	// Overlapping-but-ordered adds still merge without panicking.
	s.Add(15, 30)
	if s.Count() != 1 || s.Total() != 20 {
		t.Errorf("merge after ordered overlap: count=%d total=%v", s.Count(), s.Total())
	}
}

func TestIntervalSetOverlap(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(20, 30)
	cases := []struct {
		a, b, want float64
	}{
		{0, 10, 10},
		{5, 25, 10}, // 5 from first, 5 from second
		{10, 20, 0}, // gap
		{-5, 100, 20},
		{25, 25, 0},
	}
	for _, c := range cases {
		if got := s.Overlap(c.a, c.b); got != c.want {
			t.Errorf("Overlap(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLinkFIFO(t *testing.T) {
	e := New()
	l := NewLink(e, "pcie", GBPerSec(10)) // 10 bytes/ns
	var ends []float64
	l.Transfer(1000, 0, 1, func(end float64) { ends = append(ends, end) })
	l.Transfer(1000, 0, 1, func(end float64) { ends = append(ends, end) })
	e.Run()
	if len(ends) != 2 {
		t.Fatalf("got %d completions", len(ends))
	}
	if ends[0] != 100 || ends[1] != 200 {
		t.Errorf("ends = %v, want [100 200]", ends)
	}
	if got := l.Busy().Total(); got != 200 {
		t.Errorf("busy total = %v, want 200", got)
	}
}

func TestLinkLatencyAndEfficiency(t *testing.T) {
	e := New()
	l := NewLink(e, "pcie", GBPerSec(10))
	// 1000 bytes at 50% efficiency = 200ns service + 40ns latency.
	end := l.Transfer(1000, 40, 0.5, nil)
	if end != 240 {
		t.Errorf("end = %v, want 240", end)
	}
	if got := l.TransferTime(1000, 40, 0.5); got != 240 {
		t.Errorf("TransferTime = %v, want 240", got)
	}
}

func TestLinkQueuesBehindBusy(t *testing.T) {
	e := New()
	l := NewLink(e, "x", 1)
	l.Transfer(100, 0, 1, nil) // busy until 100
	e.RunUntil(50)
	end := l.Transfer(10, 0, 1, nil)
	if end != 110 {
		t.Errorf("queued transfer end = %v, want 110", end)
	}
}

func TestLinkReset(t *testing.T) {
	e := New()
	l := NewLink(e, "x", 1)
	l.Transfer(100, 0, 1, nil)
	e.Run()
	l.Reset()
	if l.BusyUntil() != 0 || l.Busy().Total() != 0 {
		t.Errorf("reset link should be idle")
	}
}

func TestLinkInvalidArgs(t *testing.T) {
	e := New()
	for _, bad := range []float64{0, -1} {
		func() {
			defer func() { recover() }()
			NewLink(e, "bad", bad)
			t.Errorf("NewLink with bw %v should panic", bad)
		}()
	}
	l := NewLink(e, "ok", 1)
	for _, bad := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() { recover() }()
			l.TransferTime(10, 0, bad)
			t.Errorf("efficiency %v should panic", bad)
		}()
	}
}

// Property: total busy time of a FIFO link equals the sum of service
// times when transfers never overlap (they cannot, by FIFO construction).
func TestQuickLinkBusyConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		e := New()
		l := NewLink(e, "x", 2)
		total := 0.0
		n := 1 + rng.Intn(20)
		for j := 0; j < n; j++ {
			size := float64(1 + rng.Intn(1000))
			total += l.TransferTime(size, 0, 1)
			l.Transfer(size, 0, 1, nil)
		}
		e.Run()
		if math.Abs(l.Busy().Total()-total) > 1e-6 {
			t.Fatalf("busy %v != sum of service %v", l.Busy().Total(), total)
		}
		if math.Abs(l.BusyUntil()-total) > 1e-6 {
			t.Fatalf("drain time %v != %v (back-to-back FIFO)", l.BusyUntil(), total)
		}
	}
}
