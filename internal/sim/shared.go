package sim

import "sort"

// SharedLink models a bandwidth pool under deterministic max-min fair
// sharing (processor sharing): any number of flows progress
// simultaneously, each at a rate bounded by its own cap and by a fair
// share of the pool capacity. It is the arbitration primitive behind
// multi-GPU topologies, where concurrent jobs' DMA/fault/prefetch
// streams contend for one PCIe-switch uplink or for the host DRAM
// chips, instead of each assuming an exclusive Link.
//
// Rates are recomputed by water-filling on every flow arrival and
// completion: sorted by cap ascending, each flow receives
// min(cap, remainingCapacity/flowsLeft). The sum of granted rates never
// exceeds the capacity, a flow alone on the link runs at exactly its
// cap (so an uncontended transfer reproduces its measured solo
// duration), and every byte handed to Start is eventually delivered —
// the invariants pinned by the property tests in shared_test.go.
//
// Like the rest of the engine, a SharedLink is single-threaded and
// fully deterministic: event times are pure functions of the call
// sequence, and simultaneous completions fire in flow start order.
type SharedLink struct {
	Name string

	eng      *Engine
	capacity float64 // bytes per ns

	flows      []*sharedFlow // active flows, in start order
	lastUpdate float64       // time the remaining-byte ledger was advanced to
	gen        uint64        // invalidates completion events made stale by a later join
	busyStart  float64       // start of the current busy span (valid while flows exist)
	busy       IntervalSet
	delivered  float64 // total bytes completed so far
	peak       int     // high-water mark of concurrent flows
}

// sharedFlow is one in-flight transfer on a SharedLink.
type sharedFlow struct {
	started   float64 // original size in bytes
	remaining float64 // bytes left to deliver
	cap       float64 // per-flow rate cap, bytes per ns
	rate      float64 // current granted rate
	done      func(end float64)
}

// NewSharedLink creates a fair-shared bandwidth pool on eng with the
// given capacity in bytes per nanosecond (use GBPerSec).
func NewSharedLink(eng *Engine, name string, capacityBytesPerNs float64) *SharedLink {
	if capacityBytesPerNs <= 0 {
		panic("sim: shared link capacity must be positive")
	}
	return &SharedLink{Name: name, eng: eng, capacity: capacityBytesPerNs}
}

// Capacity returns the pool capacity in bytes per nanosecond.
func (l *SharedLink) Capacity() float64 { return l.capacity }

// Active reports the number of in-flight flows.
func (l *SharedLink) Active() int { return len(l.flows) }

// PeakFlows reports the high-water mark of concurrent flows.
func (l *SharedLink) PeakFlows() int { return l.peak }

// Delivered reports the total bytes completed so far.
func (l *SharedLink) Delivered() float64 { return l.delivered }

// Busy returns the link's busy-interval accounting (spans during which
// at least one flow was in flight).
func (l *SharedLink) Busy() *IntervalSet { return &l.busy }

// Rate returns the aggregate granted rate of all active flows.
func (l *SharedLink) Rate() float64 {
	var sum float64
	for _, f := range l.flows {
		sum += f.rate
	}
	return sum
}

// Start begins a flow of the given size at the engine's current time.
// rateCap bounds the flow's solo bandwidth (a cap <= 0 or above the
// capacity means "link limited"); done (may be nil) fires when the last
// byte is delivered, receiving the completion time. Flows joining or
// leaving later re-share the pool, so the final duration is only known
// when done fires.
func (l *SharedLink) Start(bytes, rateCap float64, done func(end float64)) {
	now := l.eng.Now()
	if bytes <= 0 {
		if done != nil {
			l.eng.At(now, func() { done(now) })
		}
		return
	}
	if rateCap <= 0 || rateCap > l.capacity {
		rateCap = l.capacity
	}
	l.advance(now)
	if len(l.flows) == 0 {
		l.busyStart = now
	}
	l.gen++ // the new flow makes any scheduled completion stale
	f := &sharedFlow{started: bytes, remaining: bytes, cap: rateCap, done: done}
	l.flows = append(l.flows, f)
	if len(l.flows) > l.peak {
		l.peak = len(l.flows)
	}
	l.reshare()
	l.scheduleNext(now)
}

// advance debits every flow's remaining bytes for the time elapsed at
// the current rate assignment.
func (l *SharedLink) advance(now float64) {
	dt := now - l.lastUpdate
	l.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, f := range l.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}

// reshare recomputes every flow's granted rate by max-min water-filling:
// caps ascending (start order on ties), each flow gets
// min(cap, remaining/flowsLeft) of the unassigned capacity. Flows whose
// cap is below the fair share leave their slack to the rest.
func (l *SharedLink) reshare() {
	n := len(l.flows)
	if n == 0 {
		return
	}
	order := make([]*sharedFlow, n)
	copy(order, l.flows)
	sort.SliceStable(order, func(a, b int) bool { return order[a].cap < order[b].cap })
	left := l.capacity
	for i, f := range order {
		share := left / float64(n-i)
		if f.cap < share {
			share = f.cap
		}
		f.rate = share
		left -= share
	}
}

// scheduleNext queues the earliest flow-completion event under the
// current rate assignment. A generation counter guards the event: any
// later Start or completion bumps it, turning the stale event into a
// no-op.
func (l *SharedLink) scheduleNext(now float64) {
	if len(l.flows) == 0 {
		return
	}
	next := -1.0
	for _, f := range l.flows {
		// Every active flow has rate > 0: water-filling grants positive
		// shares while capacity and caps are positive.
		t := f.remaining / f.rate
		if next < 0 || t < next {
			next = t
		}
	}
	gen := l.gen
	l.eng.At(now+next, func() { l.complete(gen) })
}

// complete finishes every flow that has drained by the event time, then
// reshares and reschedules. Done callbacks fire after the link state is
// consistent, in flow start order, so a callback may immediately Start
// a follow-up flow.
func (l *SharedLink) complete(gen uint64) {
	if gen != l.gen {
		return // a later join already rescheduled this completion
	}
	now := l.eng.Now()
	l.advance(now)
	// Collect drained flows in start order. A flow is done when its
	// ledger is empty up to a sub-byte epsilon — or when the float
	// residue left by advance's rate*dt debits drains in less time than
	// float64 can add to the clock (now+dt == now). Without the second
	// clause the link would reschedule a zero-width event at the same
	// timestamp forever.
	var finished []*sharedFlow
	active := l.flows[:0]
	for _, f := range l.flows {
		if f.remaining <= 1e-9 || now+f.remaining/f.rate == now {
			finished = append(finished, f)
		} else {
			active = append(active, f)
		}
	}
	l.flows = active
	// A finished flow delivered everything it started with (remaining
	// was debited to ~0), so credit the original size.
	for _, f := range finished {
		l.delivered += f.started
	}
	l.gen++
	if len(l.flows) == 0 {
		l.busy.Add(l.busyStart, now)
	} else {
		l.reshare()
		l.scheduleNext(now)
	}
	for _, f := range finished {
		if f.done != nil {
			f.done(now)
		}
	}
}

// Reset clears all flow state and accounting for a fresh run on the
// same engine.
func (l *SharedLink) Reset() {
	l.flows = l.flows[:0]
	l.lastUpdate = 0
	l.gen++
	l.busy.Reset()
	l.delivered = 0
	l.peak = 0
}
