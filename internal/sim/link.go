package sim

import "uvmasim/internal/trace"

// Link models a bandwidth-limited FIFO pipe: a PCIe direction, an HBM
// channel group, or a DMA engine. Transfers queue behind each other; each
// occupies the link for latency + size/bandwidth. Busy time is recorded in
// an IntervalSet so the harness can attribute overlapped transfer time.
type Link struct {
	Name string

	eng        *Engine
	bytesPerNs float64 // peak bandwidth
	busyUntil  float64
	busy       IntervalSet
}

// NewLink creates a link on eng with the given peak bandwidth in bytes
// per nanosecond. Since 1 GB/s equals exactly 1 byte/ns, callers can use
// the GBPerSec helper to state bandwidths in familiar units.
func NewLink(eng *Engine, name string, bytesPerNs float64) *Link {
	if bytesPerNs <= 0 {
		panic("sim: link bandwidth must be positive")
	}
	return &Link{Name: name, eng: eng, bytesPerNs: bytesPerNs}
}

// GBPerSec converts a bandwidth in gigabytes per second into the
// bytes-per-nanosecond unit Links use. 1 GB/s == 1 byte/ns is a pleasant
// coincidence of units (1e9 bytes / 1e9 ns).
func GBPerSec(gbps float64) float64 { return gbps }

// Bandwidth returns the link's peak bandwidth in bytes per nanosecond.
func (l *Link) Bandwidth() float64 { return l.bytesPerNs }

// SetBandwidth changes the link's peak bandwidth. Pending transfers keep
// the duration computed when they were enqueued.
func (l *Link) SetBandwidth(bytesPerNs float64) {
	if bytesPerNs <= 0 {
		panic("sim: link bandwidth must be positive")
	}
	l.bytesPerNs = bytesPerNs
}

// TransferTime returns the service time for size bytes at efficiency eff
// (0 < eff <= 1) plus a fixed latency, without enqueuing anything.
func (l *Link) TransferTime(size float64, latency, eff float64) float64 {
	if eff <= 0 || eff > 1 {
		panic("sim: transfer efficiency must be in (0,1]")
	}
	return latency + size/(l.bytesPerNs*eff)
}

// Transfer enqueues a transfer of size bytes with the given fixed latency
// and link efficiency. done (may be nil) fires when the transfer leaves
// the link; it receives the completion time. Transfer returns the
// predicted completion time.
func (l *Link) Transfer(size, latency, eff float64, done func(end float64)) float64 {
	return l.TransferAt(l.eng.Now(), size, latency, eff, done)
}

// TransferAt is Transfer with an explicit earliest start time, which may
// lie in the simulated future. Pipeline models use it to reserve link
// time from a kernel's internal progress cursor without driving the
// event loop. The transfer begins at max(earliest, link drain time).
func (l *Link) TransferAt(earliest, size, latency, eff float64, done func(end float64)) float64 {
	_, end := l.ReserveAt(earliest, size, latency, eff, done)
	return end
}

// ReserveAt is TransferAt exposing the resolved start time as well, so
// observability layers can record the transfer's actual busy span (queue
// wait excluded) rather than only its completion.
//
// The results are deliberately unnamed locals: the done-callback closure
// must not capture a result variable, or every call would heap-allocate
// it even with done == nil (the Tracer's zero-overhead contract).
func (l *Link) ReserveAt(earliest, size, latency, eff float64, done func(end float64)) (float64, float64) {
	dur := l.TransferTime(size, latency, eff)
	start := earliest
	if now := l.eng.Now(); start < now {
		start = now
	}
	if l.busyUntil > start {
		start = l.busyUntil
	}
	end := start + dur
	l.busyUntil = end
	l.busy.Add(start, end)
	if done != nil {
		l.eng.At(end, func() { done(end) })
	}
	return start, end
}

// Tracer returns the tracer attached to the link's engine (nil when
// tracing is disabled).
func (l *Link) Tracer() *trace.Tracer { return l.eng.Tracer() }

// BusyUntil reports the time at which the link drains.
func (l *Link) BusyUntil() float64 { return l.busyUntil }

// Busy returns the link's busy-interval accounting set.
func (l *Link) Busy() *IntervalSet { return &l.busy }

// Reset clears busy accounting and queue state (for a fresh run on the
// same engine).
func (l *Link) Reset() {
	l.busyUntil = 0
	l.busy.Reset()
}
