package sim

import "fmt"

// Interval is a half-open span [Start, End) of virtual time in ns.
type Interval struct {
	Start, End float64
}

// Len returns the duration of the interval.
func (iv Interval) Len() float64 { return iv.End - iv.Start }

// IntervalSet accumulates busy intervals of a resource. Intervals must be
// added in non-decreasing start order (which FIFO links guarantee);
// overlapping or adjacent intervals are merged so the set stays compact.
type IntervalSet struct {
	ivs []Interval
}

// Add records the busy span [start, end). Zero- or negative-length spans
// are ignored. Starts must be non-decreasing: FIFO links reserve time
// monotonically, so an out-of-order add indicates a broken cost model
// and panics (like Engine.At does for past scheduling) rather than being
// silently merged into the previous interval.
func (s *IntervalSet) Add(start, end float64) {
	if end <= start {
		return
	}
	n := len(s.ivs)
	if n > 0 {
		if start < s.ivs[n-1].Start {
			panic(fmt.Sprintf("sim: interval added at %v before previous start %v", start, s.ivs[n-1].Start))
		}
		if start <= s.ivs[n-1].End {
			// Overlapping or adjacent: merge with the previous interval.
			if end > s.ivs[n-1].End {
				s.ivs[n-1].End = end
			}
			return
		}
	}
	s.ivs = append(s.ivs, Interval{start, end})
}

// Total returns the summed busy time across all intervals.
func (s *IntervalSet) Total() float64 {
	sum := 0.0
	for _, iv := range s.ivs {
		sum += iv.Len()
	}
	return sum
}

// Overlap returns the amount of busy time that falls inside [a, b).
func (s *IntervalSet) Overlap(a, b float64) float64 {
	if b <= a {
		return 0
	}
	sum := 0.0
	for _, iv := range s.ivs {
		lo, hi := iv.Start, iv.End
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if hi > lo {
			sum += hi - lo
		}
	}
	return sum
}

// Count returns the number of merged intervals in the set.
func (s *IntervalSet) Count() int { return len(s.ivs) }

// Reset clears the set for reuse.
func (s *IntervalSet) Reset() { s.ivs = s.ivs[:0] }

// Intervals returns a copy of the merged interval list.
func (s *IntervalSet) Intervals() []Interval {
	return append([]Interval(nil), s.ivs...)
}
