package sim

import (
	"math"
	"math/rand"
	"testing"
)

// TestSharedLinkSoloMatchesCap pins the no-contention contract: a flow
// alone on the link runs at exactly its rate cap, so an uncontended
// transfer reproduces its measured solo duration.
func TestSharedLinkSoloMatchesCap(t *testing.T) {
	eng := New()
	l := NewSharedLink(eng, "uplink", 26)
	var end float64
	l.Start(1e9, 13, func(e float64) { end = e })
	eng.Run()
	want := 1e9 / 13
	if math.Abs(end-want) > 1e-6 {
		t.Fatalf("solo flow end = %v, want %v", end, want)
	}
	if got := l.Delivered(); math.Abs(got-1e9) > 1e-3 {
		t.Fatalf("delivered = %v, want 1e9", got)
	}
}

// TestSharedLinkEqualSharing pins processor sharing: two link-limited
// flows of equal size starting together each get half the capacity and
// finish at 2*size/capacity.
func TestSharedLinkEqualSharing(t *testing.T) {
	eng := New()
	l := NewSharedLink(eng, "uplink", 10)
	var e1, e2 float64
	l.Start(1000, 0, func(e float64) { e1 = e })
	l.Start(1000, 0, func(e float64) { e2 = e })
	eng.Run()
	if math.Abs(e1-200) > 1e-6 || math.Abs(e2-200) > 1e-6 {
		t.Fatalf("equal flows ended at %v, %v; want 200, 200", e1, e2)
	}
}

// TestSharedLinkCappedLeavesSlack pins water-filling: a flow capped
// below its fair share leaves the slack to the others instead of
// stranding it.
func TestSharedLinkCappedLeavesSlack(t *testing.T) {
	eng := New()
	l := NewSharedLink(eng, "uplink", 8)
	var slow, fast float64
	l.Start(200, 2, func(e float64) { slow = e }) // capped at 2 B/ns
	l.Start(600, 0, func(e float64) { fast = e }) // link limited -> gets 6 B/ns
	eng.Run()
	if math.Abs(slow-100) > 1e-6 {
		t.Fatalf("capped flow ended at %v, want 100", slow)
	}
	if math.Abs(fast-100) > 1e-6 {
		t.Fatalf("uncapped flow ended at %v, want 100", fast)
	}
}

// randomScenario drives n seeded random flows through a shared link,
// probing the aggregate granted rate at every arrival, and returns the
// completion times plus the total bytes offered.
func randomScenario(t *testing.T, seed int64, n int) ([]float64, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	eng := New()
	const capacity = 26.0
	l := NewSharedLink(eng, "uplink", capacity)
	ends := make([]float64, n)
	var total float64
	at := 0.0
	for i := 0; i < n; i++ {
		i := i
		bytes := 1e6 + rng.Float64()*5e8
		cap := capacity * (0.1 + rng.Float64()*1.5) // some above capacity
		total += bytes
		at += rng.Float64() * 1e6
		eng.At(at, func() {
			l.Start(bytes, cap, func(e float64) { ends[i] = e })
			// Invariant: granted rates never exceed the pool capacity,
			// checked at the worst moment — right after a join.
			if r := l.Rate(); r > capacity*(1+1e-9) {
				t.Errorf("aggregate rate %v exceeds capacity %v after join %d", r, capacity, i)
			}
		})
	}
	eng.Run()
	return ends, total
}

// TestSharedLinkProperties checks the arbitration invariants over many
// seeded random workloads: the aggregate granted rate never exceeds the
// capacity, every flow completes, and bandwidth shares conserve the
// total bytes offered.
func TestSharedLinkProperties(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := New()
		const capacity = 26.0
		l := NewSharedLink(eng, "uplink", capacity)
		n := 3 + rng.Intn(30)
		done := 0
		var total float64
		at := 0.0
		for i := 0; i < n; i++ {
			bytes := 1e6 + rng.Float64()*5e8
			cap := capacity * (0.1 + rng.Float64()*1.5)
			total += bytes
			at += rng.Float64() * 1e6
			eng.At(at, func() {
				l.Start(bytes, cap, func(e float64) { done++ })
				if r := l.Rate(); r > capacity*(1+1e-9) {
					t.Errorf("seed %d: aggregate rate %v exceeds capacity %v", seed, r, capacity)
				}
			})
		}
		eng.Run()
		if done != n {
			t.Fatalf("seed %d: %d of %d flows completed", seed, done, n)
		}
		if l.Active() != 0 {
			t.Fatalf("seed %d: %d flows still active after drain", seed, l.Active())
		}
		if got := l.Delivered(); math.Abs(got-total) > 1 {
			t.Fatalf("seed %d: delivered %v bytes, offered %v", seed, got, total)
		}
		// The link cannot have moved bytes faster than capacity allows:
		// busy time >= total/capacity.
		if busy := l.Busy().Total(); busy < total/capacity-1e-6 {
			t.Fatalf("seed %d: busy %v ns below the capacity bound %v", seed, busy, total/capacity)
		}
	}
}

// TestSharedLinkDeterminism runs one seeded random scenario twice and
// requires bit-identical completion times.
func TestSharedLinkDeterminism(t *testing.T) {
	a, _ := randomScenario(t, 7, 25)
	b, _ := randomScenario(t, 7, 25)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d completion differs between runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSharedLinkChainedStarts pins re-entrancy: a done callback may
// immediately Start the next flow (the per-GPU transfer chains the
// scheduler builds).
func TestSharedLinkChainedStarts(t *testing.T) {
	eng := New()
	l := NewSharedLink(eng, "uplink", 10)
	var ends []float64
	var chain func(e float64)
	left := 3
	chain = func(e float64) {
		ends = append(ends, e)
		left--
		if left > 0 {
			l.Start(100, 10, chain)
		}
	}
	l.Start(100, 10, chain)
	eng.Run()
	want := []float64{10, 20, 30}
	if len(ends) != len(want) {
		t.Fatalf("got %d completions, want %d", len(ends), len(want))
	}
	for i := range want {
		if math.Abs(ends[i]-want[i]) > 1e-9 {
			t.Fatalf("completion %d = %v, want %v", i, ends[i], want[i])
		}
	}
}

// TestSharedLinkSubUlpResidue pins the termination guarantee against
// float residue: when a flow's residual drain time is smaller than the
// clock's ulp (now+dt == now), the link must complete it rather than
// reschedule a zero-width event at the same timestamp forever. Before
// the now+remaining/rate==now clause in complete, this test looped
// indefinitely.
func TestSharedLinkSubUlpResidue(t *testing.T) {
	eng := New()
	l := NewSharedLink(eng, "uplink", 26)
	const epoch = 1e15 // ulp ~0.125 ns, far above 1 byte / 26 B/ns
	var end float64
	eng.At(epoch, func() {
		l.Start(1, 26, func(e float64) { end = e })
	})
	eng.Run()
	if end != epoch {
		t.Fatalf("sub-ulp flow completed at %v, want %v", end, epoch)
	}
	if l.Active() != 0 {
		t.Fatalf("%d flows still active after drain", l.Active())
	}
}

// TestSharedLinkLateEpochProperties reruns the random-contention
// invariants with arrivals offset deep into the timeline, where rate*dt
// debits leave residues that the absolute byte epsilon alone cannot
// absorb (the regime that hung full-length multigpu runs).
func TestSharedLinkLateEpochProperties(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := New()
		const capacity = 26.0
		l := NewSharedLink(eng, "uplink", capacity)
		n := 3 + rng.Intn(20)
		done := 0
		var total float64
		at := 1e12
		for i := 0; i < n; i++ {
			bytes := 1e6 + rng.Float64()*5e8
			cap := capacity * (0.1 + rng.Float64()*1.5)
			total += bytes
			at += rng.Float64() * 1e6
			eng.At(at, func() {
				l.Start(bytes, cap, func(e float64) { done++ })
			})
		}
		eng.Run()
		if done != n {
			t.Fatalf("seed %d: %d of %d flows completed", seed, done, n)
		}
		if got := l.Delivered(); math.Abs(got-total) > 1 {
			t.Fatalf("seed %d: delivered %v bytes, offered %v", seed, got, total)
		}
	}
}

// TestSharedLinkZeroBytes pins the degenerate flow: zero bytes complete
// immediately at the current time.
func TestSharedLinkZeroBytes(t *testing.T) {
	eng := New()
	l := NewSharedLink(eng, "uplink", 10)
	fired := false
	eng.At(5, func() {
		l.Start(0, 10, func(e float64) {
			fired = true
			if e != 5 {
				t.Errorf("zero-byte flow completed at %v, want 5", e)
			}
		})
	})
	eng.Run()
	if !fired {
		t.Fatal("zero-byte flow never completed")
	}
}
