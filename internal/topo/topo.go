// Package topo models multi-GPU system topologies: N devices, each
// with the profile's HBM/SM model, attached to the host by one of two
// interconnect shapes. Behind a PCIe switch, every GPU's DMA, fault and
// prefetch streams funnel through one shared uplink running at a single
// link's rate; with NVLink/C2C point-to-point links, each GPU owns its
// host port and the binding shared resource moves up to the host DRAM
// chips. Either way the shared stage is a sim.SharedLink with max-min
// fair arbitration, so concurrent jobs contend for real bandwidth
// instead of each assuming an exclusive link.
package topo

import (
	"fmt"
	"strings"

	"uvmasim/internal/cuda"
	"uvmasim/internal/nearest"
	"uvmasim/internal/sim"
)

// Kind names an interconnect shape.
type Kind string

const (
	// PCIeSwitch fans every GPU out of one host port: the shared uplink
	// runs at a single PCIe link's rate (cfg.PCIe.UplinkBytesPerNs).
	PCIeSwitch Kind = "pcie-switch"
	// NVLink gives each GPU a dedicated point-to-point host link; the
	// shared bottleneck becomes the host DRAM pool
	// (cfg.Host.AggregateBandwidthBytesPerNs). The same shape models
	// C2C on Grace-Hopper profiles.
	NVLink Kind = "nvlink"
)

// Kinds lists the recognized topology names.
var Kinds = []string{string(PCIeSwitch), string(NVLink)}

// ParseKind resolves a topology name, failing with a nearest-name hint
// on a typo (the CLI/serve validation contract).
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if s == k {
			return Kind(s), nil
		}
	}
	return "", fmt.Errorf("unknown topology %q%s", s, nearest.Hint(s, Kinds, 2))
}

// ParseKindList resolves a comma-separated topology list.
func ParseKindList(csv string) ([]Kind, error) {
	var out []Kind
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("topology list names no topologies")
	}
	return out, nil
}

// Topology is an instantiated multi-GPU system on one engine. Each GPU
// keeps the profile's per-device HBM capacity and SM model (device
// phases replay measured single-GPU durations); what the topology adds
// is the shared transfer fabric between host memory and the devices.
type Topology struct {
	Kind Kind
	GPUs int

	// uplink is the shared PCIe-switch uplink (PCIeSwitch only).
	uplink *sim.SharedLink
	// hostPool is the host DRAM bandwidth pool (NVLink only): dedicated
	// device links do not contend with each other, so host chips become
	// the shared stage.
	hostPool *sim.SharedLink
	// deviceLink is each GPU's dedicated link rate in bytes/ns, the cap
	// any single device's stream cannot exceed.
	deviceLink float64
}

// New builds a topology of the given shape and device count on eng,
// deriving link rates from the profile's system configuration.
func New(eng *sim.Engine, cfg cuda.SystemConfig, kind Kind, gpus int) (*Topology, error) {
	if gpus < 1 {
		return nil, fmt.Errorf("topo: device count must be positive, got %d", gpus)
	}
	t := &Topology{Kind: kind, GPUs: gpus, deviceLink: cfg.PCIe.BytesPerNs()}
	switch kind {
	case PCIeSwitch:
		t.uplink = sim.NewSharedLink(eng, "switch-uplink", cfg.PCIe.UplinkBytesPerNs())
	case NVLink:
		t.hostPool = sim.NewSharedLink(eng, "host-dram", cfg.Host.AggregateBandwidthBytesPerNs())
	default:
		return nil, fmt.Errorf("topo: unknown kind %q", kind)
	}
	return t, nil
}

// DeviceLinkBytesPerNs returns one GPU's dedicated link rate: the hard
// cap on any single device's transfer stream.
func (t *Topology) DeviceLinkBytesPerNs() float64 { return t.deviceLink }

// SharedStage returns the shared link a transfer to the given GPU
// crosses. Under a switch every device shares the uplink; under NVLink
// every device's private link draws from the host DRAM pool.
func (t *Topology) SharedStage(gpu int) *sim.SharedLink {
	if t.uplink != nil {
		return t.uplink
	}
	return t.hostPool
}

// SharesFabric reports whether transfers to GPUs a and b contend on the
// same shared stage. In both current shapes they do (one uplink, one
// host pool); the method keeps placement policies topology-agnostic.
func (t *Topology) SharesFabric(a, b int) bool { return true }

// Transfer starts a host->device stream of the given size to the given
// GPU, capped at rateCap (<=0 means the device link rate) and at the
// device link rate. done fires with the completion time.
func (t *Topology) Transfer(gpu int, bytes, rateCap float64, done func(end float64)) {
	if rateCap <= 0 || rateCap > t.deviceLink {
		rateCap = t.deviceLink
	}
	t.SharedStage(gpu).Start(bytes, rateCap, done)
}

// String renders the topology for logs and renders.
func (t *Topology) String() string {
	return fmt.Sprintf("%s x%d", t.Kind, t.GPUs)
}
