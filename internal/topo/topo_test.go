package topo

import (
	"math"
	"strings"
	"testing"

	"uvmasim/internal/cuda"
	"uvmasim/internal/profile"
	"uvmasim/internal/sim"
)

func testConfig() cuda.SystemConfig { return profile.Default().Config }

func TestParseKind(t *testing.T) {
	for _, name := range Kinds {
		k, err := ParseKind(name)
		if err != nil || string(k) != name {
			t.Fatalf("ParseKind(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := ParseKind("nvlnk"); err == nil || !strings.Contains(err.Error(), "nvlink") {
		t.Fatalf("typo should fail with a nearest hint, got %v", err)
	}
	ks, err := ParseKindList("pcie-switch, nvlink")
	if err != nil || len(ks) != 2 {
		t.Fatalf("ParseKindList = %v, %v", ks, err)
	}
	if _, err := ParseKindList(" , "); err == nil {
		t.Fatal("empty list should fail")
	}
}

// TestSwitchUplinkIsShared pins the contention shape: behind a switch,
// two GPUs' concurrent streams halve each other's bandwidth; on NVLink
// the same two streams run at full device rate because the host pool is
// far wider than two links.
func TestSwitchUplinkIsShared(t *testing.T) {
	cfg := testConfig()
	link := cfg.PCIe.BytesPerNs()
	bytes := link * 1000 // 1000 ns solo at full rate

	run := func(kind Kind) (e0, e1 float64) {
		eng := sim.New()
		tp, err := New(eng, cfg, kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		tp.Transfer(0, bytes, 0, func(e float64) { e0 = e })
		tp.Transfer(1, bytes, 0, func(e float64) { e1 = e })
		eng.Run()
		return e0, e1
	}

	s0, s1 := run(PCIeSwitch)
	if math.Abs(s0-2000) > 1e-6 || math.Abs(s1-2000) > 1e-6 {
		t.Fatalf("switch: concurrent streams ended at %v, %v; want 2000 (halved bandwidth)", s0, s1)
	}
	n0, n1 := run(NVLink)
	if math.Abs(n0-1000) > 1e-6 || math.Abs(n1-1000) > 1e-6 {
		t.Fatalf("nvlink: concurrent streams ended at %v, %v; want 1000 (no contention)", n0, n1)
	}
}

// TestNVLinkHostPoolBinds pins the NVLink regime's limit: enough
// concurrent device streams exhaust the host DRAM pool even though
// every device link is private.
func TestNVLinkHostPoolBinds(t *testing.T) {
	cfg := testConfig()
	eng := sim.New()
	pool := cfg.Host.AggregateBandwidthBytesPerNs()
	link := cfg.PCIe.BytesPerNs()
	gpus := int(pool/link) + 4 // oversubscribe the pool
	tp, err := New(eng, cfg, NVLink, gpus)
	if err != nil {
		t.Fatal(err)
	}
	bytes := link * 1000
	ends := make([]float64, gpus)
	for g := 0; g < gpus; g++ {
		g := g
		tp.Transfer(g, bytes, 0, func(e float64) { ends[g] = e })
	}
	eng.Run()
	// All streams fair-share the pool: each gets pool/gpus < link, so
	// every stream must finish later than its solo time.
	for g, e := range ends {
		if e <= 1000 {
			t.Fatalf("gpu %d stream finished at %v despite an oversubscribed host pool", g, e)
		}
	}
	want := bytes / (pool / float64(gpus))
	if math.Abs(ends[0]-want) > 1e-6 {
		t.Fatalf("stream end = %v, want pool-limited %v", ends[0], want)
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.New()
	if _, err := New(eng, testConfig(), PCIeSwitch, 0); err == nil {
		t.Fatal("zero GPUs should fail")
	}
	if _, err := New(eng, testConfig(), Kind("mesh"), 2); err == nil {
		t.Fatal("unknown kind should fail")
	}
	tp, err := New(eng, testConfig(), PCIeSwitch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tp.String() != "pcie-switch x4" {
		t.Fatalf("String = %q", tp.String())
	}
	if !tp.SharesFabric(0, 3) {
		t.Fatal("switch GPUs share the fabric")
	}
}
