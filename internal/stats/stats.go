// Package stats provides the small set of descriptive statistics the
// experiment harness needs: means, standard deviations, geometric means,
// percentiles, confidence intervals and histograms.
//
// All functions operate on float64 slices and never mutate their inputs
// unless documented otherwise. Empty inputs yield NaN (for point
// statistics) so that a missing series is visible rather than silently
// zero.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns NaN for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// Std returns the sample standard deviation of xs (sqrt of Variance).
func Std(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoefVar returns the coefficient of variation std/mean, the quantity
// plotted in Figure 5 of the paper. It returns NaN when the mean is zero
// or there are fewer than two samples.
func CoefVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return Std(xs) / m
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values make the result NaN. Empty input yields NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns NaN for empty
// input and clamps p to [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CI95 returns the half-width of a 95% confidence interval for the mean
// of xs, using the normal approximation (1.96 * std / sqrt(n)). The
// experiment harness uses it to draw the interval whiskers of Figure 4.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return 1.96 * Std(xs) / math.Sqrt(float64(len(xs)))
}

// Normalize returns xs scaled so that base maps to 1.0. It is used to
// produce the "normalized to standard" axes of Figures 7, 8 and 11-13.
// A zero base yields a slice of NaN.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if base == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = x / base
		}
	}
	return out
}

// Summary bundles the descriptive statistics of one measurement series.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	CI95   float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Std(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
		CI95:   CI95(xs),
	}
}

// Histogram counts xs into nbins equal-width bins spanning [min, max].
// Values exactly equal to max land in the last bin. It returns the bin
// counts and the bin width. Empty input or nbins < 1 returns nil.
func Histogram(xs []float64, nbins int) (counts []int, width float64) {
	if len(xs) == 0 || nbins < 1 {
		return nil, 0
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		counts = make([]int, nbins)
		counts[0] = len(xs)
		return counts, 0
	}
	width = (hi - lo) / float64(nbins)
	counts = make([]int, nbins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, width
}
