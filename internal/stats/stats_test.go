package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{2, 2, 2, 2}, 2},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Mean(nil)) {
		t.Errorf("Mean(nil) should be NaN")
	}
}

func TestVarianceAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 = 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := Std(xs), math.Sqrt(32.0/7.0); !almostEqual(got, want, 1e-12) {
		t.Errorf("Std = %v, want %v", got, want)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Errorf("Variance of a single sample should be NaN")
	}
}

func TestCoefVar(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	if got := CoefVar(xs); !almostEqual(got, 0, 1e-12) {
		t.Errorf("CoefVar of constant series = %v, want 0", got)
	}
	if !math.IsNaN(CoefVar([]float64{1, -1})) {
		t.Errorf("CoefVar with zero mean should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEqual(got, 4, 1e-9) {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, 0, 2})) {
		t.Errorf("GeoMean with zero should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Errorf("GeoMean(nil) should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %v, want -2", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); !almostEqual(got, 5, 1e-12) {
		t.Errorf("interpolated median = %v, want 5", got)
	}
	// Input must not be mutated.
	in := []float64{9, 1, 5}
	Percentile(in, 50)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Errorf("Percentile mutated its input: %v", in)
	}
	// Clamping.
	if got := Percentile(xs, -5); got != 1 {
		t.Errorf("Percentile(-5) = %v, want 1", got)
	}
	if got := Percentile(xs, 200); got != 5 {
		t.Errorf("Percentile(200) = %v, want 5", got)
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	want := 1.96 * Std(xs) / 2
	if got := CI95(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, v := range Normalize([]float64{1}, 0) {
		if !math.IsNaN(v) {
			t.Errorf("Normalize with zero base should be NaN, got %v", v)
		}
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	counts, width := Histogram([]float64{0, 1, 2, 3}, 2)
	if len(counts) != 2 || counts[0] != 2 || counts[1] != 2 {
		t.Errorf("Histogram counts = %v", counts)
	}
	if !almostEqual(width, 1.5, 1e-12) {
		t.Errorf("Histogram width = %v, want 1.5", width)
	}
	// Constant series: everything in bin 0.
	counts, width = Histogram([]float64{7, 7, 7}, 4)
	if counts[0] != 3 || width != 0 {
		t.Errorf("constant Histogram = %v width %v", counts, width)
	}
	if c, _ := Histogram(nil, 3); c != nil {
		t.Errorf("Histogram(nil) should be nil")
	}
}

// Property: mean is bounded by min and max.
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: geometric mean of positive values is <= arithmetic mean
// (AM-GM inequality).
func TestQuickAMGM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = rng.Float64()*1e6 + 1e-9
		}
		gm, am := GeoMean(xs), Mean(xs)
		if gm > am*(1+1e-9) {
			t.Fatalf("AM-GM violated: gm=%v am=%v xs=%v", gm, am, xs)
		}
	}
}

// Property: normalizing by the mean gives a series with mean 1.
func TestQuickNormalizeMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		n := 2 + rng.Intn(30)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = rng.Float64()*100 + 1
		}
		norm := Normalize(xs, Mean(xs))
		if !almostEqual(Mean(norm), 1, 1e-9) {
			t.Fatalf("normalized mean = %v", Mean(norm))
		}
	}
}

// Property: histogram bin counts sum to len(xs).
func TestQuickHistogramTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = rng.NormFloat64() * 10
		}
		counts, _ := Histogram(xs, 1+rng.Intn(16))
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != n {
			t.Fatalf("histogram total %d != %d", total, n)
		}
	}
}
