// Package devmem implements the GPU device-memory (HBM) allocator used by
// the simulated CUDA runtime: a first-fit free list over a fixed-size
// address range with block splitting and coalescing, plus the cost model
// for cudaMalloc/cudaMallocManaged/cudaFree calls.
//
// The allocator is a real allocator — double frees, leaks and
// fragmentation behave as on hardware — because the paper's execution
// breakdown (Figure 7/8 "allocation" shade, §6) hinges on allocation
// being a first-class, non-trivially-costed stage.
package devmem

import (
	"fmt"
	"sort"
)

// Addr is a device virtual address (byte offset into HBM).
type Addr int64

// block is a region of the device heap.
type block struct {
	addr Addr
	size int64
}

// Allocator is a first-fit device heap. Not safe for concurrent use.
type Allocator struct {
	capacity int64
	free     []block // sorted by addr, coalesced
	live     map[Addr]int64
	inUse    int64
	peak     int64
}

// NewAllocator creates an allocator over capacity bytes of HBM.
func NewAllocator(capacity int64) *Allocator {
	if capacity <= 0 {
		panic("devmem: capacity must be positive")
	}
	return &Allocator{
		capacity: capacity,
		free:     []block{{addr: 0, size: capacity}},
		live:     make(map[Addr]int64),
	}
}

// Capacity returns the total HBM capacity in bytes.
func (a *Allocator) Capacity() int64 { return a.capacity }

// Reset releases every allocation and the peak watermark, returning the
// allocator to its post-NewAllocator state while keeping the free-list
// and live-map storage warm for reuse.
func (a *Allocator) Reset() {
	a.free = append(a.free[:0], block{addr: 0, size: a.capacity})
	clear(a.live)
	a.inUse = 0
	a.peak = 0
}

// InUse returns the bytes currently allocated.
func (a *Allocator) InUse() int64 { return a.inUse }

// Peak returns the high-water mark of allocated bytes.
func (a *Allocator) Peak() int64 { return a.peak }

// FreeBytes returns the bytes available (possibly fragmented).
func (a *Allocator) FreeBytes() int64 { return a.capacity - a.inUse }

// LargestFree returns the largest contiguous free block.
func (a *Allocator) LargestFree() int64 {
	var m int64
	for _, b := range a.free {
		if b.size > m {
			m = b.size
		}
	}
	return m
}

// Live reports the number of outstanding allocations.
func (a *Allocator) Live() int { return len(a.live) }

// alignment matches the 512-byte alignment cudaMalloc guarantees (at
// minimum) on real devices.
const alignment = 512

func alignUp(n int64) int64 {
	return (n + alignment - 1) &^ (alignment - 1)
}

// Alloc reserves size bytes and returns the base address. It fails when
// no contiguous free block can hold the (aligned) request, mirroring
// cudaErrorMemoryAllocation.
func (a *Allocator) Alloc(size int64) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("devmem: invalid allocation size %d", size)
	}
	need := alignUp(size)
	for i, b := range a.free {
		if b.size < need {
			continue
		}
		addr := b.addr
		if b.size == need {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = block{addr: b.addr + Addr(need), size: b.size - need}
		}
		a.live[addr] = need
		a.inUse += need
		if a.inUse > a.peak {
			a.peak = a.inUse
		}
		return addr, nil
	}
	return 0, fmt.Errorf("devmem: out of memory: need %d contiguous, largest free %d", need, a.LargestFree())
}

// Free releases the allocation at addr, coalescing with neighbors.
// Freeing an unknown address returns an error (double free detection).
func (a *Allocator) Free(addr Addr) error {
	size, ok := a.live[addr]
	if !ok {
		return fmt.Errorf("devmem: free of unknown address %d", addr)
	}
	delete(a.live, addr)
	a.inUse -= size

	// Insert in address order.
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > addr })
	a.free = append(a.free, block{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = block{addr: addr, size: size}

	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].addr+Addr(a.free[i].size) == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+Addr(a.free[i-1].size) == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// SizeOf returns the (aligned) size of a live allocation.
func (a *Allocator) SizeOf(addr Addr) (int64, bool) {
	s, ok := a.live[addr]
	return s, ok
}

// CostModel prices allocator API calls. Real cudaMalloc/cudaFree cost
// grows with size (page-table setup, memset of metadata) on top of a
// fixed driver round-trip; cudaMallocManaged is cheap at call time (the
// backing pages materialize lazily on first touch) but its cudaFree must
// tear down mappings on both sides. Values are in nanoseconds.
type CostModel struct {
	MallocBase       float64 // fixed cost of cudaMalloc
	MallocPerGB      float64 // size-dependent cost of cudaMalloc
	ManagedBase      float64 // fixed cost of cudaMallocManaged
	ManagedPerGB     float64 // size-dependent cost of cudaMallocManaged
	FreeBase         float64 // fixed cost of cudaFree
	FreePerGB        float64 // size-dependent cost of cudaFree
	ManagedFreePerGB float64 // extra per-GB teardown for managed memory
}

// DefaultCostModel is calibrated so that allocation is a visible,
// near-constant fraction of the Large-input runs (§4.1.1: "the reason for
// the limited overall performance improvement on Large is the nearly
// constant data allocation overhead") and grows to dominate after
// UVM+async remove transfer time (§6: 18.99% -> 37.66%).
func DefaultCostModel() CostModel {
	return CostModel{
		MallocBase:       120e3, // 120 us
		MallocPerGB:      11e6,  // 11 ms/GB
		ManagedBase:      80e3,  // 80 us
		ManagedPerGB:     9e6,   // 9 ms/GB: lighter, mappings are lazy
		FreeBase:         100e3, // 100 us
		FreePerGB:        7e6,   // 7 ms/GB
		ManagedFreePerGB: 3e6,   // extra CPU+GPU page-table teardown
	}
}

const gb = float64(1 << 30)

// MallocTime returns the modelled duration of cudaMalloc(size).
func (c CostModel) MallocTime(size int64) float64 {
	return c.MallocBase + c.MallocPerGB*float64(size)/gb
}

// ManagedTime returns the modelled duration of cudaMallocManaged(size).
func (c CostModel) ManagedTime(size int64) float64 {
	return c.ManagedBase + c.ManagedPerGB*float64(size)/gb
}

// FreeTime returns the modelled duration of cudaFree for an allocation of
// the given size; managed allocations pay additional teardown.
func (c CostModel) FreeTime(size int64, managed bool) float64 {
	t := c.FreeBase + c.FreePerGB*float64(size)/gb
	if managed {
		t += c.ManagedFreePerGB * float64(size) / gb
	}
	return t
}
