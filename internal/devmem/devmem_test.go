package devmem

import (
	"math/rand"
	"testing"
)

func TestAllocBasics(t *testing.T) {
	a := NewAllocator(1 << 20)
	addr, err := a.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := a.SizeOf(addr); !ok || s != alignUp(1000) {
		t.Errorf("SizeOf = %d,%v", s, ok)
	}
	if a.InUse() != alignUp(1000) {
		t.Errorf("InUse = %d, want %d", a.InUse(), alignUp(1000))
	}
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	if a.InUse() != 0 || a.Live() != 0 {
		t.Errorf("allocator not empty after free")
	}
	if a.LargestFree() != a.Capacity() {
		t.Errorf("free list not coalesced back to full capacity")
	}
}

func TestAllocAlignment(t *testing.T) {
	a := NewAllocator(1 << 20)
	x, _ := a.Alloc(1)
	y, _ := a.Alloc(1)
	if int64(y-x) != alignment {
		t.Errorf("allocations not %d-byte aligned: %d %d", alignment, x, y)
	}
}

func TestAllocErrors(t *testing.T) {
	a := NewAllocator(4096)
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero-size alloc should fail")
	}
	if _, err := a.Alloc(-1); err == nil {
		t.Error("negative alloc should fail")
	}
	if _, err := a.Alloc(8192); err == nil {
		t.Error("oversized alloc should fail")
	}
	if err := a.Free(Addr(123)); err == nil {
		t.Error("free of unknown address should fail")
	}
	addr, _ := a.Alloc(512)
	a.Free(addr)
	if err := a.Free(addr); err == nil {
		t.Error("double free should fail")
	}
}

func TestCoalescing(t *testing.T) {
	a := NewAllocator(4096)
	x, _ := a.Alloc(1024)
	y, _ := a.Alloc(1024)
	z, _ := a.Alloc(1024)
	// Free in an order that requires both successor and predecessor merges.
	a.Free(x)
	a.Free(z)
	a.Free(y)
	if a.LargestFree() != 4096 {
		t.Errorf("largest free = %d, want 4096 (full coalescing)", a.LargestFree())
	}
	if len(a.free) != 1 {
		t.Errorf("free list has %d blocks, want 1", len(a.free))
	}
}

func TestFragmentation(t *testing.T) {
	a := NewAllocator(4096)
	var addrs []Addr
	for i := 0; i < 8; i++ {
		addr, err := a.Alloc(512)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	// Free every other block: 2048 bytes free but largest hole is 512.
	for i := 0; i < 8; i += 2 {
		a.Free(addrs[i])
	}
	if a.FreeBytes() != 2048 {
		t.Errorf("free bytes = %d, want 2048", a.FreeBytes())
	}
	if a.LargestFree() != 512 {
		t.Errorf("largest free = %d, want 512", a.LargestFree())
	}
	if _, err := a.Alloc(1024); err == nil {
		t.Error("fragmented allocator should refuse a 1024-byte request")
	}
}

func TestPeakTracking(t *testing.T) {
	a := NewAllocator(1 << 20)
	x, _ := a.Alloc(4096)
	y, _ := a.Alloc(4096)
	a.Free(x)
	a.Free(y)
	if a.Peak() != 8192 {
		t.Errorf("peak = %d, want 8192", a.Peak())
	}
}

// Property test: random alloc/free sequences preserve the invariant
// inUse + sum(free blocks) == capacity, free blocks are sorted, disjoint
// and non-adjacent.
func TestQuickAllocatorInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 100; iter++ {
		a := NewAllocator(1 << 16)
		var live []Addr
		for step := 0; step < 300; step++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(live))
				if err := a.Free(live[i]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			} else {
				addr, err := a.Alloc(int64(1 + rng.Intn(3000)))
				if err == nil {
					live = append(live, addr)
				}
			}
			var freeSum int64
			var prevEnd Addr = -1
			for _, b := range a.free {
				if b.size <= 0 {
					t.Fatalf("non-positive free block %+v", b)
				}
				if b.addr <= prevEnd {
					t.Fatalf("free list unsorted or overlapping at %+v", b)
				}
				if prevEnd >= 0 && b.addr == prevEnd {
					t.Fatalf("adjacent free blocks not coalesced")
				}
				freeSum += b.size
				prevEnd = b.addr + Addr(b.size)
			}
			if freeSum+a.InUse() != a.Capacity() {
				t.Fatalf("conservation violated: free %d + inUse %d != cap %d",
					freeSum, a.InUse(), a.Capacity())
			}
		}
	}
}

func TestCostModelMonotonic(t *testing.T) {
	c := DefaultCostModel()
	if c.MallocTime(2<<30) <= c.MallocTime(1<<30) {
		t.Error("malloc cost should grow with size")
	}
	if c.ManagedTime(1<<30) >= c.MallocTime(1<<30) {
		t.Error("managed allocation should be cheaper at call time")
	}
	if c.FreeTime(1<<30, true) <= c.FreeTime(1<<30, false) {
		t.Error("managed free should cost more")
	}
	if c.MallocTime(0) != c.MallocBase {
		t.Error("zero-size malloc should cost the base")
	}
}
