package counters

import (
	"math"
	"testing"
)

func TestInstMix(t *testing.T) {
	var m InstMix
	m.Add(InstMix{Mem: 1, FP: 2, Int: 3, Ctrl: 4})
	m.Add(InstMix{Mem: 10, FP: 20, Int: 30, Ctrl: 40})
	if m.Mem != 11 || m.FP != 22 || m.Int != 33 || m.Ctrl != 44 {
		t.Errorf("unexpected mix %+v", m)
	}
	if m.Total() != 110 {
		t.Errorf("Total = %v, want 110", m.Total())
	}
}

func TestL1Rates(t *testing.T) {
	s := L1Stats{LoadAccesses: 100, LoadMisses: 25, StoreAccesses: 50, StoreMisses: 10}
	if got := s.LoadMissRate(); got != 0.25 {
		t.Errorf("LoadMissRate = %v", got)
	}
	if got := s.StoreMissRate(); got != 0.2 {
		t.Errorf("StoreMissRate = %v", got)
	}
	var empty L1Stats
	if empty.LoadMissRate() != 0 || empty.StoreMissRate() != 0 {
		t.Errorf("idle cache should report zero miss rates")
	}
}

func TestOccupancyWeighting(t *testing.T) {
	var s Set
	s.RecordKernel(100, 0.2)
	s.RecordKernel(300, 0.6)
	want := (100*0.2 + 300*0.6) / 400
	if got := s.Occupancy(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Occupancy = %v, want %v", got, want)
	}
	if s.KernelBusy() != 400 {
		t.Errorf("KernelBusy = %v, want 400", s.KernelBusy())
	}
}

func TestOccupancyIdle(t *testing.T) {
	var s Set
	if s.Occupancy() != 0 {
		t.Errorf("idle occupancy should be 0")
	}
}

func TestRecordKernelNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative duration should panic")
		}
	}()
	var s Set
	s.RecordKernel(-1, 0.5)
}

func TestMergeAndReset(t *testing.T) {
	var a, b Set
	a.RecordKernel(10, 1.0)
	a.H2DBytes = 5
	a.UVM.PageFaults = 3
	b.RecordKernel(10, 0.0)
	b.D2HBytes = 7
	b.L1.LoadAccesses = 2
	a.Merge(&b)
	if a.Occupancy() != 0.5 {
		t.Errorf("merged occupancy = %v, want 0.5", a.Occupancy())
	}
	if a.H2DBytes != 5 || a.D2HBytes != 7 || a.UVM.PageFaults != 3 || a.L1.LoadAccesses != 2 {
		t.Errorf("merge lost fields: %+v", a)
	}
	a.Reset()
	if a.Occupancy() != 0 || a.H2DBytes != 0 || a.Inst.Total() != 0 {
		t.Errorf("reset incomplete: %+v", a)
	}
}

func TestUVMStatsAdd(t *testing.T) {
	var u UVMStats
	u.Add(UVMStats{PageFaults: 1, FaultBatches: 2, MigratedBytes: 3, PrefetchBytes: 4, WritebackBytes: 5, EvictedBytes: 6})
	u.Add(UVMStats{PageFaults: 1})
	if u.PageFaults != 2 || u.FaultBatches != 2 || u.MigratedBytes != 3 ||
		u.PrefetchBytes != 4 || u.WritebackBytes != 5 || u.EvictedBytes != 6 {
		t.Errorf("unexpected UVM stats %+v", u)
	}
}
