// Package counters mirrors the role CUPTI and Linux perf play in the
// paper: it accumulates the hardware events the analysis sections read —
// instruction mix (Figure 9), unified-L1 load/store miss rates
// (Figure 10), data-transfer volumes, UVM fault activity and SM occupancy
// (§6).
package counters

// InstMix counts executed instructions by class. Counts are float64
// because they come from an analytic model, not discrete retirement.
type InstMix struct {
	Mem  float64 // global/shared load & store instructions
	FP   float64 // floating-point instructions
	Int  float64 // integer (address arithmetic) instructions
	Ctrl float64 // control (branch/loop/pipeline-barrier) instructions
}

// Add accumulates o into m.
func (m *InstMix) Add(o InstMix) {
	m.Mem += o.Mem
	m.FP += o.FP
	m.Int += o.Int
	m.Ctrl += o.Ctrl
}

// Total returns the total instruction count across classes.
func (m InstMix) Total() float64 { return m.Mem + m.FP + m.Int + m.Ctrl }

// L1Stats captures unified L1/texture cache activity for global loads and
// stores, the two counters Figure 10 compares.
type L1Stats struct {
	LoadAccesses  float64
	LoadMisses    float64
	StoreAccesses float64
	StoreMisses   float64
}

// Add accumulates o into s.
func (s *L1Stats) Add(o L1Stats) {
	s.LoadAccesses += o.LoadAccesses
	s.LoadMisses += o.LoadMisses
	s.StoreAccesses += o.StoreAccesses
	s.StoreMisses += o.StoreMisses
}

// LoadMissRate returns misses/accesses for global loads (0 when idle).
func (s L1Stats) LoadMissRate() float64 {
	if s.LoadAccesses == 0 {
		return 0
	}
	return s.LoadMisses / s.LoadAccesses
}

// StoreMissRate returns misses/accesses for global stores (0 when idle).
func (s L1Stats) StoreMissRate() float64 {
	if s.StoreAccesses == 0 {
		return 0
	}
	return s.StoreMisses / s.StoreAccesses
}

// UVMStats counts unified-memory driver activity.
type UVMStats struct {
	PageFaults     float64 // GPU-side page faults raised
	FaultBatches   float64 // fault groups serviced together
	MigratedBytes  float64 // host->device on-demand migration volume
	PrefetchBytes  float64 // host->device prefetched volume
	WritebackBytes float64 // device->host writeback volume
	EvictedBytes   float64 // bytes evicted under memory pressure
	Evictions      float64 // chunks evicted under memory pressure
}

// Add accumulates o into u.
func (u *UVMStats) Add(o UVMStats) {
	u.PageFaults += o.PageFaults
	u.FaultBatches += o.FaultBatches
	u.MigratedBytes += o.MigratedBytes
	u.PrefetchBytes += o.PrefetchBytes
	u.WritebackBytes += o.WritebackBytes
	u.EvictedBytes += o.EvictedBytes
	u.Evictions += o.Evictions
}

// Set is the full counter group for one run (one process execution in
// the paper's methodology).
type Set struct {
	Inst InstMix
	L1   L1Stats
	UVM  UVMStats

	// Explicit-transfer volumes (cudaMemcpy engine).
	H2DBytes float64
	D2HBytes float64

	// Occupancy bookkeeping: integral of (active warps / max warps) over
	// kernel execution, and total kernel busy time, so that
	// Occupancy() = time-weighted average occupancy as CUPTI reports it.
	occupancyIntegral float64
	kernelBusy        float64
}

// Merge accumulates o into s.
func (s *Set) Merge(o *Set) {
	s.Inst.Add(o.Inst)
	s.L1.Add(o.L1)
	s.UVM.Add(o.UVM)
	s.H2DBytes += o.H2DBytes
	s.D2HBytes += o.D2HBytes
	s.occupancyIntegral += o.occupancyIntegral
	s.kernelBusy += o.kernelBusy
}

// RecordKernel adds a kernel span with the given time-average occupancy
// (fraction of maximum resident warps, 0..1).
func (s *Set) RecordKernel(duration, occupancy float64) {
	if duration < 0 {
		panic("counters: negative kernel duration")
	}
	s.occupancyIntegral += duration * occupancy
	s.kernelBusy += duration
}

// Occupancy returns the time-weighted average SM occupancy across all
// recorded kernels, or 0 if none ran.
func (s *Set) Occupancy() float64 {
	if s.kernelBusy == 0 {
		return 0
	}
	return s.occupancyIntegral / s.kernelBusy
}

// KernelBusy returns the summed kernel execution time.
func (s *Set) KernelBusy() float64 { return s.kernelBusy }

// OccupancyState exposes the raw occupancy accumulators so a Set can be
// persisted and restored exactly (the cell store round-trips them).
func (s *Set) OccupancyState() (integral, busy float64) {
	return s.occupancyIntegral, s.kernelBusy
}

// SetOccupancyState restores accumulators captured by OccupancyState.
func (s *Set) SetOccupancyState(integral, busy float64) {
	s.occupancyIntegral = integral
	s.kernelBusy = busy
}

// Reset zeroes the set for reuse.
func (s *Set) Reset() { *s = Set{} }
