package uvmasim_test

// Ablation benchmarks: switch off one modelled mechanism at a time and
// report how the headline result (the combination setup's geo-mean
// improvement over standard on the microbenchmarks, Figure 7) responds.
// These quantify which parts of the system model carry the paper's
// findings.

import (
	"testing"

	"uvmasim/internal/core"
	"uvmasim/internal/cuda"
	"uvmasim/internal/workloads"
)

// comboImprovement measures the uvm_prefetch_async geo-mean improvement
// on the microbenchmarks at Large under the given system configuration.
func comboImprovement(b *testing.B, cfg cuda.SystemConfig) float64 {
	b.Helper()
	r := core.NewRunner()
	r.Config = cfg
	r.Iterations = 2
	study, err := r.BreakdownComparison(workloads.Micro(), workloads.Large)
	if err != nil {
		b.Fatal(err)
	}
	return study.GeoMeanImprovement(cuda.UVMPrefetchAsync) * 100
}

func BenchmarkAblationBaseline(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = comboImprovement(b, cuda.DefaultSystemConfig())
	}
	b.ReportMetric(imp, "%combo")
}

// BenchmarkAblationNoFaultLatency removes the UVM fault-batch service
// latency: plain uvm's kernel inflation should mostly vanish.
func BenchmarkAblationNoFaultLatency(b *testing.B) {
	cfg := cuda.DefaultSystemConfig()
	cfg.UVM.FaultBatchLatencyNs = 0
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = comboImprovement(b, cfg)
	}
	b.ReportMetric(imp, "%combo")
}

// BenchmarkAblationSlowPrefetch drops prefetch streaming to fault
// efficiency: the uvm_prefetch advantage over plain uvm should shrink to
// the fault-latency savings alone.
func BenchmarkAblationSlowPrefetch(b *testing.B) {
	cfg := cuda.DefaultSystemConfig()
	cfg.PCIe.PrefetchEfficiency = cfg.PCIe.FaultEfficiency
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = comboImprovement(b, cfg)
	}
	b.ReportMetric(imp, "%combo")
}

// BenchmarkAblationNarrowPCIe halves the interconnect: transfer-bound
// setups separate further from standard's blocking copies.
func BenchmarkAblationNarrowPCIe(b *testing.B) {
	cfg := cuda.DefaultSystemConfig()
	cfg.PCIe.BandwidthGBs /= 2
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = comboImprovement(b, cfg)
	}
	b.ReportMetric(imp, "%combo")
}

// BenchmarkAblationFreeAllocation zeroes the allocation cost model — the
// §6 motivation disappears and totals compress.
func BenchmarkAblationFreeAllocation(b *testing.B) {
	cfg := cuda.DefaultSystemConfig()
	cfg.Alloc.MallocBase = 0
	cfg.Alloc.MallocPerGB = 0
	cfg.Alloc.ManagedBase = 0
	cfg.Alloc.ManagedPerGB = 0
	cfg.Alloc.FreeBase = 0
	cfg.Alloc.FreePerGB = 0
	cfg.Alloc.ManagedFreePerGB = 0
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = comboImprovement(b, cfg)
	}
	b.ReportMetric(imp, "%combo")
}

// BenchmarkAblationFastHostChips removes the cross-chip host penalty:
// the Figure 6 Mega instability should collapse.
func BenchmarkAblationFastHostChips(b *testing.B) {
	cfg := cuda.DefaultSystemConfig()
	cfg.Host.CrossPenalty = 0
	cfg.Host.CrossJitter = 0
	r := core.NewRunner()
	r.Config = cfg
	r.Iterations = 10
	var cv float64
	for i := 0; i < b.N; i++ {
		f, err := r.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		cv = f.MemcpyCV()
	}
	b.ReportMetric(cv, "memcpy-cv")
}
