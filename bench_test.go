package uvmasim_test

// One testing.B benchmark per table/figure of the paper's evaluation.
// Each benchmark regenerates its artifact's data end to end (allocation,
// transfers, kernels, counters) and reports the headline quantity the
// paper derives from it as a custom metric, so `go test -bench=.` prints
// the reproduction's numbers next to the harness cost.

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uvmasim/internal/core"
	"uvmasim/internal/counters"
	"uvmasim/internal/cuda"
	"uvmasim/internal/pcie"
	"uvmasim/internal/sched"
	"uvmasim/internal/serve"
	"uvmasim/internal/sim"
	"uvmasim/internal/store"
	"uvmasim/internal/topo"
	"uvmasim/internal/uvm"
	"uvmasim/internal/workloads"
)

// benchRunner keeps repetitions small: benchmarks measure the harness,
// the statistics do not need 30 repetitions per b.N iteration. The cell
// cache is disabled so every b.N iteration re-simulates instead of
// replaying memoized cells.
func benchRunner() *core.Runner {
	r := core.NewRunner()
	r.Iterations = 3
	r.Cache = false
	return r
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.RenderTable3() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig4Distributions regenerates the micro exec-time
// distributions over all six input sizes.
func BenchmarkFig4Distributions(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		study, err := r.Distributions(workloads.Micro(), workloads.AllSizes)
		if err != nil {
			b.Fatal(err)
		}
		if len(study.Cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// BenchmarkFig5CV regenerates the std/mean stability study; the metric is
// the geo-mean CV gap between Mega and Large (positive = Mega noisier,
// Takeaway 1).
func BenchmarkFig5CV(b *testing.B) {
	r := benchRunner()
	r.Iterations = 8
	var gap float64
	for i := 0; i < b.N; i++ {
		study, err := r.Distributions(workloads.Micro(),
			[]workloads.Size{workloads.Large, workloads.Mega})
		if err != nil {
			b.Fatal(err)
		}
		gap = study.GeoMeanCV(workloads.Mega) - study.GeoMeanCV(workloads.Large)
	}
	b.ReportMetric(gap, "cv-gap")
}

// BenchmarkFig6MegaNoise reports the Mega-input memcpy coefficient of
// variation.
func BenchmarkFig6MegaNoise(b *testing.B) {
	r := benchRunner()
	r.Iterations = 10
	var cv float64
	for i := 0; i < b.N; i++ {
		f, err := r.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		cv = f.MemcpyCV()
	}
	b.ReportMetric(cv, "memcpy-cv")
}

// benchBreakdown measures a five-setup comparison and reports the
// geomean improvements of uvm_prefetch and the combination (the §4.1
// headline numbers) as metrics.
func benchBreakdown(b *testing.B, ws []workloads.Workload, size workloads.Size) {
	r := benchRunner()
	var pf, combo float64
	for i := 0; i < b.N; i++ {
		study, err := r.BreakdownComparison(ws, size)
		if err != nil {
			b.Fatal(err)
		}
		pf = study.GeoMeanImprovement(cuda.UVMPrefetch)
		combo = study.GeoMeanImprovement(cuda.UVMPrefetchAsync)
	}
	b.ReportMetric(pf*100, "%uvm_prefetch")
	b.ReportMetric(combo*100, "%combo")
}

func BenchmarkFig7MicroLarge(b *testing.B) {
	benchBreakdown(b, workloads.Micro(), workloads.Large)
}

func BenchmarkFig7MicroSuper(b *testing.B) {
	benchBreakdown(b, workloads.Micro(), workloads.Super)
}

func BenchmarkFig8AppsSuper(b *testing.B) {
	benchBreakdown(b, workloads.Apps(), workloads.Super)
}

// BenchmarkFig9InstructionMix reports gemm's async control-instruction
// inflation (paper: +39.98%).
func BenchmarkFig9InstructionMix(b *testing.B) {
	r := benchRunner()
	var inflation float64
	for i := 0; i < b.N; i++ {
		study, err := r.CounterComparison([]string{"gemm", "lud", "yolov3"}, workloads.Large)
		if err != nil {
			b.Fatal(err)
		}
		std, err := study.Row("gemm", cuda.Standard)
		if err != nil {
			b.Fatal(err)
		}
		pfa, err := study.Row("gemm", cuda.UVMPrefetchAsync)
		if err != nil {
			b.Fatal(err)
		}
		inflation = (pfa.CtrlInst/std.CtrlInst - 1) * 100
	}
	b.ReportMetric(inflation, "%ctrl-inflation")
}

// BenchmarkFig10CacheMiss reports lud's async load-miss-rate reduction
// (paper: -35.96%).
func BenchmarkFig10CacheMiss(b *testing.B) {
	r := benchRunner()
	var reduction float64
	for i := 0; i < b.N; i++ {
		study, err := r.CounterComparison([]string{"gemm", "lud", "yolov3"}, workloads.Large)
		if err != nil {
			b.Fatal(err)
		}
		std, err := study.Row("lud", cuda.Standard)
		if err != nil {
			b.Fatal(err)
		}
		asy, err := study.Row("lud", cuda.Async)
		if err != nil {
			b.Fatal(err)
		}
		reduction = (1 - asy.LoadMissRate/std.LoadMissRate) * 100
	}
	b.ReportMetric(reduction, "%load-miss-reduction")
}

func BenchmarkFig11BlockSweep(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.SweepBlocks(workloads.Large,
			[]int{4096, 2048, 1024, 512, 256, 128, 64, 32, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12ThreadSweep reports the standard-kernel slowdown of a
// 32-thread launch versus 128 threads (paper: 3.95x).
func BenchmarkFig12ThreadSweep(b *testing.B) {
	r := benchRunner()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		sw, err := r.SweepThreads(workloads.Large, []int{1024, 512, 256, 128, 64, 32})
		if err != nil {
			b.Fatal(err)
		}
		p32, err := sw.Point(32)
		if err != nil {
			b.Fatal(err)
		}
		p128, err := sw.Point(128)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = p32.BySetup[0].Kernel / p128.BySetup[0].Kernel
	}
	b.ReportMetric(slowdown, "x-kernel-32t-vs-128t")
}

func BenchmarkFig13SharedSweep(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.SweepShared(workloads.Large,
			[]float64{2, 4, 8, 16, 32, 64, 128}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14MultiJob reports the inter-job pipeline improvement
// (paper estimate: >30%).
func BenchmarkFig14MultiJob(b *testing.B) {
	r := benchRunner()
	var imp float64
	for i := 0; i < b.N; i++ {
		res, err := r.MultiJob("vector_seq", cuda.UVMPrefetchAsync, workloads.Super, 8)
		if err != nil {
			b.Fatal(err)
		}
		imp = res.Improvement * 100
	}
	b.ReportMetric(imp, "%pipeline-improvement")
}

// BenchmarkOversubscription regenerates the full oversub artifact on the
// default dense ratio grid — the sweep whose per-eviction full scan made
// the pre-refactor `uvmbench oversub` CPU-bound in uvm.makeRoom. Its
// ns/op is the committed baseline in BENCH_oversub.json; CI fails if it
// regresses more than 3x (scripts/bench_oversub.sh).
func BenchmarkOversubscription(b *testing.B) {
	r := benchRunner()
	var evicted float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		study, err := r.Oversubscription(cuda.UVMPrefetch, core.DefaultOversubRatios, 2)
		if err != nil {
			b.Fatal(err)
		}
		evicted = 0
		for _, p := range study.Points {
			evicted += p.EvictedBytes
		}
		if evicted == 0 {
			b.Fatal("oversubscribed sweep did not evict")
		}
	}
	b.ReportMetric(evicted/(1<<30), "GiB-evicted")
}

// BenchmarkMultiGPU regenerates the full multi-GPU schedule artifact —
// the default 1/2/4-GPU sweep over both topologies, serial and
// pipelined, so 12 DES schedules plus the analytic §6 oracle — with the
// cell cache off, so every op pays the inner workload measurement and
// every schedule replay. Its ns/op is the committed baseline in
// BENCH_multigpu.json; CI fails if it regresses more than 3x
// (scripts/bench_multigpu.sh).
func BenchmarkMultiGPU(b *testing.B) {
	r := benchRunner()
	var retained float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		study, err := r.MultiGPU("vector_seq", cuda.UVMPrefetchAsync, workloads.Super,
			8, []int{1, 2, 4}, []topo.Kind{topo.PCIeSwitch, topo.NVLink}, sched.LeastLoaded)
		if err != nil {
			b.Fatal(err)
		}
		retained = 0
		for _, p := range study.Points {
			if p.Topology == string(topo.PCIeSwitch) && p.GPUs == 4 {
				retained = 100 * p.Improvement
			}
		}
		if study.Analytic.Improvement <= 0 {
			b.Fatal("analytic projection shows no pipeline gain")
		}
	}
	b.ReportMetric(retained, "%gain-4gpu-switch")
}

// BenchmarkFigureSuite regenerates the fig4 distribution grid plus the
// fig7 Large breakdown on one serial worker with allocation accounting —
// the end-to-end hot loop the GC-free refactor targets. Its ns/op and
// allocs/op are the committed baseline in BENCH_suite.json; CI fails if
// either regresses past its ratio gate (scripts/bench_suite.sh).
func BenchmarkFigureSuite(b *testing.B) {
	r := benchRunner()
	r.Parallelism = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Distributions(workloads.Micro(), []workloads.Size{workloads.Large}); err != nil {
			b.Fatal(err)
		}
		if _, err := r.BreakdownComparison(workloads.Micro(), workloads.Large); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdCellMegaUVM measures cold single-cell latency at the
// heaviest iterating cell — vector_seq under the combination setup at
// the Mega (32 GB) input — with the default executor and iteration
// fan-out. This is the latency the -itpar fan-out targets: without it a
// lone cold cell runs its iterations serially and leaves every other
// executor worker idle, so the 1-core and multi-core rows of
// BENCH_suite.json bracket the speedup. A fresh seed per op keeps every
// measurement cold.
func BenchmarkColdCellMegaUVM(b *testing.B) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := core.NewRunner()
		r.Iterations = 8
		r.Cache = false
		r.BaseSeed = int64(i + 1)
		res, err := r.Measure(w, cuda.UVMPrefetchAsync, workloads.Mega)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Breakdowns) != 8 {
			b.Fatalf("cold cell returned %d breakdowns", len(res.Breakdowns))
		}
	}
}

// BenchmarkServeColdFig7 measures the serve cold path end to end: a
// fresh server (empty cell cache, no store) handles a POST for one
// fig7 figure, so the request pays full simulation. The intra-cell
// fan-out bounds this first-request latency on multi-core servers; the
// single-core row is the serial reference.
func BenchmarkServeColdFig7(b *testing.B) {
	quiet := log.New(io.Discard, "", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := serve.New(serve.Config{Log: quiet})
		spec := fmt.Sprintf(`{"figure":"fig7","iters":2,"seed":%d}`, i+1)
		req := httptest.NewRequest(http.MethodPost, "/v1/experiments", strings.NewReader(spec))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("POST status %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkStoreWarmHit measures the warm-hit path of the persistent
// cell store in isolation: the store is populated once, then every b.N
// iteration builds a fresh runner (fresh in-memory cache) and re-measures
// the same cell, so each Measure resolves from disk instead of
// simulating. Its ns/op is the committed baseline in BENCH_store.json;
// CI fails if it regresses more than 3x (scripts/bench_store.sh).
func BenchmarkStoreWarmHit(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	w := workloads.Micro()[0]
	seed := core.NewRunner()
	seed.Iterations = 3
	seed.Store = st
	if _, err := seed.Measure(w, cuda.UVMPrefetch, workloads.Large); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.NewRunner()
		r.Iterations = 3
		r.Store = st
		res, err := r.Measure(w, cuda.UVMPrefetch, workloads.Large)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Breakdowns) == 0 {
			b.Fatal("warm hit returned no breakdowns")
		}
		if r.StoreHits() != 1 {
			b.Fatalf("cell simulated instead of hitting the store (hits=%d)", r.StoreHits())
		}
	}
}

// benchUVMEvictionMega churns a Mega-size (32 GB) managed region through
// sequential demand faults against an 8 GB budget, so steady state evicts
// on every fault — the driver-level hot loop behind the oversub sweep,
// isolated from kernels and figure rendering.
func benchUVMEvictionMega(b *testing.B, reference bool) {
	const capacity = 8 << 30
	footprint := workloads.Mega.Footprint()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := sim.New()
		bus := pcie.New(eng, pcie.DefaultConfig())
		var stats counters.UVMStats
		m := uvm.NewManager(uvm.DefaultConfig(), bus, capacity, &stats)
		m.SetReferenceEviction(reference)
		r, err := m.Register(footprint)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		now := 0.0
		for pass := 0; pass < 2; pass++ {
			for c := 0; c < r.NumChunks(); c++ {
				now = m.DemandChunk(r, c, now, 1, true)
			}
		}
		if stats.Evictions == 0 {
			b.Fatal("churn did not evict")
		}
	}
}

func BenchmarkUVMEvictionMega(b *testing.B) { benchUVMEvictionMega(b, false) }

// BenchmarkUVMEvictionMegaScan runs the same churn through the retained
// reference scan evictor; the ratio against BenchmarkUVMEvictionMega is
// the data-structure speedup in isolation.
func BenchmarkUVMEvictionMegaScan(b *testing.B) { benchUVMEvictionMega(b, true) }

// BenchmarkContextCycle measures one full simulated process — context
// creation through a vector_seq run — with allocation accounting, so the
// hot-path allocation cuts in internal/cuda and internal/sim stay
// visible in `go test -bench`.
func BenchmarkContextCycle(b *testing.B) {
	w, err := workloads.ByName("vector_seq")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cuda.DefaultSystemConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := cuda.NewContext(cfg, cuda.UVMPrefetchAsync, int64(i))
		if err := w.Run(ctx, workloads.Large); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEvents measures event scheduling and dispatch on a
// reused engine, with allocation accounting: after warm-up the event
// heap's backing array is recycled by Reset, so steady state should not
// allocate.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			eng.After(float64(j%7), fn)
		}
		eng.Run()
		eng.Reset()
	}
}

// BenchmarkWorkloads measures one simulated run per workload at Super
// under the combination setup — the per-row cost behind Figure 8.
func BenchmarkWorkloads(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := cuda.NewContext(cuda.DefaultSystemConfig(), cuda.UVMPrefetchAsync, int64(i))
				if err := w.Run(ctx, workloads.Super); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeWarmHit measures the serve fast path end to end: a
// store-backed server handles a POST /v1/experiments whose cells are all
// warm in the persistent store, so the request costs spec validation,
// file reads and JSON rendering — no simulation. Every b.N iteration
// boots a fresh server (fresh in-memory cache, fresh registry) against
// the same store directory, modelling the restarted-process warm path.
// Its ns/op is the committed baseline in BENCH_serve.json; CI fails if
// it regresses more than 3x (scripts/bench_serve.sh).
func BenchmarkServeWarmHit(b *testing.B) {
	dirPath := b.TempDir()
	const spec = `{"figure":"fig6","iters":3}`
	post := func(s *serve.Server) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/experiments", strings.NewReader(spec))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("POST status %d: %s", w.Code, w.Body.String())
		}
		return w
	}
	open := func() *store.Dir {
		d, err := store.Open(dirPath)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	quiet := log.New(io.Discard, "", 0)
	cold := serve.New(serve.Config{Store: open(), StoreDir: dirPath, Log: quiet})
	want := post(cold).Body.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := serve.New(serve.Config{Store: open(), StoreDir: dirPath, Log: quiet})
		if got := post(s).Body.String(); got != want {
			b.Fatal("warm response diverges from cold response")
		}
		if s.Registry().Counter("uvmbench_store_hits_total", "").Value() == 0 {
			b.Fatal("request simulated instead of hitting the store")
		}
	}
}
